(* seqdiv — command-line driver for the diversity study.

   Reproduction subcommands: synth, mfs, map, full, roc, ensemble,
   lnb-threshold, ablation (every experiment of DESIGN.md section 3 can
   be regenerated from here; `seqdiv full` prints the complete paper
   reproduction).  Tool subcommands for user data: detect, compare,
   classify, dataset. *)

open Cmdliner
open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_report

(* --- shared options ---------------------------------------------------- *)

let train_len_t =
  let doc = "Training-stream length (the paper uses 1000000)." in
  Arg.(value & opt int 150_000 & info [ "train-len" ] ~docv:"N" ~doc)

let background_len_t =
  let doc = "Background length of each injected test stream." in
  Arg.(value & opt int 8_000 & info [ "background-len" ] ~docv:"N" ~doc)

let seed_t =
  let doc = "PRNG seed; the whole experiment is deterministic in it." in
  Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"SEED" ~doc)

let deviation_t =
  let doc = "Per-step probability of deviating from the cycle." in
  Arg.(
    value
    & opt float Generator.default_deviation
    & info [ "deviation" ] ~docv:"P" ~doc)

let rare_t =
  let doc = "Rare-sequence relative-frequency threshold (paper: 0.005)." in
  Arg.(value & opt float 0.005 & info [ "rare-threshold" ] ~docv:"F" ~doc)

let verbose_t =
  let doc = "Log suite construction and injection details to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let jobs_t =
  let doc =
    "Worker domains for detector training and scoring (0 = one per core). \
     Results are byte-identical for every value: only pure train/score \
     tasks run in parallel."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_t =
  let doc = "Print engine stage timings and task counts to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let deadline_t =
  let doc =
    "Per-task deadline in milliseconds: a train/score task that runs past \
     the budget degrades its cell(s) to a $(b,timeout) failure (rendered \
     $(b,!) in maps, $(b,failed:timeout) in CSV) instead of stalling the \
     run.  Deadlines are cooperative — checked at detector loop \
     checkpoints — and never retried."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let engine_t =
  let make jobs trace deadline_ms =
    let jobs =
      if jobs <= 0 then Seqdiv_util.Pool.recommended_jobs () else jobs
    in
    let deadline =
      Option.map
        (fun budget_ms ->
          if budget_ms <= 0 then begin
            prerr_endline "seqdiv: --deadline-ms must be positive";
            exit 2
          end;
          Seqdiv_util.Deadline.spec ~clock:Unix.gettimeofday ~budget_ms)
        deadline_ms
    in
    (Engine.create ~clock:Unix.gettimeofday ~jobs ?deadline (), trace)
  in
  Term.(const make $ jobs_t $ trace_t $ deadline_t)

(* Run one command body against the shared engine and honour --trace. *)
(* A fault that escapes a stage without per-cell isolation (the
   deployment tables, ablations) is a partial failure of the run, not
   an internal error: report it and use the partial-failure exit
   code.  The performance maps printed before the stage are intact. *)
let with_engine (engine, trace) f =
  match f engine with
  | result ->
      if trace then
        Format.eprintf "%a@." Engine.pp_stats (Engine.stats engine);
      result
  | exception Fault.Error fault ->
      if trace then
        Format.eprintf "%a@." Engine.pp_stats (Engine.stats engine);
      Printf.eprintf "seqdiv: stage failed: %s\n%!" (Fault.to_string fault);
      exit 2

(* --- supervision options (map / full) ----------------------------------- *)

let journal_t =
  let doc =
    "Record every completed cell in a crash-safe journal at $(docv) \
     (write-tmp-then-rename batches).  Interrupted runs restart with \
     $(b,--resume) to re-execute only the missing cells."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let resume_t =
  let doc =
    "Resume from the journal named by $(b,--journal): cells it already \
     holds are answered without re-execution, byte-identically to a fresh \
     run at any $(b,--jobs) count."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let strict_t =
  let doc =
    "Exit 1 instead of 2 when any cell fails — for CI gates that must \
     treat a partial map as a hard error."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

(* The journal context pins every parameter that shapes cell outcomes;
   resuming under a different configuration is refused, not silently
   spliced. *)
let journal_context (p : Suite.params) =
  Printf.sprintf
    "seed=%d alphabet=%d train_len=%d background_len=%d as=%d..%d dw=%d..%d \
     deviation=%g rare=%g"
    p.Suite.seed p.Suite.alphabet_size p.Suite.train_len p.Suite.background_len
    p.Suite.as_min p.Suite.as_max p.Suite.dw_min p.Suite.dw_max
    p.Suite.deviation p.Suite.rare_threshold

let open_journal params journal resume =
  match (journal, resume) with
  | None, true ->
      prerr_endline "seqdiv: --resume requires --journal FILE";
      exit 2
  | None, false -> None
  | Some path, resume -> (
      match Journal.start ~resume ~context:(journal_context params) path with
      | j ->
          if resume then
            Printf.eprintf "journal: recovered %d cell(s) from %s%s\n%!"
              (Journal.recovered j) path
              (match Journal.dropped_lines j with
              | 0 -> ""
              | n -> Printf.sprintf " (%d torn line(s) dropped)" n);
          Some j
      | exception Journal.Corrupt msg ->
          prerr_endline ("seqdiv: " ^ msg);
          exit 2)

(* Honest exit status: a map with failed cells is a partial result and
   must not exit 0.  One summary line on stderr; 2 by default, 1 under
   --strict. *)
let check_failures ~strict maps =
  let failed =
    List.fold_left
      (fun acc m -> acc + List.length (Performance_map.failed_cells m))
      0 maps
  in
  if failed > 0 then begin
    let total =
      List.fold_left (fun acc m -> acc + Performance_map.cell_count m) 0 maps
    in
    Printf.eprintf
      "seqdiv: partial failure: %d of %d cell(s) failed after retries (rerun \
       with --journal FILE --resume to retry only those)\n%!"
      failed total;
    exit (if strict then 1 else 2)
  end

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let params_t =
  let make verbose train_len background_len seed deviation rare_threshold =
    setup_logging verbose;
    {
      Suite.paper_params with
      Suite.train_len;
      background_len;
      seed;
      deviation;
      rare_threshold;
    }
  in
  Term.(
    const make $ verbose_t $ train_len_t $ background_len_t $ seed_t
    $ deviation_t $ rare_t)

let detector_conv =
  let parse s =
    match Registry.find s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown detector %S (one of: %s)" s
               (String.concat ", " Registry.names)))
  in
  let print ppf (module D : Detector.S) = Format.pp_print_string ppf D.name in
  Arg.conv (parse, print)

(* --- synth ------------------------------------------------------------- *)

let synth_cmd =
  let run params out =
    let suite = Suite.build params in
    Trace_io.to_file out suite.Suite.training;
    Printf.printf "wrote %d training elements to %s\n"
      (Trace.length suite.Suite.training)
      out
  in
  let out_t =
    Arg.(value & opt string "training.trace" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Generate the synthetic training stream to a file.")
    Term.(const run $ params_t $ out_t)

(* --- mfs --------------------------------------------------------------- *)

let mfs_cmd =
  let run params size count =
    let suite = Suite.build params in
    let candidates =
      Mfs.candidates suite.Suite.index suite.Suite.alphabet ~size
        ~rare_threshold:params.Suite.rare_threshold
    in
    Printf.printf
      "%d minimal foreign sequence(s) of size %d (showing up to %d):\n"
      (List.length candidates) size count;
    List.iteri
      (fun i c ->
        if i < count then
          Printf.printf "  [%s]  rare 2-grams: %d\n"
            (String.concat "; "
               (List.map string_of_int (Array.to_list c)))
            (Mfs.rare_twogram_count suite.Suite.index
               ~threshold:params.Suite.rare_threshold c))
      candidates
  in
  let size_t =
    Arg.(value & opt int 5 & info [ "size" ] ~docv:"AS" ~doc:"Anomaly size.")
  in
  let count_t =
    Arg.(value & opt int 10 & info [ "count" ] ~docv:"N" ~doc:"Candidates to show.")
  in
  Cmd.v
    (Cmd.info "mfs"
       ~doc:"List minimal foreign sequences constructible from the training data.")
    Term.(const run $ params_t $ size_t $ count_t)

(* --- map --------------------------------------------------------------- *)

let map_cmd =
  let run params eng detectors csv_dir journal resume strict =
    with_engine eng @@ fun engine ->
    let suite = Suite.build params in
    let detectors = if detectors = [] then Registry.all else detectors in
    let journal = open_journal params journal resume in
    let maps =
      List.map
        (fun d ->
          let map = Experiment.performance_map ~engine ?journal suite d in
          Ascii_map.print map;
          print_newline ();
          Option.iter
            (fun dir ->
              let path =
                Filename.concat dir
                  (Printf.sprintf "map_%s.csv" (Performance_map.detector map))
              in
              Csv.write_file path
                ~header:
                  [ "detector"; "anomaly_size"; "window"; "outcome"; "max_response" ]
                (Csv.map_rows map);
              Printf.printf "wrote %s\n" path)
            csv_dir;
          map)
        detectors
    in
    check_failures ~strict maps
  in
  let detectors_t =
    Arg.(
      value
      & opt_all detector_conv []
      & info [ "d"; "detector" ] ~docv:"NAME"
          ~doc:"Detector to map (repeatable); default: all four.")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ] ~docv:"DIR" ~doc:"Also write per-map CSV files.")
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "0 on a complete run; 2 (1 under $(b,--strict)) when any cell \
         failed past the supervisor's retry budget — the maps are then \
         partial and failed cells render as '!'.";
    ]
  in
  Cmd.v
    (Cmd.info "map" ~man
       ~doc:"Reproduce the performance maps of Figures 3-6 for chosen detectors.")
    Term.(
      const run $ params_t $ engine_t $ detectors_t $ csv_t $ journal_t
      $ resume_t $ strict_t)

(* --- full -------------------------------------------------------------- *)

let full_cmd =
  let run params eng journal resume strict =
    with_engine eng @@ fun engine ->
    let suite = Suite.build params in
    let journal = open_journal params journal resume in
    print_string (Paper.figure2 suite ~window:5 ~anomaly_size:8);
    print_newline ();
    print_string (Paper.figure7 ());
    print_newline ();
    let maps = Experiment.all_maps ~engine ?journal suite Registry.all in
    List.iter
      (fun m ->
        print_string (Paper.figure_map m);
        print_newline ())
      maps;
    print_string (Paper.table1 maps);
    print_newline ();
    let t2 =
      Deployment.suppressor_experiment ~engine suite ~window:8 ~anomaly_size:5
        ~deploy_len:30_000 ~seed:(params.Suite.seed + 1)
    in
    print_string (Paper.table2 t2);
    print_newline ();
    let deploy =
      Deployment.deployment_stream suite ~len:30_000 ~seed:(params.Suite.seed + 2)
    in
    let fa_training =
      Trace.sub suite.Suite.training ~pos:0
        ~len:(Stdlib.min (Trace.length suite.Suite.training) 20_000)
    in
    let t3 =
      Deployment.lnb_threshold_experiment ~engine suite ~anomaly_size:5
        ~deploy_trace:deploy ~fa_training
    in
    print_string (Paper.table3 t3);
    check_failures ~strict maps
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "0 on a complete run; 2 (1 under $(b,--strict)) when any \
         performance-map cell failed past the supervisor's retry budget.";
    ]
  in
  Cmd.v
    (Cmd.info "full" ~man
       ~doc:"Run the complete paper reproduction (figures and tables).")
    Term.(const run $ params_t $ engine_t $ journal_t $ resume_t $ strict_t)

(* --- roc --------------------------------------------------------------- *)

let roc_cmd =
  let run params (module D : Detector.S) window anomaly_size deploy_len =
    let suite = Suite.build params in
    let trained = Trained.train (module D) ~window suite.Suite.training in
    let deploy =
      Deployment.deployment_stream suite ~len:deploy_len
        ~seed:(params.Suite.seed + 3)
    in
    let clean = Trained.score trained deploy in
    let spans =
      List.map
        (fun anomaly_size ->
          let test = Suite.stream suite ~anomaly_size ~window in
          Scoring.incident_response trained test.Suite.injection)
        (if anomaly_size = 0 then Suite.anomaly_sizes suite else [ anomaly_size ])
    in
    let points =
      Roc.sweep ~clean ~spans
        ~thresholds:[ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.995; 1.0 ]
    in
    let table = Table.make ~columns:[ "threshold"; "hit rate"; "FA rate" ] in
    List.iter
      (fun p ->
        Table.add_row table
          [
            Printf.sprintf "%.3f" p.Roc.threshold;
            Printf.sprintf "%.3f" p.Roc.hit_rate;
            Printf.sprintf "%.5f" p.Roc.fa_rate;
          ])
      points;
    Table.print table;
    Printf.printf "AUC (anchored): %.4f\n" (Roc.auc points)
  in
  let detector_t =
    Arg.(
      required
      & opt (some detector_conv) None
      & info [ "d"; "detector" ] ~docv:"NAME" ~doc:"Detector.")
  in
  let window_t =
    Arg.(value & opt int 8 & info [ "window" ] ~docv:"DW" ~doc:"Detector window.")
  in
  let as_t =
    Arg.(
      value & opt int 0
      & info [ "anomaly-size" ] ~docv:"AS"
          ~doc:"Anomaly size (0 = all sizes of the suite).")
  in
  let deploy_t =
    Arg.(value & opt int 30_000 & info [ "deploy-len" ] ~docv:"N" ~doc:"Deployment length.")
  in
  Cmd.v
    (Cmd.info "roc" ~doc:"Threshold sweep: hit rate vs false-alarm rate.")
    Term.(const run $ params_t $ detector_t $ window_t $ as_t $ deploy_t)

(* --- ensemble ---------------------------------------------------------- *)

let ensemble_cmd =
  let run params eng window anomaly_size deploy_len =
    with_engine eng @@ fun engine ->
    let suite = Suite.build params in
    let report =
      Deployment.suppressor_experiment ~engine suite ~window ~anomaly_size
        ~deploy_len ~seed:(params.Suite.seed + 1)
    in
    print_string (Paper.table2 report)
  in
  let window_t =
    Arg.(value & opt int 8 & info [ "window" ] ~docv:"DW" ~doc:"Detector window.")
  in
  let as_t =
    Arg.(value & opt int 5 & info [ "anomaly-size" ] ~docv:"AS" ~doc:"Anomaly size.")
  in
  let deploy_t =
    Arg.(value & opt int 30_000 & info [ "deploy-len" ] ~docv:"N" ~doc:"Deployment length.")
  in
  Cmd.v
    (Cmd.info "ensemble"
       ~doc:"Markov+Stide false-alarm suppression experiment (T2).")
    Term.(const run $ params_t $ engine_t $ window_t $ as_t $ deploy_t)

(* --- lnb-threshold ----------------------------------------------------- *)

let lnb_cmd =
  let run params eng anomaly_size deploy_len fa_train_len =
    with_engine eng @@ fun engine ->
    let suite = Suite.build params in
    let deploy =
      Deployment.deployment_stream suite ~len:deploy_len
        ~seed:(params.Suite.seed + 2)
    in
    let fa_training =
      Trace.sub suite.Suite.training ~pos:0
        ~len:(Stdlib.min (Trace.length suite.Suite.training) fa_train_len)
    in
    let points =
      Deployment.lnb_threshold_experiment ~engine suite ~anomaly_size
        ~deploy_trace:deploy ~fa_training
    in
    print_string (Paper.table3 points)
  in
  let as_t =
    Arg.(value & opt int 5 & info [ "anomaly-size" ] ~docv:"AS" ~doc:"Anomaly size.")
  in
  let deploy_t =
    Arg.(value & opt int 30_000 & info [ "deploy-len" ] ~docv:"N" ~doc:"Deployment length.")
  in
  let fa_train_t =
    Arg.(
      value & opt int 20_000
      & info [ "fa-train-len" ] ~docv:"N"
          ~doc:"Training length for the false-alarm model (undertrained regime).")
  in
  Cmd.v
    (Cmd.info "lnb-threshold"
       ~doc:"Cost of lowering the L&B threshold to catch an MFS (T3).")
    Term.(const run $ params_t $ engine_t $ as_t $ deploy_t $ fa_train_t)

(* --- ablation ----------------------------------------------------------- *)

let ablation_cmd =
  let run params eng which =
    with_engine eng @@ fun engine ->
    let suite = Suite.build params in
    let deploy =
      Deployment.deployment_stream suite ~len:30_000 ~seed:(params.Suite.seed + 2)
    in
    let fa_training =
      Trace.sub suite.Suite.training ~pos:0
        ~len:(Stdlib.min (Trace.length suite.Suite.training) 20_000)
    in
    let run_a1 () =
      let test = Suite.stream suite ~anomaly_size:4 ~window:6 in
      print_string
        (Paper.ablation1
           (Ablation.lfc_experiment ~engine ~training:fa_training
              ~injection:test.Suite.injection ~deploy ~window:6
              ~settings:[ (20, 1); (20, 2); (20, 4); (50, 8) ] ()))
    in
    let run_a2 () =
      let base = Neural.default_params in
      print_string
        (Paper.ablation2
           (Ablation.nn_sensitivity ~engine suite ~window:6
              ~params:
                [
                  base;
                  { base with Neural.hidden = 1 };
                  { base with Neural.epochs = 10 };
                  { base with Neural.learning_rate = 0.005; epochs = 50 };
                ]))
    in
    let run_a3 () =
      let base =
        Suite.scaled_params
          ~train_len:(Stdlib.min params.Suite.train_len 80_000)
          ~background_len:4_000
      in
      print_string
        (Paper.ablation3
           (Ablation.alphabet_invariance ~engine ~base ~sizes:[ 6; 8; 12 ] ()))
    in
    let run_a4 () =
      print_string
        (Paper.ablation4
           (Ablation.rare_threshold_sweep suite
              ~thresholds:[ 0.00005; 0.0001; 0.0005; 0.005; 0.05; 0.2 ]))
    in
    match which with
    | "a1" -> run_a1 ()
    | "a2" -> run_a2 ()
    | "a3" -> run_a3 ()
    | "a4" -> run_a4 ()
    | "all" ->
        run_a1 ();
        run_a2 ();
        run_a3 ();
        run_a4 ()
    | other ->
        prerr_endline ("unknown ablation " ^ other ^ " (a1|a2|a3|a4|all)");
        exit 2
  in
  let which_t =
    Arg.(
      value & opt string "all"
      & info [ "which" ] ~docv:"ID" ~doc:"Which ablation: a1, a2, a3, a4 or all.")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run the A1-A4 ablation studies.")
    Term.(const run $ params_t $ engine_t $ which_t)

(* --- model (compile / score saved models) ------------------------------- *)

let model_cmd =
  (* A saved model's kind is self-describing: text models open with the
     versioned "#seqdiv-<kind>" header line, flat binaries with the
     "sqdvflat" magic. *)
  let sniff path =
    In_channel.with_open_bin path (fun ic ->
        let buf = Bytes.create 16 in
        let n = In_channel.input ic buf 0 16 in
        let head = Bytes.sub_string buf 0 n in
        let starts p =
          String.length head >= String.length p
          && String.sub head 0 (String.length p) = p
        in
        if starts "sqdvflat" then `Flat
        else if starts "#seqdiv-stide" then `Stide
        else if starts "#seqdiv-markov" then `Markov
        else `Unknown)
  in
  let compile_text path =
    (* Returns (detector name, alarm threshold, compiled scorer). *)
    let compile_with (type m) (module D : Detector.S with type model = m)
        (m : m) =
      match D.compile with
      | Some f -> (
          match f m with
          | Some scorer -> (D.name, 1.0 -. D.maximal_epsilon, scorer)
          | None ->
              Printf.eprintf "%s: this model has no compiled form\n" D.name;
              exit 1)
      | None ->
          Printf.eprintf "%s does not support compilation\n" D.name;
          exit 1
    in
    match sniff path with
    | `Stide -> compile_with (module Stide) (Model_io.load_stide_file path)
    | `Markov -> compile_with (module Markov) (Model_io.load_markov_file path)
    | `Flat ->
        Printf.eprintf "%s is already a compiled flat model\n" path;
        exit 1
    | `Unknown ->
        Printf.eprintf "%s: not a recognised seqdiv model file\n" path;
        exit 1
  in
  let run_compile verbose model_file out =
    setup_logging verbose;
    let name, alarm_threshold, scorer = compile_text model_file in
    Model_io.save_flat_file out ~detector:name ~alarm_threshold scorer;
    let auto = Flat_automaton.automaton scorer in
    Printf.printf "compiled %s model (window %d, %d states) to %s\n" name
      (Flat_automaton.depth auto)
      (Flat_automaton.states auto)
      out
  in
  let print_items (r : Response.t) =
    (* One "start score" line per window, scores in lossless hex float,
       so two scoring paths can be compared with a plain byte diff. *)
    Array.iter
      (fun (item : Response.item) ->
        Printf.printf "%d %h\n" item.Response.start item.Response.score)
      r.Response.items
  in
  let run_score verbose model_file trace_file =
    setup_logging verbose;
    let trace = Trace_io.of_file trace_file in
    let score_text (type m) (module D : Detector.S with type model = m)
        (m : m) =
      (* Text model: the detector's own descent over its model — the
         reference path the flat binary must match byte for byte. *)
      print_items (D.score m trace)
    in
    match sniff model_file with
    | `Flat ->
        let flat = Model_io.load_flat_file model_file in
        let window = flat.Model_io.flat_window in
        print_items
          (Detector.compiled_score_range flat.Model_io.flat_scorer
             ~detector:flat.Model_io.flat_detector trace ~lo:0
             ~hi:(Trace.length trace - window))
    | `Stide -> score_text (module Stide) (Model_io.load_stide_file model_file)
    | `Markov ->
        score_text (module Markov) (Model_io.load_markov_file model_file)
    | `Unknown ->
        Printf.eprintf "%s: not a recognised seqdiv model file\n" model_file;
        exit 1
  in
  let model_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Saved model (text #seqdiv-* or flat binary).")
  in
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Output flat binary.")
  in
  let trace_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Trace to score (Trace_io format).")
  in
  let compile_cmd =
    Cmd.v
      (Cmd.info "compile"
         ~doc:"Compile a saved text model to the mmap-ready flat binary.")
      Term.(const run_compile $ verbose_t $ model_t $ out_t)
  in
  let score_cmd =
    Cmd.v
      (Cmd.info "score"
         ~doc:
           "Score a trace with a saved model (text or flat), printing one \
            lossless 'start score' line per window.")
      Term.(const run_score $ verbose_t $ model_t $ trace_t)
  in
  Cmd.group
    (Cmd.info "model"
       ~doc:"Compile and run saved detector models (deployment workflow).")
    [ compile_cmd; score_cmd ]

(* --- detect ------------------------------------------------------------- *)

let detect_cmd =
  let run verbose (module D : Detector.S) window train_file test_file threshold
      gap save_model =
    setup_logging verbose;
    let training = Trace_io.of_file train_file in
    let test = Trace_io.of_file test_file in
    let trained = Trained.train (module D) ~window training in
    let threshold =
      match threshold with
      | Some t -> t
      | None -> Trained.alarm_threshold trained
    in
    (match (save_model, D.name) with
    | Some path, "stide" ->
        Model_io.save_stide_file path (Stide.train ~window training);
        Printf.printf "saved stide model to %s\n" path
    | Some path, "markov" ->
        Model_io.save_markov_file path (Markov.train ~window training);
        Printf.printf "saved markov model to %s\n" path
    | Some _, other ->
        Printf.eprintf "model persistence is not supported for %s\n" other
    | None, _ -> ());
    let response = Trained.score trained test in
    let incidents = Incident.of_response ~gap response ~threshold in
    Printf.printf
      "%s (window %d) on %d elements: %d window alarms, %d incident(s) at \
       threshold %.4f\n"
      D.name window (Trace.length test)
      (Response.count_over response ~threshold)
      (List.length incidents) threshold;
    List.iter
      (fun incident -> Format.printf "  %a@." Incident.pp incident)
      incidents
  in
  let detector_t =
    Arg.(
      required
      & opt (some detector_conv) None
      & info [ "d"; "detector" ] ~docv:"NAME" ~doc:"Detector.")
  in
  let window_t =
    Arg.(value & opt int 6 & info [ "window" ] ~docv:"DW" ~doc:"Detector window.")
  in
  let train_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "train" ] ~docv:"FILE" ~doc:"Training trace (Trace_io format).")
  in
  let test_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "test" ] ~docv:"FILE" ~doc:"Trace to score.")
  in
  let threshold_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"T"
          ~doc:"Alarm threshold (default: the detector's maximal band).")
  in
  let gap_t =
    Arg.(
      value & opt int 0
      & info [ "gap" ] ~docv:"N" ~doc:"Coalesce alarms separated by up to N positions.")
  in
  let save_model_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-model" ] ~docv:"FILE"
          ~doc:"Also persist the trained model (stide and markov only).")
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Train on one trace file and report incidents on another.")
    Term.(
      const run $ verbose_t $ detector_t $ window_t $ train_t $ test_t
      $ threshold_t $ gap_t $ save_model_t)

(* --- dataset ------------------------------------------------------------ *)

let dataset_cmd =
  let run params dir check =
    if check then begin
      let suite = Dataset_io.load ~dir in
      let p = suite.Suite.params in
      Printf.printf
        "dataset at %s: alphabet %d, training %d elements, %d test streams — \
         ground truth verified\n"
        dir p.Suite.alphabet_size p.Suite.train_len
        (Array.length suite.Suite.streams)
    end
    else begin
      let suite = Suite.build params in
      Dataset_io.save suite ~dir;
      Printf.printf "wrote evaluation corpus (%d streams) to %s\n"
        (Array.length suite.Suite.streams)
        dir
    end
  in
  let dir_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Load and verify an existing corpus instead of generating.")
  in
  Cmd.v
    (Cmd.info "dataset"
       ~doc:"Generate the evaluation corpus to a directory, or verify one.")
    Term.(const run $ params_t $ dir_t $ check_t)

(* --- compare ------------------------------------------------------------ *)

let compare_cmd =
  let run verbose (module A : Detector.S) (module B : Detector.S) window
      train_file test_file =
    setup_logging verbose;
    let training = Trace_io.of_file train_file in
    let test = Trace_io.of_file test_file in
    let a = Trained.train (module A) ~window training in
    let b = Trained.train (module B) ~window training in
    let ra = Trained.score a test and rb = Trained.score b test in
    let ta = Trained.alarm_threshold a and tb = Trained.alarm_threshold b in
    let alarms_a = Response.count_over ra ~threshold:ta in
    let alarms_b = Response.count_over rb ~threshold:tb in
    let corroboration =
      Ensemble.suppress ~primary:(ra, ta) ~suppressor:(rb, tb)
    in
    let both = corroboration.Ensemble.corroborated in
    Printf.printf
      "%s: %d alarms; %s: %d alarms; raised by both: %d\n" A.name alarms_a
      B.name alarms_b both;
    Printf.printf "%s-only alarms: %d; %s-only alarms: %d\n" A.name
      (alarms_a - both) B.name (alarms_b - both);
    let union = alarms_a + alarms_b - both in
    if union > 0 then
      Printf.printf "alarm-set jaccard: %.3f\n"
        (float_of_int both /. float_of_int union)
    else print_endline "no alarms from either detector";
    let disjunction =
      Ensemble.combine Ensemble.Any [ (ra, ta); (rb, tb) ]
    in
    let conjunction =
      Ensemble.combine Ensemble.All [ (ra, ta); (rb, tb) ]
    in
    Printf.printf "ensemble alarms: any=%d  all=%d\n"
      (Response.count_over disjunction ~threshold:1.0)
      (Response.count_over conjunction ~threshold:1.0)
  in
  let detector_opt option_name doc =
    let docv = "NAME" in
    Arg.(
      required
      & opt (some detector_conv) None
      & info [ option_name ] ~docv ~doc)
  in
  let window_t =
    Arg.(value & opt int 6 & info [ "window" ] ~docv:"DW" ~doc:"Detector window.")
  in
  let train_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "train" ] ~docv:"FILE" ~doc:"Training trace.")
  in
  let test_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "test" ] ~docv:"FILE" ~doc:"Trace to score.")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Measure how two detectors' alarm sets overlap on your traces.")
    Term.(
      const run $ verbose_t
      $ detector_opt "a" "First detector."
      $ detector_opt "b" "Second detector."
      $ window_t $ train_t $ test_t)

(* --- classify (UNM-style per-process traces) ----------------------------- *)

let classify_cmd =
  let run verbose window train_file test_file =
    setup_logging verbose;
    (* The classic "sense of self" workflow: train stide on the benign
       per-process traces, then classify each monitored process.  The
       normal database is built per session so no window spans a process
       boundary. *)
    let train_sessions, mapping = Syscall_trace.parse_file train_file in
    let test_sessions, test_mapping = Syscall_trace.parse_file test_file in
    if Array.length test_mapping > Array.length mapping then
      Printf.printf
        "note: the monitored traces use %d distinct calls vs %d in training — \
         novel calls are necessarily foreign\n"
        (Array.length test_mapping) (Array.length mapping);
    let db = Sessions.seq_db train_sessions ~width:window in
    let model = Stide.train_of_db db in
    Printf.printf
      "trained stide (window %d) on %d sessions / %d calls (%d distinct \
       sequences)\n"
      window
      (Sessions.count train_sessions)
      (Sessions.total_length train_sessions)
      (Seq_db.cardinal db);
    List.iteri
      (fun i session ->
        if Trace.length session < window then
          Printf.printf "  session %d: too short to judge (%d calls)\n" (i + 1)
            (Trace.length session)
        else begin
          let response = Stide.score model session in
          let incidents = Incident.of_response response ~threshold:1.0 in
          match incidents with
          | [] ->
              Printf.printf "  session %d: normal (%d calls)\n" (i + 1)
                (Trace.length session)
          | _ ->
              Printf.printf "  session %d: ANOMALOUS — %d incident(s)\n" (i + 1)
                (List.length incidents);
              List.iter
                (fun incident -> Format.printf "    %a@." Incident.pp incident)
                incidents
        end)
      (Sessions.traces test_sessions)
  in
  let window_t =
    Arg.(value & opt int 6 & info [ "window" ] ~docv:"DW" ~doc:"Detector window.")
  in
  let train_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "train" ] ~docv:"FILE"
          ~doc:"Benign per-process traces (UNM pid/syscall format).")
  in
  let test_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "test" ] ~docv:"FILE" ~doc:"Monitored traces to classify.")
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Classify per-process system-call traces with stide (UNM pid/syscall \
          format).")
    Term.(const run $ verbose_t $ window_t $ train_t $ test_t)

(* --- serve / serve-bench (streaming service) ----------------------------- *)

(* Shared by serve and serve-bench: exactly one of --socket / --tcp. *)
let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Serve on a Unix-domain socket.")

let tcp_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Serve on a TCP socket.")

let address_of socket tcp =
  match (socket, tcp) with
  | Some path, None -> Serve.Unix_socket path
  | None, Some hostport -> (
      match String.rindex_opt hostport ':' with
      | Some i -> (
          let host = String.sub hostport 0 i in
          let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          match int_of_string_opt port with
          | Some port when port > 0 && port < 65536 -> Serve.Tcp (host, port)
          | Some _ | None ->
              Printf.eprintf "seqdiv: bad port in --tcp %s\n" hostport;
              exit 2)
      | None ->
          Printf.eprintf "seqdiv: --tcp expects HOST:PORT, got %s\n" hostport;
          exit 2)
  | Some _, Some _ | None, None ->
      prerr_endline "seqdiv: give exactly one of --socket PATH or --tcp HOST:PORT";
      exit 2

let load_flat_or_exit model_file =
  match Model_io.load_flat_file model_file with
  | flat -> flat
  | exception Parse_error.Error msg ->
      Printf.eprintf
        "seqdiv: %s\n(serve needs a compiled flat model — produce one with \
         `seqdiv model compile`)\n"
        msg;
      exit 1

let serve_cmd =
  let run verbose model_file socket tcp shards queue_capacity retry_after_ms
      journal_dir resume deadline_ms max_connections max_restarts
      write_timeout_ms chaos_serve chaos_crash chaos_hang chaos_torn
      chaos_sticky threshold alarm_budget =
    setup_logging verbose;
    let address = address_of socket tcp in
    let chaos =
      Option.map
        (fun seed ->
          match
            Fault_plan.Serve.of_seed ~crash_rate:chaos_crash
              ~hang_rate:chaos_hang ~torn_rate:chaos_torn ~sticky:chaos_sticky
              ~seed ()
          with
          | plan -> plan
          | exception Invalid_argument msg ->
              Printf.eprintf "seqdiv: %s\n" msg;
              exit 2)
        chaos_serve
    in
    let flat = load_flat_or_exit model_file in
    let threshold =
      match threshold with
      | Some t -> t
      | None -> flat.Model_io.flat_alarm_threshold
    in
    let adaptive =
      Option.map
        (fun budget ->
          if not (budget > 0.0 && budget < 1.0) then begin
            prerr_endline "seqdiv: --alarm-budget must be strictly between 0 and 1";
            exit 2
          end;
          Adaptive_threshold.config ~budget ~initial:threshold ())
        alarm_budget
    in
    let deadline =
      Option.map
        (fun budget_ms ->
          if budget_ms <= 0 then begin
            prerr_endline "seqdiv: --deadline-ms must be positive";
            exit 2
          end;
          Seqdiv_util.Deadline.spec ~clock:Unix.gettimeofday ~budget_ms)
        deadline_ms
    in
    let auto = Flat_automaton.automaton flat.Model_io.flat_scorer in
    let config =
      {
        Serve.address;
        shards;
        queue_capacity;
        retry_after_ms;
        scorer = flat.Model_io.flat_scorer;
        threshold;
        adaptive;
        model_tag = flat.Model_io.flat_detector;
        journal_dir;
        resume;
        deadline;
        clock = Unix.gettimeofday;
        max_connections;
        max_restarts;
        write_timeout_ms;
        chaos;
      }
    in
    let on_ready () =
      Printf.printf "serving %s model (window %d, %d states) on %s: %d shard(s)\n%!"
        flat.Model_io.flat_detector
        (Flat_automaton.depth auto)
        (Flat_automaton.states auto)
        (match address with
        | Serve.Unix_socket path -> path
        | Serve.Tcp (host, port) -> Printf.sprintf "%s:%d" host port)
        shards;
      Option.iter
        (fun plan -> Printf.printf "%s\n%!" (Fault_plan.Serve.describe plan))
        chaos
    in
    match Serve.run ~on_ready config with
    | stats ->
        List.iter
          (fun (s : Frame.shard_stats) ->
            Printf.printf
              "shard %d: %d batches, %d events, %d symbols, %d rejected, %d \
               sessions resident (%d KiB)%s\n"
              s.Frame.shard s.Frame.batches s.Frame.events s.Frame.symbols
              s.Frame.rejected s.Frame.sessions_resident
              (s.Frame.bytes_resident / 1024)
              (if s.Frame.degraded then
                 Printf.sprintf ", DEGRADED after %d restart(s)" s.Frame.restarts
               else if s.Frame.restarts > 0 then
                 Printf.sprintf ", %d restart(s)" s.Frame.restarts
               else ""))
          stats
    | exception Shard_journal.Corrupt msg ->
        Printf.eprintf "seqdiv: shard journal rejected: %s\n" msg;
        exit 1
    | exception Invalid_argument msg ->
        Printf.eprintf "seqdiv: %s\n" msg;
        exit 2
  in
  let model_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Compiled flat model (from $(b,seqdiv model compile)).")
  in
  let shards_t =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard count: sessions are routed by session-id hash to $(docv) \
             independent monitor tables, each stepped by its own domain.")
  in
  let queue_capacity_t =
    Arg.(
      value
      & opt int Serve.default_queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Bounded ingress queue per shard, in sub-batches.  A batch \
             touching any full shard is rejected whole with a retry-after \
             hint — backpressure, not buffering.")
  in
  let retry_after_t =
    Arg.(
      value
      & opt int Serve.default_retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:
            "Floor of the adaptive retry hint carried by backpressure \
             rejections (queue depth times median recent service time, \
             capped at 1000 ms).")
  in
  let journal_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Append a per-shard journal of session snapshots and batch \
             incidents under $(docv); with $(b,--resume), a killed server \
             restarts from it with byte-identical subsequent output.")
  in
  let max_connections_t =
    Arg.(
      value
      & opt int Serve.default_max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent client connections accepted.")
  in
  let threshold_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"T"
          ~doc:"Alarm threshold (default: the model file's own).")
  in
  let alarm_budget_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "alarm-budget" ] ~docv:"RATE"
          ~doc:
            "Adaptive thresholding: per-session monitors track the \
             $(docv)-tail score quantile with a streaming sketch, so the \
             observed false-alarm rate converges on $(docv) instead of \
             depending on a hand-picked $(b,--threshold) (which still \
             seeds the controller's starting point).  Strictly between 0 \
             and 1.")
  in
  let max_restarts_t =
    Arg.(
      value
      & opt int Serve.default_max_restarts
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Consecutive supervised restarts of one shard domain before it \
             degrades instead (restarting needs $(b,--journal-dir); the \
             budget resets whenever the shard answers a batch).")
  in
  let write_timeout_t =
    Arg.(
      value
      & opt int Serve.default_write_timeout_ms
      & info [ "write-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-write stall budget: a client whose socket cannot absorb a \
             response within $(docv) ms is evicted.")
  in
  let chaos_serve_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-serve" ] ~docv:"SEED"
          ~doc:
            "Enable seeded serve-layer fault injection: shard crashes, shard \
             hangs and torn response frames, decided statelessly from \
             $(docv) so runs replay exactly.")
  in
  let chaos_crash_t =
    Arg.(
      value & opt float 0.05
      & info [ "chaos-crash" ] ~docv:"RATE"
          ~doc:
            "With $(b,--chaos-serve): fraction of sub-batches whose shard \
             domain crashes (Transient — the supervisor restarts it from \
             the journal).")
  in
  let chaos_hang_t =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-hang" ] ~docv:"RATE"
          ~doc:
            "With $(b,--chaos-serve): fraction of sub-batches that hang \
             their shard until the armed $(b,--deadline-ms) fires.")
  in
  let chaos_torn_t =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-torn" ] ~docv:"RATE"
          ~doc:
            "With $(b,--chaos-serve): fraction of response frames torn on \
             the wire (first write only; the post-reconnect resend passes).")
  in
  let chaos_sticky_t =
    Arg.(
      value & opt int 1
      & info [ "chaos-sticky" ] ~docv:"N"
          ~doc:
            "With $(b,--chaos-serve): crash-fated sub-batches fail their \
             first $(docv) attempts, then succeed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve streaming anomaly detection over a socket: sharded \
          multi-session monitors on a shared compiled model, batched framed \
          ingest, bounded queues with honest backpressure, durable per-shard \
          journals.")
    Term.(
      const run $ verbose_t $ model_t $ socket_t $ tcp_t $ shards_t
      $ queue_capacity_t $ retry_after_t $ journal_dir_t $ resume_t
      $ deadline_t $ max_connections_t $ max_restarts_t $ write_timeout_t
      $ chaos_serve_t $ chaos_crash_t $ chaos_hang_t $ chaos_torn_t
      $ chaos_sticky_t $ threshold_t $ alarm_budget_t)

let serve_bench_cmd =
  let run verbose socket tcp ndjson sessions session_length rounds connections
      chunk batch_events inflight window anomaly_size anomalous_every seed
      train_len target_shard hold_open reconnect stall_ms incident_log json
      quit =
    setup_logging verbose;
    let address = address_of socket tcp in
    let target_shard =
      Option.map
        (fun s ->
          match String.index_opt s '/' with
          | Some i -> (
              let k = String.sub s 0 i in
              let n = String.sub s (i + 1) (String.length s - i - 1) in
              match (int_of_string_opt k, int_of_string_opt n) with
              | Some k, Some n when n > 0 && k >= 0 && k < n -> (k, n)
              | _ ->
                  Printf.eprintf "seqdiv: bad --target-shard %s (want K/N)\n" s;
                  exit 2)
          | None ->
              Printf.eprintf "seqdiv: bad --target-shard %s (want K/N)\n" s;
              exit 2)
        target_shard
    in
    let options =
      {
        Bench_client.address;
        encoding = (if ndjson then Frame.Ndjson else Frame.Binary);
        sessions;
        session_length;
        rounds;
        connections;
        chunk;
        batch_events;
        inflight;
        window;
        anomaly_size;
        anomalous_every;
        seed;
        train_len;
        target_shard;
        hold_open;
        reconnect;
        stall_ms;
        incident_log;
        json;
        quit;
      }
    in
    match Bench_client.run options with
    | () -> ()
    | exception Bench_client.Protocol_failure msg ->
        Printf.eprintf "seqdiv: serve-bench failed: %s\n" msg;
        exit 1
  in
  let ndjson_t =
    Arg.(
      value & flag
      & info [ "ndjson" ]
          ~doc:"Speak the newline-delimited JSON framing instead of binary.")
  in
  let sessions_t =
    Arg.(
      value & opt int 48
      & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent sessions per round.")
  in
  let session_length_t =
    Arg.(
      value & opt int 400
      & info [ "session-length" ] ~docv:"N" ~doc:"Symbols per session.")
  in
  let rounds_t =
    Arg.(
      value & opt int 1
      & info [ "rounds" ] ~docv:"N"
          ~doc:"Rounds of fresh sessions driven over the same corpus.")
  in
  let connections_t =
    Arg.(
      value & opt int 1
      & info [ "connections" ] ~docv:"N"
          ~doc:"Client connections; sessions are partitioned across them.")
  in
  let chunk_t =
    Arg.(
      value & opt int 64
      & info [ "chunk" ] ~docv:"N" ~doc:"Symbols per data event.")
  in
  let batch_events_t =
    Arg.(
      value & opt int 256
      & info [ "batch-events" ] ~docv:"N" ~doc:"Events per batch.")
  in
  let inflight_t =
    Arg.(
      value & opt int 8
      & info [ "inflight" ] ~docv:"N"
          ~doc:"Unacknowledged batches allowed per connection.")
  in
  let window_t =
    Arg.(
      value & opt int 6
      & info [ "window" ] ~docv:"DW"
          ~doc:"Detector window assumed for anomaly injection.")
  in
  let anomaly_size_t =
    Arg.(
      value & opt int 5
      & info [ "anomaly-size" ] ~docv:"AS" ~doc:"Injected anomaly size.")
  in
  let anomalous_every_t =
    Arg.(
      value & opt int 4
      & info [ "anomalous-every" ] ~docv:"K"
          ~doc:"Every $(docv)-th session carries an injected anomaly (0 = none).")
  in
  let target_shard_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "target-shard" ] ~docv:"K/N"
          ~doc:
            "Relabel session ids so every session routes to shard K of an \
             N-shard server — measures one shard's service rate in isolation.")
  in
  let hold_open_t =
    Arg.(
      value & flag
      & info [ "hold-open" ]
          ~doc:
            "Never send end-of-session: every driven session stays \
             resident in its shard table, so the sampled stats measure \
             loaded-table (resident-session) memory.")
  in
  let reconnect_t =
    Arg.(
      value & flag
      & info [ "reconnect" ]
          ~doc:
            "Survive a dying server: reconnect with retries and resend \
             unacknowledged batches (journalled shards re-acknowledge \
             duplicates without re-applying them).")
  in
  let stall_ms_t =
    Arg.(
      value & opt int 0
      & info [ "chaos-stall-ms" ] ~docv:"MS"
          ~doc:
            "Stalled-client chaos: connection 0 stops reading acks for \
             $(docv) ms halfway through its batches, provoking the \
             server's slow-client eviction (pair with $(b,--reconnect) \
             so the evicted connection resends its tail).")
  in
  let incident_log_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "incident-log" ] ~docv:"FILE"
          ~doc:
            "Write the collected incident events, grouped by session in \
             session order — byte-comparable across runs and shard counts.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write a JSON benchmark report.")
  in
  let quit_t =
    Arg.(
      value & flag
      & info [ "quit" ] ~doc:"Ask the server to shut down when done.")
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Drive a running $(b,seqdiv serve) with a synthetic session \
          workload over the socket and report throughput, latency and \
          per-shard service capacity.")
    Term.(
      const run $ verbose_t $ socket_t $ tcp_t $ ndjson_t $ sessions_t
      $ session_length_t $ rounds_t $ connections_t $ chunk_t $ batch_events_t
      $ inflight_t $ window_t $ anomaly_size_t $ anomalous_every_t $ seed_t
      $ train_len_t $ target_shard_t $ hold_open_t $ reconnect_t $ stall_ms_t
      $ incident_log_t $ json_t $ quit_t)

let serve_health_cmd =
  let run socket tcp ndjson drain =
    let address = address_of socket tcp in
    let encoding = if ndjson then Frame.Ndjson else Frame.Binary in
    match Bench_client.probe_health ~address ~encoding ~drain with
    | health, drained ->
        print_string (Frame.render_health health);
        Option.iter
          (fun batches -> Printf.printf "drained: %d batches applied\n" batches)
          drained
    | exception Bench_client.Protocol_failure msg ->
        Printf.eprintf "seqdiv: serve-health failed: %s\n" msg;
        exit 1
    | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "seqdiv: serve-health failed: %s\n"
          (Unix.error_message err);
        exit 1
  in
  let ndjson_t =
    Arg.(
      value & flag
      & info [ "ndjson" ]
          ~doc:"Speak the newline-delimited JSON framing instead of binary.")
  in
  let drain_t =
    Arg.(
      value & flag
      & info [ "drain" ]
          ~doc:
            "Also ask the server to drain: stop admitting new batches and \
             report once every shard queue has gone idle.")
  in
  Cmd.v
    (Cmd.info "serve-health"
       ~doc:
         "Probe a running $(b,seqdiv serve): per-shard liveness, restart \
          counts, degradation, queue depths and the adaptive retry hints.")
    Term.(const run $ socket_t $ tcp_t $ ndjson_t $ drain_t)

(* --- main -------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "seqdiv" ~version:"1.0.0"
      ~doc:
        "Reproduction of Tan & Maxion, 'The Effects of Algorithmic Diversity \
         on Anomaly Detector Performance' (DSN 2005)."
  in
  let group =
    Cmd.group info
      [
        synth_cmd; mfs_cmd; map_cmd; full_cmd; roc_cmd; ensemble_cmd; lnb_cmd;
        ablation_cmd; model_cmd; detect_cmd; dataset_cmd; compare_cmd;
        classify_cmd; serve_cmd; serve_bench_cmd; serve_health_cmd;
      ]
  in
  exit (Cmd.eval group)
