(* seqdiv-lint: static determinism & detector-contract checks.

   Usage: seqdiv_lint [--format text|json|sarif] [--baseline FILE]
                      [ROOT ...]                 (roots default to lib bin bench)

   Exit status 0 when no error-severity finding remains after baseline
   filtering, 1 on findings, 2 on usage errors (e.g. an unreadable
   root or unknown flag) — `dune build @lint` uses this as its CI
   gate. *)

let usage () =
  Format.eprintf
    "usage: seqdiv_lint [--format text|json|sarif] [--baseline FILE] [ROOT \
     ...]@.";
  exit 2

let () =
  let format = ref Seqdiv_analysis.Lint.Text in
  let baseline = ref None in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--format" :: value :: rest -> (
        match Seqdiv_analysis.Lint.format_of_string value with
        | Some f ->
            format := f;
            parse_args acc rest
        | None -> usage ())
    | [ "--format" ] -> usage ()
    | "--baseline" :: value :: rest ->
        baseline := Some value;
        parse_args acc rest
    | [ "--baseline" ] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' && arg.[1] = '-' ->
        usage ()
    | root :: rest -> parse_args (root :: acc) rest
  in
  let roots =
    match parse_args [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> [ "lib"; "bin"; "bench" ]
    | roots -> roots
  in
  let files =
    try Seqdiv_analysis.Lint.load_tree roots
    with Sys_error msg ->
      Format.eprintf "seqdiv-lint: %s@." msg;
      exit 2
  in
  let diags = Seqdiv_analysis.Rules.run files in
  let diags =
    match !baseline with
    | None -> diags
    | Some path -> (
        match Seqdiv_analysis.Lint.load_baseline path with
        | Some b -> Seqdiv_analysis.Baseline.filter b diags
        | None ->
            Format.eprintf "seqdiv-lint: baseline %s not found@." path;
            exit 2)
  in
  print_string
    (Seqdiv_analysis.Lint.render !format ~files:(List.length files) diags);
  exit (if Seqdiv_analysis.Lint.has_errors diags then 1 else 0)
