(* seqdiv-lint: static determinism & detector-contract checks.

   Usage: seqdiv_lint [ROOT ...]   (defaults to lib bin bench)

   Exit status 0 when no error-severity finding remains, 1 on
   findings, 2 on usage errors (e.g. an unreadable root) —
   `dune build @lint` uses this as its CI gate. *)

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "lib"; "bin"; "bench" ]
    | roots -> roots
  in
  let files =
    try Seqdiv_analysis.Lint.load_tree roots
    with Sys_error msg ->
      Format.eprintf "seqdiv-lint: %s@." msg;
      exit 2
  in
  let diags = Seqdiv_analysis.Rules.run files in
  Seqdiv_analysis.Lint.report Format.std_formatter ~files:(List.length files)
    diags;
  exit (if Seqdiv_analysis.Lint.has_errors diags then 1 else 0)
