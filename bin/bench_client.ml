(* serve-bench: the load generator and measurement client for `seqdiv
   serve`.  Builds Session_workload corpora, drives them over the
   socket as interleaved framed batches (a bounded in-flight window per
   connection, honouring backpressure rejections), collects the
   per-session incident log, samples the server's per-shard stats, and
   writes a machine-readable JSON report.

   Correctness features double as test hooks: --reconnect survives a
   SIGKILLed server by reconnecting and resending unacknowledged
   batches (acks are deduplicated per (batch, shard), so journalled
   re-acks merge cleanly), and --incident-log writes the deterministic
   per-session event log the serve smoke test diffs across kill/resume
   runs. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_util

type options = {
  address : Serve.address;
  encoding : Frame.encoding;
  sessions : int;  (* per round *)
  session_length : int;
  rounds : int;
  connections : int;
  chunk : int;  (* symbols per Data event *)
  batch_events : int;
  inflight : int;
  window : int;  (* anomaly injection window *)
  anomaly_size : int;
  anomalous_every : int;  (* every k-th session is an attack; 0 = none *)
  seed : int;
  train_len : int;  (* suite scale for corpus generation *)
  target_shard : (int * int) option;  (* (shard, of_shards) id filter *)
  hold_open : bool;  (* never send End_of_session: residency probe *)
  reconnect : bool;
  stall_ms : int;  (* connection 0 stops reading mid-run; 0 = off *)
  incident_log : string option;
  json : string option;
  quit : bool;
}

(* --- adaptive backoff ---------------------------------------------------- *)

(* Rejections and reconnects both honour the server's latest
   [retry_after_ms] hint via exponential backoff with deterministic
   seeded jitter: delay(attempt) = min(cap, hint * 2^attempt) *
   (0.5 + u) with u = Fault_plan.jitter over (seed, batch, attempt) —
   reproducible schedules, no thundering herd. *)

let backoff_cap_ms = 2000.0
let backoff_log_entries = 64

type backoff_entry = {
  bo_kind : string;  (* "reject" | "reconnect" *)
  bo_batch : int;  (* batch id, or reconnect ordinal *)
  bo_attempt : int;
  bo_delay_ms : float;
}

type backoff_log = {
  mutable bo_recent : backoff_entry list;  (* newest first, bounded *)
  mutable bo_count : int;
  mutable bo_total_ms : float;
}

let backoff_log () = { bo_recent = []; bo_count = 0; bo_total_ms = 0.0 }

let backoff_delay_ms ~seed ~hint_ms ~kind ~batch ~attempt =
  let base =
    Stdlib.min backoff_cap_ms
      (float_of_int (Stdlib.max 1 hint_ms) *. (2.0 ** float_of_int attempt))
  in
  let kind_tag = if kind = "reconnect" then 1 else 0 in
  let key =
    Int64.logxor
      (Int64.shift_left (Int64.of_int ((attempt lsl 1) lor kind_tag)) 32)
      (Int64.of_int batch)
  in
  base *. (0.5 +. Seqdiv_core.Fault_plan.jitter ~seed ~key)

let backoff_sleep log ~seed ~hint_ms ~kind ~batch ~attempt =
  let delay = backoff_delay_ms ~seed ~hint_ms ~kind ~batch ~attempt in
  log.bo_count <- log.bo_count + 1;
  log.bo_total_ms <- log.bo_total_ms +. delay;
  if log.bo_count <= backoff_log_entries then
    log.bo_recent <-
      { bo_kind = kind; bo_batch = batch; bo_attempt = attempt;
        bo_delay_ms = delay }
      :: log.bo_recent;
  Unix.sleepf (delay /. 1000.0)

(* --- corpus ------------------------------------------------------------- *)

(* Session ids: consecutive non-negative integers, or — when measuring
   one shard in isolation — the consecutive integers that route to the
   target shard, so the whole run lands on it by construction. *)
let session_ids ~count ~target =
  let ids = Array.make count 0 in
  let accept =
    match target with
    | None -> fun _ -> true
    | Some (shard, shards) -> fun c -> Frame.shard_of_session ~shards c = shard
  in
  let c = ref 0 in
  for i = 0 to count - 1 do
    while not (accept !c) do
      incr c
    done;
    ids.(i) <- !c;
    incr c
  done;
  ids

(* The per-round corpus: [sessions] traces, every [anomalous_every]-th
   one an attack session. *)
let build_corpus opts =
  let params =
    { (Suite.scaled_params ~train_len:opts.train_len ~background_len:3_000)
      with Suite.seed = opts.seed }
  in
  let suite = Suite.build params in
  let rng = Prng.create ~seed:(opts.seed + 9) in
  let n_anomalous =
    if opts.anomalous_every <= 0 then 0
    else opts.sessions / opts.anomalous_every
  in
  let n_normal = opts.sessions - n_anomalous in
  let normal =
    if n_normal = 0 then []
    else
      Sessions.traces
        (Session_workload.normal suite rng ~sessions:n_normal
           ~length:opts.session_length)
  in
  let anomalous =
    if n_anomalous = 0 then []
    else
      Sessions.traces
        (Session_workload.anomalous suite ~sessions:n_anomalous
           ~length:opts.session_length ~anomaly_size:opts.anomaly_size
           ~window:opts.window)
  in
  (* Interleave: attack sessions spread through the corpus rather than
     bunched at the end. *)
  let arr = Array.make opts.sessions [||] in
  let nq = Queue.create () and aq = Queue.create () in
  List.iter (fun t -> Queue.push (Trace.to_array t) nq) normal;
  List.iter (fun t -> Queue.push (Trace.to_array t) aq) anomalous;
  for i = 0 to opts.sessions - 1 do
    let from_attack =
      opts.anomalous_every > 0
      && i mod opts.anomalous_every = opts.anomalous_every - 1
      && not (Queue.is_empty aq)
    in
    arr.(i) <-
      (if from_attack then Queue.pop aq
       else if not (Queue.is_empty nq) then Queue.pop nq
       else Queue.pop aq)
  done;
  arr

(* --- batch plan --------------------------------------------------------- *)

(* Every batch a connection will send, in order.  Chunks of the
   connection's sessions are interleaved round-robin (many concurrent
   sessions per batch — the serving shape), each round's sessions are
   ended before the next round begins, and batch ids are globally
   unique across connections (conn + seq * connections). *)
let plan_batches opts ~corpus ~ids ~conn_index =
  let batches = ref [] and current = ref [] and current_n = ref 0 in
  let seq = ref 0 in
  let flush_batch () =
    if !current_n > 0 then begin
      let id = conn_index + (!seq * opts.connections) in
      incr seq;
      batches := Frame.Batch { id; events = List.rev !current } :: !batches;
      current := [];
      current_n := 0
    end
  in
  let push_event e =
    current := e :: !current;
    incr current_n;
    if !current_n >= opts.batch_events then flush_batch ()
  in
  for round = 0 to opts.rounds - 1 do
    let mine = ref [] in
    for i = opts.sessions - 1 downto 0 do
      if i mod opts.connections = conn_index then
        mine := (ids.((round * opts.sessions) + i), corpus.(i)) :: !mine
    done;
    let mine = !mine in
    let len = opts.session_length in
    let off = ref 0 in
    while !off < len do
      let k = Stdlib.min opts.chunk (len - !off) in
      List.iter
        (fun (gid, symbols) ->
          push_event
            (Frame.Data { session = gid; symbols = Array.sub symbols !off k }))
        mine;
      off := !off + k
    done;
    if not opts.hold_open then
      List.iter
        (fun (gid, _) -> push_event (Frame.End_of_session { session = gid }))
        mine
  done;
  flush_batch ();
  Array.of_list (List.rev !batches)

(* --- socket plumbing ---------------------------------------------------- *)

let connect_once address =
  match address with
  | Serve.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      fd
  | Serve.Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e -> Unix.close fd; raise e);
      fd

(* Retry until the server is there (startup) or back (kill/restart). *)
let connect_retry address ~budget_s =
  let deadline = Unix.gettimeofday () +. budget_s in
  let rec go () =
    match connect_once address with
    | fd -> fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        go ()
  in
  go ()

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

type link = {
  mutable fd : Unix.file_descr;
  mutable decoder : Frame.reader;
  rbuf : Bytes.t;
  ebuf : Buffer.t;
  encoding : Frame.encoding;
}

let link_connect address ~budget_s encoding =
  {
    fd = connect_retry address ~budget_s;
    decoder = Frame.reader ();
    rbuf = Bytes.create 65536;
    ebuf = Buffer.create 65536;
    encoding;
  }

let send_request link request =
  Buffer.clear link.ebuf;
  Frame.write_request link.ebuf link.encoding request;
  write_all link.fd (Buffer.to_bytes link.ebuf)

(* One response, or None when the connection died under us. *)
let recv_response link =
  let rec go () =
    match Frame.next_response link.decoder with
    | Some response -> Some response
    | None -> (
        match Unix.read link.fd link.rbuf 0 (Bytes.length link.rbuf) with
        | 0 -> None
        | n ->
            Frame.feed_bytes link.decoder link.rbuf ~pos:0 ~len:n;
            go ()
        | exception
            Unix.Unix_error
              ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
            None)
  in
  go ()

exception Protocol_failure of string

(* --- the per-connection drive loop -------------------------------------- *)

type conn_result = {
  cr_events : int;
  cr_symbols : int;
  cr_batches : int;
  cr_rejections : int;
  cr_failures : int;
  cr_reconnects : int;
  cr_started : float;
  cr_finished : float;
  cr_incidents : (int, Frame.incident_event list) Hashtbl.t;
      (* session -> events, newest first *)
  cr_backoff : backoff_log;
}

type pending = {
  p_request : Frame.request;
  p_events : int;
  mutable p_acked_events : int;
  mutable p_rejects : int;  (* backoff attempt counter for this batch *)
  p_acked_shards : (int, unit) Hashtbl.t;
}

let events_of_batch = function
  | Frame.Batch { events; _ } -> List.length events
  | Frame.Stats_request | Frame.Health_request | Frame.Drain_request
  | Frame.Quit ->
      0

let symbols_of_batch = function
  | Frame.Batch { events; _ } ->
      List.fold_left
        (fun acc e ->
          match e with
          | Frame.Data { symbols; _ } -> acc + Array.length symbols
          | Frame.End_of_session _ -> acc)
        0 events
  | Frame.Stats_request | Frame.Health_request | Frame.Drain_request
  | Frame.Quit ->
      0

let drive_connection opts (conn_index, batches) =
  let link =
    link_connect opts.address ~budget_s:15.0 opts.encoding
  in
  let incidents : (int, Frame.incident_event list) Hashtbl.t =
    Hashtbl.create 256
  in
  let pending : (int, pending) Hashtbl.t = Hashtbl.create 64 in
  let rejections = ref 0 and failures = ref 0 and reconnects = ref 0 in
  let next = ref 0 in
  let done_batches = ref 0 in
  let nbatches = Array.length batches in
  let backoff = backoff_log () in
  let last_hint = ref 50 in
  let stalled = ref false in
  let started = Unix.gettimeofday () in
  let record_incidents events =
    List.iter
      (fun (ev : Frame.incident_event) ->
        let session =
          match ev with
          | Frame.Opened { session; _ } | Frame.Closed { session; _ } -> session
        in
        Hashtbl.replace incidents session
          (ev :: Option.value ~default:[] (Hashtbl.find_opt incidents session)))
      events
  in
  let send_batch request =
    (match request with
    | Frame.Batch { id; events } ->
        if not (Hashtbl.mem pending id) then
          Hashtbl.replace pending id
            {
              p_request = request;
              p_events = List.length events;
              p_acked_events = 0;
              p_rejects = 0;
              p_acked_shards = Hashtbl.create 4;
            }
    | Frame.Stats_request | Frame.Health_request | Frame.Drain_request
    | Frame.Quit ->
        ());
    send_request link request
  in
  let resend_pending () =
    (* After a reconnect: every batch with an outstanding shard ack goes
       again, ids unchanged, lowest first.  Shards that already applied
       them re-ack from their journal history without re-applying. *)
    Hashtbl.fold (fun id _ acc -> id :: acc) pending []
    |> List.sort compare
    |> List.iter (fun id -> send_request link (Hashtbl.find pending id).p_request)
  in
  let handle_death () =
    if not opts.reconnect then
      raise (Protocol_failure "server connection lost (no --reconnect)");
    incr reconnects;
    (* Hint-honouring exponential reconnect: the same backoff schedule
       rejections use, seeded off the reconnect ordinal. *)
    let deadline = Unix.gettimeofday () +. 60.0 in
    let attempt = ref 0 in
    let rec go () =
      backoff_sleep backoff ~seed:opts.seed ~hint_ms:!last_hint
        ~kind:"reconnect" ~batch:!reconnects ~attempt:!attempt;
      (try Unix.close link.fd with Unix.Unix_error _ -> ());
      match connect_once opts.address with
      | fd ->
          link.fd <- fd;
          link.decoder <- Frame.reader ()
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _)
        when Unix.gettimeofday () < deadline ->
          incr attempt;
          go ()
    in
    go ();
    resend_pending ()
  in
  while !done_batches < nbatches do
    while !next < nbatches && Hashtbl.length pending < opts.inflight do
      send_batch batches.(!next);
      incr next
    done;
    (* Stalled-client chaos: connection 0 stops reading acks for
       [stall_ms] halfway through.  The server's slow-client protection
       evicts it; --reconnect then resends the unacknowledged tail. *)
    if
      opts.stall_ms > 0 && conn_index = 0 && (not !stalled)
      && 2 * !done_batches >= nbatches
    then begin
      stalled := true;
      Unix.sleepf (float_of_int opts.stall_ms /. 1000.0)
    end;
    match recv_response link with
    | None -> handle_death ()
    | Some (Frame.Ack { id; shard; events; incidents = evs }) -> (
        match Hashtbl.find_opt pending id with
        | None -> () (* late duplicate of a completed batch *)
        | Some p ->
            if not (Hashtbl.mem p.p_acked_shards shard) then begin
              Hashtbl.replace p.p_acked_shards shard ();
              p.p_acked_events <- p.p_acked_events + events;
              record_incidents evs;
              if p.p_acked_events >= p.p_events then begin
                Hashtbl.remove pending id;
                incr done_batches
              end
            end)
    | Some (Frame.Rejected { id; retry_after_ms }) -> (
        match Hashtbl.find_opt pending id with
        | None -> ()
        | Some p ->
            incr rejections;
            last_hint := retry_after_ms;
            backoff_sleep backoff ~seed:opts.seed ~hint_ms:retry_after_ms
              ~kind:"reject" ~batch:id ~attempt:p.p_rejects;
            p.p_rejects <- p.p_rejects + 1;
            send_request link p.p_request)
    | Some (Frame.Failed { id; shard; events; reason }) -> (
        Printf.eprintf "serve-bench: batch %d failed on shard %d: %s\n%!" id
          shard reason;
        incr failures;
        (* A Failed covers only the named shard's slice: account its
           events like an ack so the other shards' acks for the same
           batch still count. *)
        match Hashtbl.find_opt pending id with
        | None -> ()
        | Some p ->
            if not (Hashtbl.mem p.p_acked_shards shard) then begin
              Hashtbl.replace p.p_acked_shards shard ();
              p.p_acked_events <- p.p_acked_events + events;
              if p.p_acked_events >= p.p_events then begin
                Hashtbl.remove pending id;
                incr done_batches
              end
            end)
    | Some (Frame.Stats _ | Frame.Health _ | Frame.Drained _) ->
        () (* unsolicited; ignore *)
    | Some (Frame.Error_msg msg) ->
        raise (Protocol_failure ("server error: " ^ msg))
  done;
  let finished = Unix.gettimeofday () in
  (try Unix.close link.fd with Unix.Unix_error _ -> ());
  let events = Array.fold_left (fun a b -> a + events_of_batch b) 0 batches in
  let symbols = Array.fold_left (fun a b -> a + symbols_of_batch b) 0 batches in
  {
    cr_events = events;
    cr_symbols = symbols;
    cr_batches = nbatches;
    cr_rejections = !rejections;
    cr_failures = !failures;
    cr_reconnects = !reconnects;
    cr_started = started;
    cr_finished = finished;
    cr_incidents = incidents;
    cr_backoff = backoff;
  }

(* --- control connection: stats, health and quit -------------------------- *)

let fetch_stats opts =
  let link = link_connect opts.address ~budget_s:15.0 opts.encoding in
  send_request link Frame.Stats_request;
  let stats =
    match recv_response link with
    | Some (Frame.Stats shards) -> shards
    | Some _ | None ->
        raise (Protocol_failure "no stats response from server")
  in
  send_request link Frame.Health_request;
  let health =
    match recv_response link with
    | Some (Frame.Health h) -> h
    | Some _ | None ->
        raise (Protocol_failure "no health response from server")
  in
  if opts.quit then send_request link Frame.Quit;
  (* Wait for the orderly shutdown (EOF) so scripts can rely on the
     server being gone when serve-bench exits. *)
  if opts.quit then
    while recv_response link <> None do
      ()
    done;
  (try Unix.close link.fd with Unix.Unix_error _ -> ());
  (stats, health)

(* Standalone probe for `seqdiv serve-health`: one Health_request,
   optionally followed by a drain handshake (Drain_request, then wait
   for Drained once every shard queue has gone idle). *)
let probe_health ~address ~encoding ~drain =
  let link = link_connect address ~budget_s:15.0 encoding in
  send_request link Frame.Health_request;
  let health =
    match recv_response link with
    | Some (Frame.Health h) -> h
    | Some _ | None ->
        raise (Protocol_failure "no health response from server")
  in
  let drained =
    if not drain then None
    else begin
      send_request link Frame.Drain_request;
      match recv_response link with
      | Some (Frame.Drained { batches }) -> Some batches
      | Some _ | None ->
          raise (Protocol_failure "no drained response from server")
    end
  in
  (try Unix.close link.fd with Unix.Unix_error _ -> ());
  (health, drained)

(* --- reports ------------------------------------------------------------ *)

let write_incident_log path results =
  let oc = open_out path in
  let merged = Hashtbl.create 1024 in
  List.iter
    (fun r ->
      Hashtbl.iter
        (fun session evs -> Hashtbl.replace merged session (List.rev evs))
        r.cr_incidents)
    results;
  Hashtbl.fold (fun session _ acc -> session :: acc) merged []
  |> List.sort compare
  |> List.iter (fun session ->
         List.iter
           (fun ev ->
             output_string oc (Frame.render_incident_event ev);
             output_char oc '\n')
           (Hashtbl.find merged session));
  close_out oc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path opts ~results ~stats ~health ~wall ~events ~symbols =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"serve-bench\",\n";
  out "  \"options\": {\n";
  out "    \"sessions\": %d,\n" opts.sessions;
  out "    \"session_length\": %d,\n" opts.session_length;
  out "    \"rounds\": %d,\n" opts.rounds;
  out "    \"connections\": %d,\n" opts.connections;
  out "    \"chunk\": %d,\n" opts.chunk;
  out "    \"batch_events\": %d,\n" opts.batch_events;
  out "    \"inflight\": %d,\n" opts.inflight;
  out "    \"encoding\": \"%s\",\n"
    (match opts.encoding with Frame.Binary -> "binary" | Frame.Ndjson -> "ndjson");
  (match opts.target_shard with
  | None -> out "    \"target_shard\": null,\n"
  | Some (k, n) -> out "    \"target_shard\": \"%d/%d\",\n" k n);
  out "    \"hold_open\": %b,\n" opts.hold_open;
  out "    \"stall_ms\": %d,\n" opts.stall_ms;
  out "    \"seed\": %d\n" opts.seed;
  out "  },\n";
  out "  \"machine\": {\n";
  out "    \"hostname\": \"%s\",\n" (json_escape (Unix.gethostname ()));
  out "    \"cores\": %d\n" (Pool.recommended_jobs ());
  out "  },\n";
  let rejections = List.fold_left (fun a r -> a + r.cr_rejections) 0 results in
  let failures = List.fold_left (fun a r -> a + r.cr_failures) 0 results in
  let reconnects = List.fold_left (fun a r -> a + r.cr_reconnects) 0 results in
  out "  \"aggregate\": {\n";
  out "    \"events\": %d,\n" events;
  out "    \"symbols\": %d,\n" symbols;
  out "    \"wall_seconds\": %.6f,\n" wall;
  out "    \"events_per_sec\": %.1f,\n" (float_of_int events /. wall);
  out "    \"symbols_per_sec\": %.1f,\n" (float_of_int symbols /. wall);
  out "    \"rejections\": %d,\n" rejections;
  out "    \"failed_batches\": %d,\n" failures;
  out "    \"reconnects\": %d\n" reconnects;
  out "  },\n";
  let bo_count = List.fold_left (fun a r -> a + r.cr_backoff.bo_count) 0 results
  and bo_total =
    List.fold_left (fun a r -> a +. r.cr_backoff.bo_total_ms) 0.0 results
  in
  let bo_recent =
    List.concat_map (fun r -> List.rev r.cr_backoff.bo_recent) results
  in
  out "  \"backoff\": {\n";
  out "    \"count\": %d,\n" bo_count;
  out "    \"total_ms\": %.3f,\n" bo_total;
  out "    \"recent\": [\n";
  List.iteri
    (fun i e ->
      out
        "      { \"kind\": \"%s\", \"batch\": %d, \"attempt\": %d, \
         \"delay_ms\": %.3f }%s\n"
        e.bo_kind e.bo_batch e.bo_attempt e.bo_delay_ms
        (if i = List.length bo_recent - 1 then "" else ","))
    bo_recent;
  out "    ]\n";
  out "  },\n";
  out "  \"health\": {\n";
  out "    \"connections\": %d,\n" health.Frame.connections;
  out "    \"evictions\": %d,\n" health.Frame.evictions;
  out "    \"draining\": %b,\n" health.Frame.draining;
  out "    \"shards\": [\n";
  List.iteri
    (fun i (h : Frame.shard_health) ->
      out
        "      { \"shard\": %d, \"alive\": %b, \"degraded\": %b, \
         \"restarts\": %d, \"queue_depth\": %d, \"retry_after_ms\": %d }%s\n"
        h.Frame.h_shard h.Frame.h_alive h.Frame.h_degraded h.Frame.h_restarts
        h.Frame.h_queue_depth h.Frame.h_retry_after_ms
        (if i = List.length health.Frame.shards_health - 1 then "" else ","))
    health.Frame.shards_health;
  out "    ]\n";
  out "  },\n";
  (* Capacity: per-shard service rate from the server's own busy-time
     accounting (events / seconds actually spent applying batches),
     summed.  Unlike the wall-clock aggregate it is not limited by the
     client or by core count, so it is the number the shard-scaling
     acceptance gate reads on single-core machines; the isolated
     per-shard phase runs in scripts/serve_bench.sh cross-check it. *)
  let busy_sec s = float_of_int s.Frame.busy_ns /. 1e9 in
  let capacity =
    List.fold_left
      (fun acc s ->
        if s.Frame.busy_ns = 0 then acc
        else acc +. (float_of_int s.Frame.events /. busy_sec s))
      0.0 stats
  in
  out "  \"capacity\": {\n";
  out "    \"events_per_busy_sec\": %.1f\n" capacity;
  out "  },\n";
  out "  \"shards\": [\n";
  List.iteri
    (fun i (s : Frame.shard_stats) ->
      out
        "    { \"shard\": %d, \"sessions_resident\": %d, \"events\": %d, \
         \"symbols\": %d, \"batches\": %d, \"rejected\": %d, \
         \"queue_depth\": %d, \"bytes_resident\": %d, \"busy_ns\": %d, \
         \"p50_batch_ns\": %d, \"p99_batch_ns\": %d, \"restarts\": %d, \
         \"degraded\": %b, \"retry_after_ms\": %d }%s\n"
        s.Frame.shard s.Frame.sessions_resident s.Frame.events s.Frame.symbols
        s.Frame.batches s.Frame.rejected s.Frame.queue_depth
        s.Frame.bytes_resident s.Frame.busy_ns s.Frame.p50_batch_ns
        s.Frame.p99_batch_ns s.Frame.restarts s.Frame.degraded
        s.Frame.retry_after_ms
        (if i = List.length stats - 1 then "" else ","))
    stats;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- entry point -------------------------------------------------------- *)

let run opts =
  let corpus = build_corpus opts in
  let total_sessions = opts.sessions * opts.rounds in
  let ids = session_ids ~count:total_sessions ~target:opts.target_shard in
  let plans =
    List.init opts.connections (fun conn_index ->
        plan_batches opts ~corpus ~ids ~conn_index)
  in
  let pool = Pool.create ~jobs:opts.connections () in
  let results =
    Pool.map pool (drive_connection opts)
      (List.mapi (fun conn_index b -> (conn_index, b)) plans)
  in
  let started =
    List.fold_left (fun a r -> Stdlib.min a r.cr_started) Float.max_float
      results
  in
  let finished =
    List.fold_left (fun a r -> Stdlib.max a r.cr_finished) 0.0 results
  in
  let wall = Stdlib.max (finished -. started) 1e-9 in
  let events = List.fold_left (fun a r -> a + r.cr_events) 0 results in
  let symbols = List.fold_left (fun a r -> a + r.cr_symbols) 0 results in
  let stats, health = fetch_stats opts in
  Option.iter (fun path -> write_incident_log path results) opts.incident_log;
  Printf.printf
    "drove %d events (%d symbols) over %d connection(s) in %.3f s: %.0f \
     events/sec\n"
    events symbols opts.connections wall
    (float_of_int events /. wall);
  List.iter
    (fun (s : Frame.shard_stats) ->
      Printf.printf
        "shard %d: %d events, %d sessions resident, %d KiB resident, p50 %d \
         us, p99 %d us, busy %.3f s%s\n"
        s.Frame.shard s.Frame.events s.Frame.sessions_resident
        (s.Frame.bytes_resident / 1024)
        (s.Frame.p50_batch_ns / 1000)
        (s.Frame.p99_batch_ns / 1000)
        (float_of_int s.Frame.busy_ns /. 1e9)
        (if s.Frame.rejected > 0 then
           Printf.sprintf " (%d rejections)" s.Frame.rejected
         else ""))
    stats;
  List.iter
    (fun (h : Frame.shard_health) ->
      if h.Frame.h_degraded || h.Frame.h_restarts > 0 then
        Printf.printf "shard %d: %s, %d restart(s)\n" h.Frame.h_shard
          (if h.Frame.h_degraded then "DEGRADED" else "recovered")
          h.Frame.h_restarts)
    health.Frame.shards_health;
  if health.Frame.evictions > 0 then
    Printf.printf "server evicted %d slow client connection(s)\n"
      health.Frame.evictions;
  Option.iter
    (fun path ->
      write_json path opts ~results ~stats ~health ~wall ~events ~symbols)
    opts.json
