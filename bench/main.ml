(* Benchmark harness: regenerates every figure and table of the paper
   (DESIGN.md section 3) and then runs one Bechamel micro-benchmark per
   experiment kernel.

   Usage: dune exec bench/main.exe -- [--full] [--train-len N]
            [--background-len N] [--deploy-len N] [--no-micro]
            [--csv-dir DIR] [-j N | --jobs N] [--trace] [--json FILE]

   By default a reduced scale is used (150k training elements); --full
   switches to the paper's 1M-element training stream.  The map shapes
   are identical at both scales (DESIGN.md section 4).
   --background-len sets the injected test streams' background length
   (default 8000).  --jobs N runs detector training/scoring on N worker
   domains (results are byte-identical for every N); --trace prints the
   engine's per-stage timers to stderr; --json FILE additionally writes
   machine-readable per-stage timings and map summaries. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_report

type options = {
  train_len : int;
  background_len : int;
  deploy_len : int;
  micro : bool;
  grid_only : bool;
  streaming : bool;
  adaptive : bool;
  csv_dir : string option;
  jobs : int;
  trace : bool;
  json : string option;
  chaos : float; (* transient fault-injection rate; 0 = supervision idle *)
  chaos_fatal : float;
  chaos_hang : float;
  chaos_seed : int;
  deadline_ms : int option;
}

let default_options =
  {
    train_len = 150_000;
    background_len = 8_000;
    deploy_len = 30_000;
    micro = true;
    grid_only = false;
    streaming = false;
    adaptive = false;
    csv_dir = None;
    jobs = 1;
    trace = false;
    json = None;
    chaos = 0.0;
    chaos_fatal = 0.0;
    chaos_hang = 0.0;
    chaos_seed = 7;
    deadline_ms = None;
  }

let parse_options () =
  let rec go acc = function
    | [] -> acc
    | "--full" :: rest -> go { acc with train_len = 1_000_000 } rest
    | "--train-len" :: v :: rest ->
        go { acc with train_len = int_of_string v } rest
    | "--background-len" :: v :: rest ->
        go { acc with background_len = int_of_string v } rest
    | "--deploy-len" :: v :: rest ->
        go { acc with deploy_len = int_of_string v } rest
    | "--no-micro" :: rest -> go { acc with micro = false } rest
    | "--grid-only" :: rest -> go { acc with grid_only = true; micro = false } rest
    | "--streaming" :: rest -> go { acc with streaming = true; micro = false } rest
    | "--adaptive" :: rest -> go { acc with adaptive = true; micro = false } rest
    | "--csv-dir" :: v :: rest -> go { acc with csv_dir = Some v } rest
    | ("-j" | "--jobs") :: v :: rest ->
        let jobs = int_of_string v in
        let jobs =
          if jobs <= 0 then Seqdiv_util.Pool.recommended_jobs () else jobs
        in
        go { acc with jobs } rest
    | "--trace" :: rest -> go { acc with trace = true } rest
    | "--json" :: v :: rest -> go { acc with json = Some v } rest
    | "--chaos" :: rest -> go { acc with chaos = 0.05 } rest
    | "--chaos-rate" :: v :: rest ->
        go { acc with chaos = float_of_string v } rest
    | "--chaos-fatal" :: v :: rest ->
        go { acc with chaos_fatal = float_of_string v } rest
    | "--chaos-hang" :: v :: rest ->
        go { acc with chaos_hang = float_of_string v } rest
    | "--chaos-seed" :: v :: rest ->
        go { acc with chaos_seed = int_of_string v } rest
    | "--deadline-ms" :: v :: rest ->
        go { acc with deadline_ms = Some (int_of_string v) } rest
    | arg :: _ ->
        prerr_endline ("unknown argument: " ^ arg);
        exit 2
  in
  let opts = go default_options (List.tl (Array.to_list Sys.argv)) in
  (match opts.deadline_ms with
  | Some ms when ms <= 0 ->
      prerr_endline "--deadline-ms must be positive";
      exit 2
  | _ -> ());
  (* A hang-fated task only terminates when a deadline watchdog is
     armed around it: refuse the combination that would truly hang. *)
  if opts.chaos_hang > 0.0 && opts.deadline_ms = None then begin
    prerr_endline "--chaos-hang requires --deadline-ms";
    exit 2
  end;
  opts

let chaos_plan opts =
  if opts.chaos > 0.0 || opts.chaos_fatal > 0.0 || opts.chaos_hang > 0.0 then
    Some
      (Fault_plan.of_seed ~transient_rate:opts.chaos
         ~fatal_rate:opts.chaos_fatal ~hang_rate:opts.chaos_hang
         ~seed:opts.chaos_seed ())
  else None

let section title = Printf.printf "\n=== %s ===\n%!" title

(* Every [timed] section is also recorded here so --json can replay the
   stage timings machine-readably. *)
let stages : (string * float) list ref = ref []

(* Scalar measurements (allocation rates, node counts) for --json. *)
let measurements : (string * float) list ref = ref []

let measure label value =
  measurements := (label, value) :: !measurements;
  Printf.printf "%s: %.3f\n%!" label value

let timed label f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let dt = Unix.gettimeofday () -. t0 in
  stages := (label, dt) :: !stages;
  Printf.printf "[%s: %.2fs]\n%!" label dt;
  result

let figure_order maps =
  (* The paper presents L&B (Fig 3), Markov (Fig 4), Stide (Fig 5),
     NN (Fig 6). *)
  let find name =
    List.find (fun m -> Performance_map.detector m = name) maps
  in
  [
    ("Figure 3", find "lnb");
    ("Figure 4", find "markov");
    ("Figure 5", find "stide");
    ("Figure 6", find "nn");
  ]

let write_csvs maps dir =
  List.iter
    (fun m ->
      let path =
        Filename.concat dir
          (Printf.sprintf "map_%s.csv" (Performance_map.detector m))
      in
      Csv.write_file path
        ~header:
          [ "detector"; "anomaly_size"; "window"; "outcome"; "max_response" ]
        (Csv.map_rows m);
      Printf.printf "wrote %s\n" path)
    maps

(* Minor-heap words allocated per window lookup: the trie cursor descends
   over the raw trace array and must allocate nothing, while the legacy
   path builds one Trace.key string per window.  Run on the calling
   domain with warm code; 10k lookups average out GC noise. *)
let measure_lookup_allocation training trie =
  let width = Stdlib.min 8 (Seq_trie.max_len trie) in
  let data = Trace.raw training in
  let starts = Trace.window_count training ~width in
  let hash_db =
    let tbl = Hashtbl.create 4096 in
    Trace.iter_windows training ~width (fun pos ->
        let k = Trace.key training ~pos ~len:width in
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)));
    tbl
  in
  let iters = Stdlib.min 10_000 starts in
  let per_lookup f =
    let before = Gc.minor_words () in
    for i = 0 to iters - 1 do
      f (i mod starts)
    done;
    (Gc.minor_words () -. before) /. float_of_int iters
  in
  let trie_alloc =
    per_lookup (fun pos -> ignore (Seq_trie.count_at trie data ~pos ~len:width))
  in
  let hash_alloc =
    per_lookup (fun pos ->
        ignore (Hashtbl.find_opt hash_db (Trace.key training ~pos ~len:width)))
  in
  measure "A5_alloc_words_per_trie_lookup" trie_alloc;
  measure "A5_alloc_words_per_hash_lookup" hash_alloc

(* --- full-grid macro benchmark (--grid-only) --------------------------- *)

(* The perf-trajectory kernel tracked by scripts/bench.sh: the whole
   (AS x DW) grid for the sequence-database detectors whose train/score
   hot paths this repo optimises.  Engine train/score stage timings are
   the figures of merit; map summaries double as a correctness probe
   (the optimised paths must not move a single cell). *)
let run_grid opts engine =
  let params =
    Suite.scaled_params ~train_len:opts.train_len
      ~background_len:opts.background_len
  in
  section "Full-grid macro benchmark (stide, tstide, markov)";
  let suite = timed "suite build" (fun () -> Suite.build params) in
  let detectors = List.map Registry.find_exn [ "stide"; "tstide"; "markov" ] in
  let maps =
    timed "grid maps" (fun () -> Experiment.all_maps ~engine suite detectors)
  in
  List.iter
    (fun m ->
      let s = Experiment.summary m in
      Printf.printf "%s: capable %d, weak %d, blind %d\n" s.Experiment.detector
        s.Experiment.capable s.Experiment.weak s.Experiment.blind)
    maps;
  measure_lookup_allocation suite.Suite.training
    (Ngram_index.trie suite.Suite.index);
  (suite, maps)

(* --- streaming throughput (--streaming) -------------------------------- *)

(* The PR-7 figure of merit: per-symbol scoring throughput of the
   compiled flat automaton (one table read + one score read per symbol)
   against the reference trie descent (a fresh O(window) walk per
   completed window).  Both kernels fold their scores into a float
   accumulator, so the work cannot be optimised away; whole-stream
   passes repeat until each kernel has run for a fixed wall-clock
   budget. *)
let run_streaming opts =
  section "Streaming throughput (trie descent vs compiled automaton)";
  let params =
    Suite.scaled_params ~train_len:opts.train_len
      ~background_len:opts.background_len
  in
  let suite = timed "suite build" (fun () -> Suite.build params) in
  let stream =
    Deployment.deployment_stream suite
      ~len:(Stdlib.max 100_000 opts.deploy_len)
      ~seed:(params.Suite.seed + 3)
  in
  let data = Trace.raw stream in
  let n = Array.length data in
  Printf.printf "stream: %d symbols, alphabet %d\n%!" n
    params.Suite.alphabet_size;
  let rate_of ~min_seconds pass =
    ignore (pass ());
    (* warm caches and code *)
    let t0 = Unix.gettimeofday () in
    let passes = ref 0 in
    let sink = ref 0.0 in
    while Unix.gettimeofday () -. t0 < min_seconds do
      sink := !sink +. pass ();
      incr passes
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if Float.is_nan !sink then Printf.printf "(unreachable)\n";
    if Sys.getenv_opt "SEQDIV_BENCH_DEBUG" <> None then
      Printf.printf "  [debug: %d passes in %.3fs]\n%!" !passes dt;
    float_of_int !passes *. float_of_int n /. dt
  in
  List.iter
    (fun window ->
      let trained =
        Trained.train (Registry.find_exn "stide") ~window suite.Suite.training
      in
      let scorer =
        match Trained.compile trained with
        | Some s -> s
        | None -> failwith "stide must compile"
      in
      let auto = Flat_automaton.automaton scorer in
      let compiled = Trained.with_scorer trained scorer in
      (* Reference: the detector's own per-window trie descent (batch). *)
      let trie_pass () =
        let r = Trained.score trained stream in
        Array.fold_left
          (fun acc (it : Response.item) -> acc +. it.Response.score)
          0.0 r.Response.items
      in
      (* Compiled batch: same Response materialisation, automaton core. *)
      let batch_pass () =
        let r = Trained.score compiled stream in
        Array.fold_left
          (fun acc (it : Response.item) -> acc +. it.Response.score)
          0.0 r.Response.items
      in
      (* Pure stream: the Online-monitor inner loop — step + score per
         symbol, no response array at all. *)
      let stream_pass () =
        let acc = ref 0.0 in
        let state = ref Flat_automaton.start in
        for i = 0 to n - 1 do
          state := Flat_automaton.step auto !state (Array.unsafe_get data i);
          acc := !acc +. Flat_automaton.state_score scorer !state
        done;
        !acc
      in
      let trie = rate_of ~min_seconds:0.5 trie_pass in
      let batch = rate_of ~min_seconds:0.5 batch_pass in
      let streamed = rate_of ~min_seconds:0.5 stream_pass in
      measure (Printf.sprintf "streaming_trie_sym_per_sec_w%d" window) trie;
      measure
        (Printf.sprintf "streaming_compiled_batch_sym_per_sec_w%d" window)
        batch;
      measure
        (Printf.sprintf "streaming_automaton_sym_per_sec_w%d" window)
        streamed;
      measure
        (Printf.sprintf "streaming_speedup_w%d" window)
        (streamed /. trie))
    [ 4; 8; 12 ]

(* --- adaptive vs static thresholding under drift ----------------------- *)

(* The serve layer's headline question, answered offline: calibrate a
   static threshold on a pre-drift calibration corpus at the budgeted
   tail, then let the generating process drift and compare the observed
   false-alarm rate of (a) that frozen threshold against (b) the
   per-session adaptive controllers the serve layer runs.  The static
   rate walks away from the budget with the drift; the adaptive one
   re-tracks it.  All measurements land in the --json report. *)
let run_adaptive opts =
  section "Adaptive vs static thresholding under drift";
  let params =
    Suite.scaled_params ~train_len:opts.train_len
      ~background_len:opts.background_len
  in
  let suite = timed "suite build" (fun () -> Suite.build params) in
  (* Markov, not stide: a graded score distribution (1 - transition
     probability) has real tail quantiles; stide's {0,1} scores don't. *)
  let window = 6 in
  let trained =
    Trained.train (Registry.find_exn "markov") ~window suite.Suite.training
  in
  let scorer =
    match Trained.compile trained with
    | Some s -> s
    | None -> failwith "markov (maximum likelihood) must compile"
  in
  let auto = Flat_automaton.automaton scorer in
  let depth = Flat_automaton.depth auto in
  let iter_scores trace f =
    let data = Trace.raw trace in
    let state = ref Flat_automaton.start in
    Array.iteri
      (fun i s ->
        state := Flat_automaton.step auto !state s;
        if i >= depth - 1 then f (Flat_automaton.state_score scorer !state))
      data
  in
  let sessions = 48 and length = 4_000 in
  let calibration =
    Session_workload.normal suite
      (Seqdiv_util.Prng.create ~seed:(params.Suite.seed + 11))
      ~sessions:16 ~length
  in
  let drifting =
    Session_workload.drifting suite
      (Seqdiv_util.Prng.create ~seed:(params.Suite.seed + 12))
      ~sessions ~length ~segments:4 ~peak_deviation:0.25
  in
  Printf.printf "drifting corpus: %d sessions x %d symbols, window %d\n%!"
    sessions length window;
  List.iter
    (fun budget ->
      (* Static: the (1 - budget) score quantile of the calibration
         corpus, frozen for the whole drifting run. *)
      let sketch = Quantile.create ~epsilon:(budget /. 4.0) in
      List.iter
        (fun trace -> iter_scores trace (Quantile.observe sketch))
        (Sessions.traces calibration);
      let static_threshold = Quantile.quantile sketch (1.0 -. budget) in
      let static_windows = ref 0 and static_alarms = ref 0 in
      timed (Printf.sprintf "static sweep b=%g" budget) (fun () ->
          List.iter
            (fun trace ->
              iter_scores trace (fun score ->
                  incr static_windows;
                  (* Strict [>] matches the adaptive controller's alarm
                     rule, so the two sweeps differ only in whether the
                     threshold moves. *)
                  if score > static_threshold then incr static_alarms))
            (Sessions.traces drifting));
      (* Adaptive: one controller per session, exactly what a serve
         monitor owns under --alarm-budget. *)
      let adaptive_windows = ref 0 and adaptive_alarms = ref 0 in
      timed (Printf.sprintf "adaptive sweep b=%g" budget) (fun () ->
          List.iter
            (fun trace ->
              let controller =
                Adaptive_threshold.create
                  (Adaptive_threshold.config ~budget
                     ~initial:static_threshold ())
              in
              iter_scores trace (fun score ->
                  ignore (Adaptive_threshold.step controller score));
              adaptive_windows :=
                !adaptive_windows + Adaptive_threshold.windows controller;
              adaptive_alarms :=
                !adaptive_alarms + Adaptive_threshold.alarms controller)
            (Sessions.traces drifting));
      let rate alarms windows =
        if windows = 0 then 0.0
        else float_of_int alarms /. float_of_int windows
      in
      let static_rate = rate !static_alarms !static_windows in
      let adaptive_rate = rate !adaptive_alarms !adaptive_windows in
      measure (Printf.sprintf "adaptive_b%g_static_threshold" budget)
        static_threshold;
      measure (Printf.sprintf "adaptive_b%g_static_alarm_rate" budget)
        static_rate;
      measure (Printf.sprintf "adaptive_b%g_adaptive_alarm_rate" budget)
        adaptive_rate;
      measure
        (Printf.sprintf "adaptive_b%g_static_budget_error" budget)
        (Float.abs (static_rate -. budget) /. budget);
      measure
        (Printf.sprintf "adaptive_b%g_adaptive_budget_error" budget)
        (Float.abs (adaptive_rate -. budget) /. budget))
    [ 0.01; 0.05 ]

(* --- the paper reproduction ------------------------------------------- *)

let run_paper opts engine =
  let params =
    Suite.scaled_params ~train_len:opts.train_len
      ~background_len:opts.background_len
  in
  section "Evaluation suite (Section 5)";
  let suite = timed "suite build" (fun () -> Suite.build params) in
  Printf.printf
    "training: %d elements, alphabet %d, cycle fraction %.4f, rare threshold \
     %.3f\n"
    (Trace.length suite.Suite.training)
    params.Suite.alphabet_size
    (Generator.cycle_fraction suite.Suite.training)
    params.Suite.rare_threshold;

  section "Figure 2 — boundary sequences and incident span";
  print_string (Paper.figure2 suite ~window:5 ~anomaly_size:8);

  section "Figure 7 — L&B similarity example";
  print_string (Paper.figure7 ());

  section "Figures 3-6 — performance maps";
  let maps =
    timed "all maps" (fun () -> Experiment.all_maps ~engine suite Registry.all)
  in
  List.iter
    (fun (label, map) -> Printf.printf "%s:\n%s\n" label (Paper.figure_map map))
    (figure_order maps);
  Option.iter (write_csvs maps) opts.csv_dir;

  section "T1 — coverage relations (Sections 7-8)";
  print_string (Paper.table1 maps);

  section "T2 — false alarms and the Stide-suppressor ensemble";
  let t2 =
    timed "T2" (fun () ->
        Deployment.suppressor_experiment ~engine suite ~window:8 ~anomaly_size:5
          ~deploy_len:opts.deploy_len ~seed:(params.Suite.seed + 1))
  in
  print_string (Paper.table2 t2);

  section "T3 — lowering the L&B threshold";
  let deploy =
    Deployment.deployment_stream suite ~len:opts.deploy_len
      ~seed:(params.Suite.seed + 2)
  in
  let fa_training =
    Trace.sub suite.Suite.training ~pos:0
      ~len:(Stdlib.min (Trace.length suite.Suite.training) 20_000)
  in
  let t3 =
    timed "T3" (fun () ->
        Deployment.lnb_threshold_experiment ~engine suite ~anomaly_size:5
          ~deploy_trace:deploy ~fa_training)
  in
  print_string (Paper.table3 t3);
  Option.iter
    (fun dir ->
      let path = Filename.concat dir "t3_lnb_threshold.csv" in
      Csv.write_file path
        ~header:[ "window"; "score_threshold"; "hit"; "fa_rate" ]
        (List.map
           (fun (p : Deployment.lnb_threshold_point) ->
             [
               string_of_int p.Deployment.window;
               Printf.sprintf "%.6f" p.Deployment.score_threshold;
               (if p.Deployment.hit then "1" else "0");
               Printf.sprintf "%.6f" p.Deployment.false_alarm_rate;
             ])
           t3);
      Printf.printf "wrote %s\n" path)
    opts.csv_dir;
  print_string
    (Ascii_plot.render ~width:56 ~height:10 ~x_label:"detector window DW"
       ~y_label:"L&B false-alarm rate at the lowered threshold"
       (List.map
          (fun (p : Deployment.lnb_threshold_point) ->
            (float_of_int p.Deployment.window, p.Deployment.false_alarm_rate))
          t3));

  section "A1 — Stide locality frame count";
  let a1 =
    let test = Suite.stream suite ~anomaly_size:4 ~window:6 in
    timed "A1" (fun () ->
        Ablation.lfc_experiment ~engine ~training:fa_training
          ~injection:test.Suite.injection ~deploy ~window:6
          ~settings:[ (20, 1); (20, 2); (20, 4); (50, 8) ] ())
  in
  print_string (Paper.ablation1 a1);

  section "A2 — neural-network hyper-parameter sensitivity";
  let a2 =
    let base = Neural.default_params in
    timed "A2" (fun () ->
        Ablation.nn_sensitivity ~engine suite ~window:6
          ~params:
            [
              base;
              { base with Neural.hidden = 1 };
              { base with Neural.epochs = 10 };
              { base with Neural.learning_rate = 0.005; epochs = 50 };
              { base with Neural.momentum = 0.0; learning_rate = 0.05 };
            ])
  in
  print_string (Paper.ablation2 a2);

  section "A3 — alphabet-size invariance";
  let a3 =
    let base =
      Suite.scaled_params
        ~train_len:(Stdlib.min opts.train_len 80_000)
        ~background_len:4_000
    in
    timed "A3" (fun () ->
        Ablation.alphabet_invariance ~engine ~base ~sizes:[ 6; 8; 12 ] ())
  in
  print_string (Paper.ablation3 a3);

  section "A4 — rare-threshold sensitivity";
  let a4 =
    timed "A4" (fun () ->
        Ablation.rare_threshold_sweep suite
          ~thresholds:[ 0.00005; 0.0001; 0.0005; 0.005; 0.05; 0.2 ])
  in
  print_string (Paper.ablation4 a4);

  section "A6 — window selection trade-off";
  let a6 =
    timed "A6" (fun () ->
        Ablation.window_tradeoff ~engine suite ~fa_training ~deploy)
  in
  print_string (Paper.ablation6 a6);
  Option.iter
    (fun dir ->
      let path = Filename.concat dir "a6_window_tradeoff.csv" in
      Csv.write_file path
        ~header:[ "window"; "coverage"; "fa_rate" ]
        (List.map
           (fun (p : Ablation.window_point) ->
             [
               string_of_int p.Ablation.window;
               Printf.sprintf "%.6f" p.Ablation.coverage;
               Printf.sprintf "%.6f" p.Ablation.false_alarm_rate;
             ])
           a6);
      Printf.printf "wrote %s\n" path)
    opts.csv_dir;
  print_string
    (Ascii_plot.render_series ~width:56 ~height:10 ~x_label:"detector window DW"
       ~y_label:"fraction"
       [
         ( "coverage",
           List.map
             (fun (p : Ablation.window_point) ->
               (float_of_int p.Ablation.window, p.Ablation.coverage))
             a6 );
         ( "FA rate x100",
           List.map
             (fun (p : Ablation.window_point) ->
               (float_of_int p.Ablation.window, p.Ablation.false_alarm_rate *. 100.0))
             a6 );
       ]);

  section "A7 — synthesis operating envelope";
  let a7 =
    let base =
      Suite.scaled_params
        ~train_len:(Stdlib.min opts.train_len 60_000)
        ~background_len:3_000
    in
    timed "A7" (fun () ->
        Ablation.deviation_sweep ~engine ~base
          ~deviations:[ 0.00002; 0.0005; 0.0025; 0.01; 0.05; 0.2 ] ())
  in
  print_string (Paper.ablation7 a7);

  section "A8 — Markov smoothing";
  let a8 =
    timed "A8" (fun () ->
        Ablation.smoothing_sweep suite ~window:6
          ~alphas:[ 0.0; 0.1; 10.0; 1000.0; 100000.0 ])
  in
  print_string (Paper.ablation8 a8);

  section "E1 — extension detectors (t-stide, HMM)";
  let extension_maps =
    timed "E1" (fun () ->
        Experiment.all_maps ~engine suite
          [ Registry.find_exn "tstide"; Registry.find_exn "hmm" ])
  in
  print_string (Paper.extension1 ~paper_maps:maps ~extension_maps);

  section "E2 — rare-sequence anomalies";
  let e2 =
    timed "E2" (fun () ->
        let rare = Rare_anomaly.build suite in
        List.map
          (fun d -> Rare_anomaly.performance_map ~engine rare suite d)
          Registry.extended)
  in
  print_string (Paper.extension2 e2);

  section "E3 — seed robustness";
  let e3 =
    let base =
      Suite.scaled_params
        ~train_len:(Stdlib.min opts.train_len 60_000)
        ~background_len:3_000
    in
    timed "E3" (fun () ->
        Ablation.seed_robustness ~engine ~base ~seeds:[ 1; 7; 42; 2005 ] ())
  in
  print_string (Paper.extension3 e3);

  section "E4 — per-session classification";
  let e4 =
    timed "E4" (fun () ->
        let rng = Seqdiv_util.Prng.create ~seed:(params.Suite.seed + 9) in
        let normal =
          Session_workload.normal suite rng ~sessions:60 ~length:400
        in
        let anomalous =
          Session_workload.anomalous suite ~sessions:30 ~length:400
            ~anomaly_size:5 ~window:8
        in
        List.map
          (fun d ->
            let trained = Engine.train engine d ~window:8 suite.Suite.training in
            let (module D : Detector.S) = d in
            (D.name, Session_eval.evaluate trained ~normal ~anomalous ()))
          Registry.extended)
  in
  print_string (Paper.extension4 e4);

  section "A5 — n-gram index backends (hash tables vs counting trie)";
  let trie_t0 = Unix.gettimeofday () in
  let trie = Seq_trie.of_trace ~max_len:15 suite.Suite.training in
  let trie_dt = Unix.gettimeofday () -. trie_t0 in
  let hash_t0 = Unix.gettimeofday () in
  let hash_dbs =
    (* the legacy backend the trie replaced: one string-keyed hash
       table per width, each filled by its own scan of the trace *)
    Array.init 15 (fun i ->
        let width = i + 1 in
        let tbl = Hashtbl.create 4096 in
        Trace.iter_windows suite.Suite.training ~width (fun pos ->
            let k = Trace.key suite.Suite.training ~pos ~len:width in
            Hashtbl.replace tbl k
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)));
        tbl)
  in
  let hash_dt = Unix.gettimeofday () -. hash_t0 in
  let agreement =
    let len = Stdlib.min 5_000 (Trace.length suite.Suite.training) in
    let data = Trace.raw suite.Suite.training in
    let ok = ref true in
    for width = 1 to 15 do
      for pos = 0 to len - width do
        let k = Trace.key suite.Suite.training ~pos ~len:width in
        let h = Option.value ~default:0 (Hashtbl.find_opt hash_dbs.(width - 1) k) in
        if Seq_trie.count_at trie data ~pos ~len:width <> h then ok := false
      done
    done;
    !ok
  in
  let a5 = Table.make ~columns:[ "backend"; "build time"; "memory proxy" ] in
  Table.add_row a5
    [ "hash tables (15 scans)"; Printf.sprintf "%.2fs" hash_dt; "n/a" ];
  Table.add_row a5
    [
      "counting trie (1 pass)";
      Printf.sprintf "%.2fs" trie_dt;
      Printf.sprintf "%d nodes (~%d words)" (Seq_trie.node_count trie)
        (Seq_trie.memory_words trie);
    ];
  Table.print a5;
  Printf.printf "backends agree on all counts: %s\n"
    (if agreement then "yes" else "NO — BUG");
  measure_lookup_allocation suite.Suite.training trie;
  (suite, maps, deploy, trie)

(* --- Bechamel micro-benchmarks ---------------------------------------- *)

let micro_tests suite maps deploy trie =
  let open Bechamel in
  let training = suite.Suite.training in
  let window = 6 in
  let test = Suite.stream suite ~anomaly_size:4 ~window in
  let injection = test.Suite.injection in
  let trace = injection.Injector.trace in
  let lo, hi =
    Injector.incident_span ~position:injection.Injector.position
      ~size:(Array.length injection.Injector.anomaly)
      ~width:window
  in
  let stide = Trained.train (Registry.find_exn "stide") ~window training in
  let markov = Trained.train (Registry.find_exn "markov") ~window training in
  let lnb = Trained.train (Registry.find_exn "lnb") ~window training in
  let nn = Trained.train (Registry.find_exn "nn") ~window training in
  let markov_deploy = Trained.score markov deploy in
  let stide_deploy = Trained.score stide deploy in
  let coverages = List.map Coverage.of_map maps in
  let span d () = ignore (Trained.score_range d trace ~lo ~hi) in
  let small_train = Trace.sub training ~pos:0 ~len:20_000 in
  [
    Test.make ~name:"F2_injection_search"
      (Staged.stage (fun () ->
           ignore
             (Injector.inject suite.Suite.index
                ~background:
                  (Generator.background suite.Suite.alphabet ~len:2_000
                     ~phase:0)
                ~anomaly:injection.Injector.anomaly ~width:window)));
    Test.make ~name:"F3_lnb_span_scoring" (Staged.stage (span lnb));
    Test.make ~name:"F4_markov_span_scoring" (Staged.stage (span markov));
    Test.make ~name:"F5_stide_span_scoring" (Staged.stage (span stide));
    Test.make ~name:"F6_nn_span_scoring" (Staged.stage (span nn));
    Test.make ~name:"F7_lnb_similarity"
      (Staged.stage (fun () ->
           ignore
             (Lane_brodley.similarity [| 0; 1; 2; 3; 4 |] [| 0; 1; 2; 3; 0 |])));
    Test.make ~name:"T1_coverage_algebra"
      (Staged.stage (fun () ->
           ignore
             (List.fold_left Coverage.union Coverage.empty coverages
             |> Coverage.cardinal)));
    Test.make ~name:"T2_ensemble_suppression"
      (Staged.stage (fun () ->
           ignore
             (Ensemble.suppress
                ~primary:(markov_deploy, Trained.alarm_threshold markov)
                ~suppressor:(stide_deploy, Trained.alarm_threshold stide))));
    Test.make ~name:"T3_lnb_stream_scoring"
      (Staged.stage (fun () ->
           ignore (Trained.score_range lnb deploy ~lo:0 ~hi:999)));
    Test.make ~name:"A1_lfc_apply"
      (Staged.stage (fun () ->
           ignore
             (Lfc.apply stide_deploy ~frame:20 ~min_count:2 ~threshold:1.0)));
    Test.make ~name:"A2_nn_training_small"
      (Staged.stage (fun () ->
           ignore
             (Neural.train_with
                { Neural.default_params with Neural.epochs = 10 }
                ~window small_train)));
    Test.make ~name:"A3_markov_training"
      (Staged.stage (fun () ->
           ignore
             (Trained.train (Registry.find_exn "markov") ~window small_train)));
    Test.make ~name:"A4_mfs_search"
      (Staged.stage (fun () ->
           ignore
             (Mfs.candidates suite.Suite.index suite.Suite.alphabet ~size:5
                ~rare_threshold:0.005)));
    (let tstide = Trained.train (Registry.find_exn "tstide") ~window training in
     Test.make ~name:"E1_tstide_span_scoring" (Staged.stage (span tstide)));
    (let hmm = Trained.train (Registry.find_exn "hmm") ~window training in
     Test.make ~name:"E1_hmm_span_scoring" (Staged.stage (span hmm)));
    (* A5: one window lookup, trie descent over the raw trace array vs
       the legacy string-hash probe (Trace.key + Hashtbl).  The probes
       are real windows of the training trace, so both backends hit. *)
    (let data = Trace.raw training in
     let starts = Trace.window_count training ~width:8 in
     let rng = Seqdiv_util.Prng.create ~seed:7 in
     let positions =
       Array.init 64 (fun _ -> Seqdiv_util.Prng.int rng starts)
     in
     Test.make ~name:"A5_trie_lookup"
       (Staged.stage (fun () ->
            Array.iter
              (fun pos -> ignore (Seq_trie.count_at trie data ~pos ~len:8))
              positions)));
    (let hash_db =
       let tbl = Hashtbl.create 4096 in
       Trace.iter_windows training ~width:8 (fun pos ->
           let k = Trace.key training ~pos ~len:8 in
           Hashtbl.replace tbl k
             (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)));
       tbl
     in
     let starts = Trace.window_count training ~width:8 in
     let rng = Seqdiv_util.Prng.create ~seed:7 in
     let positions =
       Array.init 64 (fun _ -> Seqdiv_util.Prng.int rng starts)
     in
     Test.make ~name:"A5_hash_lookup"
       (Staged.stage (fun () ->
            Array.iter
              (fun pos ->
                ignore
                  (Hashtbl.find_opt hash_db (Trace.key training ~pos ~len:8)))
              positions)));
    Test.make ~name:"A6_stide_cell_outcome"
      (Staged.stage (fun () ->
           ignore (Scoring.outcome stide injection)));
    Test.make ~name:"A7_mfs_constructibility_probe"
      (Staged.stage (fun () ->
           ignore
             (Mfs.candidates suite.Suite.index suite.Suite.alphabet ~size:3
                ~rare_threshold:0.005)));
    (let markov_model = Markov.train ~window suite.Suite.training in
     let smoothed = Markov.with_smoothing markov_model ~alpha:10.0 in
     Test.make ~name:"A8_smoothed_span_scoring"
       (Staged.stage (fun () ->
            ignore (Markov.score_range smoothed trace ~lo ~hi))));
    (let rare = Rare_anomaly.build suite in
     let rare_inj = Rare_anomaly.injection rare ~anomaly_size:4 ~window:6 in
     Test.make ~name:"E2_rare_cell_outcome"
       (Staged.stage (fun () -> ignore (Scoring.outcome markov rare_inj))));
    Test.make ~name:"E3_seed_map_shape"
      (Staged.stage (fun () ->
           ignore (Scoring.outcome stide injection)));
    (let session =
       Deployment.deployment_stream suite ~len:400 ~seed:123
     in
     Test.make ~name:"E4_session_classification"
       (Staged.stage (fun () ->
            ignore
              (Session_eval.session_anomalous stide ~threshold:1.0 session))));
  ]

let run_micro suite maps deploy trie =
  let open Bechamel in
  let open Toolkit in
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let tests = micro_tests suite maps deploy trie in
  let grouped = Test.make_grouped ~name:"seqdiv" tests in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> est
          | Some _ | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let table = Table.make ~columns:[ "kernel"; "time/run" ] in
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row table [ name; human ])
    rows;
  Table.print table

(* --- machine-readable report (--json) ---------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path opts engine maps =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"options\": {\n";
  out "    \"train_len\": %d,\n" opts.train_len;
  out "    \"background_len\": %d,\n" opts.background_len;
  out "    \"deploy_len\": %d,\n" opts.deploy_len;
  out "    \"jobs\": %d\n" opts.jobs;
  out "  },\n";
  out "  \"machine\": {\n";
  out "    \"hostname\": \"%s\",\n" (json_escape (Unix.gethostname ()));
  out "    \"os_type\": \"%s\",\n" (json_escape Sys.os_type);
  out "    \"word_size\": %d,\n" Sys.word_size;
  out "    \"ocaml_version\": \"%s\",\n" (json_escape Sys.ocaml_version);
  out "    \"recommended_jobs\": %d\n" (Seqdiv_util.Pool.recommended_jobs ());
  out "  },\n";
  out "  \"stages\": [\n";
  let stages = List.rev !stages in
  List.iteri
    (fun i (label, seconds) ->
      out "    { \"label\": \"%s\", \"seconds\": %.6f }%s\n" (json_escape label)
        seconds
        (if i = List.length stages - 1 then "" else ","))
    stages;
  out "  ],\n";
  (* No engine runs in streaming mode: an all-zero stats block would
     read as a measured result, so the report carries [null] instead. *)
  (match engine with
  | None -> out "  \"engine\": null,\n"
  | Some engine ->
      let stats = Engine.stats engine in
      out "  \"engine\": {\n";
      out "    \"train_executed\": %d,\n" stats.Engine.train_executed;
      out "    \"train_cached\": %d,\n" stats.Engine.train_cached;
      out "    \"score_tasks\": %d,\n" stats.Engine.score_tasks;
      out "    \"train_seconds\": %.6f,\n" stats.Engine.train_seconds;
      out "    \"score_seconds\": %.6f,\n" stats.Engine.score_seconds;
      out "    \"tries_built\": %d,\n" stats.Engine.tries_built;
      out "    \"trie_hits\": %d,\n" stats.Engine.trie_hits;
      out "    \"trie_nodes\": %d,\n" stats.Engine.trie_nodes;
      out "    \"faults_injected\": %d,\n" stats.Engine.faults_injected;
      out "    \"retries\": %d,\n" stats.Engine.retries;
      out "    \"cells_failed\": %d,\n" stats.Engine.cells_failed;
      out "    \"cells_timed_out\": %d,\n" stats.Engine.cells_timed_out;
      out "    \"cells_resumed\": %d,\n" stats.Engine.cells_resumed;
      out "    \"automata_built\": %d,\n" stats.Engine.automata_built;
      out "    \"automata_hits\": %d\n" stats.Engine.automata_hits;
      out "  },\n");
  out "  \"measurements\": [\n";
  let ms = List.rev !measurements in
  List.iteri
    (fun i (label, value) ->
      out "    { \"label\": \"%s\", \"value\": %.6f }%s\n" (json_escape label)
        value
        (if i = List.length ms - 1 then "" else ","))
    ms;
  out "  ],\n";
  out "  \"maps\": [\n";
  let summaries = List.map Experiment.summary maps in
  List.iteri
    (fun i (s : Experiment.summary) ->
      out
        "    { \"detector\": \"%s\", \"capable\": %d, \"weak\": %d, \"blind\": \
         %d, \"failed\": %d, \"capable_fraction\": %.6f }%s\n"
        (json_escape s.Experiment.detector)
        s.Experiment.capable s.Experiment.weak s.Experiment.blind
        s.Experiment.failed s.Experiment.capable_fraction
        (if i = List.length summaries - 1 then "" else ","))
    summaries;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let opts = parse_options () in
  let fault_plan = chaos_plan opts in
  Option.iter
    (fun plan -> Printf.printf "%s\n%!" (Fault_plan.describe plan))
    fault_plan;
  let deadline =
    Option.map
      (fun budget_ms ->
        Seqdiv_util.Deadline.spec ~clock:Unix.gettimeofday ~budget_ms)
      opts.deadline_ms
  in
  let engine =
    Engine.create ~clock:Unix.gettimeofday ~jobs:opts.jobs ?fault_plan
      ?deadline ()
  in
  if opts.streaming then begin
    run_streaming opts;
    Option.iter (fun path -> write_json path opts None []) opts.json
  end
  else if opts.adaptive then begin
    run_adaptive opts;
    Option.iter (fun path -> write_json path opts None []) opts.json
  end
  else if opts.grid_only then begin
    let _suite, maps = run_grid opts engine in
    if opts.trace then
      Format.eprintf "%a@." Engine.pp_stats (Engine.stats engine);
    Option.iter (fun path -> write_json path opts (Some engine) maps) opts.json
  end
  else begin
    let suite, maps, deploy, trie = run_paper opts engine in
    if opts.micro then run_micro suite maps deploy trie;
    if opts.trace then
      Format.eprintf "%a@." Engine.pp_stats (Engine.stats engine);
    Option.iter (fun path -> write_json path opts (Some engine) maps) opts.json
  end;
  print_newline ()
