#!/bin/sh
# Regenerate the golden fixtures under test/golden/ after an
# intentional rendering change.  The new fixtures are part of the
# change: review the diff this prints like any other code.
set -eu

cd "$(dirname "$0")/.."

dune build test/test_golden.exe test/test_lint_golden.exe \
  test/test_serve_chaos.exe test/test_adaptive_golden.exe
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR=test/golden \
  ./_build/default/test/test_golden.exe
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR=test/golden \
  ./_build/default/test/test_lint_golden.exe
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR=test/golden \
  ./_build/default/test/test_serve_chaos.exe
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR=test/golden \
  ./_build/default/test/test_adaptive_golden.exe

git --no-pager diff --stat -- test/golden
