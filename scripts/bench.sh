#!/bin/sh
# Full-grid macro benchmark for the shared-trie training path (PR 3).
#
# Runs `bench/main.exe --grid-only` (150k-element training stream, the
# full AS x DW grid, stide + tstide + markov) at jobs=1 and jobs=4 and
# writes BENCH_PR3.json containing both runs next to the committed
# pre-PR baseline numbers, so the before/after comparison travels with
# the repository.  The baselines below were produced by the same
# command on the same machine at the seed commit (string-keyed hash
# databases, one training scan per window width).
#
# The script fails when the jobs=1 train+score speedup falls below the
# 3x acceptance floor, or when any detector's capable/weak/blind map
# summary differs from the baseline (the optimisation must not change
# a single cell).
#
# Usage: scripts/bench.sh [output.json]
#        scripts/bench.sh --streaming [output.json]
#
# --streaming (PR 7) instead runs the streaming-throughput benchmark —
# per-symbol scoring rate of the compiled flat automaton vs the
# reference trie descent, windows 4/8/12 — into BENCH_PR7.json (machine
# context included by the bench binary), and fails when the speedup at
# any window >= 8 falls below the 10x acceptance floor.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--streaming" ]; then
  OUT=${2:-BENCH_PR7.json}
  dune build bench/main.exe
  echo "== streaming throughput (trie descent vs compiled automaton) =="
  dune exec --no-build bench/main.exe -- --streaming --json "$OUT"

  speedup() {
    sed -n "s/.*\"label\": \"streaming_speedup_w$1\", \"value\": \([0-9.]*\).*/\1/p" "$OUT"
  }
  for w in 8 12; do
    S=$(speedup "$w")
    if [ -z "$S" ]; then
      echo "FAIL: no streaming_speedup_w$w measurement in $OUT" >&2
      exit 1
    fi
    echo "window $w: automaton ${S}x trie-descent throughput"
    if [ "$(awk -v s="$S" 'BEGIN { print (s >= 10.0) ? 1 : 0 }')" -ne 1 ]; then
      echo "FAIL: window-$w speedup ${S}x below the 10x acceptance floor" >&2
      exit 1
    fi
  done
  echo "wrote $OUT"
  exit 0
fi

OUT=${1:-BENCH_PR3.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# --- committed pre-PR baselines ----------------------------------------

cat > "$TMP/before_j1.json" <<'EOF'
{
  "options": {
    "train_len": 150000,
    "background_len": 8000,
    "deploy_len": 30000,
    "jobs": 1
  },
  "stages": [
    { "label": "suite build", "seconds": 0.344876 },
    { "label": "grid maps", "seconds": 0.706097 }
  ],
  "engine": {
    "train_executed": 42,
    "train_cached": 0,
    "score_tasks": 336,
    "train_seconds": 0.703838,
    "score_seconds": 0.001075
  },
  "maps": [
    { "detector": "stide", "capable": 84, "weak": 0, "blind": 28, "capable_fraction": 0.750000 },
    { "detector": "tstide", "capable": 112, "weak": 0, "blind": 0, "capable_fraction": 1.000000 },
    { "detector": "markov", "capable": 112, "weak": 0, "blind": 0, "capable_fraction": 1.000000 }
  ]
}
EOF

cat > "$TMP/before_j4.json" <<'EOF'
{
  "options": {
    "train_len": 150000,
    "background_len": 8000,
    "deploy_len": 30000,
    "jobs": 4
  },
  "stages": [
    { "label": "suite build", "seconds": 0.341793 },
    { "label": "grid maps", "seconds": 0.902314 }
  ],
  "engine": {
    "train_executed": 42,
    "train_cached": 0,
    "score_tasks": 336,
    "train_seconds": 0.897228,
    "score_seconds": 0.004051
  },
  "maps": [
    { "detector": "stide", "capable": 84, "weak": 0, "blind": 28, "capable_fraction": 0.750000 },
    { "detector": "tstide", "capable": 112, "weak": 0, "blind": 0, "capable_fraction": 1.000000 },
    { "detector": "markov", "capable": 112, "weak": 0, "blind": 0, "capable_fraction": 1.000000 }
  ]
}
EOF

# --- current runs -------------------------------------------------------

dune build bench/main.exe

echo "== full grid, jobs=1 =="
dune exec --no-build bench/main.exe -- \
  --grid-only --trace --jobs 1 --json "$TMP/after_j1.json"

echo "== full grid, jobs=4 =="
dune exec --no-build bench/main.exe -- \
  --grid-only --trace --jobs 4 --json "$TMP/after_j4.json"

# --- comparison ---------------------------------------------------------

# Sum of engine train_seconds + score_seconds in a report.
train_score() {
  sed -n 's/.*"train_seconds": \([0-9.]*\).*/\1/p; s/.*"score_seconds": \([0-9.]*\).*/\1/p' "$1" \
    | awk '{ s += $1 } END { printf "%.6f", s }'
}

# The per-detector summary lines, for cell-identity checking.
map_lines() { grep '"detector"' "$1"; }

B1=$(train_score "$TMP/before_j1.json")
B4=$(train_score "$TMP/before_j4.json")
A1=$(train_score "$TMP/after_j1.json")
A4=$(train_score "$TMP/after_j4.json")

S1=$(awk -v b="$B1" -v a="$A1" 'BEGIN { printf "%.2f", b / a }')
S4=$(awk -v b="$B4" -v a="$A4" 'BEGIN { printf "%.2f", b / a }')

echo "train+score jobs=1: ${B1}s -> ${A1}s (${S1}x)"
echo "train+score jobs=4: ${B4}s -> ${A4}s (${S4}x)"

for j in 1 4; do
  map_lines "$TMP/before_j$j.json" > "$TMP/maps_before_j$j"
  map_lines "$TMP/after_j$j.json" > "$TMP/maps_after_j$j"
  if ! cmp -s "$TMP/maps_before_j$j" "$TMP/maps_after_j$j"; then
    echo "FAIL: jobs=$j map summaries differ from baseline" >&2
    diff "$TMP/maps_before_j$j" "$TMP/maps_after_j$j" >&2 || true
    exit 1
  fi
done
echo "map summaries identical to baseline at both jobs counts"

if [ "$(awk -v s="$S1" 'BEGIN { print (s >= 3.0) ? 1 : 0 }')" -ne 1 ]; then
  echo "FAIL: jobs=1 speedup ${S1}x below the 3x acceptance floor" >&2
  exit 1
fi

# --- merged report ------------------------------------------------------

{
  printf '{\n'
  printf '  "benchmark": "full-grid train+score (bench/main.exe --grid-only)",\n'
  printf '  "speedup_train_score": { "jobs1": %s, "jobs4": %s },\n' "$S1" "$S4"
  printf '  "before": {\n'
  printf '    "jobs1":\n'
  cat "$TMP/before_j1.json"
  printf '    ,\n    "jobs4":\n'
  cat "$TMP/before_j4.json"
  printf '  },\n'
  printf '  "after": {\n'
  printf '    "jobs1":\n'
  cat "$TMP/after_j1.json"
  printf '    ,\n    "jobs4":\n'
  cat "$TMP/after_j4.json"
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
