#!/bin/sh
# Tier-1 gate: build, lint, test.  Run from the repository root.
#
# `dune build @lint` runs the seqdiv-lint executable over lib/, bin/
# and bench/; it exits non-zero on any error-severity finding, which
# fails the alias and therefore this script.  See docs/LINTING.md.
set -eu

cd "$(dirname "$0")/.."

dune build
dune build @all
dune build @lint
dune runtest

# The engine's determinism contract, exercised with real parallelism:
# the equivalence suite compares jobs=1 against jobs=4 cell by cell.
dune exec test/test_engine.exe -- test determinism
