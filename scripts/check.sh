#!/bin/sh
# Tier-1 gate: build, lint, test.  Run from the repository root.
#
# `dune build @lint` runs the seqdiv-lint executable over lib/, bin/
# and bench/; it exits non-zero on any error-severity finding, which
# fails the alias and therefore this script.  See docs/LINTING.md.
set -eu

cd "$(dirname "$0")/.."

dune build
dune build @all
dune build @lint
dune runtest

# The engine's determinism contract, exercised with real parallelism:
# the equivalence suite compares jobs=1 against jobs=4 cell by cell.
dune exec test/test_engine.exe -- test determinism

# The supervision layer under seeded fault injection: transient chaos
# must recover byte-identically, fatal chaos must degrade only its own
# cells, and the journal must survive torn tails and resume exactly.
dune exec test/test_supervision.exe -- test chaos
dune exec test/test_journal.exe

# Crash-safety smoke test: kill a journalled run mid-flight, resume it
# at jobs=1 and jobs=4, and demand byte-identical stdout to an
# uninterrupted run.
bin=./_build/default/bin/main.exe
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$bin" full -j 4 > "$tmp/fresh.out"

"$bin" full -j 4 --journal "$tmp/run.journal" > /dev/null 2>&1 &
pid=$!
# Wait for the first crash-safe flush so the kill lands mid-run with
# completed cells on disk, then pull the plug.
while [ ! -s "$tmp/run.journal" ] && kill -0 "$pid" 2>/dev/null; do
  sleep 0.2
done
kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

for jobs in 1 4; do
  "$bin" full -j "$jobs" --journal "$tmp/run.journal" --resume \
    > "$tmp/resumed-$jobs.out" 2> "$tmp/resumed-$jobs.err"
  grep -q '^journal: recovered' "$tmp/resumed-$jobs.err"
  diff -u "$tmp/fresh.out" "$tmp/resumed-$jobs.out"
done
echo "kill-resume smoke test: OK"
