#!/bin/sh
# Tier-1 gate: build, lint, test.  Run from the repository root.
#
# `dune build @lint` runs the seqdiv-lint executable over lib/, bin/
# and bench/; it exits non-zero on any error-severity finding, which
# fails the alias and therefore this script.  See docs/LINTING.md.
set -eu

cd "$(dirname "$0")/.."

dune build
dune build @all
dune build @lint
dune runtest

# Whole-tree lint, gated by the checked-in baseline: the SARIF artifact
# lands in _build/lint.sarif for CI upload, the exit status fails this
# script on any error-severity finding not already in
# lint-baseline.txt, and the wall time is recorded against the 10 s
# budget the whole-program analysis is designed for.
lint_start=$(date +%s)
./_build/default/bin/lint/seqdiv_lint.exe --format sarif \
  --baseline lint-baseline.txt lib bin bench > _build/lint.sarif
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 10 ]; then
  echo "lint time budget exceeded: ${lint_elapsed}s (> 10 s)" >&2
  exit 1
fi
echo "whole-tree lint: ${lint_elapsed}s, sarif in _build/lint.sarif"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Every test binary, run whole, under a wall-clock budget: a suite
# that creeps past 120 s is a regression in its own right (the
# deadline/chaos suites are all virtual-clock, nothing here should
# ever sleep).  This subsumes the targeted `dune exec test/...`
# invocations this script used to carry.
budget() {
  name=$1; shift
  start=$(date +%s)
  "$@"
  elapsed=$(( $(date +%s) - start ))
  if [ "$elapsed" -gt 120 ]; then
    echo "time budget exceeded: $name took ${elapsed}s (> 120 s)" >&2
    exit 1
  fi
  echo "suite $name: ${elapsed}s"
}

for t in ./_build/default/test/test_*.exe; do
  SEQDIV_GOLDEN_DIR=test/golden budget "$(basename "$t" .exe)" "$t" \
    > "$tmp/suite.out" 2>&1 || { cat "$tmp/suite.out"; exit 1; }
  tail -1 "$tmp/suite.out"
done

# Golden fixtures must match what the current tree renders: regenerate
# into a scratch directory and diff.  An intentional change is promoted
# with scripts/promote-golden.sh and reviewed as part of the commit.
mkdir -p "$tmp/golden"
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR="$tmp/golden" \
  ./_build/default/test/test_golden.exe > /dev/null
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR="$tmp/golden" \
  ./_build/default/test/test_lint_golden.exe > /dev/null
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR="$tmp/golden" \
  ./_build/default/test/test_serve_chaos.exe > /dev/null
SEQDIV_GOLDEN_PROMOTE=1 SEQDIV_GOLDEN_DIR="$tmp/golden" \
  ./_build/default/test/test_adaptive_golden.exe > /dev/null
diff -ru test/golden "$tmp/golden"
echo "golden fixtures: OK"

bin=./_build/default/bin/main.exe

# Crash-safety smoke test: kill a journalled run mid-flight, resume it
# at jobs=1 and jobs=4, and demand byte-identical stdout to an
# uninterrupted run.
"$bin" full -j 4 > "$tmp/fresh.out"

"$bin" full -j 4 --journal "$tmp/run.journal" > /dev/null 2>&1 &
pid=$!
# Wait for the first crash-safe flush so the kill lands mid-run with
# completed cells on disk, then pull the plug.
while [ ! -s "$tmp/run.journal" ] && kill -0 "$pid" 2>/dev/null; do
  sleep 0.2
done
kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

for jobs in 1 4; do
  "$bin" full -j "$jobs" --journal "$tmp/run.journal" --resume \
    > "$tmp/resumed-$jobs.out" 2> "$tmp/resumed-$jobs.err"
  grep -q '^journal: recovered' "$tmp/resumed-$jobs.err"
  diff -u "$tmp/fresh.out" "$tmp/resumed-$jobs.out"
done
echo "kill-resume smoke test: OK"

# Hung-cell smoke test: a 1 ms wall-clock budget is below any real
# training task, so cells must degrade to rendered timeouts and the
# run must exit 2 (partial failure) instead of hanging.
status=0
"$bin" full -j 4 --deadline-ms 1 > "$tmp/deadline.out" 2>&1 || status=$?
[ "$status" -eq 2 ] || {
  echo "deadline smoke test: expected exit 2, got $status" >&2; exit 1; }
grep -q 'Deadline.Exceeded(budget=1ms)' "$tmp/deadline.out"
grep -q 'cell(s) FAILED' "$tmp/deadline.out"

# And the flag is validated before anything runs.
status=0
"$bin" full --deadline-ms 0 > /dev/null 2>&1 || status=$?
[ "$status" -eq 2 ] || {
  echo "deadline validation: expected exit 2, got $status" >&2; exit 1; }
echo "deadline smoke test: OK"

# Flat-model smoke test: train + save a text model, compile it to the
# mmap-ready flat binary, then score a trace through both — the text
# model's own trie descent and the mmap-loaded automaton.  `model
# score` prints lossless hex floats, so a plain byte diff is the
# bit-identity check of the deployment pipeline.
"$bin" synth --train-len 20000 --out "$tmp/train.trace" > /dev/null
"$bin" synth --train-len 3000 --seed 9 --out "$tmp/probe.trace" > /dev/null
for d in stide markov; do
  "$bin" detect -d "$d" --window 6 \
    --train "$tmp/train.trace" --test "$tmp/probe.trace" \
    --save-model "$tmp/$d.model" > /dev/null
  "$bin" model compile --model "$tmp/$d.model" --out "$tmp/$d.flat" > /dev/null
  "$bin" model score --model "$tmp/$d.model" --trace "$tmp/probe.trace" \
    > "$tmp/$d.text.scores"
  "$bin" model score --model "$tmp/$d.flat" --trace "$tmp/probe.trace" \
    > "$tmp/$d.flat.scores"
  diff "$tmp/$d.text.scores" "$tmp/$d.flat.scores"
done
echo "flat-model smoke test: OK"

# Serve smoke test: the sharded streaming service must produce the
# same per-session incident log whether or not the server is SIGKILLed
# mid-stream and resumed from its shard journals (the client reconnects
# and resends unacknowledged batches; journalled shards re-acknowledge
# duplicates without re-applying them).
serve_sock="$tmp/serve.sock"
bench_args="--sessions 48 --session-length 1000 --rounds 40 \
  --train-len 20000 --batch-events 64 --inflight 2"

# Reference: an uninterrupted journalled run.
mkdir -p "$tmp/serve-ref"
"$bin" serve --model "$tmp/stide.flat" --socket "$serve_sock" --shards 2 \
  --journal-dir "$tmp/serve-ref" > /dev/null 2>&1 &
serve_pid=$!
# shellcheck disable=SC2086  # bench_args is a word list by design
"$bin" serve-bench --socket "$serve_sock" $bench_args \
  --incident-log "$tmp/serve-ref.log" --quit > /dev/null
wait "$serve_pid"

# Interrupted: SIGKILL the server once shard 0 has committed state,
# restart it with --resume, and let the client ride through.
mkdir -p "$tmp/serve-kill"
"$bin" serve --model "$tmp/stide.flat" --socket "$serve_sock" --shards 2 \
  --journal-dir "$tmp/serve-kill" > /dev/null 2>&1 &
serve_pid=$!
# shellcheck disable=SC2086
"$bin" serve-bench --socket "$serve_sock" $bench_args \
  --incident-log "$tmp/serve-kill.log" --reconnect --quit > /dev/null 2>&1 &
client_pid=$!
while [ "$(cat "$tmp/serve-kill/shard-0.journal" 2>/dev/null | wc -c)" -lt 4000 ] \
  && kill -0 "$client_pid" 2>/dev/null; do
  sleep 0.02
done
if kill -0 "$client_pid" 2>/dev/null; then
  kill -9 "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  "$bin" serve --model "$tmp/stide.flat" --socket "$serve_sock" --shards 2 \
    --journal-dir "$tmp/serve-kill" --resume > /dev/null 2>&1 &
  serve_pid=$!
else
  # The whole run outpaced the kill trigger (can only happen on a
  # absurdly fast box): fall through to the plain comparison.
  echo "serve kill-resume: client finished before the kill; degraded to plain diff" >&2
fi
wait "$client_pid"
wait "$serve_pid" 2>/dev/null || true
diff "$tmp/serve-ref.log" "$tmp/serve-kill.log"

# The log is also invariant in the shard count (determinism contract).
"$bin" serve --model "$tmp/stide.flat" --socket "$serve_sock" --shards 4 \
  > /dev/null 2>&1 &
serve_pid=$!
# shellcheck disable=SC2086
"$bin" serve-bench --socket "$serve_sock" $bench_args \
  --incident-log "$tmp/serve-4.log" --quit > /dev/null
wait "$serve_pid"
diff "$tmp/serve-ref.log" "$tmp/serve-4.log"
echo "serve kill-resume smoke test: OK"

# Adaptive-threshold serve smoke: with --alarm-budget each session's
# controller (threshold + quantile sketch) rides in the shard
# journals, so the incident log must stay byte-identical across a
# SIGKILL/--resume cycle and across shard counts even while
# thresholds move.  Markov's graded scores (unlike Stide's 0/1) are
# what give the controller a distribution worth tracking.
mkdir -p "$tmp/serve-adapt-ref"
"$bin" serve --model "$tmp/markov.flat" --socket "$serve_sock" --shards 2 \
  --alarm-budget 0.05 --journal-dir "$tmp/serve-adapt-ref" > /dev/null 2>&1 &
serve_pid=$!
# shellcheck disable=SC2086
"$bin" serve-bench --socket "$serve_sock" $bench_args \
  --incident-log "$tmp/serve-adapt-ref.log" --quit > /dev/null
wait "$serve_pid"
# The run must actually alarm, or the byte-compares below prove nothing.
[ -s "$tmp/serve-adapt-ref.log" ] || {
  echo "adaptive serve smoke: empty incident log" >&2; exit 1; }

mkdir -p "$tmp/serve-adapt-kill"
"$bin" serve --model "$tmp/markov.flat" --socket "$serve_sock" --shards 2 \
  --alarm-budget 0.05 --journal-dir "$tmp/serve-adapt-kill" > /dev/null 2>&1 &
serve_pid=$!
# shellcheck disable=SC2086
"$bin" serve-bench --socket "$serve_sock" $bench_args \
  --incident-log "$tmp/serve-adapt-kill.log" --reconnect --quit > /dev/null 2>&1 &
client_pid=$!
while [ "$(cat "$tmp/serve-adapt-kill/shard-0.journal" 2>/dev/null | wc -c)" -lt 4000 ] \
  && kill -0 "$client_pid" 2>/dev/null; do
  sleep 0.02
done
if kill -0 "$client_pid" 2>/dev/null; then
  kill -9 "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  "$bin" serve --model "$tmp/markov.flat" --socket "$serve_sock" --shards 2 \
    --alarm-budget 0.05 --journal-dir "$tmp/serve-adapt-kill" --resume \
    > /dev/null 2>&1 &
  serve_pid=$!
else
  echo "adaptive serve kill-resume: client finished before the kill; degraded to plain diff" >&2
fi
wait "$client_pid"
wait "$serve_pid" 2>/dev/null || true
diff "$tmp/serve-adapt-ref.log" "$tmp/serve-adapt-kill.log"

"$bin" serve --model "$tmp/markov.flat" --socket "$serve_sock" --shards 4 \
  --alarm-budget 0.05 > /dev/null 2>&1 &
serve_pid=$!
# shellcheck disable=SC2086
"$bin" serve-bench --socket "$serve_sock" $bench_args \
  --incident-log "$tmp/serve-adapt-4.log" --quit > /dev/null
wait "$serve_pid"
diff "$tmp/serve-adapt-ref.log" "$tmp/serve-adapt-4.log"
echo "adaptive serve kill-resume smoke test: OK"

# Chaos-serve smoke test: with seeded transient shard crashes injected
# mid-stream, the supervisor must restart each crashed shard from its
# journal and the per-session incident log must stay byte-identical to
# the chaos-free reference (the determinism contract under Transient
# fates).  The client rides through rejections via the adaptive
# retry_after_ms hint.
mkdir -p "$tmp/serve-chaos"
"$bin" serve --model "$tmp/stide.flat" --socket "$serve_sock" --shards 2 \
  --journal-dir "$tmp/serve-chaos" --chaos-serve 1234 --chaos-crash 0.10 \
  > "$tmp/serve-chaos.out" 2>&1 &
serve_pid=$!
# shellcheck disable=SC2086
"$bin" serve-bench --socket "$serve_sock" $bench_args --reconnect \
  --incident-log "$tmp/serve-chaos.log" --quit > /dev/null
wait "$serve_pid"
diff "$tmp/serve-ref.log" "$tmp/serve-chaos.log"
# The run must actually have exercised the supervisor.
grep -q 'restart' "$tmp/serve-chaos.out"
echo "chaos-serve smoke test: OK"
