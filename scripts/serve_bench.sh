#!/bin/sh
# Shard-scaling macro benchmark for `seqdiv serve` (PR 8).
#
# For shard counts 1, 2 and 4 this script starts a server on a Unix
# socket, measures each shard's service rate in isolation (the client's
# --target-shard K/N relabels session ids so the whole phase routes to
# one shard), then drives a concurrent all-shards run for the wall-clock
# throughput, latency percentiles and resident-memory numbers.  The
# merged report lands in BENCH_PR8.json.
#
# Aggregate capacity at a shard count is the SUM of the isolated
# per-shard service rates: each shard is an independent single-domain
# table on a shared read-only model, so with >= N cores the concurrent
# wall-clock rate approaches this sum.  The gate demands capacity at 4
# shards >= 3x capacity at 1 shard.  On boxes with fewer cores than
# shards (CI runs on one) the concurrent wall rate cannot show that
# scaling — the per-phase isolation numbers are the portable measure,
# and the concurrent runs are still recorded alongside, honestly
# labelled with the machine's core count.
#
# Usage: scripts/serve_bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR8.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

dune build bin/main.exe
bin=./_build/default/bin/main.exe
sock="$TMP/serve.sock"

# One model for every phase: stide, window 6, 20k training stream.
"$bin" synth --train-len 20000 --out "$TMP/train.trace" > /dev/null
"$bin" detect -d stide --window 6 --train "$TMP/train.trace" \
  --test "$TMP/train.trace" --save-model "$TMP/stide.model" > /dev/null
"$bin" model compile --model "$TMP/stide.model" --out "$TMP/stide.flat" \
  > /dev/null

# The workload each phase drives: ~2M symbols of mixed normal/attack
# sessions, interleaved 64-symbol chunks, bounded in-flight window.
phase_args="--sessions 48 --session-length 1000 \
  --train-len 20000 --batch-events 256 --inflight 4"

# events/sec of one serve-bench JSON report.
events_per_sec() {
  sed -n 's/.*"events_per_sec": \([0-9.]*\).*/\1/p' "$1"
}

start_server() {
  "$bin" serve --model "$TMP/stide.flat" --socket "$sock" --shards "$1" \
    > /dev/null 2>&1 &
  server_pid=$!
}

for shards in 1 2 4; do
  echo "== shards=$shards =="
  start_server "$shards"

  # Isolated per-shard phases: all sessions routed to one shard.  A
  # short unmeasured warmup absorbs server cold start, and the service
  # rate is the best of two measured passes (capacity is the peak
  # sustainable rate; the minimum of the passes is scheduler noise).
  capacity=0
  k=0
  while [ "$k" -lt "$shards" ]; do
    # shellcheck disable=SC2086  # phase_args is a word list by design
    "$bin" serve-bench --socket "$sock" $phase_args --rounds 4 \
      --target-shard "$k/$shards" > /dev/null
    rate=0
    for pass in a b; do
      # shellcheck disable=SC2086
      "$bin" serve-bench --socket "$sock" $phase_args --rounds 40 \
        --target-shard "$k/$shards" \
        --json "$TMP/phase-$shards-$k-$pass.json" > /dev/null
      pass_rate=$(events_per_sec "$TMP/phase-$shards-$k-$pass.json")
      if [ "$(awk -v a="$pass_rate" -v b="$rate" 'BEGIN { print (a > b) ? 1 : 0 }')" -eq 1 ]; then
        rate=$pass_rate
        cp "$TMP/phase-$shards-$k-$pass.json" "$TMP/phase-$shards-$k.json"
      fi
    done
    echo "  shard $k isolated: $rate events/sec"
    capacity=$(awk -v c="$capacity" -v r="$rate" 'BEGIN { printf "%.1f", c + r }')
    k=$((k + 1))
  done
  echo "  capacity (sum of isolated rates): $capacity events/sec"
  echo "$capacity" > "$TMP/capacity-$shards"

  # Concurrent all-shards run: wall rate, latency, backpressure.
  # shellcheck disable=SC2086
  "$bin" serve-bench --socket "$sock" $phase_args --rounds 40 \
    --connections 2 --json "$TMP/wall-$shards.json" > /dev/null
  echo "  concurrent wall rate: $(events_per_sec "$TMP/wall-$shards.json") events/sec"

  # Residency probe: one round driven with --hold-open leaves every
  # session resident, so the sampled stats record loaded-table memory
  # (sessions_resident / bytes_resident) instead of the post-End zeros.
  # shellcheck disable=SC2086
  "$bin" serve-bench --socket "$sock" $phase_args --rounds 1 --hold-open \
    --json "$TMP/residency-$shards.json" --quit > /dev/null
  wait "$server_pid"
  resident=$(sed -n 's/.*"sessions_resident": \([0-9]*\).*/\1/p' \
    "$TMP/residency-$shards.json" | awk '{ s += $1 } END { print s }')
  if [ "$resident" -ne 48 ]; then
    echo "FAIL: residency probe holds $resident sessions, expected 48" >&2
    exit 1
  fi
  bytes=$(sed -n 's/.*"bytes_resident": \([0-9]*\).*/\1/p' \
    "$TMP/residency-$shards.json" | awk '{ s += $1 } END { print s }')
  echo "  resident-session memory: 48 sessions, $bytes bytes across shards"
done

C1=$(cat "$TMP/capacity-1")
C2=$(cat "$TMP/capacity-2")
C4=$(cat "$TMP/capacity-4")
RATIO=$(awk -v a="$C1" -v b="$C4" 'BEGIN { printf "%.2f", b / a }')
echo "aggregate capacity: 1 shard $C1, 2 shards $C2, 4 shards $C4 (${RATIO}x)"

if [ "$(awk -v r="$RATIO" 'BEGIN { print (r >= 3.0) ? 1 : 0 }')" -ne 1 ]; then
  echo "FAIL: 4-shard capacity ${RATIO}x below the 3x acceptance floor" >&2
  exit 1
fi

{
  printf '{\n'
  printf '  "benchmark": "serve shard scaling (seqdiv serve + serve-bench)",\n'
  printf '  "methodology": "capacity = sum of isolated per-shard service rates (--target-shard phases); concurrent runs recorded alongside and bounded by machine cores",\n'
  printf '  "capacity_events_per_sec": { "shards1": %s, "shards2": %s, "shards4": %s },\n' "$C1" "$C2" "$C4"
  printf '  "capacity_scaling_4v1": %s,\n' "$RATIO"
  printf '  "phases": {\n'
  first=1
  for shards in 1 2 4; do
    [ "$first" -eq 1 ] || printf '    ,\n'
    first=0
    printf '    "shards%s": {\n' "$shards"
    printf '      "isolated": [\n'
    k=0
    while [ "$k" -lt "$shards" ]; do
      [ "$k" -eq 0 ] || printf '        ,\n'
      cat "$TMP/phase-$shards-$k.json"
      k=$((k + 1))
    done
    printf '      ],\n'
    printf '      "concurrent":\n'
    cat "$TMP/wall-$shards.json"
    printf '      ,\n'
    printf '      "residency":\n'
    cat "$TMP/residency-$shards.json"
    printf '    }\n'
  done
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
