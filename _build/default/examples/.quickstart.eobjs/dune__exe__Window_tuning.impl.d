examples/window_tuning.ml: Ablation Deployment List Printf Seqdiv_core Seqdiv_stream Seqdiv_synth String Suite Trace
