examples/detector_zoo.mli:
