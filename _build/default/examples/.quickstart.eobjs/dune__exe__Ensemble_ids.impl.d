examples/ensemble_ids.ml: Array Deployment Ensemble False_alarm Injector Printf Registry Response Scoring Seqdiv_core Seqdiv_detectors Seqdiv_synth Suite Trained
