examples/detector_zoo.ml: Deployment Detector False_alarm List Outcome Printf Registry Scoring Seqdiv_core Seqdiv_detectors Seqdiv_synth String Suite Trained
