examples/ensemble_ids.mli:
