examples/syscall_monitor.mli:
