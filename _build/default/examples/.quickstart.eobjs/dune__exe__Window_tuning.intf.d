examples/window_tuning.mli:
