examples/quickstart.ml: Array Generator Injector List Outcome Printf Registry Response Scoring Seqdiv_core Seqdiv_detectors Seqdiv_stream Seqdiv_synth String Suite Trace Trained
