examples/artifact_workflow.mli:
