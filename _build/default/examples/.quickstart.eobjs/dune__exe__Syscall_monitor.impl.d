examples/syscall_monitor.ml: Alphabet Array Format Lfc List Markov_chain Printf Prng Response Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_util Stide String Trace
