examples/masquerade.mli:
