examples/quickstart.mli:
