examples/masquerade.ml: Alphabet Array False_alarm List Markov_chain Printf Prng Registry Response Seqdiv_core Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_util Stats String Trace Trained
