(* Masquerade detection — the Lane & Brodley detector in its home
   domain.  L&B was designed to profile a user's command stream and
   flag sessions typed by someone else.  Its graded similarity metric is
   good at that drift-style detection, even though (as the paper shows)
   it is blind to minimal foreign sequences at the maximal-response
   threshold.

   Two simulated users issue shell commands with different habits; the
   detector is trained on user A and scores a stream in which user B
   takes over the terminal halfway through.

   Run with: dune exec examples/masquerade.exe *)

open Seqdiv_util
open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors

let commands =
  [| "cd"; "ls"; "vim"; "make"; "git"; "grep"; "ssh"; "top"; "rm"; "tar" |]

(* A user's habits as a first-order chain over the commands: each row
   lists the likely follow-ups of a command. *)
let chain_of_habits alphabet habits =
  let k = Array.length commands in
  let rows =
    Array.init k (fun i ->
        let row = Array.make k 0.01 (* small chance of anything *) in
        List.iter (fun (j, w) -> row.(j) <- w) habits.(i);
        row)
  in
  Markov_chain.of_matrix alphabet rows

(* User A: an edit/build loop — cd, ls, vim, make, git... *)
let user_a alphabet =
  chain_of_habits alphabet
    [|
      [ (1, 0.8) ] (* cd -> ls *);
      [ (2, 0.6); (5, 0.3) ] (* ls -> vim | grep *);
      [ (3, 0.8) ] (* vim -> make *);
      [ (2, 0.5); (4, 0.4) ] (* make -> vim | git *);
      [ (0, 0.6); (2, 0.3) ] (* git -> cd | vim *);
      [ (2, 0.7) ] (* grep -> vim *);
      [ (7, 0.5); (0, 0.4) ] (* ssh -> top | cd *);
      [ (6, 0.5); (0, 0.4) ] (* top -> ssh | cd *);
      [ (1, 0.8) ] (* rm -> ls *);
      [ (8, 0.4); (1, 0.5) ] (* tar -> rm | ls *);
    |]

(* User B: an ops workflow — ssh, top, tar, rm... *)
let user_b alphabet =
  chain_of_habits alphabet
    [|
      [ (6, 0.8) ] (* cd -> ssh *);
      [ (9, 0.7) ] (* ls -> tar *);
      [ (3, 0.6) ];
      [ (6, 0.6) ];
      [ (6, 0.6) ];
      [ (7, 0.6) ];
      [ (7, 0.7) ] (* ssh -> top *);
      [ (9, 0.5); (8, 0.3) ] (* top -> tar | rm *);
      [ (9, 0.5); (6, 0.3) ] (* rm -> tar | ssh *);
      [ (8, 0.5); (6, 0.4) ] (* tar -> rm | ssh *);
    |]

let () =
  let alphabet = Alphabet.of_names commands in
  let rng = Prng.create ~seed:11 in
  let a = user_a alphabet and b = user_b alphabet in
  let training = Markov_chain.generate a rng ~start:0 ~len:30_000 in
  let self_session = Markov_chain.generate a rng ~start:0 ~len:400 in
  let intruder_session = Markov_chain.generate b rng ~start:6 ~len:400 in
  let session = Trace.concat self_session intruder_session in

  let window = 6 in
  let lnb = Trained.train (Registry.find_exn "lnb") ~window training in
  let response = Trained.score lnb session in

  (* Mean anomaly score per 50-command block: user B should stand out. *)
  let block = 50 in
  Printf.printf
    "L&B anomaly profile (window %d, %d-command blocks); user B takes over \
     at command %d:\n"
    window block (Trace.length self_session);
  let items = response.Response.items in
  let blocks = Array.length items / block in
  for bidx = 0 to blocks - 1 do
    let scores =
      Array.sub items (bidx * block) block
      |> Array.map (fun (i : Response.item) -> i.Response.score)
    in
    let mean = Stats.mean scores in
    let owner = if (bidx * block) + (block / 2) < 400 then "A" else "B" in
    let bar = String.make (int_of_float (mean *. 120.0)) '#' in
    Printf.printf "  block %2d (user %s): %.3f %s\n" bidx owner mean bar
  done;

  (* A simple drift threshold separates the two users. *)
  let threshold = 0.25 in
  let self_alarm =
    False_alarm.of_response
      (Trained.score_range lnb session ~lo:0 ~hi:(400 - window))
      ~threshold
  in
  let intruder_alarm =
    False_alarm.of_response
      (Trained.score_range lnb session ~lo:400 ~hi:(Trace.length session - window))
      ~threshold
  in
  Printf.printf
    "\nat threshold %.2f: self alarm rate %.3f, masquerader alarm rate %.3f\n"
    threshold self_alarm.False_alarm.rate intruder_alarm.False_alarm.rate;
  print_endline
    "L&B separates drift well — yet the paper shows the same metric is blind\n\
     to a single minimal foreign sequence at the maximal-response threshold."
