(* Quickstart: synthesise training data, construct a minimal foreign
   sequence, inject it cleanly, and compare what two diverse detectors
   see.

   Run with: dune exec examples/quickstart.exe *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors

let () =
  (* 1. A small version of the paper's evaluation corpus: a mostly-cyclic
     training stream with rare deviations, plus one injected minimal
     foreign sequence per (anomaly size, window) cell. *)
  let params = Suite.scaled_params ~train_len:80_000 ~background_len:4_000 in
  let suite = Suite.build params in
  Printf.printf "training stream: %d elements over alphabet %d (%.1f%% pure cycle)\n"
    (Trace.length suite.Suite.training)
    params.Suite.alphabet_size
    (100.0 *. Generator.cycle_fraction suite.Suite.training);

  (* 2. Pick one cell: an anomaly of size 6 and a detector window of 4 —
     the window is too short for Stide to see the whole anomaly. *)
  let anomaly_size = 6 and window = 4 in
  let test = Suite.stream suite ~anomaly_size ~window in
  let inj = test.Suite.injection in
  Printf.printf "injected anomaly (size %d) at position %d: [%s]\n" anomaly_size
    inj.Injector.position
    (String.concat "; "
       (List.map string_of_int (Array.to_list inj.Injector.anomaly)));

  (* 3. Train two diverse detectors on the same data with the same
     window, and score the incident span of the injected stream. *)
  List.iter
    (fun name ->
      let detector = Registry.find_exn name in
      let trained = Trained.train detector ~window suite.Suite.training in
      let span = Scoring.incident_response trained inj in
      let outcome = Scoring.outcome trained inj in
      Printf.printf "%-7s max response in incident span = %.4f -> %s\n" name
        (Response.max_score span)
        (Outcome.to_string outcome))
    [ "stide"; "markov" ];

  (* 4. The same anomaly with a window large enough to contain it. *)
  let window = anomaly_size + 1 in
  let test = Suite.stream suite ~anomaly_size ~window in
  Printf.printf "\nwith window %d (>= anomaly size):\n" window;
  List.iter
    (fun name ->
      let detector = Registry.find_exn name in
      let trained = Trained.train detector ~window suite.Suite.training in
      let outcome = Scoring.outcome trained test.Suite.injection in
      Printf.printf "%-7s -> %s\n" name (Outcome.to_string outcome))
    [ "stide"; "markov" ];
  print_endline
    "\nStide is blind until its window spans the whole foreign sequence;\n\
     the Markov detector flags the rare transitions inside it at any window."
