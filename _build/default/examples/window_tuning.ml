(* Choosing Stide's detector window — the operational question behind
   the paper's maps (and behind Tan & Maxion's companion paper
   "Why 6?").

   A defender expects attacks that manifest as minimal foreign sequences
   of up to some length L, but every extra symbol of window costs false
   alarms once training stops exhausting benign behaviour.  This example
   sweeps the window and prints the trade-off curve so the knee is
   visible.

   Run with: dune exec examples/window_tuning.exe *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core

let () =
  let params = Suite.scaled_params ~train_len:100_000 ~background_len:4_000 in
  let suite = Suite.build params in
  let deploy = Deployment.deployment_stream suite ~len:25_000 ~seed:9 in
  (* The undertrained regime: the false-alarm model sees only a slice of
     the training data, as a real deployment would. *)
  let fa_training = Trace.sub suite.Suite.training ~pos:0 ~len:15_000 in
  let points = Ablation.window_tradeoff suite ~fa_training ~deploy in

  Printf.printf
    "Stide window tuning (anomalies up to size %d in the evaluation suite)\n\n"
    suite.Suite.params.Suite.as_max;
  Printf.printf "%-4s %-22s %-12s %s\n" "DW" "coverage of anomalies"
    "FA rate" "";
  List.iter
    (fun (p : Ablation.window_point) ->
      let bar =
        String.make
          (int_of_float (p.Ablation.false_alarm_rate *. 20_000.0))
          '#'
      in
      Printf.printf "%-4d %-22s %-12.5f %s\n" p.Ablation.window
        (Printf.sprintf "%.0f%%" (100.0 *. p.Ablation.coverage))
        p.Ablation.false_alarm_rate bar)
    points;

  (* The knee: the smallest window that covers everything. *)
  let knee =
    List.find_opt (fun (p : Ablation.window_point) -> p.Ablation.coverage >= 1.0) points
  in
  (match knee with
  | Some p ->
      Printf.printf
        "\nsmallest fully-covering window: %d — beyond it, false alarms keep \
         rising\nwith no detection gain.\n"
        p.Ablation.window
  | None -> print_endline "\nno window covers every anomaly size in this sweep.")
