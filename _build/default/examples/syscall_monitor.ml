(* Host-based intrusion detection over (simulated) system-call traces —
   the "sense of self" setting of Forrest et al. that Stide comes from.

   A server process executes a request-handling loop (accept, read,
   stat, open, read, write, close...).  An exploited request executes a
   short foreign call pattern (e.g. spawning a shell).  Stide detects
   the foreign windows; the locality frame count aggregates the burst
   into a single incident alarm.

   Run with: dune exec examples/syscall_monitor.exe *)

open Seqdiv_util
open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_detectors

let syscalls =
  [|
    "accept"; "read"; "stat"; "open"; "mmap"; "write"; "close"; "poll";
    "fork"; "execve"; "chmod"; "socket";
  |]

(* The request loop: accept -> read -> stat -> open -> mmap -> write ->
   close -> poll -> accept..., with occasional benign variations (a
   cache hit skips open/mmap; a keep-alive skips accept). *)
let server_chain alphabet =
  let k = Array.length syscalls in
  let rows = Array.make_matrix k k 0.0 in
  let set i j w = rows.(i).(j) <- w in
  set 0 1 1.0;                       (* accept -> read *)
  set 1 2 0.9; set 1 5 0.1;          (* read -> stat | write (cache hit) *)
  set 2 3 0.95; set 2 5 0.05;        (* stat -> open | write *)
  set 3 4 1.0;                       (* open -> mmap *)
  set 4 5 1.0;                       (* mmap -> write *)
  set 5 6 1.0;                       (* write -> close *)
  set 6 7 1.0;                       (* close -> poll *)
  set 7 0 0.85; set 7 1 0.15;        (* poll -> accept | read (keep-alive) *)
  set 8 9 1.0;                       (* fork -> execve (never in normal data) *)
  set 9 10 1.0;
  set 10 11 1.0;
  set 11 0 1.0;
  Markov_chain.of_matrix alphabet rows

(* The exploit payload: the classic fork/execve/chmod burst. *)
let payload = [| 8; 9; 10 |]

let () =
  let alphabet = Alphabet.of_names syscalls in
  let chain = server_chain alphabet in
  let rng = Prng.create ~seed:3 in
  let training = Markov_chain.generate chain rng ~start:0 ~len:50_000 in

  (* A monitored run: normal traffic with the exploit burst spliced into
     one request. *)
  let normal_run = Markov_chain.generate chain rng ~start:0 ~len:3_000 in
  let attack_at = 1_500 in
  let monitored =
    Trace.insert normal_run ~pos:attack_at (Trace.of_array alphabet payload)
  in

  let window = 6 in
  let stide = Stide.train ~window training in
  let response = Stide.score stide monitored in
  let threshold = 1.0 in

  let alarms =
    Response.over response ~threshold
    |> List.map (fun (i : Response.item) -> i.Response.start)
  in
  Printf.printf
    "stide (window %d) over %d call trace: %d anomalous windows at starts \
     [%s]\n"
    window (Trace.length monitored) (List.length alarms)
    (String.concat "; " (List.map string_of_int alarms));
  Printf.printf "exploit payload injected at position %d (length %d)\n"
    attack_at (Array.length payload);

  (* Aggregate the burst with the locality frame count: one incident. *)
  let lfc = Lfc.apply response ~frame:20 ~min_count:3 ~threshold in
  let incidents = Response.over lfc ~threshold:1.0 in
  (match incidents with
  | [] -> print_endline "LFC: no incident raised"
  | first :: _ ->
      Printf.printf
        "LFC (frame 20, min 3): incident window starting at %d covering %d \
         calls\n"
        first.Response.start first.Response.cover);

  (* Show the offending calls by name. *)
  match alarms with
  | [] -> ()
  | first :: _ ->
      let ctx = Trace.sub monitored ~pos:first ~len:(window + 4) in
      Format.printf "first anomalous window context: %a@." Trace.pp ctx
