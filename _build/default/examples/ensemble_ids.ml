(* Ensemble intrusion detection: the paper's Section 7 deployment
   recipe.  An attack manifests as a minimal foreign sequence of unknown
   size, so Stide alone is unreliable (its window might be too short) —
   the Markov detector catches the attack while Stide corroborates its
   alarms to suppress rare-sequence false alarms.

   Run with: dune exec examples/ensemble_ids.exe *)

open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors

let () =
  let params = Suite.scaled_params ~train_len:120_000 ~background_len:6_000 in
  let suite = Suite.build params in
  let window = 8 and anomaly_size = 5 in

  (* A "production" stream: benign traffic sampled from the same process
     as training — it contains rare sequences but no foreign anomaly. *)
  let deploy = Deployment.deployment_stream suite ~len:40_000 ~seed:77 in

  let markov =
    Trained.train (Registry.find_exn "markov") ~window suite.Suite.training
  in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window suite.Suite.training
  in
  let markov_alarms = False_alarm.on_clean markov deploy in
  let stide_alarms = False_alarm.on_clean stide deploy in
  Printf.printf
    "benign stream of %d windows:\n  markov alarms: %d (rate %.5f)\n  stide  \
     alarms: %d (rate %.5f)\n"
    markov_alarms.False_alarm.windows markov_alarms.False_alarm.alarms
    markov_alarms.False_alarm.rate stide_alarms.False_alarm.alarms
    stide_alarms.False_alarm.rate;

  (* Corroboration: dismiss Markov alarms that Stide does not raise. *)
  let suppression =
    Ensemble.suppress
      ~primary:(Trained.score markov deploy, Trained.alarm_threshold markov)
      ~suppressor:(Trained.score stide deploy, Trained.alarm_threshold stide)
  in
  Printf.printf
    "ensemble: %d of %d markov alarms suppressed by stide corroboration\n"
    suppression.Ensemble.suppressed suppression.Ensemble.primary_alarms;

  (* The attack: a minimal foreign sequence injected into clean
     background.  Both detectors alarm inside the incident span, so the
     conjunctive ensemble keeps the hit. *)
  let test = Suite.stream suite ~anomaly_size ~window in
  let inj = test.Suite.injection in
  let span d = Scoring.incident_response d inj in
  let combined =
    Ensemble.combine Ensemble.All
      [
        (span markov, Trained.alarm_threshold markov);
        (span stide, Trained.alarm_threshold stide);
      ]
  in
  Printf.printf
    "attack stream (MFS size %d): ensemble max response in incident span = \
     %.1f -> %s\n"
    anomaly_size
    (Response.max_score combined)
    (if Response.max_score combined >= 1.0 then "DETECTED" else "missed");

  (* Show a short alarm timeline around the anomaly. *)
  let m_span = span markov and s_span = span stide in
  Printf.printf "\nalarm timeline around position %d (window starts):\n"
    inj.Injector.position;
  Array.iter
    (fun (item : Response.item) ->
      let stide_item =
        Array.find_opt
          (fun (i : Response.item) -> i.Response.start = item.Response.start)
          s_span.Response.items
      in
      let mark score threshold = if score >= threshold then "ALARM" else "-" in
      Printf.printf "  start %5d  markov %-5s  stide %-5s\n" item.Response.start
        (mark item.Response.score (Trained.alarm_threshold markov))
        (match stide_item with
        | Some i -> mark i.Response.score (Trained.alarm_threshold stide)
        | None -> "?"))
    m_span.Response.items
