(* The artifact workflow: generate the evaluation corpus once, persist
   it with its ground truth, train and persist deployment models, and
   monitor a live stream online — the full life-cycle a downstream user
   of this library goes through.

   Run with: dune exec examples/artifact_workflow.exe *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "seqdiv_artifact" in

  (* 1. Generate and persist the corpus (training data + 112 injected
     test streams + manifest with ground truth). *)
  let params = Suite.scaled_params ~train_len:60_000 ~background_len:3_000 in
  let suite = Suite.build params in
  Dataset_io.save suite ~dir;
  Printf.printf "corpus saved to %s (%d test streams)\n" dir
    (Array.length suite.Suite.streams);

  (* 2. Reload it — e.g. on another machine — and verify it evaluates
     identically. *)
  let reloaded = Dataset_io.load ~dir in
  let map s = Experiment.performance_map s (Registry.find_exn "stide") in
  let same =
    Coverage.equal (Coverage.of_map (map suite)) (Coverage.of_map (map reloaded))
  in
  Printf.printf "reloaded corpus reproduces the stide map: %s\n"
    (if same then "yes" else "NO");

  (* 3. Train the deployment pair once and persist the models. *)
  let window = 8 in
  let stide_model = Stide.train ~window reloaded.Suite.training in
  let markov_model = Markov.train ~window reloaded.Suite.training in
  let stide_path = Filename.concat dir "stide.model" in
  let markov_path = Filename.concat dir "markov.model" in
  Model_io.save_stide_file stide_path stide_model;
  Model_io.save_markov_file markov_path markov_model;
  Printf.printf "models saved: %s (%d sequences), %s (%d contexts)\n"
    stide_path
    (Seq_db.cardinal (Stide.db stide_model))
    markov_path
    (Markov.contexts markov_model);

  (* 4. Later: load the stide model and monitor a live stream online. *)
  let restored = Model_io.load_stide_file stide_path in
  let monitor =
    Online.create
      (Trained.train (Registry.find_exn "stide") ~window reloaded.Suite.training)
      ()
  in
  Printf.printf "restored stide model has %d sequences (same as trained: %s)\n"
    (Seq_db.cardinal (Stide.db restored))
    (if Seq_db.cardinal (Stide.db restored) = Seq_db.cardinal (Stide.db stide_model)
     then "yes"
     else "NO");

  (* Feed the attack stream of one suite cell through the monitor. *)
  let test = Suite.stream reloaded ~anomaly_size:5 ~window in
  let trace = test.Suite.injection.Injector.trace in
  let incident_count = ref 0 in
  for i = 0 to Trace.length trace - 1 do
    List.iter
      (function
        | Online.Incident_opened at ->
            incr incident_count;
            Printf.printf "live incident opened at stream position %d\n" at
        | Online.Incident_closed incident ->
            Format.printf "live %a@." Incident.pp incident
        | Online.Window_scored _ -> ())
      (Online.feed monitor (Trace.get trace i))
  done;
  List.iter
    (function
      | Online.Incident_closed incident -> Format.printf "flushed %a@." Incident.pp incident
      | Online.Incident_opened _ | Online.Window_scored _ -> ())
    (Online.flush monitor);
  Printf.printf
    "ground truth: anomaly of size 5 at position %d — %d incident(s) raised\n"
    test.Suite.injection.Injector.position !incident_count
