open Seqdiv_detectors
open Seqdiv_synth

let performance_map_over suite ~injection (module D : Detector.S) =
  let anomaly_sizes = Suite.anomaly_sizes suite in
  let windows = Suite.windows suite in
  (* One model per window, shared across anomaly sizes. *)
  let models =
    List.map
      (fun window ->
        (window, Trained.train (module D) ~window suite.Suite.training))
      windows
  in
  Performance_map.build ~detector:D.name ~anomaly_sizes ~windows
    ~f:(fun ~anomaly_size ~window ->
      let trained = List.assoc window models in
      Scoring.outcome trained (injection ~anomaly_size ~window))

let performance_map suite detector =
  performance_map_over suite
    ~injection:(fun ~anomaly_size ~window ->
      (Suite.stream suite ~anomaly_size ~window).Suite.injection)
    detector

let all_maps suite detectors =
  List.map (fun d -> performance_map suite d) detectors

type relation = {
  left : string;
  right : string;
  left_only : int;
  right_only : int;
  both : int;
  jaccard : float;
  left_subset_of_right : bool;
  right_subset_of_left : bool;
}

let relation left_map right_map =
  let a = Coverage.of_map left_map and b = Coverage.of_map right_map in
  {
    left = Performance_map.detector left_map;
    right = Performance_map.detector right_map;
    left_only = Coverage.cardinal (Coverage.diff a b);
    right_only = Coverage.cardinal (Coverage.diff b a);
    both = Coverage.cardinal (Coverage.inter a b);
    jaccard = Coverage.jaccard a b;
    left_subset_of_right = Coverage.subset a b;
    right_subset_of_left = Coverage.subset b a;
  }

type summary = {
  detector : string;
  capable : int;
  weak : int;
  blind : int;
  capable_fraction : float;
}

let summary m =
  {
    detector = Performance_map.detector m;
    capable = List.length (Performance_map.capable_cells m);
    weak = List.length (Performance_map.weak_cells m);
    blind = List.length (Performance_map.blind_cells m);
    capable_fraction = Performance_map.capable_fraction m;
  }

let pairwise_relations maps =
  let rec pairs = function
    | [] -> []
    | m :: rest -> List.map (fun n -> relation m n) rest @ pairs rest
  in
  pairs maps
