(** Coalescing window-level alarms into incidents.

    A detector emits one response per window, so a single anomalous
    event raises a burst of adjacent alarms (a size-AS anomaly under a
    size-DW window raises up to DW−AS+1 of them, plus boundary effects).
    An operator wants {e incidents}: maximal groups of alarms whose
    covered extents overlap or nearly touch.  This module groups them,
    summarises each group, and matches incident lists against ground
    truth — the unit the T2-style deployment analyses count. *)

open Seqdiv_detectors

type t = {
  first_start : int;  (** window start of the first alarm *)
  last_start : int;  (** window start of the last alarm *)
  cover_from : int;  (** first trace position covered by the incident *)
  cover_to : int;  (** last trace position covered *)
  alarms : int;  (** number of window-level alarms coalesced *)
  peak_score : float;  (** maximum response within the incident *)
}

val of_response : ?gap:int -> Response.t -> threshold:float -> t list
(** Group the alarms of a response (items with [score >= threshold])
    into incidents, in stream order.  Two consecutive alarms belong to
    the same incident when the next alarm's covered extent begins at
    most [gap] positions after the previous alarm's extent ends
    (default [gap = 0]: extents must overlap or touch). *)

val count : ?gap:int -> Response.t -> threshold:float -> int
(** Number of incidents. *)

val covers : t -> int -> bool
(** Whether a trace position falls inside the incident's extent. *)

val matches_ground_truth : t -> position:int -> size:int -> bool
(** Whether the incident's extent intersects the injected anomaly at
    [\[position, position+size-1\]]. *)

val split_by_ground_truth :
  t list -> position:int -> size:int -> t list * t list
(** Partition incidents into (true, false) against one injected
    anomaly. *)

val pp : Format.formatter -> t -> unit
(** Prints like [incident@\[120,131\] alarms=5 peak=1.00]. *)
