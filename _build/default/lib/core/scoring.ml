open Seqdiv_synth

let incident_response trained (inj : Injector.injection) =
  let width = Trained.window trained in
  let lo, hi =
    Injector.incident_span ~position:inj.Injector.position
      ~size:(Array.length inj.Injector.anomaly)
      ~width
  in
  Trained.score_range trained inj.Injector.trace ~lo ~hi

let outcome_of_response trained response =
  Outcome.classify
    ~epsilon:(Trained.maximal_epsilon trained)
    ~max_response:(Seqdiv_detectors.Response.max_score response)

let outcome trained inj =
  outcome_of_response trained (incident_response trained inj)
