module Cell_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type cell = int * int
type t = Cell_set.t

let empty = Cell_set.empty
let of_cells l = Cell_set.of_list l
let of_map m = of_cells (Performance_map.capable_cells m)
let cells t = Cell_set.elements t
let cardinal = Cell_set.cardinal
let mem t c = Cell_set.mem c t
let union = Cell_set.union
let inter = Cell_set.inter
let diff = Cell_set.diff
let subset = Cell_set.subset
let equal = Cell_set.equal

let jaccard a b =
  let u = cardinal (union a b) in
  if u = 0 then 1.0 else float_of_int (cardinal (inter a b)) /. float_of_int u

let gain ~base ~added = cardinal (diff added base)
