(** Scoring a trained detector against an injected test stream
    (Section 5.5).

    The incident span comprises every window that contains at least one
    element of the injected anomaly (Figure 2); the detector's outcome
    for the cell is classified from its maximum response inside that
    span. *)

open Seqdiv_detectors
open Seqdiv_synth

val incident_response : Trained.t -> Injector.injection -> Response.t
(** The detector's responses restricted to the incident span of the
    injection. *)

val outcome_of_response : Trained.t -> Response.t -> Outcome.t
(** Classify a (typically span-restricted) response using the
    detector's maximal-response slack. *)

val outcome : Trained.t -> Injector.injection -> Outcome.t
(** [outcome_of_response] of [incident_response]: the paper's
    blind/weak/capable verdict for one detector on one test stream. *)
