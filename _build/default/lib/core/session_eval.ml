open Seqdiv_stream
open Seqdiv_detectors

type confusion = {
  true_positives : int;
  false_negatives : int;
  false_positives : int;
  true_negatives : int;
}

let detection_rate c =
  Seqdiv_util.Stats.rate ~count:c.true_positives
    ~total:(c.true_positives + c.false_negatives)

let false_alarm_rate c =
  Seqdiv_util.Stats.rate ~count:c.false_positives
    ~total:(c.false_positives + c.true_negatives)

let session_anomalous trained ~threshold session =
  if Trace.length session < Trained.window trained then false
  else Response.max_score (Trained.score trained session) >= threshold

let evaluate trained ?threshold ~normal ~anomalous () =
  let threshold =
    match threshold with
    | Some t -> t
    | None -> Trained.alarm_threshold trained
  in
  let flagged corpus =
    List.fold_left
      (fun acc session ->
        if session_anomalous trained ~threshold session then acc + 1 else acc)
      0 (Sessions.traces corpus)
  in
  let anomalous_flagged = flagged anomalous in
  let normal_flagged = flagged normal in
  {
    true_positives = anomalous_flagged;
    false_negatives = Sessions.count anomalous - anomalous_flagged;
    false_positives = normal_flagged;
    true_negatives = Sessions.count normal - normal_flagged;
  }
