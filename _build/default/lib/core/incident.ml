open Seqdiv_detectors

type t = {
  first_start : int;
  last_start : int;
  cover_from : int;
  cover_to : int;
  alarms : int;
  peak_score : float;
}

let of_item (item : Response.item) =
  {
    first_start = item.Response.start;
    last_start = item.Response.start;
    cover_from = item.Response.start;
    cover_to = item.Response.start + item.Response.cover - 1;
    alarms = 1;
    peak_score = item.Response.score;
  }

let extend incident (item : Response.item) =
  {
    incident with
    last_start = item.Response.start;
    cover_to =
      Stdlib.max incident.cover_to (item.Response.start + item.Response.cover - 1);
    alarms = incident.alarms + 1;
    peak_score = Float.max incident.peak_score item.Response.score;
  }

let of_response ?(gap = 0) response ~threshold =
  assert (gap >= 0);
  let alarms = Response.over response ~threshold in
  let rec group current acc = function
    | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
    | (item : Response.item) :: rest -> (
        match current with
        | None -> group (Some (of_item item)) acc rest
        | Some c ->
            if item.Response.start <= c.cover_to + 1 + gap then
              group (Some (extend c item)) acc rest
            else group (Some (of_item item)) (c :: acc) rest)
  in
  group None [] alarms

let count ?gap response ~threshold =
  List.length (of_response ?gap response ~threshold)

let covers t position = position >= t.cover_from && position <= t.cover_to

let matches_ground_truth t ~position ~size =
  t.cover_from <= position + size - 1 && t.cover_to >= position

let split_by_ground_truth incidents ~position ~size =
  List.partition (fun i -> matches_ground_truth i ~position ~size) incidents

let pp ppf t =
  Format.fprintf ppf "incident@@[%d,%d] alarms=%d peak=%.2f" t.cover_from
    t.cover_to t.alarms t.peak_score
