(** Per-session classification (experiment E4).

    A session is classified anomalous when the detector's maximum
    response over it reaches the alarm threshold.  Against a corpus of
    labelled sessions this yields the standard confusion matrix — the
    granularity at which intrusion-detection systems are actually
    judged, and the setting where the paper's coverage/false-alarm
    trade-offs become operational error rates. *)

open Seqdiv_stream

type confusion = {
  true_positives : int;  (** anomalous sessions flagged *)
  false_negatives : int;  (** anomalous sessions missed *)
  false_positives : int;  (** normal sessions flagged *)
  true_negatives : int;  (** normal sessions passed *)
}

val detection_rate : confusion -> float
(** TP / (TP + FN); 0 when no anomalous sessions. *)

val false_alarm_rate : confusion -> float
(** FP / (FP + TN); 0 when no normal sessions. *)

val session_anomalous : Trained.t -> threshold:float -> Trace.t -> bool
(** Whether a single session trips the detector at the threshold.
    Sessions shorter than the detector's window never trip. *)

val evaluate :
  Trained.t -> ?threshold:float -> normal:Sessions.t ->
  anomalous:Sessions.t -> unit -> confusion
(** Classify every session of both corpora.  [threshold] defaults to the
    detector's own alarm threshold (the paper's threshold-of-1
    policy). *)
