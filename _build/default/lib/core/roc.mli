(** Detection/false-alarm trade-off curves.

    The paper fixes the detection threshold at 1 to compare intrinsic
    abilities; this module sweeps the threshold to expose the trade-off
    behind that choice — in particular the Section 7 observation that
    lowering the L&B threshold far enough to catch a minimal foreign
    sequence floods the detector with false alarms, and increasingly so
    as the window grows (experiment T3). *)

open Seqdiv_detectors

type point = {
  threshold : float;
  hit_rate : float;  (** fraction of injected streams detected *)
  fa_rate : float;  (** false-alarm rate on anomaly-free responses *)
}

val sweep :
  clean:Response.t ->
  spans:Response.t list ->
  thresholds:float list ->
  point list
(** For each threshold: [hit_rate] is the fraction of span-restricted
    responses whose maximum reaches the threshold; [fa_rate] is the
    alarm rate over the anomaly-free response.  Thresholds are reported
    in the given order.  Requires a non-empty [spans] list. *)

val default_thresholds : float list
(** A 101-point grid over [\[0, 1\]]. *)

val auc : point list -> float
(** Area under the (fa_rate, hit_rate) curve by trapezoid rule, after
    sorting by fa_rate and anchoring at (0,0) and (1,1).  1.0 is a
    perfect detector. *)
