open Seqdiv_stream
open Seqdiv_detectors

type event =
  | Window_scored of Response.item
  | Incident_opened of int
  | Incident_closed of Incident.t

type t = {
  trained : Trained.t;
  threshold : float;
  window : int;
  alphabet : Alphabet.t;
  buffer : int array;  (* ring of the last [window] symbols *)
  mutable consumed : int;
  mutable open_incident : Incident.t option;
  mutable closed : Incident.t list;  (* newest first *)
}

let create trained ?threshold () =
  let threshold =
    match threshold with
    | Some thr -> thr
    | None -> Trained.alarm_threshold trained
  in
  let window = Trained.window trained in
  {
    trained;
    threshold;
    window;
    (* The detector does not expose its training alphabet; symbols are
       validated when the window trace is built, against the widest
       alphabet, and again by the model's own lookup tables. *)
    alphabet = Alphabet.make 255;
    buffer = Array.make window 0;
    consumed = 0;
    open_incident = None;
    closed = [];
  }

let position t = t.consumed

let incidents t = List.rev t.closed

let current_window t =
  (* Oldest-first view of the ring buffer. *)
  Array.init t.window (fun i ->
      t.buffer.((t.consumed + i) mod t.window))

let item_of_score t score =
  {
    Response.start = t.consumed - t.window;
    cover = t.window;
    score;
  }

let grow_incident incident (item : Response.item) =
  {
    incident with
    Incident.last_start = item.Response.start;
    cover_to =
      Stdlib.max incident.Incident.cover_to
        (item.Response.start + item.Response.cover - 1);
    alarms = incident.Incident.alarms + 1;
    peak_score = Float.max incident.Incident.peak_score item.Response.score;
  }

let incident_of_item (item : Response.item) =
  {
    Incident.first_start = item.Response.start;
    last_start = item.Response.start;
    cover_from = item.Response.start;
    cover_to = item.Response.start + item.Response.cover - 1;
    alarms = 1;
    peak_score = item.Response.score;
  }

let close_incident t =
  match t.open_incident with
  | None -> []
  | Some incident ->
      t.open_incident <- None;
      t.closed <- incident :: t.closed;
      [ Incident_closed incident ]

let feed t symbol =
  t.buffer.(t.consumed mod t.window) <- symbol;
  t.consumed <- t.consumed + 1;
  if t.consumed < t.window then []
  else begin
    let window_trace = Trace.of_array t.alphabet (current_window t) in
    let response =
      Trained.score_range t.trained window_trace ~lo:0 ~hi:0
    in
    let score =
      if Response.length response = 0 then 0.0
      else response.Response.items.(0).Response.score
    in
    let item = item_of_score t score in
    let scored = Window_scored item in
    if score >= t.threshold then
      match t.open_incident with
      | Some incident
        when item.Response.start <= incident.Incident.cover_to + 1 ->
          t.open_incident <- Some (grow_incident incident item);
          [ scored ]
      | Some _ ->
          let closed = close_incident t in
          t.open_incident <- Some (incident_of_item item);
          (scored :: closed) @ [ Incident_opened item.Response.start ]
      | None ->
          t.open_incident <- Some (incident_of_item item);
          [ scored; Incident_opened item.Response.start ]
    else
      match t.open_incident with
      | Some incident when item.Response.start > incident.Incident.cover_to ->
          scored :: close_incident t
      | Some _ | None -> [ scored ]
  end

let flush t = close_incident t
