lib/core/online.ml: Alphabet Array Float Incident List Response Seqdiv_detectors Seqdiv_stream Stdlib Trace Trained
