lib/core/rare_anomaly.mli: Detector Injector Performance_map Seqdiv_detectors Seqdiv_synth Suite
