lib/core/trained.mli: Detector Response Seqdiv_detectors Seqdiv_stream Trace
