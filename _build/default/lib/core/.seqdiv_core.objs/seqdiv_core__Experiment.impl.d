lib/core/experiment.ml: Coverage Detector List Performance_map Scoring Seqdiv_detectors Seqdiv_synth Suite Trained
