lib/core/coverage.ml: Performance_map Set
