lib/core/scoring.mli: Injector Outcome Response Seqdiv_detectors Seqdiv_synth Trained
