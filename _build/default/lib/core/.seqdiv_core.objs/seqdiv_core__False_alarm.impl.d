lib/core/false_alarm.ml: Array Injector Response Seqdiv_detectors Seqdiv_synth Seqdiv_util Trained
