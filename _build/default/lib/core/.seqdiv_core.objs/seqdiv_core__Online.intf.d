lib/core/online.mli: Incident Response Seqdiv_detectors Trained
