lib/core/roc.ml: False_alarm List Response Seqdiv_detectors
