lib/core/experiment.mli: Detector Injector Performance_map Seqdiv_detectors Seqdiv_synth Suite
