lib/core/ablation.mli: Injector Neural Seqdiv_detectors Seqdiv_stream Seqdiv_synth Suite Trace
