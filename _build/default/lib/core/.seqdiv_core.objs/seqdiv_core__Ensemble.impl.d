lib/core/ensemble.ml: Array Int List Map Response Seqdiv_detectors String
