lib/core/incident.mli: Format Response Seqdiv_detectors
