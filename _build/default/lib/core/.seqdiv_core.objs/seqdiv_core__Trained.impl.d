lib/core/trained.ml: Detector Seqdiv_detectors
