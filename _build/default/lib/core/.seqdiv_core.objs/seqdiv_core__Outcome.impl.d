lib/core/outcome.ml: Float Format Printf
