lib/core/deployment.mli: Ensemble False_alarm Seqdiv_stream Seqdiv_synth Suite Trace
