lib/core/rare_anomaly.ml: Array Experiment Generator Injector List Printf Rare_seq Seqdiv_synth Suite
