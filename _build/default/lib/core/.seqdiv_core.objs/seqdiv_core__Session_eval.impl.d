lib/core/session_eval.ml: List Response Seqdiv_detectors Seqdiv_stream Seqdiv_util Sessions Trace Trained
