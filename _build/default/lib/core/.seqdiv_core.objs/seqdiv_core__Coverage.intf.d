lib/core/coverage.mli: Performance_map
