lib/core/outcome.mli: Format
