lib/core/false_alarm.mli: Injector Response Seqdiv_detectors Seqdiv_stream Seqdiv_synth Trace Trained
