lib/core/performance_map.mli: Outcome
