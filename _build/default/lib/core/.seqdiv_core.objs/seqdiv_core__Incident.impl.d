lib/core/incident.ml: Float Format List Response Seqdiv_detectors Stdlib
