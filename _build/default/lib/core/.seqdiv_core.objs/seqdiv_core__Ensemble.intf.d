lib/core/ensemble.mli: Response Seqdiv_detectors
