lib/core/scoring.ml: Array Injector Outcome Seqdiv_detectors Seqdiv_synth Trained
