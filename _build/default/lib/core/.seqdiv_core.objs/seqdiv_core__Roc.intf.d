lib/core/roc.mli: Response Seqdiv_detectors
