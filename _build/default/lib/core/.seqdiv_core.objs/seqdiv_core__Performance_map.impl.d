lib/core/performance_map.ml: Array List Outcome
