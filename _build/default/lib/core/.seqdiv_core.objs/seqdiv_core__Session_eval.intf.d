lib/core/session_eval.mli: Seqdiv_stream Sessions Trace Trained
