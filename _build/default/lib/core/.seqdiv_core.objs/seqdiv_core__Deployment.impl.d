lib/core/deployment.ml: Ensemble False_alarm Lane_brodley List Markov_chain Outcome Prng Registry Response Scoring Seqdiv_detectors Seqdiv_synth Seqdiv_util Suite Trained
