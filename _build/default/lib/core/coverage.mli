(** Detection-coverage sets and their algebra (Sections 7–8).

    The paper's combination arguments are set-theoretic: Stide's
    coverage is a {e subset} of the Markov detector's (so Stide can
    serve as a false-alarm suppressor); Stide ∪ L&B adds nothing over
    Stide alone (so that pairing buys no detection).  A coverage is the
    set of (anomaly size, detector window) cells at which a detector is
    capable. *)

type cell = int * int
(** [(anomaly_size, window)]. *)

type t

val empty : t
val of_cells : cell list -> t
val of_map : Performance_map.t -> t
(** Capable cells of a performance map. *)

val cells : t -> cell list
(** Ascending (by anomaly size, then window). *)

val cardinal : t -> int
val mem : t -> cell -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b]: every cell of [a] is in [b]. *)

val equal : t -> t -> bool

val jaccard : t -> t -> float
(** |a ∩ b| / |a ∪ b|; 1 when both are empty.  A scalar measure of how
    much two detectors' coverages overlap — high Jaccard means diversity
    buys little. *)

val gain : base:t -> added:t -> int
(** [gain ~base ~added = cardinal (diff added base)]: how many new cells
    combining [added] with [base] contributes — the paper's notion of
    the detection advantage of a pairing. *)
