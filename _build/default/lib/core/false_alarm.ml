open Seqdiv_detectors
open Seqdiv_synth

type stats = { windows : int; alarms : int; rate : float }

let of_response r ~threshold =
  let windows = Response.length r in
  let alarms = Response.count_over r ~threshold in
  let rate = Seqdiv_util.Stats.rate ~count:alarms ~total:windows in
  { windows; alarms; rate }

let on_clean trained trace =
  let r = Trained.score trained trace in
  of_response r ~threshold:(Trained.alarm_threshold trained)

let outside_span trained (inj : Injector.injection) =
  let r = Trained.score trained inj.Injector.trace in
  let width = Trained.window trained in
  let lo, hi =
    Injector.incident_span ~position:inj.Injector.position
      ~size:(Array.length inj.Injector.anomaly)
      ~width
  in
  let threshold = Trained.alarm_threshold trained in
  let windows = ref 0 and alarms = ref 0 in
  Array.iter
    (fun (item : Response.item) ->
      let in_span = item.Response.start >= lo && item.Response.start <= hi in
      if not in_span then begin
        incr windows;
        if item.Response.score >= threshold then incr alarms
      end)
    r.Response.items;
  {
    windows = !windows;
    alarms = !alarms;
    rate = Seqdiv_util.Stats.rate ~count:!alarms ~total:!windows;
  }
