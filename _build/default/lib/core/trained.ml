open Seqdiv_detectors

type t =
  | Trained :
      (module Detector.S with type model = 'm) * 'm
      -> t

let train (module D : Detector.S) ~window trace =
  Trained ((module D), D.train ~window trace)

let name (Trained ((module D), _)) = D.name
let window (Trained ((module D), m)) = D.window m
let maximal_epsilon (Trained ((module D), _)) = D.maximal_epsilon
let alarm_threshold t = 1.0 -. maximal_epsilon t
let score (Trained ((module D), m)) trace = D.score m trace

let score_range (Trained ((module D), m)) trace ~lo ~hi =
  D.score_range m trace ~lo ~hi
