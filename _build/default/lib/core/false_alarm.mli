(** False-alarm measurement (Section 7).

    A false alarm is an alarm raised on data that contains no anomaly —
    or, for an injected stream, an alarm outside the incident span.
    The paper predicts that the Markov detector, because it responds
    maximally to rare sequences as well as foreign ones, produces more
    false alarms than Stide on realistic (rare-containing) data; the T2
    experiment quantifies that and the saving from the Stide-suppressor
    ensemble. *)

open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth

type stats = {
  windows : int;  (** responses examined *)
  alarms : int;  (** responses at or above the threshold *)
  rate : float;  (** [alarms / windows] (0 when no windows) *)
}

val of_response : Response.t -> threshold:float -> stats
(** Alarm statistics of a response stream at a threshold. *)

val on_clean : Trained.t -> Trace.t -> stats
(** Score an anomaly-free trace and count alarms at the detector's own
    alarm threshold — every alarm is false by construction. *)

val outside_span : Trained.t -> Injector.injection -> stats
(** Score an injected trace and count alarms outside the incident span
    (alarms inside the span are the signal, not noise). *)
