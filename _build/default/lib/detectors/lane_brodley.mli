(** The Lane & Brodley detector (Lane & Brodley 1997).

    An instance-based detector: the model stores the distinct windows of
    the training data, and a test window is scored by its similarity to
    the {e most similar} stored window.  The similarity of two
    equal-length sequences walks the positions in parallel, awarding a
    run-length weight to each match — a match extends the current run of
    adjacent matches and contributes the run length, while a mismatch
    resets the run (Section 5.2, Figure 7).  Identical sequences of
    length DW therefore score DW·(DW+1)/2 and completely disjoint ones
    score 0.

    The anomaly response is [1 − max_sim / sim_max], so a test window
    scores 1 only when it matches no stored window at any position —
    which is why the paper finds L&B blind to minimal foreign sequences:
    an MFS differing from a normal sequence in one terminal position
    keeps a long match run and scores close to normal. *)

include Detector.S

val similarity : int array -> int array -> int
(** Raw L&B similarity of two equal-length sequences.
    @raise Invalid_argument on a length mismatch. *)

val max_similarity : int -> int
(** [max_similarity dw = dw * (dw + 1) / 2], the score of identical
    sequences. *)

val instances : model -> int
(** Number of stored training instances (distinct windows). *)

val best_match : model -> int array -> int array * int
(** The stored instance most similar to the given window and its raw
    similarity.  Requires the window length to equal the model's
    window. *)
