(** Detector responses.

    Every detector reduces a test trace to a stream of scored items.  A
    score lies in [\[0, 1\]]: 0 means "completely normal", 1 means
    "maximally anomalous" (Section 5.5).  Each item records the extent
    of trace positions that produced it — [cover] symbols starting at
    [start] — so the incident span can be computed uniformly across
    detectors with different window semantics (Stide and L&B analyse a
    [DW]-window; the Markov and neural detectors analyse a
    [DW−1]-context plus the predicted element, which together also span
    [DW] positions). *)

type item = {
  start : int;  (** first trace position covered *)
  cover : int;  (** number of positions covered (> 0) *)
  score : float;  (** anomaly score in [\[0, 1\]] *)
}

type t = {
  detector : string;  (** name of the producing detector *)
  window : int;  (** the detector-window parameter DW *)
  items : item array;  (** ascending by [start] *)
}

val make : detector:string -> window:int -> item array -> t
(** Validates scores and extents.  @raise Invalid_argument on a score
    outside [\[0, 1\]], a non-positive cover, or unsorted starts. *)

val length : t -> int
(** Number of items. *)

val max_score : t -> float
(** Largest score, 0 for an empty response. *)

val over : t -> threshold:float -> item list
(** Items with [score >= threshold], in order. *)

val count_over : t -> threshold:float -> int
(** Number of items with [score >= threshold]. *)

val restrict : t -> lo:int -> hi:int -> t
(** Items whose covered range [\[start, start+cover-1\]] intersects
    [\[lo, hi\]]. *)

val binarize : t -> threshold:float -> t
(** Map scores to exactly 0 or 1 by the threshold (alarm iff
    [score >= threshold]). *)
