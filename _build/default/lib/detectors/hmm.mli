(** Hidden-Markov-model detector (the "HMM" alternative data model of
    Warrender, Forrest & Pearlmutter 1999).

    A first-order HMM with a configurable number of hidden states is
    trained on (a prefix of) the training stream with Baum–Welch
    (scaled forward–backward EM).  Scoring follows the Markov/NN
    convention of this study: for each window, the model filters the
    DW−1 context symbols with the forward algorithm and scores
    [1 − P̂(next | context)], the marginal next-symbol probability under
    the learned model.

    Included as an extension (experiment E1): with at least as many
    states as symbols the HMM learns the generating cycle and behaves
    like the Markov detector on the paper's data — while being the only
    detector here whose model is {e smaller} than the observation
    alphabet when so configured, which degrades gracefully (states
    merge, probabilities blur; see the contract tests).

    Not part of the paper's four studied detectors; see
    {!Registry.extended}. *)

open Seqdiv_stream

type params = {
  states : int;  (** hidden states; 0 means "alphabet size" *)
  iterations : int;  (** Baum–Welch iterations *)
  train_limit : int;  (** Baum–Welch runs on at most this many symbols *)
  seed : int;  (** initialisation seed *)
}

val default_params : params
(** states = alphabet size, 12 iterations, 20,000-symbol training
    prefix, seed 17. *)

include Detector.S

val train_with : params -> window:int -> Trace.t -> model
(** {!train} with explicit hyper-parameters. *)

val params : model -> params
(** The hyper-parameters of a trained model (with [states] resolved). *)

val log_likelihood : model -> Trace.t -> float
(** Scaled-forward log-likelihood of a trace under the model, for
    convergence tests. *)

val predict : model -> int array -> float array
(** Marginal distribution of the next symbol after filtering the given
    context (possibly empty). *)
