let apply (r : Response.t) ~frame ~min_count ~threshold =
  assert (min_count >= 1 && min_count <= frame);
  let items = r.Response.items in
  let in_frame = ref 0 in
  let out =
    Array.mapi
      (fun i (item : Response.item) ->
        let hit = if item.Response.score >= threshold then 1 else 0 in
        in_frame := !in_frame + hit;
        if i >= frame then begin
          let leaving = items.(i - frame) in
          if leaving.Response.score >= threshold then decr in_frame
        end;
        let first = Stdlib.max 0 (i - frame + 1) in
        let start = items.(first).Response.start in
        let cover =
          item.Response.start + item.Response.cover - start
        in
        let score = if !in_frame >= min_count then 1.0 else 0.0 in
        { Response.start; cover; score })
      items
  in
  Response.make ~detector:(r.Response.detector ^ "+lfc") ~window:r.Response.window
    out

let alarm_count r ~frame ~min_count ~threshold =
  let aggregated = apply r ~frame ~min_count ~threshold in
  Response.count_over aggregated ~threshold:1.0
