(** The neural-network-based detector (Debar, Becker & Siboni 1992).

    A multi-layer feed-forward network learns to predict the next
    element from the preceding DW−1 elements: inputs are the one-hot
    encoded context, the output layer is a softmax over the alphabet,
    and training minimises weighted cross-entropy over the distinct
    (context → next) pairs of the training stream (weights proportional
    to their occurrence counts, which is equivalent to training on the
    raw stream).  The anomaly response is [1 − P̂(next | context)] — a
    function approximation of the Markov detector's conditional
    probabilities, which is exactly how the paper characterises it
    (Section 5.2).

    Because a softmax never emits an exact zero, the detector's
    {!maximal_epsilon} is larger than the Markov detector's, and its
    ability to reach maximal responses depends on the training
    hyper-parameters — the sensitivity the paper reports in Section 7
    and which the A2 ablation reproduces. *)

open Seqdiv_stream

type params = {
  hidden : int;  (** hidden-layer width *)
  epochs : int;  (** full-batch gradient iterations *)
  learning_rate : float;  (** the "learning constant" *)
  momentum : float;  (** the "momentum constant" *)
  seed : int;  (** weight-initialisation seed *)
}

val default_params : params
(** 24 hidden units, 400 epochs, learning rate 0.5, momentum 0.9,
    seed 42 — sufficient for the network to mimic the Markov detector on
    the paper's data. *)

include Detector.S

val train_with : params -> window:int -> Trace.t -> model
(** {!train} with explicit hyper-parameters ({!train} uses
    {!default_params}). *)

val params : model -> params
(** Hyper-parameters the model was trained with. *)

val predict : model -> int array -> float array
(** Softmax distribution over the next symbol given a context of
    [window − 1] symbols. *)

val training_loss : model -> float
(** Final weighted cross-entropy, for convergence diagnostics and the
    hyper-parameter ablation. *)
