lib/detectors/model_io.mli: Markov Stide
