lib/detectors/hmm.mli: Detector Seqdiv_stream Trace
