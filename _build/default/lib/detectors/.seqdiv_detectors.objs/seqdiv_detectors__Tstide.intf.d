lib/detectors/tstide.mli: Detector Seq_db Seqdiv_stream Trace
