lib/detectors/stide.ml: Array Detector Response Seq_db Seqdiv_stream Stdlib Trace
