lib/detectors/lfc.mli: Response
