lib/detectors/stide.mli: Detector Seq_db Seqdiv_stream
