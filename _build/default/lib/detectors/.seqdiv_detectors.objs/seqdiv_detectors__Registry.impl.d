lib/detectors/registry.ml: Detector Hmm Lane_brodley List Markov Neural Printf Stide String Tstide
