lib/detectors/response.mli:
