lib/detectors/detector.mli: Response Seqdiv_stream Trace
