lib/detectors/lane_brodley.mli: Detector
