lib/detectors/model_io.ml: Array Buffer Fun List Markov Printf Scanf Seq_db Seqdiv_stream Stdlib Stide String Trace
