lib/detectors/response.ml: Array Float List Seq
