lib/detectors/registry.mli: Detector
