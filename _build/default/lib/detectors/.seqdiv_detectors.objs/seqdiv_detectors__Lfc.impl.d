lib/detectors/lfc.ml: Array Response Stdlib
