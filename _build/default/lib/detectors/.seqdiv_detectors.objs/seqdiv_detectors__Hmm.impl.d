lib/detectors/hmm.ml: Alphabet Array Detector Float Prng Response Seqdiv_stream Seqdiv_util Stdlib Trace
