lib/detectors/markov.ml: Alphabet Array Detector Hashtbl List Response Seqdiv_stream Stdlib String Trace
