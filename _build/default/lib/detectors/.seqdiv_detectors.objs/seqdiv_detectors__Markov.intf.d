lib/detectors/markov.mli: Detector
