lib/detectors/neural.ml: Alphabet Array Detector Float Hashtbl List Matrix Option Prng Response Seqdiv_stream Seqdiv_util Stdlib Trace
