lib/detectors/lane_brodley.ml: Array Detector List Response Seq_db Seqdiv_stream Stdlib Trace
