lib/detectors/neural.mli: Detector Seqdiv_stream Trace
