lib/detectors/detector.ml: Response Seqdiv_stream Stdlib Trace
