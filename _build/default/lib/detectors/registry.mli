(** The roster of detectors under study, as first-class modules.

    The evaluation harness, CLI and benchmarks iterate over this list so
    that adding a detector to the study means adding it here once. *)

val all : Detector.t list
(** The paper's four studied detectors — markov, lnb, nn, stide (use
    {!find} when a specific one is wanted). *)

val extended : Detector.t list
(** {!all} plus the extension detectors (t-stide and the HMM from
    Warrender et al. 1999) evaluated in experiment E1. *)

val names : string list
(** Names of {!extended}, same order. *)

val find : string -> Detector.t option
(** Look a detector up by name (searches {!extended}). *)

val find_exn : string -> Detector.t
(** @raise Invalid_argument on an unknown name, listing valid names. *)
