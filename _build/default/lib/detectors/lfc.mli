(** Stide's locality frame count (LFC) post-processor (Warrender et al.
    1999).

    The paper deliberately sets the LFC aside when measuring intrinsic
    detection ability (Section 5.5); it is provided here for the A1
    ablation, which quantifies what the noise-suppression stage adds and
    costs.  The LFC slides a frame of the most recent [frame] responses
    and raises an aggregated alarm when at least [min_count] of them are
    alarms at the given threshold. *)

val apply :
  Response.t -> frame:int -> min_count:int -> threshold:float -> Response.t
(** [apply r ~frame ~min_count ~threshold] produces one item per input
    item: score 1 when the frame ending at that item contains at least
    [min_count] input scores [>= threshold], else 0.  Item extents are
    widened to cover the whole frame.  Requires
    [1 <= min_count <= frame]. *)

val alarm_count :
  Response.t -> frame:int -> min_count:int -> threshold:float -> int
(** Number of aggregated alarms [apply] would raise. *)
