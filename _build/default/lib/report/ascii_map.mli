(** Text rendering of performance maps in the style of the paper's
    Figures 3–6.

    The x-axis is the anomaly size (with the undefined size-1 column
    shown as ['?']), the y-axis the detector window, largest at the top
    as in the paper.  ['*'] marks a capable cell (the paper's stars),
    ['o'] a weak cell, ['.'] a blind cell. *)

open Seqdiv_core

val render : Performance_map.t -> string
(** Multi-line rendering with axes, legend and the detector's name. *)

val render_compact : Performance_map.t -> string
(** Rows of outcome glyphs only (one row per window, descending), for
    diffing maps in tests. *)

val print : Performance_map.t -> unit
(** Write {!render} to standard output. *)
