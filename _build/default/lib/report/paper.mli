(** Paper-shaped renderings of every experiment: one function per
    figure/table of the reproduction (see DESIGN.md §3).  These are the
    rows/series the benchmark harness and the CLI print. *)

open Seqdiv_core
open Seqdiv_synth

val figure2 : Suite.t -> window:int -> anomaly_size:int -> string
(** The boundary-sequence / incident-span illustration: the injected
    stream around the anomaly, with the anomaly elements marked [F], the
    background elements involved in boundary sequences marked [+], and
    the incident-span extent reported. *)

val figure7 : unit -> string
(** The L&B similarity worked example: two size-5 command sequences,
    identical (similarity 15) and differing in the final element
    (similarity 10). *)

val figure_map : Performance_map.t -> string
(** One of Figures 3–6: the rendered performance map of a detector. *)

val table1 : Performance_map.t list -> string
(** T1: per-detector outcome counts and all pairwise coverage
    relations, including the subset facts behind the paper's
    combination arguments. *)

val table2 : Deployment.suppressor_report -> string
(** T2: false alarms per detector on a rare-containing deployment
    stream, the Markov∧Stide suppression partition, and whether the
    ensemble retains the hit. *)

val table3 : Deployment.lnb_threshold_point list -> string
(** T3: L&B threshold lowering — per window, the threshold needed to
    catch the anomaly, whether it is caught, and the false-alarm rate
    paid. *)

val ablation1 : Ablation.lfc_point list -> string
(** A1: Stide with and without the locality frame count. *)

val ablation2 : Ablation.nn_point list -> string
(** A2: neural-network hyper-parameter sensitivity. *)

val ablation3 : Ablation.alphabet_point list -> string
(** A3: alphabet-size invariance of the map shapes. *)

val ablation4 : Ablation.rare_point list -> string
(** A4: sensitivity of the rare-sequence threshold. *)

val extension1 : paper_maps:Performance_map.t list ->
  extension_maps:Performance_map.t list -> string
(** E1: performance maps of the extension detectors (t-stide, HMM) and
    their coverage relations against the paper's four. *)

val extension2 : Performance_map.t list -> string
(** E2: the rare-anomaly maps — per-detector outcome counts over the
    AS × DW grid when the injected anomaly is a rare (present) sequence
    instead of a foreign one. *)

val ablation6 : Ablation.window_point list -> string
(** A6: Stide's detection-coverage vs false-alarm trade-off as the
    window grows — the window-selection question of Tan & Maxion 2002
    ("Why 6?"). *)

val extension3 : Ablation.seed_point list -> string
(** E3: map-shape invariance across PRNG seeds. *)

val ablation7 : Ablation.deviation_point list -> string
(** A7: the deviation-rate band within which minimal foreign sequences
    are constructible and the evaluation suite builds. *)

val ablation8 : Ablation.smoothing_point list -> string
(** A8: Laplace smoothing of the Markov detector vs the
    maximal-response criterion. *)

val extension4 : (string * Session_eval.confusion) list -> string
(** E4: per-session classification — detection and false-alarm rates at
    the granularity deployed systems are judged by. *)
