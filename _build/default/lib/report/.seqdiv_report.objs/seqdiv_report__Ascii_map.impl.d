lib/report/ascii_map.ml: Buffer List Outcome Performance_map Printf Seqdiv_core String
