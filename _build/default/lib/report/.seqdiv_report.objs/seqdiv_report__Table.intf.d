lib/report/table.mli:
