lib/report/ascii_plot.ml: Array Buffer Char Float List Printf Stdlib String
