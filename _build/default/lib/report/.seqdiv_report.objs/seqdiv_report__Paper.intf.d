lib/report/paper.mli: Ablation Deployment Performance_map Seqdiv_core Seqdiv_synth Session_eval Suite
