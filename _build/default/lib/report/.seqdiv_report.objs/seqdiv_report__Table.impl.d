lib/report/table.ml: Buffer List Stdlib String
