lib/report/ascii_map.mli: Performance_map Seqdiv_core
