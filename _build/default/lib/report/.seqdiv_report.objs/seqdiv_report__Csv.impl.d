lib/report/csv.ml: Buffer Fun List Outcome Performance_map Printf Seqdiv_core String
