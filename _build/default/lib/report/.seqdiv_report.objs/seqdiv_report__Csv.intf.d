lib/report/csv.mli: Seqdiv_core
