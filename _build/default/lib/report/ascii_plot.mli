(** Minimal ASCII line charts for the experiment series (T3, A6, ROC
    curves) — enough to see a trend or a knee in a terminal without any
    plotting dependency. *)

val render :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  (float * float) list -> string
(** Scatter the points onto a [width × height] character grid (defaults
    60 × 16), with min/max annotations on both axes.  Points are marked
    ['*']; multiple points in one cell collapse.  Requires at least one
    point; a degenerate (constant) axis is widened artificially so the
    plot stays drawable. *)

val render_series :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  (string * (float * float) list) list -> string
(** Overlay up to 9 series, marked ['a'], ['b'], … with a legend line
    mapping marks to series names.  Later series overwrite earlier ones
    where they collide. *)
