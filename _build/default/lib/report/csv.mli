(** Minimal CSV export (RFC-4180-style quoting) for carrying results
    into external plotting tools. *)

val escape : string -> string
(** Quote a field when it contains a comma, quote or newline. *)

val row : string list -> string
(** One CSV line (no trailing newline). *)

val of_rows : header:string list -> string list list -> string
(** Header plus rows, newline-terminated. *)

val map_rows : Seqdiv_core.Performance_map.t -> string list list
(** One row per cell: detector, anomaly size, window, outcome,
    max response. *)

val write_file : string -> header:string list -> string list list -> unit
(** Write a CSV file. *)
