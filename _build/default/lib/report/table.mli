(** Plain-text tables with aligned columns, used by the CLI and the
    benchmark harness to print the paper-shaped result rows. *)

type t

val make : columns:string list -> t
(** A table with the given column headers.  Requires at least one
    column. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument when the cell count does not
    match the column count. *)

val to_string : t -> string
(** Render with a header rule and space-padded columns. *)

val print : t -> unit
(** [print t] writes [to_string t] to standard output. *)
