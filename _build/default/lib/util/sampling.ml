type t = { probs : float array; cumulative : float array }

let of_weights w =
  let n = Array.length w in
  assert (n > 0);
  Array.iter (fun x -> assert (x >= 0.0)) w;
  let total = Array.fold_left ( +. ) 0.0 w in
  assert (total > 0.0);
  let probs = Array.map (fun x -> x /. total) w in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. probs.(i);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { probs; cumulative }

let size t = Array.length t.probs

let prob t i =
  assert (i >= 0 && i < size t);
  t.probs.(i)

let support t =
  let out = ref [] in
  for i = size t - 1 downto 0 do
    if t.probs.(i) > 0.0 then out := i :: !out
  done;
  !out

let draw t rng =
  let u = Prng.float rng 1.0 in
  (* Binary search for the first cumulative weight strictly above u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) > u then search lo mid else search (mid + 1) hi
    end
  in
  let i = search 0 (size t - 1) in
  (* Skip any zero-probability outcome reached through ties. *)
  let rec adjust i = if t.probs.(i) = 0.0 && i > 0 then adjust (i - 1) else i in
  adjust i

let entropy t =
  Array.fold_left
    (fun acc p -> if p > 0.0 then acc -. (p *. (log p /. log 2.0)) else acc)
    0.0 t.probs
