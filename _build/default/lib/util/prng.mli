(** Deterministic pseudo-random number generator.

    A self-contained SplitMix64 implementation.  Every randomised
    component of the library takes an explicit generator so that a whole
    experiment is a pure function of its seed; the global [Random] state
    is never touched. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The two
    streams are statistically independent; used to give sub-components
    their own reproducible randomness. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val choose : t -> 'a array -> 'a
(** [choose t a] is a uniformly random element of [a].  Requires [a]
    non-empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)
