(** Small descriptive-statistics helpers used by the evaluation harness
    and the benchmark reports. *)

val mean : float array -> float
(** Arithmetic mean.  Requires a non-empty array. *)

val variance : float array -> float
(** Population variance (divides by [n]).  Requires a non-empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** [(min, max)] of a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]]: linear-interpolation
    percentile of the (copied, sorted) data.  Requires a non-empty
    array. *)

val median : float array -> float
(** [median a = percentile a 50.0]. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins a] partitions [\[min, max\]] into [bins] equal-width
    buckets and returns [(lo, hi, count)] per bucket.  The final bucket is
    closed on the right.  Requires [bins > 0] and a non-empty array. *)

val rate : count:int -> total:int -> float
(** [rate ~count ~total] is [count / total] as a float, or [0.] when
    [total = 0].  Used for hit and false-alarm rates. *)
