lib/util/matrix.mli: Prng
