lib/util/stats.mli:
