lib/util/sampling.ml: Array Prng
