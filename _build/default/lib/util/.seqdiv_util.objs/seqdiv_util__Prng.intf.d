lib/util/prng.mli:
