lib/util/matrix.ml: Array Prng
