let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let m = mean a in
  let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let min_max a =
  assert (Array.length a > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let percentile a p =
  assert (Array.length a > 0);
  assert (p >= 0.0 && p <= 100.0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median a = percentile a 50.0

let histogram ~bins a =
  assert (bins > 0);
  let lo, hi = min_max a in
  let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  let bucket x =
    let b = int_of_float ((x -. lo) /. width) in
    Stdlib.min b (bins - 1)
  in
  Array.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) a;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts

let rate ~count ~total =
  if total = 0 then 0.0 else float_of_int count /. float_of_int total
