type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step then two xor-shift
   multiplies (Steele, Lea & Flood 2014). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t n =
  assert (n > 0);
  (* Take the top bits; modulo bias is negligible for the range sizes used
     here (n well below 2^32) but we mask to 62 bits to stay positive. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
