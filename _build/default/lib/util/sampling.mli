(** Sampling from finite categorical distributions.

    Used by the Markov-chain data generator: each state's outgoing
    transition row is compiled once into a cumulative table and sampled
    per step. *)

type t
(** A compiled categorical distribution over [0 .. n-1]. *)

val of_weights : float array -> t
(** [of_weights w] builds a distribution proportional to [w].  Weights
    must be non-negative with a positive sum; zero-weight outcomes are
    never drawn. *)

val size : t -> int
(** Number of categories (including zero-weight ones). *)

val prob : t -> int -> float
(** Normalised probability of an outcome. *)

val support : t -> int list
(** Outcomes with strictly positive probability, ascending. *)

val draw : t -> Prng.t -> int
(** Sample one outcome. *)

val entropy : t -> float
(** Shannon entropy in bits; zero-probability terms contribute nothing. *)
