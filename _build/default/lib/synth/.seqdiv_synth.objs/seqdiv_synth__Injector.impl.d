lib/synth/injector.ml: Alphabet Array Generator List Logs Ngram_index Seqdiv_stream Stdlib String Trace
