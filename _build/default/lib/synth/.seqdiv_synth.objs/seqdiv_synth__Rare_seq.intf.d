lib/synth/rare_seq.mli: Ngram_index Seqdiv_stream
