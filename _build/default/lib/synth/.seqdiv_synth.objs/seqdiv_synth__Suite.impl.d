lib/synth/suite.ml: Alphabet Array Generator Injector List Logs Markov_chain Mfs Ngram_index Printf Prng Seq_db Seqdiv_stream Seqdiv_util Stdlib Trace
