lib/synth/session_workload.mli: Prng Seqdiv_stream Seqdiv_util Sessions Suite
