lib/synth/dataset_io.ml: Alphabet Array Buffer Filename Fun Hashtbl Injector List Markov_chain Ngram_index Printf Seqdiv_stream Stdlib String Suite Sys Trace Trace_io
