lib/synth/session_workload.ml: Array Generator Injector List Markov_chain Mfs Printf Seqdiv_stream Sessions Suite
