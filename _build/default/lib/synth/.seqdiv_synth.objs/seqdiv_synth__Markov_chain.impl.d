lib/synth/markov_chain.ml: Alphabet Array Sampling Seqdiv_stream Seqdiv_util Trace
