lib/synth/injector.mli: Ngram_index Seqdiv_stream Trace
