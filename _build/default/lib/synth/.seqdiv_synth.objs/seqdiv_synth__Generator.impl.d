lib/synth/generator.ml: Alphabet Array Markov_chain Seqdiv_stream Trace
