lib/synth/suite.mli: Alphabet Injector Markov_chain Ngram_index Seqdiv_stream Trace
