lib/synth/markov_chain.mli: Alphabet Prng Seqdiv_stream Seqdiv_util Trace
