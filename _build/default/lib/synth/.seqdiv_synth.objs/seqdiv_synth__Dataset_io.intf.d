lib/synth/dataset_io.mli: Suite
