lib/synth/generator.mli: Alphabet Markov_chain Prng Seqdiv_stream Seqdiv_util Trace
