lib/synth/mfs.ml: Alphabet Array Char List Ngram_index Printf Seq_db Seqdiv_stream String Trace
