lib/synth/mfs.mli: Alphabet Ngram_index Seqdiv_stream
