lib/synth/rare_seq.ml: List Ngram_index Printf Seq_db Seqdiv_stream Trace
