(** First-order Markov chains over an alphabet.

    The paper's evaluation data is produced by a Markov-model transition
    matrix (Section 5.3).  This module holds the matrix, validates it,
    and samples traces from it. *)

open Seqdiv_stream
open Seqdiv_util

type t

val of_matrix : Alphabet.t -> float array array -> t
(** [of_matrix a p] builds a chain with transition matrix [p], where
    [p.(i).(j)] is the probability of symbol [j] following symbol [i].
    Rows must be length [size a], non-negative, and sum to a positive
    value (they are normalised).  @raise Invalid_argument on shape or
    sign errors. *)

val alphabet : t -> Alphabet.t

val prob : t -> int -> int -> float
(** Normalised transition probability [i -> j]. *)

val successors : t -> int -> int list
(** Symbols reachable from [i] in one step (positive probability),
    ascending. *)

val has_structural_zeros : t -> bool
(** Whether some transition has probability exactly 0 — the precondition
    for foreign 2-grams to exist. *)

val paper_chain : Alphabet.t -> deviation:float -> t
(** The chain behind the paper's training data: a deterministic cycle
    [0 -> 1 -> ... -> k-1 -> 0] taken with probability [1 - deviation];
    with probability [deviation] the chain jumps to one of the symbols
    at cyclic distance 2 or 3 ahead (shared equally), after which it
    resumes the cycle from the new symbol.  All remaining transitions
    are structural zeros, so foreign 2-grams exist.  Requires
    [size >= 5] and [0 <= deviation < 1].

    With the paper's parameters ([deviation] ≈ 0.02, 1M elements) about
    98 % of the stream is the pure repeating cycle and each deviant
    2-gram has relative frequency well below the 0.5 % rare
    threshold. *)

val generate : t -> Prng.t -> start:int -> len:int -> Trace.t
(** Sample a trace of [len] symbols beginning at symbol [start].
    Requires a valid start symbol and [len >= 1]. *)

val stationary_cycle : t -> Trace.t
(** The deterministic backbone [0 1 ... k-1] as a one-period trace
    (used to build clean background data). *)
