(** Rare-sequence anomalies (extension experiment E2).

    Section 5.1 of the paper distinguishes {e foreign} sequences (never
    in training) from {e rare} ones (present but infrequent), notes that
    only some detectors can respond to the latter, and deliberately
    evaluates on foreign sequences only.  This module supplies the rare
    counterpart: sequences that occur in the training data with relative
    frequency below the rare threshold, injectable with the same
    boundary-clean machinery as minimal foreign sequences (all their
    sub-sequences exist in training, so the {!Injector} verification
    applies unchanged). *)

open Seqdiv_stream

val candidates :
  Ngram_index.t -> size:int -> rare_threshold:float -> int array list
(** Distinct training sequences of the given size that are rare at the
    threshold, rarest first (ties broken lexicographically).  Requires
    [2 <= size <= max_len] of the index. *)

val find :
  Ngram_index.t -> size:int -> rare_threshold:float ->
  (int array, string) result
(** First candidate, or a descriptive error when the training data has
    no rare sequence of that size. *)
