open Seqdiv_stream

let candidates index ~size ~rare_threshold =
  assert (size >= 2 && size <= Ngram_index.max_len index);
  let db = Ngram_index.db index size in
  let rare =
    Seq_db.fold db ~init:[] ~f:(fun acc key _count ->
        if Seq_db.is_rare db ~threshold:rare_threshold key then
          (Seq_db.freq db key, key) :: acc
        else acc)
  in
  List.sort compare rare
  |> List.map (fun (_freq, key) -> Trace.symbols_of_key key)

let find index ~size ~rare_threshold =
  match candidates index ~size ~rare_threshold with
  | c :: _ -> Ok c
  | [] ->
      Error
        (Printf.sprintf
           "no rare sequence of size %d at threshold %g exists in this \
            training data"
           size rare_threshold)
