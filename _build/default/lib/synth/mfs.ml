open Seqdiv_stream

type verdict =
  | Ok_minimal_foreign
  | Not_foreign of int
  | Sub_foreign of int * int
  | Too_short

let verify index candidate =
  let n = Array.length candidate in
  if n < 2 then Too_short
  else begin
    let key = Trace.key_of_symbols candidate in
    let full_count = Ngram_index.count index key in
    if full_count > 0 then Not_foreign full_count
    else begin
      (* Checking every contiguous proper sub-sequence directly; the two
         (n-1)-windows would suffice, but the exhaustive check documents
         the invariant and is what the tests rely on. *)
      let missing = ref None in
      for len = n - 1 downto 2 do
        for pos = 0 to n - len do
          if !missing = None then begin
            let sub = String.sub key pos len in
            if Ngram_index.is_foreign index sub then missing := Some (pos, len)
          end
        done
      done;
      match !missing with
      | Some (pos, len) -> Sub_foreign (pos, len)
      | None -> Ok_minimal_foreign
    end
  end

let rare_twogram_count index ~threshold candidate =
  let n = Array.length candidate in
  let count = ref 0 in
  for i = 0 to n - 2 do
    let k = Trace.key_of_symbols [| candidate.(i); candidate.(i + 1) |] in
    if Ngram_index.is_rare index ~threshold k then incr count
  done;
  !count

let candidates_size2 index alphabet =
  let k = Alphabet.size alphabet in
  let out = ref [] in
  for a = k - 1 downto 0 do
    for b = k - 1 downto 0 do
      let key = Trace.key_of_symbols [| a; b |] in
      let a1 = Trace.key_of_symbols [| a |]
      and b1 = Trace.key_of_symbols [| b |] in
      if
        Ngram_index.is_foreign index key
        && Ngram_index.mem index a1
        && Ngram_index.mem index b1
      then out := [| a; b |] :: !out
    done
  done;
  !out

let candidates_larger index alphabet ~size =
  let k = Alphabet.size alphabet in
  let prefix_db = Ngram_index.db index (size - 1) in
  let out = ref [] in
  Seq_db.iter prefix_db (fun prefix_key _count ->
      for c = 0 to k - 1 do
        let full = prefix_key ^ String.make 1 (Char.chr c) in
        if
          Ngram_index.is_foreign index full
          && Ngram_index.mem index (String.sub full 1 (size - 1))
        then out := Trace.symbols_of_key full :: !out
      done);
  !out

let candidates index alphabet ~size ~rare_threshold =
  assert (size >= 2 && size <= Ngram_index.max_len index);
  let raw =
    if size = 2 then candidates_size2 index alphabet
    else candidates_larger index alphabet ~size
  in
  let scored =
    List.map
      (fun c -> (rare_twogram_count index ~threshold:rare_threshold c, c))
      raw
  in
  let compare_candidates (r1, c1) (r2, c2) =
    match compare r2 r1 with 0 -> compare c1 c2 | d -> d
  in
  List.stable_sort compare_candidates scored |> List.map snd

let find index alphabet ~size ~rare_threshold =
  match candidates index alphabet ~size ~rare_threshold with
  | c :: _ -> Ok c
  | [] ->
      Error
        (Printf.sprintf
           "no minimal foreign sequence of size %d exists in this training \
            data; a longer training stream (or a different deviation rate) \
            is needed"
           size)
