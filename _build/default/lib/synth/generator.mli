(** Synthesis of the paper's training and background data (Section 5.3
    and 5.4.1).

    The training stream is sampled from {!Markov_chain.paper_chain}: a
    repeating cycle over the alphabet with a small per-step deviation
    probability.  With the defaults, about 98 % of the stream is the
    uninterrupted cycle and the remainder consists of rare sequences —
    the material from which minimal foreign sequences are composed.

    The background (test) data is the pure repeating cycle, guaranteed
    free of rare or foreign sequences at every window width. *)

open Seqdiv_stream
open Seqdiv_util

val default_deviation : float
(** Per-step probability of leaving the cycle (0.0025).  Chosen so that
    (a) every specific deviant 2-gram is rare at the paper's 0.5 %
    threshold, (b) single-deviation n-grams up to width 15 occur in a
    1M-element stream (so minimal foreign sequences have their proper
    sub-sequences present), and (c) double-deviation n-grams at a
    specific spacing are absent with high probability (so the full
    sequences are foreign). *)

val training : Markov_chain.t -> Prng.t -> len:int -> Trace.t
(** Sample a training stream of [len] elements starting at symbol 0.
    Requires [len >= 1]. *)

val background : Alphabet.t -> len:int -> phase:int -> Trace.t
(** Pure repeating cycle [phase, phase+1, ...] (mod size) of [len]
    elements.  Requires a valid phase and [len >= 1]. *)

val cycle_fraction : Trace.t -> float
(** Fraction of positions whose transition follows the cycle
    ([next = current + 1] mod size) — a direct check of the
    "98 % repetition" property. *)
