(** Construction and verification of minimal foreign sequences
    (Section 5.1 and 5.4.2).

    A {e foreign sequence} of length N is one whose every element belongs
    to the training alphabet but which never occurs in the training data.
    A {e minimal foreign sequence} (MFS) additionally has every proper
    contiguous sub-sequence present in the training data.  The paper
    composes its MFSs from rare sub-sequences, so this module also tracks
    rarity of the constituent 2-grams. *)

open Seqdiv_stream

type verdict =
  | Ok_minimal_foreign
  | Not_foreign of int  (** full sequence occurs; payload = count *)
  | Sub_foreign of int * int
      (** some proper sub-sequence is foreign; payload = (pos, len) of a
          missing sub-sequence *)
  | Too_short  (** length < 2 *)

val verify : Ngram_index.t -> int array -> verdict
(** Full minimality/foreignness check of a candidate against a training
    index.  The candidate length must not exceed the index depth. *)

val rare_twogram_count : Ngram_index.t -> threshold:float -> int array -> int
(** Number of 2-grams of the candidate that are rare in the training
    data at the given threshold. *)

val candidates :
  Ngram_index.t -> Alphabet.t -> size:int -> rare_threshold:float ->
  int array list
(** All minimal foreign sequences of the given size that can be built
    from the training data, ordered with the most rare-composed first
    (ties broken lexicographically, so the result is deterministic).

    For [size = 2] these are the structurally-absent 2-grams.  For larger
    sizes the search extends every (size−1)-gram present in the training
    data by each alphabet symbol and keeps the extensions that are
    foreign while both (size−1)-sub-sequences are present — a complete
    enumeration, feasible because the set of present (size−1)-grams in
    the paper's data is small.  Candidates with no rare 2-gram at all are
    kept only after all rare-composed ones (for [size >= 3] a minimal
    foreign sequence necessarily strays from the deterministic part of
    the cycle, so in practice all returned candidates are
    rare-composed).

    Requires [2 <= size <= Ngram_index.max_len index]. *)

val find :
  Ngram_index.t -> Alphabet.t -> size:int -> rare_threshold:float ->
  (int array, string) result
(** First candidate from {!candidates}, or a descriptive error when none
    exists (e.g. the training stream is too short for sub-sequences to be
    present). *)
