open Seqdiv_stream

let default_deviation = 0.0025

let training chain rng ~len = Markov_chain.generate chain rng ~start:0 ~len

let background alphabet ~len ~phase =
  let k = Alphabet.size alphabet in
  assert (phase >= 0 && phase < k);
  assert (len >= 1);
  Trace.of_array alphabet (Array.init len (fun i -> (phase + i) mod k))

let cycle_fraction t =
  let k = Alphabet.size (Trace.alphabet t) in
  let n = Trace.length t in
  if n < 2 then 1.0
  else begin
    let cycle = ref 0 in
    for i = 0 to n - 2 do
      if Trace.get t (i + 1) = (Trace.get t i + 1) mod k then incr cycle
    done;
    float_of_int !cycle /. float_of_int (n - 1)
  end
