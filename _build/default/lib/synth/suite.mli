(** The full evaluation corpus of Section 5.4: one training stream plus
    one injected test stream for every (anomaly size, detector window)
    pair — 8 × 14 = 112 streams at the paper's parameters. *)

open Seqdiv_stream

type params = {
  alphabet_size : int;  (** paper: 8 *)
  train_len : int;  (** paper: 1,000,000 *)
  background_len : int;  (** length of each test stream's background *)
  as_min : int;  (** smallest anomaly size, paper: 2 *)
  as_max : int;  (** largest anomaly size, paper: 9 *)
  dw_min : int;  (** smallest detector window, paper: 2 *)
  dw_max : int;  (** largest detector window, paper: 15 *)
  deviation : float;  (** per-step cycle-deviation probability *)
  rare_threshold : float;  (** paper: 0.005 (0.5 %) *)
  seed : int;
}

val paper_params : params
(** The paper's parameters: alphabet 8, 1M-element training stream,
    AS 2..9, DW 2..15, rare threshold 0.5 %. *)

val scaled_params : train_len:int -> background_len:int -> params
(** [paper_params] with a smaller training stream and background — the
    n-gram statistics the experiment depends on are stable well below
    1M elements (see DESIGN.md §4). *)

type test_stream = {
  anomaly_size : int;
  window : int;
  injection : Injector.injection;
}

type t = {
  params : params;
  alphabet : Alphabet.t;
  chain : Markov_chain.t;
  training : Trace.t;
  index : Ngram_index.t;  (** n-grams of the training stream *)
  streams : test_stream array;  (** row-major over (AS, DW) *)
}

val build : params -> t
(** Generate the training stream, index it, construct minimal foreign
    sequences for every anomaly size and inject each one cleanly for
    every detector window.  Deterministic in [params.seed].

    @raise Failure if for some (AS, DW) no candidate anomaly admits a
    clean injection — the error names the cell; enlarging [train_len]
    resolves it. *)

val stream : t -> anomaly_size:int -> window:int -> test_stream
(** Look up the test stream of a cell.  Requires the cell to be within
    the parameter ranges. *)

val anomaly_sizes : t -> int list
(** [as_min .. as_max], ascending. *)

val windows : t -> int list
(** [dw_min .. dw_max], ascending. *)
