(** Counting trie over fixed-alphabet sequences — an alternative backend
    for the n-gram statistics of {!Ngram_index}.

    {!Ngram_index} scans the trace once per length and hashes every
    window; the trie makes a single pass, descending [max_len] symbols
    from every position, and shares prefixes structurally.  The A5
    benchmark compares the two; the property tests assert they agree on
    every query. *)

open Seqdiv_util

type t

val create : alphabet_size:int -> max_len:int -> t
(** Empty trie for n-grams of length [1 .. max_len].
    Requires [1 <= alphabet_size <= 255] and [max_len >= 1]. *)

val of_trace : max_len:int -> Trace.t -> t
(** Index every n-gram of the trace up to [max_len], in one pass. *)

val max_len : t -> int
val alphabet_size : t -> int

val add : t -> int array -> unit
(** Record one occurrence of a sequence and of each of its prefixes.
    The sequence length must be within [1 .. max_len]; symbols must be
    within the alphabet. *)

val count : t -> string -> int
(** Occurrences of a window key (see {!Trace.key}); 0 when absent.
    Requires [1 <= length <= max_len]. *)

val mem : t -> string -> bool
val is_foreign : t -> string -> bool

val total : t -> int -> int
(** Total windows recorded at a length (with multiplicity). *)

val freq : t -> string -> float
(** Relative frequency among same-length windows. *)

val is_rare : t -> threshold:float -> string -> bool
(** Present with relative frequency strictly below the threshold. *)

val distinct : t -> int -> int
(** Number of distinct sequences of a length. *)

val node_count : t -> int
(** Total allocated trie nodes — the memory-footprint proxy reported by
    the A5 benchmark. *)

val check_agrees_with_index : t -> Ngram_index.t -> Trace.t -> bool
(** Cross-validation helper: both structures report the same counts for
    every window of the given trace (used by the property tests). *)

val memory_words : t -> int
(** Rough allocated size in machine words (nodes × (alphabet + 2)). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: max length, node count, distinct counts. *)

val random_probe : t -> Prng.t -> len:int -> string
(** A uniformly random key of the given length over the trie's alphabet
    (present or not) — handy for benchmarking lookups. *)
