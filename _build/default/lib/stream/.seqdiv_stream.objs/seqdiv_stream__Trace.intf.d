lib/stream/trace.mli: Alphabet Format
