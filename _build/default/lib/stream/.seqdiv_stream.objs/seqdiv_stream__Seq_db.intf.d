lib/stream/seq_db.mli: Trace
