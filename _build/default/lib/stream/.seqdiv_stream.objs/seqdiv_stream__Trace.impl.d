lib/stream/trace.ml: Alphabet Array Char Format Printf Stdlib String
