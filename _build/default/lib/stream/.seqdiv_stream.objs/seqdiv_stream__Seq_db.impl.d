lib/stream/seq_db.ml: Hashtbl List Option String Trace
