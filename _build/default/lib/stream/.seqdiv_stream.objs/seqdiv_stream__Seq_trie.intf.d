lib/stream/seq_trie.mli: Format Ngram_index Prng Seqdiv_util Trace
