lib/stream/alphabet.mli: Format
