lib/stream/ngram_index.ml: Array Seq_db String
