lib/stream/trace_io.ml: Alphabet Buffer Fun List Printf Scanf String Trace
