lib/stream/ngram_index.mli: Seq_db Trace
