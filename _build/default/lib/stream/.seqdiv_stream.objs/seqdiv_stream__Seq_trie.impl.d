lib/stream/seq_trie.ml: Alphabet Array Char Format List Ngram_index Prng Seqdiv_util Stdlib String Trace
