lib/stream/syscall_trace.ml: Alphabet Array Buffer Fun Hashtbl List Printf Sessions Stdlib String Trace
