lib/stream/syscall_trace.mli: Sessions
