lib/stream/alphabet.ml: Array Format Hashtbl
