lib/stream/sessions.mli: Alphabet Prng Seq_db Seqdiv_util Trace
