lib/stream/sessions.ml: Alphabet List Seq_db Trace
