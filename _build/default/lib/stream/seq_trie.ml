open Seqdiv_util

type node = { mutable count : int; children : node option array }

type t = {
  alphabet_size : int;
  max_len : int;
  root : node;
  totals : int array;  (* windows recorded per length, index = len - 1 *)
  mutable nodes : int;
  distincts : int array;  (* distinct sequences per length *)
}

let new_node k = { count = 0; children = Array.make k None }

let create ~alphabet_size ~max_len =
  assert (alphabet_size >= 1 && alphabet_size <= 255);
  assert (max_len >= 1);
  {
    alphabet_size;
    max_len;
    root = new_node alphabet_size;
    totals = Array.make max_len 0;
    nodes = 1;
    distincts = Array.make max_len 0;
  }

let max_len t = t.max_len
let alphabet_size t = t.alphabet_size

let child t node symbol =
  assert (symbol >= 0 && symbol < t.alphabet_size);
  match node.children.(symbol) with
  | Some c -> c
  | None ->
      let c = new_node t.alphabet_size in
      node.children.(symbol) <- Some c;
      t.nodes <- t.nodes + 1;
      c

let add t symbols =
  let n = Array.length symbols in
  assert (n >= 1 && n <= t.max_len);
  let node = ref t.root in
  for depth = 0 to n - 1 do
    let c = child t !node symbols.(depth) in
    if c.count = 0 then t.distincts.(depth) <- t.distincts.(depth) + 1;
    c.count <- c.count + 1;
    t.totals.(depth) <- t.totals.(depth) + 1;
    node := c
  done

let of_trace ~max_len trace =
  let k = Alphabet.size (Trace.alphabet trace) in
  let t = create ~alphabet_size:k ~max_len in
  let len = Trace.length trace in
  for pos = 0 to len - 1 do
    let depth_limit = Stdlib.min max_len (len - pos) in
    let node = ref t.root in
    for d = 0 to depth_limit - 1 do
      let c = child t !node (Trace.get trace (pos + d)) in
      if c.count = 0 then t.distincts.(d) <- t.distincts.(d) + 1;
      c.count <- c.count + 1;
      t.totals.(d) <- t.totals.(d) + 1;
      node := c
    done
  done;
  t

let find t key =
  let n = String.length key in
  assert (n >= 1 && n <= t.max_len);
  let rec descend node i =
    if i = n then Some node
    else begin
      let symbol = Char.code key.[i] in
      if symbol >= t.alphabet_size then None
      else
        match node.children.(symbol) with
        | None -> None
        | Some c -> descend c (i + 1)
    end
  in
  descend t.root 0

let count t key = match find t key with None -> 0 | Some n -> n.count
let mem t key = count t key > 0
let is_foreign t key = not (mem t key)

let total t n =
  assert (n >= 1 && n <= t.max_len);
  t.totals.(n - 1)

let freq t key =
  let n = String.length key in
  let tot = total t n in
  if tot = 0 then 0.0 else float_of_int (count t key) /. float_of_int tot

let is_rare t ~threshold key =
  let c = count t key in
  c > 0 && freq t key < threshold

let distinct t n =
  assert (n >= 1 && n <= t.max_len);
  t.distincts.(n - 1)

let node_count t = t.nodes

let check_agrees_with_index t index trace =
  (* Window counts at the boundary of the trace differ between the two
     structures only if there is a bug: both count every window of every
     length exactly once. *)
  let ok = ref true in
  let depth = Stdlib.min t.max_len (Ngram_index.max_len index) in
  for n = 1 to depth do
    Trace.iter_windows trace ~width:n (fun pos ->
        let key = Trace.key trace ~pos ~len:n in
        if count t key <> Ngram_index.count index key then ok := false)
  done;
  !ok

let memory_words t = t.nodes * (t.alphabet_size + 2)

let pp_stats ppf t =
  Format.fprintf ppf "trie{max_len=%d nodes=%d distinct=[%s]}" t.max_len
    t.nodes
    (String.concat ";"
       (List.init t.max_len (fun i -> string_of_int t.distincts.(i))))

let random_probe t rng ~len =
  assert (len >= 1 && len <= t.max_len);
  String.init len (fun _ -> Char.chr (Prng.int rng t.alphabet_size))
