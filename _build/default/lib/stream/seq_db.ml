type t = {
  width : int;
  counts : (string, int) Hashtbl.t;
  mutable total : int;
}

let create ~width =
  assert (width > 0);
  { width; counts = Hashtbl.create 64; total = 0 }

let width t = t.width

let add_many t k ~count =
  assert (String.length k = t.width);
  assert (count > 0);
  let prev = Option.value (Hashtbl.find_opt t.counts k) ~default:0 in
  Hashtbl.replace t.counts k (prev + count);
  t.total <- t.total + count

let add t k = add_many t k ~count:1

let add_trace t trace =
  Trace.iter_windows trace ~width:t.width (fun pos ->
      add t (Trace.key trace ~pos ~len:t.width))

let of_trace ~width trace =
  let t = create ~width in
  add_trace t trace;
  t

let of_traces ~width traces =
  let t = create ~width in
  List.iter (add_trace t) traces;
  t

let mem t k = Hashtbl.mem t.counts k
let count t k = Option.value (Hashtbl.find_opt t.counts k) ~default:0
let total t = t.total
let cardinal t = Hashtbl.length t.counts

let freq t k =
  if t.total = 0 then 0.0
  else float_of_int (count t k) /. float_of_int t.total

let is_foreign t k = not (mem t k)

let is_rare t ~threshold k =
  let c = count t k in
  c > 0 && freq t k < threshold

let is_common t ~threshold k = count t k > 0 && freq t k >= threshold

let iter t f = Hashtbl.iter f t.counts

let fold t ~init ~f =
  Hashtbl.fold (fun k c acc -> f acc k c) t.counts init

let keys t = fold t ~init:[] ~f:(fun acc k _ -> k :: acc)

let rare_keys t ~threshold =
  fold t ~init:[] ~f:(fun acc k _ ->
      if is_rare t ~threshold k then k :: acc else acc)

let common_keys t ~threshold =
  fold t ~init:[] ~f:(fun acc k _ ->
      if is_common t ~threshold k then k :: acc else acc)
