type t = { max_len : int; dbs : Seq_db.t array }

let build ~max_len trace =
  assert (max_len >= 1);
  let dbs =
    Array.init max_len (fun i ->
        Seq_db.of_trace ~width:(i + 1) trace)
  in
  { max_len; dbs }

let max_len t = t.max_len

let db t n =
  assert (n >= 1 && n <= t.max_len);
  t.dbs.(n - 1)

let db_of_key t k =
  let n = String.length k in
  assert (n >= 1 && n <= t.max_len);
  t.dbs.(n - 1)

let mem t k = Seq_db.mem (db_of_key t k) k
let count t k = Seq_db.count (db_of_key t k) k
let freq t k = Seq_db.freq (db_of_key t k) k
let is_foreign t k = not (mem t k)
let is_rare t ~threshold k = Seq_db.is_rare (db_of_key t k) ~threshold k

let is_minimal_foreign t k =
  let n = String.length k in
  n >= 2 && n <= t.max_len
  && is_foreign t k
  && mem t (String.sub k 0 (n - 1))
  && mem t (String.sub k 1 (n - 1))
