(** Multi-length n-gram index over a training trace.

    Bundles one {!Seq_db.t} per length [1 .. max_len].  The anomaly
    synthesiser needs to ask, for arbitrary candidate sequences, whether
    every proper sub-sequence exists in the training data (minimality)
    while the full sequence does not (foreignness); this index answers
    those queries in O(length). *)

type t

val build : max_len:int -> Trace.t -> t
(** Index every n-gram of the trace for n in [1 .. max_len].
    Requires [max_len >= 1]. *)

val max_len : t -> int

val db : t -> int -> Seq_db.t
(** The per-length database.  Requires [1 <= n <= max_len]. *)

val mem : t -> string -> bool
(** Whether a key of any indexed length occurs in the trace.
    Requires [1 <= String.length key <= max_len]. *)

val count : t -> string -> int
(** Occurrence count of a key of any indexed length. *)

val freq : t -> string -> float
(** Relative frequency among same-length windows. *)

val is_foreign : t -> string -> bool
(** The key never occurs. *)

val is_rare : t -> threshold:float -> string -> bool
(** Occurs, with relative frequency strictly below [threshold]. *)

val is_minimal_foreign : t -> string -> bool
(** [is_minimal_foreign t k] holds when [k] (length ≥ 2, within
    [max_len]) is foreign while both of its (length−1)-sub-sequences
    occur — which implies every shorter contiguous sub-sequence occurs
    as well, i.e. [k] is a minimal foreign sequence in the sense of the
    paper. *)
