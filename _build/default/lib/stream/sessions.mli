(** Session corpora: collections of traces that must be analysed
    per-trace.

    Real monitored data rarely arrives as one unbroken stream — it is a
    set of per-process system-call traces, per-login command sessions,
    and so on.  The cardinal rule is that a detector window must never
    span a session boundary: the last calls of one process and the
    first calls of the next are not a behavioural sequence.  This
    module packages that rule. *)

open Seqdiv_util

type t

val of_traces : Trace.t list -> t
(** A corpus from a non-empty list of same-alphabet traces.
    @raise Invalid_argument on an empty list or mismatched alphabets. *)

val alphabet : t -> Alphabet.t
val count : t -> int
(** Number of sessions. *)

val total_length : t -> int
(** Sum of session lengths. *)

val traces : t -> Trace.t list
(** The sessions, in order. *)

val window_count : t -> width:int -> int
(** Total windows across sessions — strictly less than the window count
    of the concatenation whenever there are ≥ 2 sessions (boundary
    windows are excluded by construction). *)

val seq_db : t -> width:int -> Seq_db.t
(** Sequence database over the corpus, session boundaries respected. *)

val split : Trace.t -> session_length:int -> t
(** Cut one long trace into consecutive sessions of the given length
    (final remnant kept if at least [session_length / 2], otherwise
    dropped).  Requires [session_length >= 2]. *)

val generate :
  (Prng.t -> int -> Trace.t) -> Prng.t -> sessions:int -> length:int -> t
(** [generate make rng ~sessions ~length] builds a corpus by calling
    [make rng i] for each session index; each returned trace must have
    length [length].  Used by the synthetic session workloads in the
    examples and tests. *)
