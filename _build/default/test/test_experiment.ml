(* Unit tests for the Experiment analysis functions using synthetic
   maps, independent of any detector. *)

open Seqdiv_core
open Seqdiv_test_support

let grid = ([ 2; 3; 4 ], [ 2; 3; 4; 5 ])

let map name pred =
  let anomaly_sizes, windows = grid in
  Performance_map.build ~detector:name ~anomaly_sizes ~windows
    ~f:(fun ~anomaly_size ~window ->
      if pred anomaly_size window then Outcome.Capable 1.0 else Outcome.Blind)

let full = map "full" (fun _ _ -> true)
let empty = map "empty" (fun _ _ -> false)
let diagonal = map "diagonal" (fun a w -> w >= a)
let anti = map "anti" (fun a w -> w < a)

let test_relation_subset () =
  let r = Experiment.relation diagonal full in
  Alcotest.(check bool) "diagonal subset of full" true
    r.Experiment.left_subset_of_right;
  Alcotest.(check bool) "full not subset of diagonal" false
    r.Experiment.right_subset_of_left;
  Alcotest.(check int) "left-only empty" 0 r.Experiment.left_only;
  Alcotest.(check int) "both = diagonal size" 9 r.Experiment.both;
  Alcotest.(check int) "right-only" 3 r.Experiment.right_only;
  check_float "jaccard" ~epsilon:1e-9 0.75 r.Experiment.jaccard

let test_relation_equal () =
  let r = Experiment.relation full (map "full2" (fun _ _ -> true)) in
  Alcotest.(check bool) "mutual subsets" true
    (r.Experiment.left_subset_of_right && r.Experiment.right_subset_of_left);
  check_float "jaccard 1" ~epsilon:1e-9 1.0 r.Experiment.jaccard

let test_relation_disjoint () =
  let r = Experiment.relation diagonal anti in
  Alcotest.(check int) "no shared cells" 0 r.Experiment.both;
  check_float "jaccard 0" ~epsilon:1e-9 0.0 r.Experiment.jaccard;
  (* disjoint non-empty sets are subsets of each other only if empty *)
  Alcotest.(check bool) "not subsets" false
    (r.Experiment.left_subset_of_right || r.Experiment.right_subset_of_left)

let test_relation_empty_is_universal_subset () =
  let r = Experiment.relation empty diagonal in
  Alcotest.(check bool) "empty subset of anything" true
    r.Experiment.left_subset_of_right

let test_relation_names () =
  let r = Experiment.relation diagonal full in
  Alcotest.(check string) "left name" "diagonal" r.Experiment.left;
  Alcotest.(check string) "right name" "full" r.Experiment.right

let test_summary_counts () =
  let s = Experiment.summary diagonal in
  Alcotest.(check string) "name" "diagonal" s.Experiment.detector;
  Alcotest.(check int) "capable" 9 s.Experiment.capable;
  Alcotest.(check int) "blind" 3 s.Experiment.blind;
  Alcotest.(check int) "weak" 0 s.Experiment.weak;
  check_float "fraction" ~epsilon:1e-9 0.75 s.Experiment.capable_fraction

let test_pairwise_count_and_order () =
  let rels = Experiment.pairwise_relations [ full; empty; diagonal ] in
  Alcotest.(check int) "3 choose 2" 3 (List.length rels);
  match rels with
  | [ a; b; c ] ->
      Alcotest.(check (pair string string)) "order preserved"
        ("full", "empty")
        (a.Experiment.left, a.Experiment.right);
      Alcotest.(check (pair string string)) "order preserved 2"
        ("full", "diagonal")
        (b.Experiment.left, b.Experiment.right);
      Alcotest.(check (pair string string)) "order preserved 3"
        ("empty", "diagonal")
        (c.Experiment.left, c.Experiment.right)
  | _ -> Alcotest.fail "unexpected shape"

let test_performance_map_over_uses_injections () =
  (* performance_map_over must consult the supplied injection per cell:
     feed it cells whose anomalies are at distinguishable positions and
     check via a counting wrapper. *)
  let suite = tiny_suite () in
  let calls = ref [] in
  let injection ~anomaly_size ~window =
    calls := (anomaly_size, window) :: !calls;
    (Seqdiv_synth.Suite.stream suite ~anomaly_size ~window)
      .Seqdiv_synth.Suite.injection
  in
  let m =
    Experiment.performance_map_over suite ~injection
      (Seqdiv_detectors.Registry.find_exn "stide")
  in
  Alcotest.(check int) "one call per cell"
    (Performance_map.cell_count m)
    (List.length !calls);
  (* and the result equals the stock map *)
  let stock =
    Experiment.performance_map suite (Seqdiv_detectors.Registry.find_exn "stide")
  in
  Alcotest.(check bool) "same coverage" true
    (Coverage.equal (Coverage.of_map m) (Coverage.of_map stock))

let () =
  Alcotest.run "experiment"
    [
      ( "relations",
        [
          Alcotest.test_case "subset" `Quick test_relation_subset;
          Alcotest.test_case "equal" `Quick test_relation_equal;
          Alcotest.test_case "disjoint" `Quick test_relation_disjoint;
          Alcotest.test_case "empty subset" `Quick test_relation_empty_is_universal_subset;
          Alcotest.test_case "names" `Quick test_relation_names;
        ] );
      ( "summary",
        [
          Alcotest.test_case "counts" `Quick test_summary_counts;
          Alcotest.test_case "pairwise" `Quick test_pairwise_count_and_order;
        ] );
      ( "map_over",
        [
          Alcotest.test_case "uses injections" `Slow
            test_performance_map_over_uses_injections;
        ] );
    ]
