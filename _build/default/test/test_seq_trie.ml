open Seqdiv_util
open Seqdiv_stream
open Seqdiv_test_support

let key l = Trace.key_of_symbols (Array.of_list l)

let test_empty () =
  let t = Seq_trie.create ~alphabet_size:8 ~max_len:4 in
  Alcotest.(check int) "count" 0 (Seq_trie.count t (key [ 0; 1 ]));
  Alcotest.(check bool) "foreign" true (Seq_trie.is_foreign t (key [ 0 ]));
  Alcotest.(check int) "total" 0 (Seq_trie.total t 2);
  Alcotest.(check int) "one node (root)" 1 (Seq_trie.node_count t)

let test_add_counts_prefixes () =
  let t = Seq_trie.create ~alphabet_size:8 ~max_len:3 in
  Seq_trie.add t [| 0; 1; 2 |];
  Seq_trie.add t [| 0; 1; 3 |];
  Alcotest.(check int) "prefix 0" 2 (Seq_trie.count t (key [ 0 ]));
  Alcotest.(check int) "prefix 01" 2 (Seq_trie.count t (key [ 0; 1 ]));
  Alcotest.(check int) "012" 1 (Seq_trie.count t (key [ 0; 1; 2 ]));
  Alcotest.(check int) "distinct at 3" 2 (Seq_trie.distinct t 3);
  Alcotest.(check int) "distinct at 2" 1 (Seq_trie.distinct t 2)

let test_of_trace_totals () =
  let trace = trace8 [ 0; 1; 2; 3; 4 ] in
  let t = Seq_trie.of_trace ~max_len:3 trace in
  Alcotest.(check int) "total 1-grams" 5 (Seq_trie.total t 1);
  Alcotest.(check int) "total 2-grams" 4 (Seq_trie.total t 2);
  Alcotest.(check int) "total 3-grams" 3 (Seq_trie.total t 3)

let test_freq () =
  let trace = trace8 [ 0; 1; 0; 1; 0 ] in
  let t = Seq_trie.of_trace ~max_len:2 trace in
  check_float "freq 01" ~epsilon:1e-9 0.5 (Seq_trie.freq t (key [ 0; 1 ]));
  check_float "freq absent" ~epsilon:0.0 0.0 (Seq_trie.freq t (key [ 1; 1 ]))

let test_is_rare () =
  let symbols = List.init 200 (fun i -> if i = 100 then 2 else i mod 2) in
  let t = Seq_trie.of_trace ~max_len:2 (trace8 symbols) in
  Alcotest.(check bool) "rare symbol" true
    (Seq_trie.is_rare t ~threshold:0.05 (key [ 2 ]));
  Alcotest.(check bool) "common not rare" false
    (Seq_trie.is_rare t ~threshold:0.05 (key [ 0 ]));
  Alcotest.(check bool) "foreign not rare" false
    (Seq_trie.is_rare t ~threshold:0.05 (key [ 3 ]))

let test_agrees_with_ngram_index () =
  let suite = tiny_suite () in
  let training =
    Trace.sub suite.Seqdiv_synth.Suite.training ~pos:0 ~len:5_000
  in
  let trie = Seq_trie.of_trace ~max_len:6 training in
  let index = Ngram_index.build ~max_len:6 training in
  Alcotest.(check bool) "full agreement" true
    (Seq_trie.check_agrees_with_index trie index training)

let test_memory_and_stats () =
  let trace = trace8 [ 0; 1; 2; 3 ] in
  let t = Seq_trie.of_trace ~max_len:2 trace in
  Alcotest.(check bool) "memory positive" true (Seq_trie.memory_words t > 0);
  let s = Format.asprintf "%a" Seq_trie.pp_stats t in
  Alcotest.(check bool) "stats mentions nodes" true
    (String.length s > 0 && String.sub s 0 5 = "trie{")

let test_random_probe () =
  let t = Seq_trie.create ~alphabet_size:8 ~max_len:5 in
  let rng = Prng.create ~seed:1 in
  let p = Seq_trie.random_probe t rng ~len:4 in
  Alcotest.(check int) "length" 4 (String.length p);
  String.iter (fun c -> Alcotest.(check bool) "in alphabet" true (Char.code c < 8)) p

let symbols_gen = QCheck.(list_of_size Gen.(3 -- 80) (int_bound 7))

let prop_counts_match_hash_index =
  qcheck ~count:80 "trie counts = hash-index counts" symbols_gen (fun l ->
      let trace = trace8 l in
      let depth = Stdlib.min 4 (List.length l) in
      let trie = Seq_trie.of_trace ~max_len:depth trace in
      let index = Ngram_index.build ~max_len:depth trace in
      Seq_trie.check_agrees_with_index trie index trace)

let prop_distinct_matches =
  qcheck ~count:80 "trie distinct = hash-index cardinal" symbols_gen (fun l ->
      let trace = trace8 l in
      let depth = Stdlib.min 3 (List.length l) in
      let trie = Seq_trie.of_trace ~max_len:depth trace in
      let index = Ngram_index.build ~max_len:depth trace in
      List.for_all
        (fun n -> Seq_trie.distinct trie n = Seq_db.cardinal (Ngram_index.db index n))
        (List.init depth (fun i -> i + 1)))

let prop_totals_match_window_counts =
  qcheck ~count:80 "trie totals = window counts" symbols_gen (fun l ->
      let trace = trace8 l in
      let depth = Stdlib.min 4 (List.length l) in
      let trie = Seq_trie.of_trace ~max_len:depth trace in
      List.for_all
        (fun n -> Seq_trie.total trie n = Trace.window_count trace ~width:n)
        (List.init depth (fun i -> i + 1)))

let () =
  Alcotest.run "seq_trie"
    [
      ( "seq_trie",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add counts prefixes" `Quick test_add_counts_prefixes;
          Alcotest.test_case "of_trace totals" `Quick test_of_trace_totals;
          Alcotest.test_case "freq" `Quick test_freq;
          Alcotest.test_case "is_rare" `Quick test_is_rare;
          Alcotest.test_case "agrees with ngram index" `Quick
            test_agrees_with_ngram_index;
          Alcotest.test_case "memory/stats" `Quick test_memory_and_stats;
          Alcotest.test_case "random probe" `Quick test_random_probe;
          prop_counts_match_hash_index;
          prop_distinct_matches;
          prop_totals_match_window_counts;
        ] );
    ]
