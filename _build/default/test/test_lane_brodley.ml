open Seqdiv_detectors
open Seqdiv_test_support

let test_similarity_identical () =
  (* Figure 7 left: identical size-5 sequences score 15. *)
  Alcotest.(check int) "identical" 15
    (Lane_brodley.similarity [| 0; 1; 2; 3; 4 |] [| 0; 1; 2; 3; 4 |])

let test_similarity_terminal_mismatch () =
  (* Figure 7 right: a final-element mismatch scores 10. *)
  Alcotest.(check int) "last mismatch" 10
    (Lane_brodley.similarity [| 0; 1; 2; 3; 4 |] [| 0; 1; 2; 3; 0 |]);
  Alcotest.(check int) "first mismatch" 10
    (Lane_brodley.similarity [| 7; 1; 2; 3; 4 |] [| 0; 1; 2; 3; 4 |])

let test_similarity_middle_mismatch () =
  (* Mismatch in the middle costs more: runs 1+2 before and 1+2 after. *)
  Alcotest.(check int) "middle mismatch" 6
    (Lane_brodley.similarity [| 0; 1; 7; 3; 4 |] [| 0; 1; 2; 3; 4 |])

let test_similarity_disjoint () =
  Alcotest.(check int) "no matches" 0
    (Lane_brodley.similarity [| 0; 0; 0 |] [| 1; 1; 1 |])

let test_similarity_alternating () =
  (* matches at 0 and 2 with a reset between: 1 + 1 = 2. *)
  Alcotest.(check int) "alternating" 2
    (Lane_brodley.similarity [| 5; 7; 5 |] [| 5; 6; 5 |])

let test_similarity_length_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Lane_brodley.similarity: lengths") (fun () ->
      ignore (Lane_brodley.similarity [| 1 |] [| 1; 2 |]))

let test_max_similarity () =
  Alcotest.(check int) "dw 5" 15 (Lane_brodley.max_similarity 5);
  Alcotest.(check int) "dw 2" 3 (Lane_brodley.max_similarity 2);
  Alcotest.(check int) "dw 15" 120 (Lane_brodley.max_similarity 15)

let test_train_and_best_match () =
  let model = Lane_brodley.train ~window:3 (trace8 [ 0; 1; 2; 3; 4 ]) in
  Alcotest.(check int) "instances" 3 (Lane_brodley.instances model);
  let best, sim = Lane_brodley.best_match model [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "exact instance" [| 1; 2; 3 |] best;
  Alcotest.(check int) "max similarity" 6 sim

let test_score_normalisation () =
  let model = Lane_brodley.train ~window:3 (trace8 [ 0; 1; 2; 3; 4 ]) in
  (* exact match scores 0 *)
  let r = Lane_brodley.score model (trace8 [ 0; 1; 2 ]) in
  Alcotest.(check (float 1e-9)) "known window scores 0" 0.0
    (Response.max_score r);
  (* a window sharing nothing positional with any instance scores 1;
     instances are 012,123,234 — the window 777 matches nothing. *)
  let r2 = Lane_brodley.score model (trace8 [ 7; 7; 7 ]) in
  Alcotest.(check (float 1e-9)) "alien window scores 1" 1.0
    (Response.max_score r2)

let test_terminal_mismatch_close_to_normal () =
  (* The paper's Section 7 point: a terminal mismatch leaves the score
     at window/max_sim, far from the maximal response 1. *)
  let model = Lane_brodley.train ~window:5 (trace8 [ 0; 1; 2; 3; 4; 5; 6; 7 ]) in
  let r = Lane_brodley.score model (trace8 [ 0; 1; 2; 3; 0 ]) in
  check_float "score = DW/max = 1/3" ~epsilon:1e-9 (1.0 /. 3.0)
    (Response.max_score r)

let test_blind_to_mfs_at_threshold_one () =
  let suite = small_suite () in
  let training = suite.Seqdiv_synth.Suite.training in
  List.iter
    (fun (anomaly_size, window) ->
      let model = Lane_brodley.train ~window training in
      let s = Seqdiv_synth.Suite.stream suite ~anomaly_size ~window in
      let inj = s.Seqdiv_synth.Suite.injection in
      let lo, hi =
        Seqdiv_synth.Injector.incident_span
          ~position:inj.Seqdiv_synth.Injector.position ~size:anomaly_size
          ~width:window
      in
      let r =
        Lane_brodley.score_range model inj.Seqdiv_synth.Injector.trace ~lo ~hi
      in
      Alcotest.(check bool)
        (Printf.sprintf "never maximal (AS=%d DW=%d)" anomaly_size window)
        true
        (Response.max_score r < 1.0))
    [ (3, 3); (5, 5); (5, 8); (8, 12) ]

let prop_similarity_symmetric =
  qcheck "similarity is symmetric"
    QCheck.(pair (list_of_size Gen.(1 -- 12) (int_bound 7)) small_int)
    (fun (l, seed) ->
      let a = Array.of_list l in
      let rng = Seqdiv_util.Prng.create ~seed in
      let b = Array.map (fun x -> if Seqdiv_util.Prng.bool rng then x else Seqdiv_util.Prng.int rng 8) a in
      Lane_brodley.similarity a b = Lane_brodley.similarity b a)

let prop_similarity_bounds =
  qcheck "similarity within [0, max]"
    QCheck.(pair (list_of_size Gen.(1 -- 12) (int_bound 7))
              (list_of_size Gen.(1 -- 12) (int_bound 7)))
    (fun (la, lb) ->
      QCheck.assume (List.length la = List.length lb);
      let a = Array.of_list la and b = Array.of_list lb in
      let s = Lane_brodley.similarity a b in
      s >= 0 && s <= Lane_brodley.max_similarity (Array.length a))

let prop_identical_is_max =
  qcheck "self-similarity is maximal"
    QCheck.(list_of_size Gen.(1 -- 15) (int_bound 7))
    (fun l ->
      let a = Array.of_list l in
      Lane_brodley.similarity a a = Lane_brodley.max_similarity (Array.length a))

let () =
  Alcotest.run "lane_brodley"
    [
      ( "lane_brodley",
        [
          Alcotest.test_case "identical (fig 7)" `Quick test_similarity_identical;
          Alcotest.test_case "terminal mismatch (fig 7)" `Quick
            test_similarity_terminal_mismatch;
          Alcotest.test_case "middle mismatch" `Quick test_similarity_middle_mismatch;
          Alcotest.test_case "disjoint" `Quick test_similarity_disjoint;
          Alcotest.test_case "alternating" `Quick test_similarity_alternating;
          Alcotest.test_case "length mismatch" `Quick test_similarity_length_mismatch;
          Alcotest.test_case "max similarity" `Quick test_max_similarity;
          Alcotest.test_case "train/best match" `Quick test_train_and_best_match;
          Alcotest.test_case "score normalisation" `Quick test_score_normalisation;
          Alcotest.test_case "terminal mismatch near normal" `Quick
            test_terminal_mismatch_close_to_normal;
          Alcotest.test_case "blind to MFS at threshold 1" `Quick
            test_blind_to_mfs_at_threshold_one;
          prop_similarity_symmetric;
          prop_similarity_bounds;
          prop_identical_is_max;
        ] );
    ]
