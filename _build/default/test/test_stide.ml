open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_test_support

let test_train_builds_db () =
  let model = Stide.train ~window:2 (trace8 [ 0; 1; 2; 0; 1 ]) in
  let db = Stide.db model in
  Alcotest.(check int) "distinct windows" 3 (Seq_db.cardinal db);
  Alcotest.(check int) "window recorded" 2 (Stide.window model)

let test_score_membership () =
  let model = Stide.train ~window:2 (trace8 [ 0; 1; 2; 0; 1 ]) in
  (* test trace: 0 1 7 -> windows 01 (known) and 17 (foreign) *)
  let r = Stide.score model (trace8 [ 0; 1; 7 ]) in
  let scores =
    Array.to_list (Array.map (fun i -> i.Response.score) r.Response.items)
  in
  Alcotest.(check (list (float 0.0))) "0 then 1" [ 0.0; 1.0 ] scores

let test_scores_are_binary () =
  let suite = small_suite () in
  let model = Stide.train ~window:6 suite.Seqdiv_synth.Suite.training in
  let test = Seqdiv_synth.Suite.stream suite ~anomaly_size:4 ~window:6 in
  let r = Stide.score model test.Seqdiv_synth.Suite.injection.Seqdiv_synth.Injector.trace in
  Array.iter
    (fun (i : Response.item) ->
      if i.Response.score <> 0.0 && i.Response.score <> 1.0 then
        Alcotest.fail "non-binary stide score")
    r.Response.items

let test_cover_equals_window () =
  let model = Stide.train ~window:4 (trace8 [ 0; 1; 2; 3; 4; 5 ]) in
  let r = Stide.score model (trace8 [ 0; 1; 2; 3; 4 ]) in
  Array.iter
    (fun (i : Response.item) ->
      Alcotest.(check int) "cover" 4 i.Response.cover)
    r.Response.items

let test_score_range_clamps () =
  let model = Stide.train ~window:2 (trace8 [ 0; 1; 2; 3 ]) in
  let r = Stide.score_range model (trace8 [ 0; 1; 2 ]) ~lo:(-5) ~hi:100 in
  Alcotest.(check int) "clamped to valid range" 2 (Response.length r);
  let r2 = Stide.score_range model (trace8 [ 0; 1; 2 ]) ~lo:5 ~hi:2 in
  Alcotest.(check int) "empty range" 0 (Response.length r2)

let test_train_rejects_short_trace () =
  Alcotest.check_raises "short trace"
    (Invalid_argument "Stide.train: trace shorter than window") (fun () ->
      ignore (Stide.train ~window:5 (trace8 [ 0; 1 ])))

let test_train_of_db () =
  let db = Seq_db.of_trace ~width:3 (trace8 [ 0; 1; 2; 3 ]) in
  let model = Stide.train_of_db db in
  Alcotest.(check int) "window from db" 3 (Stide.window model)

let test_detects_iff_window_spans_anomaly () =
  let suite = small_suite () in
  List.iter
    (fun (anomaly_size, window) ->
      let model = Stide.train ~window suite.Seqdiv_synth.Suite.training in
      let s = Seqdiv_synth.Suite.stream suite ~anomaly_size ~window in
      let inj = s.Seqdiv_synth.Suite.injection in
      let lo, hi =
        Seqdiv_synth.Injector.incident_span
          ~position:inj.Seqdiv_synth.Injector.position ~size:anomaly_size
          ~width:window
      in
      let r = Stide.score_range model inj.Seqdiv_synth.Injector.trace ~lo ~hi in
      let detected = Response.max_score r = 1.0 in
      Alcotest.(check bool)
        (Printf.sprintf "AS=%d DW=%d" anomaly_size window)
        (window >= anomaly_size) detected)
    [ (2, 2); (2, 3); (5, 4); (5, 5); (9, 8); (9, 9); (3, 15) ]

let test_no_false_alarms_on_training_data () =
  let suite = small_suite () in
  let training = suite.Seqdiv_synth.Suite.training in
  let model = Stide.train ~window:8 training in
  let r = Stide.score_range model training ~lo:0 ~hi:5_000 in
  Alcotest.(check int) "trained data is all known" 0
    (Response.count_over r ~threshold:1.0)

let prop_membership_definition =
  (* stide's score is exactly the foreignness indicator. *)
  qcheck ~count:50 "score = [window unseen]"
    QCheck.(
      pair
        (list_of_size Gen.(10 -- 60) (int_bound 7))
        (list_of_size Gen.(3 -- 20) (int_bound 7)))
    (fun (train_l, test_l) ->
      let window = 3 in
      QCheck.assume (List.length train_l >= window);
      QCheck.assume (List.length test_l >= window);
      let train = trace8 train_l and test = trace8 test_l in
      let model = Stide.train ~window train in
      let db = Seq_db.of_trace ~width:window train in
      let r = Stide.score model test in
      Array.for_all
        (fun (i : Response.item) ->
          let key = Trace.key test ~pos:i.Response.start ~len:window in
          i.Response.score = (if Seq_db.mem db key then 0.0 else 1.0))
        r.Response.items)

let () =
  Alcotest.run "stide"
    [
      ( "stide",
        [
          Alcotest.test_case "train builds db" `Quick test_train_builds_db;
          Alcotest.test_case "score membership" `Quick test_score_membership;
          Alcotest.test_case "binary scores" `Quick test_scores_are_binary;
          Alcotest.test_case "cover = window" `Quick test_cover_equals_window;
          Alcotest.test_case "score_range clamps" `Quick test_score_range_clamps;
          Alcotest.test_case "rejects short trace" `Quick test_train_rejects_short_trace;
          Alcotest.test_case "train_of_db" `Quick test_train_of_db;
          Alcotest.test_case "diagonal detection law" `Quick
            test_detects_iff_window_spans_anomaly;
          Alcotest.test_case "no FAs on training data" `Quick
            test_no_false_alarms_on_training_data;
          prop_membership_definition;
        ] );
    ]
