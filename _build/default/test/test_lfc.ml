open Seqdiv_detectors

let item start score = { Response.start; cover = 3; score }

let response scores =
  Response.make ~detector:"stide" ~window:3
    (Array.of_list (List.mapi (fun i s -> item i s) scores))

let alarms r ~frame ~min_count =
  Lfc.alarm_count r ~frame ~min_count ~threshold:1.0

let test_min_count_one_keeps_alarms () =
  let r = response [ 0.0; 1.0; 0.0; 0.0; 0.0 ] in
  Alcotest.(check bool) "fires" true (alarms r ~frame:2 ~min_count:1 > 0)

let test_isolated_alarm_suppressed () =
  let r = response [ 0.0; 1.0; 0.0; 0.0; 0.0; 0.0 ] in
  Alcotest.(check int) "suppressed" 0 (alarms r ~frame:3 ~min_count:2)

let test_burst_passes () =
  let r = response [ 0.0; 1.0; 1.0; 1.0; 0.0 ] in
  Alcotest.(check bool) "burst fires" true (alarms r ~frame:3 ~min_count:2 > 0)

let test_spread_alarms_within_frame () =
  (* Two alarms within a frame of 4 but not adjacent. *)
  let r = response [ 1.0; 0.0; 0.0; 1.0; 0.0 ] in
  Alcotest.(check bool) "counted across frame" true
    (alarms r ~frame:4 ~min_count:2 > 0);
  Alcotest.(check int) "not when frame too small" 0
    (alarms r ~frame:2 ~min_count:2)

let test_sliding_window_expiry () =
  (* An early alarm must leave the frame. *)
  let r = response [ 1.0; 0.0; 0.0; 0.0; 0.0; 1.0 ] in
  Alcotest.(check int) "alarms expire" 0 (alarms r ~frame:3 ~min_count:2)

let test_output_is_binary_and_widened () =
  let r = response [ 0.0; 1.0; 1.0; 0.0 ] in
  let out = Lfc.apply r ~frame:2 ~min_count:2 ~threshold:1.0 in
  Alcotest.(check int) "same item count" 4 (Response.length out);
  Array.iteri
    (fun i (it : Response.item) ->
      if it.Response.score <> 0.0 && it.Response.score <> 1.0 then
        Alcotest.fail "non-binary LFC output";
      if i >= 1 then
        Alcotest.(check bool) "cover widened to frame" true
          (it.Response.cover >= 3))
    out.Response.items

let test_detector_label () =
  let r = response [ 0.0 ] in
  let out = Lfc.apply r ~frame:1 ~min_count:1 ~threshold:1.0 in
  Alcotest.(check string) "label" "stide+lfc" out.Response.detector

let test_threshold_respected () =
  let r = response [ 0.9; 0.9; 0.9 ] in
  Alcotest.(check int) "0.9 not an alarm at threshold 1" 0
    (alarms r ~frame:2 ~min_count:1);
  let out = Lfc.apply r ~frame:2 ~min_count:1 ~threshold:0.5 in
  Alcotest.(check int) "all alarms at threshold 0.5" 3
    (Response.count_over out ~threshold:1.0)

let () =
  Alcotest.run "lfc"
    [
      ( "lfc",
        [
          Alcotest.test_case "min count 1" `Quick test_min_count_one_keeps_alarms;
          Alcotest.test_case "isolated suppressed" `Quick test_isolated_alarm_suppressed;
          Alcotest.test_case "burst passes" `Quick test_burst_passes;
          Alcotest.test_case "spread within frame" `Quick test_spread_alarms_within_frame;
          Alcotest.test_case "expiry" `Quick test_sliding_window_expiry;
          Alcotest.test_case "binary and widened" `Quick test_output_is_binary_and_widened;
          Alcotest.test_case "label" `Quick test_detector_label;
          Alcotest.test_case "threshold" `Quick test_threshold_respected;
        ] );
    ]
