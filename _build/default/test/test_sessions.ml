open Seqdiv_stream
open Seqdiv_util
open Seqdiv_test_support

let sessions_of lists = Sessions.of_traces (List.map trace8 lists)

let test_of_traces_basics () =
  let s = sessions_of [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "count" 2 (Sessions.count s);
  Alcotest.(check int) "total length" 5 (Sessions.total_length s);
  Alcotest.(check int) "alphabet" 8 (Alphabet.size (Sessions.alphabet s))

let test_of_traces_empty_rejected () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Sessions.of_traces: empty corpus") (fun () ->
      ignore (Sessions.of_traces []))

let test_of_traces_alphabet_mismatch () =
  let a = trace8 [ 0; 1 ] in
  let b = Trace.of_list (Alphabet.make 4) [ 0; 1 ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Sessions.of_traces: mismatched alphabets") (fun () ->
      ignore (Sessions.of_traces [ a; b ]))

let test_windows_do_not_span_boundaries () =
  (* Two sessions [0;1] and [2;3]: the 2-gram (1,2) must NOT appear. *)
  let s = sessions_of [ [ 0; 1 ]; [ 2; 3 ] ] in
  let db = Sessions.seq_db s ~width:2 in
  Alcotest.(check bool) "01 present" true
    (Seq_db.mem db (Trace.key_of_symbols [| 0; 1 |]));
  Alcotest.(check bool) "23 present" true
    (Seq_db.mem db (Trace.key_of_symbols [| 2; 3 |]));
  Alcotest.(check bool) "boundary 12 absent" false
    (Seq_db.mem db (Trace.key_of_symbols [| 1; 2 |]))

let test_window_count_excludes_boundaries () =
  let s = sessions_of [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] in
  (* Each session has 2 two-windows; the concatenation would have 5. *)
  Alcotest.(check int) "per-session windows" 4 (Sessions.window_count s ~width:2);
  let db = Sessions.seq_db s ~width:2 in
  Alcotest.(check int) "db total matches" 4 (Seq_db.total db)

let test_short_sessions_yield_no_windows () =
  let s = sessions_of [ [ 0 ]; [ 1; 2; 3 ] ] in
  Alcotest.(check int) "only long session contributes" 2
    (Sessions.window_count s ~width:2)

let test_split_exact () =
  let s = Sessions.split (trace8 [ 0; 1; 2; 3; 4; 5 ]) ~session_length:3 in
  Alcotest.(check int) "two sessions" 2 (Sessions.count s);
  List.iter
    (fun tr -> Alcotest.(check int) "length 3" 3 (Trace.length tr))
    (Sessions.traces s)

let test_split_remnant_kept () =
  (* 9 = 4 + 4 + 1; the remnant 1 < 4/2 is dropped. *)
  let s =
    Sessions.split (trace8 [ 0; 1; 2; 3; 4; 5; 6; 7; 0 ]) ~session_length:4
  in
  Alcotest.(check int) "remnant dropped" 2 (Sessions.count s);
  (* 10 = 4 + 4 + 2; the remnant 2 >= 4/2 is kept. *)
  let s2 =
    Sessions.split (trace8 [ 0; 1; 2; 3; 4; 5; 6; 7; 0; 1 ]) ~session_length:4
  in
  Alcotest.(check int) "remnant kept" 3 (Sessions.count s2);
  Alcotest.(check int) "total preserved" 10 (Sessions.total_length s2)

let test_generate () =
  let chain = training_chain () in
  let rng = Prng.create ~seed:4 in
  let s =
    Sessions.generate
      (fun rng i ->
        Seqdiv_synth.Markov_chain.generate chain rng ~start:(i mod 8) ~len:50)
      rng ~sessions:5 ~length:50
  in
  Alcotest.(check int) "five sessions" 5 (Sessions.count s);
  Alcotest.(check int) "250 elements" 250 (Sessions.total_length s)

let test_stide_trained_on_sessions () =
  (* Stide trained via Seq_db.of_traces flags a cross-boundary window as
     foreign even when both halves are familiar. *)
  let sessions = sessions_of [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ] in
  let db = Sessions.seq_db sessions ~width:2 in
  let stide = Seqdiv_detectors.Stide.train_of_db db in
  let r = Seqdiv_detectors.Stide.score stide (trace8 [ 3; 4 ]) in
  Alcotest.(check (float 0.0)) "cross-boundary window foreign" 1.0
    (Seqdiv_detectors.Response.max_score r)

let prop_total_windows =
  qcheck "window_count = sum of per-session counts"
    QCheck.(
      pair (int_range 1 5)
        (small_list (list_of_size Gen.(1 -- 20) (int_bound 7))))
    (fun (width, lists) ->
      QCheck.assume (lists <> []);
      let s = sessions_of lists in
      Sessions.window_count s ~width
      = List.fold_left
          (fun acc l -> acc + Stdlib.max 0 (List.length l - width + 1))
          0 lists)

let () =
  Alcotest.run "sessions"
    [
      ( "sessions",
        [
          Alcotest.test_case "basics" `Quick test_of_traces_basics;
          Alcotest.test_case "empty rejected" `Quick test_of_traces_empty_rejected;
          Alcotest.test_case "alphabet mismatch" `Quick test_of_traces_alphabet_mismatch;
          Alcotest.test_case "no boundary spanning" `Quick
            test_windows_do_not_span_boundaries;
          Alcotest.test_case "window count" `Quick test_window_count_excludes_boundaries;
          Alcotest.test_case "short sessions" `Quick test_short_sessions_yield_no_windows;
          Alcotest.test_case "split exact" `Quick test_split_exact;
          Alcotest.test_case "split remnant" `Quick test_split_remnant_kept;
          Alcotest.test_case "generate" `Quick test_generate;
          Alcotest.test_case "stide on sessions" `Quick test_stide_trained_on_sessions;
          prop_total_windows;
        ] );
    ]
