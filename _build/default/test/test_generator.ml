open Seqdiv_util
open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_test_support

let test_training_length () =
  let chain = training_chain () in
  let t = Generator.training chain (Prng.create ~seed:1) ~len:5_000 in
  Alcotest.(check int) "length" 5_000 (Trace.length t);
  Alcotest.(check int) "starts at 0" 0 (Trace.get t 0)

let test_background_pure_cycle () =
  let bg = Generator.background alphabet8 ~len:1_000 ~phase:3 in
  Alcotest.(check int) "first" 3 (Trace.get bg 0);
  for i = 0 to Trace.length bg - 2 do
    if Trace.get bg (i + 1) <> (Trace.get bg i + 1) mod 8 then
      Alcotest.fail "background deviates from cycle"
  done

let test_background_contains_no_anomalies () =
  (* Every window of the background, at any width, appears in any
     reasonably-sized training stream — the "clean" property of
     Section 5.4.1. *)
  let chain = training_chain () in
  let training = Generator.training chain (Prng.create ~seed:2) ~len:30_000 in
  let index = Ngram_index.build ~max_len:15 training in
  let bg = Generator.background alphabet8 ~len:500 ~phase:0 in
  List.iter
    (fun width ->
      Trace.iter_windows bg ~width (fun pos ->
          if Ngram_index.is_foreign index (Trace.key bg ~pos ~len:width) then
            Alcotest.fail
              (Printf.sprintf "foreign background window at %d width %d" pos
                 width)))
    [ 2; 5; 10; 15 ]

let test_cycle_fraction_of_pure_cycle () =
  let bg = Generator.background alphabet8 ~len:100 ~phase:0 in
  check_float "pure cycle" ~epsilon:0.0 1.0 (Generator.cycle_fraction bg)

let test_cycle_fraction_short () =
  check_float "single element" ~epsilon:0.0 1.0
    (Generator.cycle_fraction (trace8 [ 4 ]))

let test_cycle_fraction_counts () =
  (* 0 1 2 4: two cycle steps out of three transitions. *)
  check_float "2/3" ~epsilon:1e-9 (2.0 /. 3.0)
    (Generator.cycle_fraction (trace8 [ 0; 1; 2; 4 ]))

let test_training_98_percent () =
  let chain = training_chain () in
  let t = Generator.training chain (Prng.create ~seed:3) ~len:200_000 in
  let frac = Generator.cycle_fraction t in
  Alcotest.(check bool)
    (Printf.sprintf "mostly cycle (%.4f)" frac)
    true
    (frac > 0.99 && frac < 1.0)

let prop_background_phase =
  qcheck "background symbol i = (phase + i) mod k"
    QCheck.(pair (int_bound 7) (int_range 1 200))
    (fun (phase, len) ->
      let bg = Generator.background alphabet8 ~len ~phase in
      let ok = ref true in
      for i = 0 to len - 1 do
        if Trace.get bg i <> (phase + i) mod 8 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "generator"
    [
      ( "generator",
        [
          Alcotest.test_case "training length" `Quick test_training_length;
          Alcotest.test_case "background cycle" `Quick test_background_pure_cycle;
          Alcotest.test_case "background clean" `Quick test_background_contains_no_anomalies;
          Alcotest.test_case "cycle fraction pure" `Quick test_cycle_fraction_of_pure_cycle;
          Alcotest.test_case "cycle fraction short" `Quick test_cycle_fraction_short;
          Alcotest.test_case "cycle fraction counts" `Quick test_cycle_fraction_counts;
          Alcotest.test_case "98 percent property" `Quick test_training_98_percent;
          prop_background_phase;
        ] );
    ]
