open Seqdiv_stream
open Seqdiv_test_support

let key l = Trace.key_of_symbols (Array.of_list l)

let test_mem_per_length () =
  let index = Ngram_index.build ~max_len:3 (trace8 [ 0; 1; 2; 0; 1 ]) in
  Alcotest.(check bool) "1-gram" true (Ngram_index.mem index (key [ 2 ]));
  Alcotest.(check bool) "2-gram present" true (Ngram_index.mem index (key [ 2; 0 ]));
  Alcotest.(check bool) "2-gram absent" false (Ngram_index.mem index (key [ 1; 0 ]));
  Alcotest.(check bool) "3-gram present" true
    (Ngram_index.mem index (key [ 0; 1; 2 ]));
  Alcotest.(check bool) "3-gram absent" false
    (Ngram_index.mem index (key [ 1; 2; 1 ]))

let test_count () =
  let index = Ngram_index.build ~max_len:2 (trace8 [ 0; 1; 0; 1; 0 ]) in
  Alcotest.(check int) "01 twice" 2 (Ngram_index.count index (key [ 0; 1 ]));
  Alcotest.(check int) "absent" 0 (Ngram_index.count index (key [ 1; 1 ]))

let test_db_access () =
  let index = Ngram_index.build ~max_len:4 (trace8 [ 0; 1; 2; 3; 4; 5 ]) in
  Alcotest.(check int) "max_len" 4 (Ngram_index.max_len index);
  Alcotest.(check int) "db width" 3 (Seq_db.width (Ngram_index.db index 3));
  Alcotest.(check int) "db totals" 3 (Seq_db.total (Ngram_index.db index 4))

let test_rare_foreign () =
  (* 0 repeated with a single 1: the 2-gram (0,1) is rare. *)
  let symbols = List.init 200 (fun i -> if i = 100 then 1 else 0) in
  let index = Ngram_index.build ~max_len:2 (trace8 symbols) in
  Alcotest.(check bool) "rare" true
    (Ngram_index.is_rare index ~threshold:0.05 (key [ 0; 1 ]));
  Alcotest.(check bool) "common not rare" false
    (Ngram_index.is_rare index ~threshold:0.05 (key [ 0; 0 ]));
  Alcotest.(check bool) "foreign" true (Ngram_index.is_foreign index (key [ 1; 1 ]))

let test_minimal_foreign_basic () =
  (* trace: 0 1 2 3 0 2 ... the 2-gram (3,1) is absent while 3 and 1 occur. *)
  let index = Ngram_index.build ~max_len:3 (trace8 [ 0; 1; 2; 3; 0; 2 ]) in
  Alcotest.(check bool) "minimal foreign 2-gram" true
    (Ngram_index.is_minimal_foreign index (key [ 3; 1 ]));
  Alcotest.(check bool) "present not MFS" false
    (Ngram_index.is_minimal_foreign index (key [ 0; 1 ]));
  (* (1,2,3): present -> not foreign *)
  Alcotest.(check bool) "present 3-gram" false
    (Ngram_index.is_minimal_foreign index (key [ 1; 2; 3 ]));
  (* (2,3,0) present; (3,0,2) present; (2,3,0,2)? max_len 3, skip *)
  (* (0,2,3): (0,2) present, (2,3) present, full absent -> MFS *)
  Alcotest.(check bool) "3-gram MFS" true
    (Ngram_index.is_minimal_foreign index (key [ 0; 2; 3 ]))

let test_minimal_foreign_sub_foreign () =
  (* (1,1,2): sub 2-gram (1,1) is foreign, so not minimal. *)
  let index = Ngram_index.build ~max_len:3 (trace8 [ 0; 1; 2; 0; 1; 2 ]) in
  Alcotest.(check bool) "sub-foreign rejected" false
    (Ngram_index.is_minimal_foreign index (key [ 1; 1; 2 ]))

(* Brute-force reference implementation over a random trace. *)
let brute_minimal_foreign trace candidate =
  let occurs sub =
    let n = Trace.length trace and m = Array.length sub in
    let rec at pos =
      if pos + m > n then false
      else if Array.for_all2 (fun a b -> a = b) sub (Trace.to_array (Trace.sub trace ~pos ~len:m))
      then true
      else at (pos + 1)
    in
    at 0
  in
  let n = Array.length candidate in
  n >= 2
  && (not (occurs candidate))
  && (let ok = ref true in
      for len = 1 to n - 1 do
        for pos = 0 to n - len do
          if not (occurs (Array.sub candidate pos len)) then ok := false
        done
      done;
      !ok)

let prop_matches_brute_force =
  qcheck ~count:300 "is_minimal_foreign matches brute force"
    QCheck.(
      pair
        (list_of_size Gen.(8 -- 40) (int_bound 3))
        (list_of_size Gen.(2 -- 4) (int_bound 3)))
    (fun (trace_syms, cand) ->
      let trace = trace8 trace_syms in
      let index = Ngram_index.build ~max_len:5 trace in
      let candidate = Array.of_list cand in
      Ngram_index.is_minimal_foreign index (Trace.key_of_symbols candidate)
      = brute_minimal_foreign trace candidate)

let prop_count_sums =
  qcheck "counts per length sum to window count"
    QCheck.(list_of_size Gen.(4 -- 50) (int_bound 7))
    (fun l ->
      let t = trace8 l in
      let index = Ngram_index.build ~max_len:3 t in
      List.for_all
        (fun n ->
          Seq_db.total (Ngram_index.db index n) = Trace.window_count t ~width:n)
        [ 1; 2; 3 ])

let () =
  Alcotest.run "ngram_index"
    [
      ( "ngram_index",
        [
          Alcotest.test_case "mem per length" `Quick test_mem_per_length;
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "db access" `Quick test_db_access;
          Alcotest.test_case "rare/foreign" `Quick test_rare_foreign;
          Alcotest.test_case "minimal foreign basics" `Quick test_minimal_foreign_basic;
          Alcotest.test_case "sub-foreign rejected" `Quick test_minimal_foreign_sub_foreign;
          prop_matches_brute_force;
          prop_count_sums;
        ] );
    ]
