open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_test_support

let small_index () =
  let suite = small_suite () in
  (suite.Suite.index, suite.Suite.alphabet, suite.Suite.params.Suite.rare_threshold)

let test_verify_too_short () =
  let index, _, _ = small_index () in
  Alcotest.(check bool) "length 1" true (Mfs.verify index [| 0 |] = Mfs.Too_short);
  Alcotest.(check bool) "length 0" true (Mfs.verify index [||] = Mfs.Too_short)

let test_verify_not_foreign () =
  let index, _, _ = small_index () in
  (* The pure cycle 0 1 2 occurs constantly. *)
  match Mfs.verify index [| 0; 1; 2 |] with
  | Mfs.Not_foreign c -> Alcotest.(check bool) "count positive" true (c > 0)
  | _ -> Alcotest.fail "expected Not_foreign"

let test_verify_sub_foreign () =
  let index, _, _ = small_index () in
  (* (0,4) is a structural zero, so [0;4;5] has a foreign proper
     sub-sequence. *)
  match Mfs.verify index [| 0; 4; 5 |] with
  | Mfs.Sub_foreign (pos, len) ->
      Alcotest.(check int) "position" 0 pos;
      Alcotest.(check int) "length" 2 len
  | _ -> Alcotest.fail "expected Sub_foreign"

let test_candidates_size2_are_structural_zeros () =
  let index, alphabet, rare = small_index () in
  let candidates = Mfs.candidates index alphabet ~size:2 ~rare_threshold:rare in
  Alcotest.(check bool) "some exist" true (candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check int) "size" 2 (Array.length c);
      let diff = (c.(1) - c.(0) + 8) mod 8 in
      if diff >= 1 && diff <= 3 then
        Alcotest.fail "candidate uses an allowed transition")
    candidates

let test_candidates_all_verify () =
  let index, alphabet, rare = small_index () in
  List.iter
    (fun size ->
      let candidates = Mfs.candidates index alphabet ~size ~rare_threshold:rare in
      Alcotest.(check bool)
        (Printf.sprintf "size %d nonempty" size)
        true (candidates <> []);
      List.iter
        (fun c ->
          match Mfs.verify index c with
          | Mfs.Ok_minimal_foreign -> ()
          | v ->
              Alcotest.fail
                (Printf.sprintf "size-%d candidate failed: %s" size
                   (match v with
                   | Mfs.Not_foreign n -> Printf.sprintf "not foreign (%d)" n
                   | Mfs.Sub_foreign (p, l) ->
                       Printf.sprintf "sub foreign (%d,%d)" p l
                   | Mfs.Too_short -> "too short"
                   | Mfs.Ok_minimal_foreign -> assert false)))
        candidates)
    [ 2; 3; 5; 7; 9 ]

let test_candidates_deterministic () =
  let index, alphabet, rare = small_index () in
  let a = Mfs.candidates index alphabet ~size:4 ~rare_threshold:rare in
  let b = Mfs.candidates index alphabet ~size:4 ~rare_threshold:rare in
  Alcotest.(check bool) "same order" true (a = b)

let test_candidates_rare_first () =
  let index, alphabet, rare = small_index () in
  let candidates = Mfs.candidates index alphabet ~size:5 ~rare_threshold:rare in
  let counts =
    List.map (Mfs.rare_twogram_count index ~threshold:rare) candidates
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by rare 2-grams" true (non_increasing counts)

let test_find () =
  let index, alphabet, rare = small_index () in
  (match Mfs.find index alphabet ~size:6 ~rare_threshold:rare with
  | Ok c -> Alcotest.(check int) "size" 6 (Array.length c)
  | Error e -> Alcotest.fail e);
  (* A size larger than anything constructible from this training data
     still within the index depth: expect a descriptive error or a valid
     candidate, never an exception. *)
  match Mfs.find index alphabet ~size:10 ~rare_threshold:rare with
  | Ok c -> Alcotest.(check int) "size" 10 (Array.length c)
  | Error e -> Alcotest.(check bool) "message mentions size" true
                 (String.length e > 0)

let test_rare_twogram_count () =
  let index, _, rare = small_index () in
  (* Pure cycle has no rare 2-grams. *)
  Alcotest.(check int) "cycle" 0
    (Mfs.rare_twogram_count index ~threshold:rare [| 0; 1; 2; 3 |]);
  (* A deviation 2-gram is rare. *)
  Alcotest.(check int) "deviation" 1
    (Mfs.rare_twogram_count index ~threshold:rare [| 0; 2 |])

let prop_candidates_are_foreign =
  qcheck ~count:6 "every candidate is absent from training"
    QCheck.(int_range 3 8)
    (fun size ->
      let index, alphabet, rare = small_index () in
      Mfs.candidates index alphabet ~size ~rare_threshold:rare
      |> List.for_all (fun c ->
             Ngram_index.is_foreign index (Trace.key_of_symbols c)))

let () =
  Alcotest.run "mfs"
    [
      ( "mfs",
        [
          Alcotest.test_case "too short" `Quick test_verify_too_short;
          Alcotest.test_case "not foreign" `Quick test_verify_not_foreign;
          Alcotest.test_case "sub foreign" `Quick test_verify_sub_foreign;
          Alcotest.test_case "size-2 structural zeros" `Quick
            test_candidates_size2_are_structural_zeros;
          Alcotest.test_case "all verify" `Quick test_candidates_all_verify;
          Alcotest.test_case "deterministic" `Quick test_candidates_deterministic;
          Alcotest.test_case "rare first" `Quick test_candidates_rare_first;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "rare 2-gram count" `Quick test_rare_twogram_count;
          prop_candidates_are_foreign;
        ] );
    ]
