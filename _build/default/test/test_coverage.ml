open Seqdiv_core
open Seqdiv_test_support

let cells_gen =
  QCheck.(
    map
      (fun l -> Coverage.of_cells (List.map (fun (a, w) -> (a mod 8, w mod 14)) l))
      (small_list (pair small_int small_int)))

let a3 = Coverage.of_cells [ (2, 2); (3, 4); (5, 6) ]
let b2 = Coverage.of_cells [ (3, 4); (9, 9) ]

let test_cardinal () =
  Alcotest.(check int) "empty" 0 (Coverage.cardinal Coverage.empty);
  Alcotest.(check int) "three" 3 (Coverage.cardinal a3);
  Alcotest.(check int) "dedup" 1
    (Coverage.cardinal (Coverage.of_cells [ (1, 1); (1, 1) ]))

let test_mem () =
  Alcotest.(check bool) "member" true (Coverage.mem a3 (3, 4));
  Alcotest.(check bool) "not member" false (Coverage.mem a3 (9, 9))

let test_union_inter_diff () =
  Alcotest.(check int) "union" 4 (Coverage.cardinal (Coverage.union a3 b2));
  Alcotest.(check int) "inter" 1 (Coverage.cardinal (Coverage.inter a3 b2));
  Alcotest.(check int) "diff" 2 (Coverage.cardinal (Coverage.diff a3 b2));
  Alcotest.(check (list (pair int int))) "inter cells" [ (3, 4) ]
    (Coverage.cells (Coverage.inter a3 b2))

let test_subset () =
  Alcotest.(check bool) "empty subset" true (Coverage.subset Coverage.empty a3);
  Alcotest.(check bool) "self subset" true (Coverage.subset a3 a3);
  Alcotest.(check bool) "proper" true
    (Coverage.subset (Coverage.of_cells [ (2, 2) ]) a3);
  Alcotest.(check bool) "not subset" false (Coverage.subset b2 a3)

let test_jaccard () =
  check_float "disjoint" ~epsilon:1e-9 0.0
    (Coverage.jaccard a3 (Coverage.of_cells [ (9, 9) ]));
  check_float "identical" ~epsilon:1e-9 1.0 (Coverage.jaccard a3 a3);
  check_float "empty-empty" ~epsilon:1e-9 1.0
    (Coverage.jaccard Coverage.empty Coverage.empty);
  check_float "partial" ~epsilon:1e-9 0.25 (Coverage.jaccard a3 b2)

let test_gain () =
  Alcotest.(check int) "gain" 1 (Coverage.gain ~base:a3 ~added:b2);
  Alcotest.(check int) "no gain from subset" 0
    (Coverage.gain ~base:a3 ~added:(Coverage.of_cells [ (2, 2) ]))

let test_cells_sorted () =
  let c = Coverage.of_cells [ (5, 1); (2, 9); (2, 3) ] in
  Alcotest.(check (list (pair int int))) "ascending" [ (2, 3); (2, 9); (5, 1) ]
    (Coverage.cells c)

let prop_union_commutative =
  qcheck "union commutative" QCheck.(pair cells_gen cells_gen) (fun (a, b) ->
      Coverage.equal (Coverage.union a b) (Coverage.union b a))

let prop_inter_subset_union =
  qcheck "inter ⊆ each ⊆ union" QCheck.(pair cells_gen cells_gen) (fun (a, b) ->
      Coverage.subset (Coverage.inter a b) a
      && Coverage.subset a (Coverage.union a b))

let prop_diff_disjoint =
  qcheck "diff disjoint from subtrahend" QCheck.(pair cells_gen cells_gen)
    (fun (a, b) ->
      Coverage.cardinal (Coverage.inter (Coverage.diff a b) b) = 0)

let prop_inclusion_exclusion =
  qcheck "|a|+|b| = |a∪b|+|a∩b|" QCheck.(pair cells_gen cells_gen)
    (fun (a, b) ->
      Coverage.cardinal a + Coverage.cardinal b
      = Coverage.cardinal (Coverage.union a b)
        + Coverage.cardinal (Coverage.inter a b))

let prop_jaccard_bounds =
  qcheck "jaccard within [0,1]" QCheck.(pair cells_gen cells_gen) (fun (a, b) ->
      let j = Coverage.jaccard a b in
      j >= 0.0 && j <= 1.0)

let () =
  Alcotest.run "coverage"
    [
      ( "coverage",
        [
          Alcotest.test_case "cardinal" `Quick test_cardinal;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "union/inter/diff" `Quick test_union_inter_diff;
          Alcotest.test_case "subset" `Quick test_subset;
          Alcotest.test_case "jaccard" `Quick test_jaccard;
          Alcotest.test_case "gain" `Quick test_gain;
          Alcotest.test_case "cells sorted" `Quick test_cells_sorted;
          prop_union_commutative;
          prop_inter_subset_union;
          prop_diff_disjoint;
          prop_inclusion_exclusion;
          prop_jaccard_bounds;
        ] );
    ]
