open Seqdiv_core
open Seqdiv_test_support

let test_classify_blind () =
  Alcotest.(check bool) "zero is blind" true
    (Outcome.is_blind (Outcome.classify ~epsilon:0.0 ~max_response:0.0))

let test_classify_capable_exact () =
  let o = Outcome.classify ~epsilon:0.0 ~max_response:1.0 in
  Alcotest.(check bool) "capable" true (Outcome.is_capable o);
  check_float "max recorded" ~epsilon:0.0 1.0 (Outcome.max_response o)

let test_classify_weak () =
  let o = Outcome.classify ~epsilon:0.0 ~max_response:0.999 in
  Alcotest.(check bool) "weak" true (Outcome.is_weak o);
  check_float "max recorded" ~epsilon:0.0 0.999 (Outcome.max_response o)

let test_epsilon_boundary () =
  let eps = 0.005 in
  Alcotest.(check bool) "at 1-eps capable" true
    (Outcome.is_capable (Outcome.classify ~epsilon:eps ~max_response:0.995));
  Alcotest.(check bool) "just under weak" true
    (Outcome.is_weak (Outcome.classify ~epsilon:eps ~max_response:0.9949))

let test_predicates_exclusive () =
  List.iter
    (fun o ->
      let count =
        List.length
          (List.filter
             (fun f -> f o)
             [ Outcome.is_blind; Outcome.is_weak; Outcome.is_capable ])
      in
      Alcotest.(check int) "exactly one predicate" 1 count)
    [ Outcome.Blind; Outcome.Weak 0.4; Outcome.Capable 1.0 ]

let test_chars () =
  Alcotest.(check char) "blind" '.' (Outcome.to_char Outcome.Blind);
  Alcotest.(check char) "weak" 'o' (Outcome.to_char (Outcome.Weak 0.5));
  Alcotest.(check char) "capable" '*' (Outcome.to_char (Outcome.Capable 1.0))

let test_to_string () =
  Alcotest.(check string) "blind" "blind" (Outcome.to_string Outcome.Blind);
  Alcotest.(check string) "weak" "weak(0.5000)"
    (Outcome.to_string (Outcome.Weak 0.5))

let test_equal () =
  Alcotest.(check bool) "blind = blind" true
    (Outcome.equal Outcome.Blind Outcome.Blind);
  Alcotest.(check bool) "weak mismatch" false
    (Outcome.equal (Outcome.Weak 0.1) (Outcome.Weak 0.2));
  Alcotest.(check bool) "weak vs capable" false
    (Outcome.equal (Outcome.Weak 1.0) (Outcome.Capable 1.0))

let prop_classification_total =
  qcheck "classification covers [0,1]"
    QCheck.(pair (float_bound_inclusive 1.0) (float_bound_exclusive 1.0))
    (fun (m, eps) ->
      let o = Outcome.classify ~epsilon:eps ~max_response:m in
      Outcome.is_blind o || Outcome.is_weak o || Outcome.is_capable o)

let prop_max_response_preserved =
  qcheck "max_response round-trips" QCheck.(float_bound_inclusive 1.0)
    (fun m ->
      let o = Outcome.classify ~epsilon:0.01 ~max_response:m in
      Outcome.max_response o = m || (m = 0.0 && Outcome.is_blind o))

let () =
  Alcotest.run "outcome"
    [
      ( "outcome",
        [
          Alcotest.test_case "blind" `Quick test_classify_blind;
          Alcotest.test_case "capable exact" `Quick test_classify_capable_exact;
          Alcotest.test_case "weak" `Quick test_classify_weak;
          Alcotest.test_case "epsilon boundary" `Quick test_epsilon_boundary;
          Alcotest.test_case "exclusive predicates" `Quick test_predicates_exclusive;
          Alcotest.test_case "chars" `Quick test_chars;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "equal" `Quick test_equal;
          prop_classification_total;
          prop_max_response_preserved;
        ] );
    ]
