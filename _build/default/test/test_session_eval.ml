open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let corpus () =
  let suite = tiny_suite () in
  let rng = Seqdiv_util.Prng.create ~seed:41 in
  let normal = Session_workload.normal suite rng ~sessions:40 ~length:300 in
  let anomalous =
    Session_workload.anomalous suite ~sessions:20 ~length:300 ~anomaly_size:4
      ~window:6
  in
  (suite, normal, anomalous)

let test_workload_shapes () =
  let _, normal, anomalous = corpus () in
  Alcotest.(check int) "normal sessions" 40 (Sessions.count normal);
  Alcotest.(check int) "anomalous sessions" 20 (Sessions.count anomalous);
  List.iter
    (fun tr -> Alcotest.(check int) "length" 304 (Trace.length tr))
    (Sessions.traces anomalous)

let test_anomalous_sessions_contain_foreign_content () =
  let suite, _, anomalous = corpus () in
  List.iter
    (fun session ->
      let found = ref false in
      Trace.iter_windows session ~width:6 (fun pos ->
          if
            Seqdiv_stream.Ngram_index.is_foreign suite.Suite.index
              (Trace.key session ~pos ~len:6)
          then found := true);
      Alcotest.(check bool) "has foreign window" true !found)
    (Sessions.traces anomalous)

let test_normal_sessions_contain_no_foreign_content () =
  let suite, normal, _ = corpus () in
  List.iter
    (fun session ->
      Trace.iter_windows session ~width:2 (fun pos ->
          if
            Seqdiv_stream.Ngram_index.is_foreign suite.Suite.index
              (Trace.key session ~pos ~len:2)
          then Alcotest.fail "normal session has a foreign 2-gram"))
    (Sessions.traces normal)

let test_confusion_rates () =
  let c =
    {
      Session_eval.true_positives = 8;
      false_negatives = 2;
      false_positives = 1;
      true_negatives = 9;
    }
  in
  check_float "detection" ~epsilon:1e-9 0.8 (Session_eval.detection_rate c);
  check_float "false alarm" ~epsilon:1e-9 0.1 (Session_eval.false_alarm_rate c)

let test_confusion_rates_degenerate () =
  let c =
    {
      Session_eval.true_positives = 0;
      false_negatives = 0;
      false_positives = 0;
      true_negatives = 0;
    }
  in
  check_float "no anomalous" ~epsilon:0.0 0.0 (Session_eval.detection_rate c);
  check_float "no normal" ~epsilon:0.0 0.0 (Session_eval.false_alarm_rate c)

let test_short_session_never_trips () =
  let suite, _, _ = corpus () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:6 suite.Suite.training
  in
  Alcotest.(check bool) "short session" false
    (Session_eval.session_anomalous stide ~threshold:1.0 (trace8 [ 0; 1 ]))

let test_stide_session_classification () =
  let suite, normal, anomalous = corpus () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:6 suite.Suite.training
  in
  let c = Session_eval.evaluate stide ~normal ~anomalous () in
  (* Window 6 > anomaly size 4: every attack session contains a foreign
     window; Stide catches all and raises no session-level false alarms
     on this training scale. *)
  check_float "perfect detection" ~epsilon:1e-9 1.0
    (Session_eval.detection_rate c);
  Alcotest.(check bool)
    (Printf.sprintf "few false positives (%d)" c.Session_eval.false_positives)
    true
    (Session_eval.false_alarm_rate c < 0.2)

let test_markov_detects_but_alarms_more () =
  let suite, normal, anomalous = corpus () in
  let train name =
    Trained.train (Registry.find_exn name) ~window:6 suite.Suite.training
  in
  let markov = Session_eval.evaluate (train "markov") ~normal ~anomalous () in
  let stide = Session_eval.evaluate (train "stide") ~normal ~anomalous () in
  check_float "markov catches all attacks" ~epsilon:1e-9 1.0
    (Session_eval.detection_rate markov);
  Alcotest.(check bool)
    (Printf.sprintf "markov session FPs (%d) >= stide's (%d)"
       markov.Session_eval.false_positives stide.Session_eval.false_positives)
    true
    (markov.Session_eval.false_positives >= stide.Session_eval.false_positives)

let test_partition () =
  let _, normal, anomalous = corpus () in
  let suite, _, _ = corpus () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:6 suite.Suite.training
  in
  let c = Session_eval.evaluate stide ~normal ~anomalous () in
  Alcotest.(check int) "anomalous partition" (Sessions.count anomalous)
    (c.Session_eval.true_positives + c.Session_eval.false_negatives);
  Alcotest.(check int) "normal partition" (Sessions.count normal)
    (c.Session_eval.false_positives + c.Session_eval.true_negatives)

let () =
  Alcotest.run "session_eval"
    [
      ( "workload",
        [
          Alcotest.test_case "shapes" `Quick test_workload_shapes;
          Alcotest.test_case "anomalous contain foreign" `Quick
            test_anomalous_sessions_contain_foreign_content;
          Alcotest.test_case "normal contain no foreign" `Quick
            test_normal_sessions_contain_no_foreign_content;
        ] );
      ( "session_eval",
        [
          Alcotest.test_case "rates" `Quick test_confusion_rates;
          Alcotest.test_case "degenerate rates" `Quick test_confusion_rates_degenerate;
          Alcotest.test_case "short session" `Quick test_short_session_never_trips;
          Alcotest.test_case "stide classification" `Quick
            test_stide_session_classification;
          Alcotest.test_case "markov vs stide" `Quick test_markov_detects_but_alarms_more;
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
    ]
