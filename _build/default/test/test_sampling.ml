open Seqdiv_util
open Seqdiv_test_support

let test_normalisation () =
  let d = Sampling.of_weights [| 2.0; 6.0 |] in
  check_float "p0" ~epsilon:1e-9 0.25 (Sampling.prob d 0);
  check_float "p1" ~epsilon:1e-9 0.75 (Sampling.prob d 1)

let test_size () =
  let d = Sampling.of_weights [| 1.0; 0.0; 3.0 |] in
  Alcotest.(check int) "size includes zeros" 3 (Sampling.size d)

let test_support () =
  let d = Sampling.of_weights [| 1.0; 0.0; 3.0; 0.0 |] in
  Alcotest.(check (list int)) "support skips zeros" [ 0; 2 ] (Sampling.support d)

let test_draw_in_support () =
  let d = Sampling.of_weights [| 0.0; 1.0; 0.0; 2.0; 0.0 |] in
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Sampling.draw d rng in
    if v <> 1 && v <> 3 then
      Alcotest.fail (Printf.sprintf "drew zero-probability outcome %d" v)
  done

let test_draw_frequencies () =
  let d = Sampling.of_weights [| 1.0; 3.0 |] in
  let rng = Prng.create ~seed:7 in
  let n = 100_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Sampling.draw d rng = 1 then incr ones
  done;
  check_float "empirical frequency" ~epsilon:0.01 0.75
    (float_of_int !ones /. float_of_int n)

let test_draw_rare () =
  (* Rare outcomes must still be drawn at roughly their probability. *)
  let d = Sampling.of_weights [| 0.999; 0.001 |] in
  let rng = Prng.create ~seed:11 in
  let n = 200_000 in
  let rare = ref 0 in
  for _ = 1 to n do
    if Sampling.draw d rng = 1 then incr rare
  done;
  check_float "rare frequency" ~epsilon:0.0005 0.001
    (float_of_int !rare /. float_of_int n)

let test_entropy () =
  check_float "fair coin" ~epsilon:1e-9 1.0
    (Sampling.entropy (Sampling.of_weights [| 1.0; 1.0 |]));
  check_float "deterministic" ~epsilon:1e-9 0.0
    (Sampling.entropy (Sampling.of_weights [| 5.0 |]));
  check_float "zeros ignored" ~epsilon:1e-9 1.0
    (Sampling.entropy (Sampling.of_weights [| 1.0; 0.0; 1.0 |]))

let test_singleton () =
  let d = Sampling.of_weights [| 7.0 |] in
  let rng = Prng.create ~seed:13 in
  Alcotest.(check int) "only outcome" 0 (Sampling.draw d rng)

let positive_weights =
  QCheck.(
    map
      (fun (x, xs) -> Array.of_list (List.map (fun w -> w +. 0.01) (x :: xs)))
      (pair (float_bound_inclusive 10.0) (small_list (float_bound_inclusive 10.0))))

let prop_probs_sum_to_one =
  qcheck "probabilities sum to 1" positive_weights (fun w ->
      let d = Sampling.of_weights w in
      let total = ref 0.0 in
      for i = 0 to Sampling.size d - 1 do
        total := !total +. Sampling.prob d i
      done;
      Float.abs (!total -. 1.0) < 1e-9)

let prop_draw_valid =
  qcheck "draws are valid indices" QCheck.(pair positive_weights small_int)
    (fun (w, seed) ->
      let d = Sampling.of_weights w in
      let rng = Prng.create ~seed in
      let v = Sampling.draw d rng in
      v >= 0 && v < Sampling.size d && Sampling.prob d v > 0.0)

let () =
  Alcotest.run "sampling"
    [
      ( "sampling",
        [
          Alcotest.test_case "normalisation" `Quick test_normalisation;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "draw in support" `Quick test_draw_in_support;
          Alcotest.test_case "draw frequencies" `Quick test_draw_frequencies;
          Alcotest.test_case "draw rare" `Quick test_draw_rare;
          Alcotest.test_case "entropy" `Quick test_entropy;
          Alcotest.test_case "singleton" `Quick test_singleton;
          prop_probs_sum_to_one;
          prop_draw_valid;
        ] );
    ]
