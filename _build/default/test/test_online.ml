open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let stide_monitor ?threshold () =
  let suite = tiny_suite () in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
  in
  (suite, Online.create stide ?threshold ())

let feed_all monitor symbols =
  List.concat_map (fun s -> Online.feed monitor s) symbols

let windows_scored events =
  List.filter_map
    (function Online.Window_scored i -> Some i | _ -> None)
    events

let test_warmup_emits_nothing () =
  let _, monitor = stide_monitor () in
  Alcotest.(check int) "first window-1 symbols silent" 0
    (List.length (feed_all monitor [ 0; 1; 2 ]));
  Alcotest.(check int) "position tracked" 3 (Online.position monitor)

let test_every_symbol_after_warmup_scores () =
  let _, monitor = stide_monitor () in
  let events = feed_all monitor [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "three windows" 3 (List.length (windows_scored events))

let test_matches_batch_scoring () =
  let suite, monitor = stide_monitor () in
  let test = Suite.stream suite ~anomaly_size:3 ~window:4 in
  let trace = test.Suite.injection.Injector.trace in
  let symbols = Array.to_list (Trace.to_array trace) in
  let events = feed_all monitor symbols in
  let online_scores =
    windows_scored events |> List.map (fun i -> i.Response.score)
  in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window:4 suite.Suite.training
  in
  let batch = Trained.score stide trace in
  let batch_scores =
    Array.to_list (Array.map (fun i -> i.Response.score) batch.Response.items)
  in
  Alcotest.(check int) "same count" (List.length batch_scores)
    (List.length online_scores);
  List.iter2
    (fun a b -> Alcotest.(check (float 0.0)) "same score" a b)
    batch_scores online_scores

let test_incident_lifecycle () =
  let suite, monitor = stide_monitor () in
  let test = Suite.stream suite ~anomaly_size:3 ~window:4 in
  let trace = test.Suite.injection.Injector.trace in
  let events = feed_all monitor (Array.to_list (Trace.to_array trace)) in
  let opened =
    List.filter (function Online.Incident_opened _ -> true | _ -> false) events
  in
  let closed =
    List.filter_map
      (function Online.Incident_closed i -> Some i | _ -> None)
      events
  in
  Alcotest.(check int) "one incident opened" 1 (List.length opened);
  Alcotest.(check int) "one incident closed" 1 (List.length closed);
  List.iter
    (fun incident ->
      Alcotest.(check bool) "incident covers the anomaly" true
        (Incident.matches_ground_truth incident
           ~position:test.Suite.injection.Injector.position ~size:3))
    closed;
  Alcotest.(check int) "recorded" 1 (List.length (Online.incidents monitor))

let test_flush_closes_open_incident () =
  let _, monitor = stide_monitor () in
  (* Feed a foreign window at the very end of the stream: the incident
     stays open until flush. *)
  let events = feed_all monitor [ 0; 1; 2; 3; 0; 0; 0; 0 ] in
  let closed_during =
    List.filter (function Online.Incident_closed _ -> true | _ -> false) events
  in
  (* The all-zeros windows are foreign, so an incident opened; it only
     closes on flush. *)
  Alcotest.(check int) "not closed during stream" 0 (List.length closed_during);
  let flushed = Online.flush monitor in
  Alcotest.(check int) "flush closes" 1 (List.length flushed)

let test_clean_stream_no_incidents () =
  let suite, monitor = stide_monitor () in
  let bg = Generator.background suite.Suite.alphabet ~len:200 ~phase:0 in
  let events = feed_all monitor (Array.to_list (Trace.to_array bg)) in
  Alcotest.(check int) "no incidents" 0
    (List.length
       (List.filter
          (function Online.Incident_opened _ -> true | _ -> false)
          events));
  Alcotest.(check int) "flush finds nothing" 0 (List.length (Online.flush monitor))

let test_threshold_override () =
  let suite = tiny_suite () in
  let lnb =
    Trained.train (Registry.find_exn "lnb") ~window:4 suite.Suite.training
  in
  (* L&B never reaches 1; with a lowered threshold the monitor fires. *)
  let strict = Online.create lnb () in
  let lenient = Online.create lnb ~threshold:0.2 () in
  let symbols = [ 0; 1; 2; 3; 0; 0; 0; 0; 4; 5; 6; 7 ] in
  let fired monitor =
    feed_all monitor symbols
    |> List.exists (function Online.Incident_opened _ -> true | _ -> false)
  in
  Alcotest.(check bool) "strict silent" false (fired strict);
  Alcotest.(check bool) "lenient fires" true (fired lenient)

let prop_online_incidents_match_batch =
  (* The streaming monitor and the batch coalescer must report the same
     incidents for the same trace. *)
  qcheck ~count:25 "online incidents = batch incidents"
    QCheck.(list_of_size Gen.(10 -- 120) (int_bound 7))
    (fun symbols ->
      let suite = tiny_suite () in
      let stide =
        Trained.train (Registry.find_exn "stide") ~window:4
          suite.Suite.training
      in
      let trace = trace8 symbols in
      let batch =
        Incident.of_response (Trained.score stide trace) ~threshold:1.0
      in
      let monitor = Online.create stide () in
      List.iter (fun s -> ignore (Online.feed monitor s)) symbols;
      ignore (Online.flush monitor);
      let online = Online.incidents monitor in
      List.length batch = List.length online
      && List.for_all2
           (fun (a : Incident.t) (b : Incident.t) ->
             a.Incident.first_start = b.Incident.first_start
             && a.Incident.last_start = b.Incident.last_start
             && a.Incident.cover_from = b.Incident.cover_from
             && a.Incident.cover_to = b.Incident.cover_to
             && a.Incident.alarms = b.Incident.alarms)
           batch online)

let () =
  Alcotest.run "online"
    [
      ( "online",
        [
          Alcotest.test_case "warmup" `Quick test_warmup_emits_nothing;
          Alcotest.test_case "scores each window" `Quick
            test_every_symbol_after_warmup_scores;
          Alcotest.test_case "matches batch" `Quick test_matches_batch_scoring;
          Alcotest.test_case "incident lifecycle" `Quick test_incident_lifecycle;
          Alcotest.test_case "flush" `Quick test_flush_closes_open_incident;
          Alcotest.test_case "clean stream" `Quick test_clean_stream_no_incidents;
          Alcotest.test_case "threshold override" `Quick test_threshold_override;
          prop_online_incidents_match_batch;
        ] );
    ]
