open Seqdiv_stream
open Seqdiv_test_support

let test_of_array_validates () =
  Alcotest.check_raises "symbol out of range"
    (Invalid_argument "Trace.of_array: symbol 9 out of range") (fun () ->
      ignore (trace8 [ 0; 9 ]))

let test_of_array_copies () =
  let src = [| 0; 1; 2 |] in
  let t = Trace.of_array alphabet8 src in
  src.(0) <- 7;
  Alcotest.(check int) "copied" 0 (Trace.get t 0)

let test_length_get () =
  let t = trace8 [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check int) "length" 5 (Trace.length t);
  Alcotest.(check int) "get" 4 (Trace.get t 2)

let test_sub () =
  let t = trace8 [ 0; 1; 2; 3; 4 ] in
  let s = Trace.sub t ~pos:1 ~len:3 in
  Alcotest.(check (array int)) "sub" [| 1; 2; 3 |] (Trace.to_array s)

let test_concat () =
  let a = trace8 [ 0; 1 ] and b = trace8 [ 2; 3 ] in
  Alcotest.(check (array int)) "concat" [| 0; 1; 2; 3 |]
    (Trace.to_array (Trace.concat a b))

let test_insert_middle () =
  let base = trace8 [ 0; 1; 2; 3 ] and piece = trace8 [ 7; 7 ] in
  Alcotest.(check (array int)) "insert" [| 0; 1; 7; 7; 2; 3 |]
    (Trace.to_array (Trace.insert base ~pos:2 piece))

let test_insert_ends () =
  let base = trace8 [ 1; 2 ] and piece = trace8 [ 5 ] in
  Alcotest.(check (array int)) "prepend" [| 5; 1; 2 |]
    (Trace.to_array (Trace.insert base ~pos:0 piece));
  Alcotest.(check (array int)) "append" [| 1; 2; 5 |]
    (Trace.to_array (Trace.insert base ~pos:2 piece))

let test_equal () =
  Alcotest.(check bool) "equal" true
    (Trace.equal (trace8 [ 1; 2 ]) (trace8 [ 1; 2 ]));
  Alcotest.(check bool) "unequal" false
    (Trace.equal (trace8 [ 1; 2 ]) (trace8 [ 2; 1 ]))

let test_iter_windows () =
  let t = trace8 [ 0; 1; 2; 3; 4 ] in
  let starts = ref [] in
  Trace.iter_windows t ~width:3 (fun s -> starts := s :: !starts);
  Alcotest.(check (list int)) "starts" [ 0; 1; 2 ] (List.rev !starts)

let test_iter_windows_short_trace () =
  let t = trace8 [ 0; 1 ] in
  let count = ref 0 in
  Trace.iter_windows t ~width:5 (fun _ -> incr count);
  Alcotest.(check int) "no windows" 0 !count

let test_window_count () =
  let t = trace8 [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "count" 3 (Trace.window_count t ~width:2);
  Alcotest.(check int) "oversized" 0 (Trace.window_count t ~width:9)

let test_key_equality () =
  let t = trace8 [ 0; 1; 2; 0; 1; 2 ] in
  Alcotest.(check string) "same content same key"
    (Trace.key t ~pos:0 ~len:3)
    (Trace.key t ~pos:3 ~len:3);
  Alcotest.(check bool) "different content different key" false
    (Trace.key t ~pos:0 ~len:2 = Trace.key t ~pos:1 ~len:2)

let test_key_round_trip () =
  let symbols = [| 4; 0; 7; 7; 2 |] in
  Alcotest.(check (array int)) "round trip" symbols
    (Trace.symbols_of_key (Trace.key_of_symbols symbols))

let test_pp_elides () =
  let t = Trace.of_array alphabet8 (Array.make 100 0) in
  let s = Format.asprintf "%a" Trace.pp t in
  Alcotest.(check bool) "mentions total" true
    (String.length s < 400
    &&
    let re = "(100 total)" in
    let rec contains i =
      i + String.length re <= String.length s
      && (String.sub s i (String.length re) = re || contains (i + 1))
    in
    contains 0)

let symbols_gen = QCheck.(list_of_size Gen.(1 -- 30) (int_bound 7))

let prop_key_round_trip =
  qcheck "key round trip" symbols_gen (fun l ->
      let a = Array.of_list l in
      Trace.symbols_of_key (Trace.key_of_symbols a) = a)

let prop_insert_length =
  qcheck "insert adds lengths" QCheck.(pair symbols_gen symbols_gen)
    (fun (base, piece) ->
      let b = trace8 base and p = trace8 piece in
      let pos = List.length base / 2 in
      Trace.length (Trace.insert b ~pos p)
      = List.length base + List.length piece)

let prop_sub_window_key =
  qcheck "key pos len = key_of_symbols of sub" symbols_gen (fun l ->
      QCheck.assume (List.length l >= 2);
      let t = trace8 l in
      let len = Stdlib.max 1 (List.length l / 2) in
      Trace.key t ~pos:0 ~len
      = Trace.key_of_symbols (Trace.to_array (Trace.sub t ~pos:0 ~len)))

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "validation" `Quick test_of_array_validates;
          Alcotest.test_case "copies input" `Quick test_of_array_copies;
          Alcotest.test_case "length/get" `Quick test_length_get;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "insert middle" `Quick test_insert_middle;
          Alcotest.test_case "insert ends" `Quick test_insert_ends;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "iter_windows" `Quick test_iter_windows;
          Alcotest.test_case "iter_windows short" `Quick test_iter_windows_short_trace;
          Alcotest.test_case "window_count" `Quick test_window_count;
          Alcotest.test_case "key equality" `Quick test_key_equality;
          Alcotest.test_case "key round trip" `Quick test_key_round_trip;
          Alcotest.test_case "pp elides" `Quick test_pp_elides;
          prop_key_round_trip;
          prop_insert_length;
          prop_sub_window_key;
        ] );
    ]
