open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_test_support

let fixture () =
  let suite = small_suite () in
  let background = Generator.background alphabet8 ~len:2_000 ~phase:0 in
  (suite.Suite.index, suite.Suite.alphabet, background,
   suite.Suite.params.Suite.rare_threshold)

let test_incident_span () =
  (* Figure 2's example: DW=5, AS=8 -> span covers DW+AS-1 = 12 windows. *)
  let lo, hi = Injector.incident_span ~position:100 ~size:8 ~width:5 in
  Alcotest.(check int) "first" 96 lo;
  Alcotest.(check int) "last" 107 hi;
  Alcotest.(check int) "window count" 12 (hi - lo + 1)

let test_incident_span_clamped () =
  let lo, hi = Injector.incident_span ~position:2 ~size:3 ~width:10 in
  Alcotest.(check int) "clamped at 0" 0 lo;
  Alcotest.(check int) "last" 4 hi

let test_inject_basic () =
  let index, alphabet, background, rare = fixture () in
  let anomaly =
    match Mfs.find index alphabet ~size:5 ~rare_threshold:rare with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  match Injector.inject index ~background ~anomaly ~width:6 with
  | None -> Alcotest.fail "injection failed"
  | Some inj ->
      Alcotest.(check int) "length grows by anomaly size"
        (Trace.length background + 5)
        (Trace.length inj.Injector.trace);
      (* The anomaly is present at the reported position. *)
      let got =
        Trace.to_array
          (Trace.sub inj.Injector.trace ~pos:inj.Injector.position ~len:5)
      in
      Alcotest.(check (array int)) "anomaly in place" anomaly got

let test_inject_left_junction_is_cycle () =
  let index, alphabet, background, rare = fixture () in
  let anomaly =
    match Mfs.find index alphabet ~size:4 ~rare_threshold:rare with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  match Injector.inject index ~background ~anomaly ~width:8 with
  | None -> Alcotest.fail "injection failed"
  | Some inj ->
      let p = inj.Injector.position in
      let before = Trace.get inj.Injector.trace (p - 1) in
      Alcotest.(check int) "cycle predecessor" ((anomaly.(0) + 7) mod 8) before

let test_inject_right_rephased () =
  let index, alphabet, background, rare = fixture () in
  let anomaly =
    match Mfs.find index alphabet ~size:4 ~rare_threshold:rare with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  match Injector.inject index ~background ~anomaly ~width:8 with
  | None -> Alcotest.fail "injection failed"
  | Some inj ->
      let p = inj.Injector.position in
      let last = anomaly.(3) in
      let after = Trace.get inj.Injector.trace (p + 4) in
      Alcotest.(check int) "cycle successor" ((last + 1) mod 8) after;
      (* and the right side continues the cycle from there *)
      for i = p + 4 to Stdlib.min (p + 40) (Trace.length inj.Injector.trace - 2) do
        let a = Trace.get inj.Injector.trace i in
        Alcotest.(check int) "cycle continues" ((a + 1) mod 8)
          (Trace.get inj.Injector.trace (i + 1))
      done

let test_clean_boundaries_detects_dirt () =
  let index, _, _, _ = fixture () in
  (* Build a trace with a raw (un-rephased) splice: a structural-zero
     junction makes a boundary window foreign. *)
  let background = Generator.background alphabet8 ~len:100 ~phase:0 in
  let raw = Trace.insert background ~pos:50 (trace8 [ 0; 0 ]) in
  Alcotest.(check bool) "dirty splice flagged" false
    (Injector.clean_boundaries index raw ~position:50 ~size:2 ~width:4)

let test_clean_boundaries_accepts_suite_streams () =
  let suite = small_suite () in
  List.iter
    (fun anomaly_size ->
      List.iter
        (fun window ->
          let s = Suite.stream suite ~anomaly_size ~window in
          let inj = s.Suite.injection in
          Alcotest.(check bool)
            (Printf.sprintf "AS=%d DW=%d clean" anomaly_size window)
            true
            (Injector.clean_boundaries suite.Suite.index inj.Injector.trace
               ~position:inj.Injector.position ~size:anomaly_size ~width:window))
        [ 2; 8; 15 ])
    [ 2; 5; 9 ]

let test_inject_too_short_background () =
  let index, _, _, _ = fixture () in
  let tiny = Generator.background alphabet8 ~len:10 ~phase:0 in
  Alcotest.check_raises "too short"
    (Invalid_argument "Injector.inject: background too short") (fun () ->
      ignore (Injector.inject index ~background:tiny ~anomaly:[| 0; 0 |] ~width:8))

let test_inject_first_skips_dirty () =
  let index, alphabet, background, rare = fixture () in
  (* First candidate impossible to inject cleanly (contains a foreign
     2-gram, so its own internal windows are foreign); a real MFS
     follows. *)
  let bogus = [| 0; 4; 0; 4 |] in
  let good =
    match Mfs.find index alphabet ~size:4 ~rare_threshold:rare with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  match
    Injector.inject_first index ~background ~candidates:[ bogus; good ]
      ~width:3
  with
  | None -> Alcotest.fail "no candidate injected"
  | Some inj -> Alcotest.(check (array int)) "fell through to good" good
                  inj.Injector.anomaly

let prop_windows_outside_span_common =
  (* Every window NOT containing the whole anomaly, over the entire
     injected stream, exists in training: background windows and
     boundary windows alike. *)
  qcheck ~count:8 "all non-signal windows are known"
    QCheck.(pair (int_range 2 9) (int_range 2 15))
    (fun (anomaly_size, window) ->
      let suite = small_suite () in
      let s = Suite.stream suite ~anomaly_size ~window in
      let inj = s.Suite.injection in
      let trace = inj.Injector.trace in
      let p = inj.Injector.position in
      let ok = ref true in
      Trace.iter_windows trace ~width:window (fun pos ->
          let contains_whole =
            pos <= p && pos + window >= p + anomaly_size
          in
          if not contains_whole then
            if
              Ngram_index.is_foreign suite.Suite.index
                (Trace.key trace ~pos ~len:window)
            then ok := false);
      !ok)

let () =
  Alcotest.run "injector"
    [
      ( "injector",
        [
          Alcotest.test_case "incident span" `Quick test_incident_span;
          Alcotest.test_case "incident span clamped" `Quick test_incident_span_clamped;
          Alcotest.test_case "inject basic" `Quick test_inject_basic;
          Alcotest.test_case "left junction" `Quick test_inject_left_junction_is_cycle;
          Alcotest.test_case "right re-phased" `Quick test_inject_right_rephased;
          Alcotest.test_case "detects dirty splice" `Quick test_clean_boundaries_detects_dirt;
          Alcotest.test_case "suite streams clean" `Quick
            test_clean_boundaries_accepts_suite_streams;
          Alcotest.test_case "background too short" `Quick test_inject_too_short_background;
          Alcotest.test_case "inject_first skips dirty" `Quick test_inject_first_skips_dirty;
          prop_windows_outside_span_common;
        ] );
    ]
