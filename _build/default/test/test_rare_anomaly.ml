open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

(* --- Rare_seq candidate construction ------------------------------------ *)

let test_candidates_are_rare_and_present () =
  let suite = tiny_suite () in
  let index = suite.Suite.index in
  let threshold = suite.Suite.params.Suite.rare_threshold in
  List.iter
    (fun size ->
      let candidates = Rare_seq.candidates index ~size ~rare_threshold:threshold in
      Alcotest.(check bool)
        (Printf.sprintf "size %d has candidates" size)
        true (candidates <> []);
      List.iter
        (fun c ->
          let key = Trace.key_of_symbols c in
          Alcotest.(check bool) "present" true (Ngram_index.mem index key);
          Alcotest.(check bool) "rare" true
            (Ngram_index.is_rare index ~threshold key))
        candidates)
    [ 2; 5; 9 ]

let test_candidates_sorted_rarest_first () =
  let suite = tiny_suite () in
  let index = suite.Suite.index in
  let candidates =
    Rare_seq.candidates index ~size:4
      ~rare_threshold:suite.Suite.params.Suite.rare_threshold
  in
  let freqs =
    List.map (fun c -> Ngram_index.freq index (Trace.key_of_symbols c)) candidates
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ascending frequency" true (non_decreasing freqs)

let test_find_error_when_no_rare_content () =
  (* A deviation-free chain has no rare sequences at all. *)
  let chain =
    Markov_chain.paper_chain alphabet8 ~deviation:0.0
  in
  let training =
    Generator.training chain (Seqdiv_util.Prng.create ~seed:1) ~len:2_000
  in
  let index = Ngram_index.build ~max_len:6 training in
  match Rare_seq.find index ~size:4 ~rare_threshold:0.005 with
  | Ok _ -> Alcotest.fail "expected no rare sequences"
  | Error message ->
      Alcotest.(check bool) "descriptive" true (String.length message > 0)

(* --- Rare_anomaly experiment -------------------------------------------- *)

let fixture = lazy (
  let suite = tiny_suite () in
  (suite, Rare_anomaly.build suite))

let test_injections_clean () =
  let suite, rare = Lazy.force fixture in
  List.iter
    (fun anomaly_size ->
      List.iter
        (fun window ->
          let inj = Rare_anomaly.injection rare ~anomaly_size ~window in
          Alcotest.(check int) "anomaly length" anomaly_size
            (Array.length inj.Injector.anomaly);
          Alcotest.(check bool)
            (Printf.sprintf "clean at AS=%d DW=%d" anomaly_size window)
            true
            (Injector.clean_boundaries suite.Suite.index inj.Injector.trace
               ~position:inj.Injector.position ~size:anomaly_size
               ~width:window))
        [ 2; 5; 8 ])
    [ 2; 6; 9 ]

let test_stide_blind_to_rare () =
  let suite, rare = Lazy.force fixture in
  let map = Rare_anomaly.performance_map rare suite (Registry.find_exn "stide") in
  Alcotest.(check int) "all cells blind"
    (Performance_map.cell_count map)
    (List.length (Performance_map.blind_cells map))

let test_lnb_blind_to_rare () =
  let suite, rare = Lazy.force fixture in
  let map = Rare_anomaly.performance_map rare suite (Registry.find_exn "lnb") in
  Alcotest.(check int) "all cells blind"
    (Performance_map.cell_count map)
    (List.length (Performance_map.blind_cells map))

let test_markov_capable_on_rare () =
  let suite, rare = Lazy.force fixture in
  let map = Rare_anomaly.performance_map rare suite (Registry.find_exn "markov") in
  Alcotest.(check int) "all cells capable"
    (Performance_map.cell_count map)
    (List.length (Performance_map.capable_cells map))

let test_tstide_capable_on_rare () =
  let suite, rare = Lazy.force fixture in
  let map = Rare_anomaly.performance_map rare suite (Registry.find_exn "tstide") in
  Alcotest.(check int) "all cells capable"
    (Performance_map.cell_count map)
    (List.length (Performance_map.capable_cells map))

let () =
  Alcotest.run "rare_anomaly"
    [
      ( "rare_seq",
        [
          Alcotest.test_case "candidates rare+present" `Quick
            test_candidates_are_rare_and_present;
          Alcotest.test_case "rarest first" `Quick test_candidates_sorted_rarest_first;
          Alcotest.test_case "no rare content" `Quick
            test_find_error_when_no_rare_content;
        ] );
      ( "rare_anomaly",
        [
          Alcotest.test_case "injections clean" `Quick test_injections_clean;
          Alcotest.test_case "stide blind (E2)" `Quick test_stide_blind_to_rare;
          Alcotest.test_case "lnb blind (E2)" `Quick test_lnb_blind_to_rare;
          Alcotest.test_case "markov capable (E2)" `Quick test_markov_capable_on_rare;
          Alcotest.test_case "tstide capable (E2)" `Quick test_tstide_capable_on_rare;
        ] );
    ]
