test/test_response.mli:
