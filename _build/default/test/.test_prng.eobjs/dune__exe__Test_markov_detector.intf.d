test/test_markov_detector.mli:
