test/test_matrix.ml: Alcotest Array Float Matrix Prng QCheck Seqdiv_test_support Seqdiv_util
