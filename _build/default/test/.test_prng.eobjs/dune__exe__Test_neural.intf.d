test/test_neural.mli:
