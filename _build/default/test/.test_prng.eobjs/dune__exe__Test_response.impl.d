test/test_response.ml: Alcotest Array List Response Seqdiv_detectors
