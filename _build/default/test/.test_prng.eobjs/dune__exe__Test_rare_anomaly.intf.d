test/test_rare_anomaly.mli:
