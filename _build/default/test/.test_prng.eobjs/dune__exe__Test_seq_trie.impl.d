test/test_seq_trie.ml: Alcotest Array Char Format Gen List Ngram_index Prng QCheck Seq_db Seq_trie Seqdiv_stream Seqdiv_synth Seqdiv_test_support Seqdiv_util Stdlib String Trace
