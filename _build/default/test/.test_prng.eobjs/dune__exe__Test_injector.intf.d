test/test_injector.mli:
