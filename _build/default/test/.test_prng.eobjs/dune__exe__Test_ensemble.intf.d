test/test_ensemble.mli:
