test/test_syscall_trace.ml: Alcotest Alphabet Array Filename Fun Gen List Printf QCheck Seqdiv_detectors Seqdiv_stream Seqdiv_test_support Sessions String Sys Syscall_trace Trace
