test/test_roc.ml: Alcotest Array Deployment List QCheck Response Roc Scoring Seqdiv_core Seqdiv_detectors Seqdiv_synth Seqdiv_test_support Trained
