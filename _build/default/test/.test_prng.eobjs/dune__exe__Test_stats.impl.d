test/test_stats.ml: Alcotest Array Float QCheck Seqdiv_test_support Seqdiv_util Stats
