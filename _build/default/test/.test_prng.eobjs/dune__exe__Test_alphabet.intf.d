test/test_alphabet.mli:
