test/test_ensemble.ml: Alcotest Array Ensemble List Response Seqdiv_core Seqdiv_detectors
