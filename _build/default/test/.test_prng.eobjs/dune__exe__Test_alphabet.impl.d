test/test_alphabet.ml: Alcotest Alphabet Array Format QCheck Seqdiv_stream Seqdiv_test_support
