test/test_session_eval.mli:
