test/test_report.ml: Ablation Alcotest Ascii_map Csv List Outcome Paper Performance_map Seqdiv_core Seqdiv_report Seqdiv_test_support Session_eval String Table
