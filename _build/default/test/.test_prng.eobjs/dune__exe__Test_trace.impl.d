test/test_trace.ml: Alcotest Array Format Gen List QCheck Seqdiv_stream Seqdiv_test_support Stdlib String Trace
