test/test_incident.mli:
