test/test_ngram_index.mli:
