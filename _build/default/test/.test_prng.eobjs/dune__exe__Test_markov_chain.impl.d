test/test_markov_chain.ml: Alcotest Alphabet Float Generator List Markov_chain Printf Prng QCheck Seqdiv_stream Seqdiv_synth Seqdiv_test_support Seqdiv_util Trace
