test/test_ascii_plot.ml: Alcotest Ascii_plot List Seqdiv_report String
