test/test_outcome.ml: Alcotest List Outcome QCheck Seqdiv_core Seqdiv_test_support
