test/test_suite.ml: Alcotest Array Injector List Mfs Printf Seqdiv_stream Seqdiv_synth Seqdiv_test_support String Suite Trace
