test/test_lfc.ml: Alcotest Array Lfc List Response Seqdiv_detectors
