test/test_stide.ml: Alcotest Array Gen List Printf QCheck Response Seq_db Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_test_support Stide Trace
