test/test_dataset_io.ml: Alcotest Array Dataset_io Filename Fun Generator Injector Seqdiv_core Seqdiv_detectors Seqdiv_stream Seqdiv_synth String Suite Sys Trace Trace_io
