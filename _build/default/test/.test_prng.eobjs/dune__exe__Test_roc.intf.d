test/test_roc.mli:
