test/test_cross_detector.mli:
