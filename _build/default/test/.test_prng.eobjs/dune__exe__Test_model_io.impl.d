test/test_model_io.ml: Alcotest Array Filename Float Fun Markov Model_io Response Seq_db Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_test_support Stide Sys
