test/test_hmm.ml: Alcotest Alphabet Array Hmm Printf Response Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_test_support Trace
