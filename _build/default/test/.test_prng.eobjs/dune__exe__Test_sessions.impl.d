test/test_sessions.ml: Alcotest Alphabet Gen List Prng QCheck Seq_db Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_test_support Seqdiv_util Sessions Stdlib Trace
