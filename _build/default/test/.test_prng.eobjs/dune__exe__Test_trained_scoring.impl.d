test/test_trained_scoring.ml: Alcotest Array Detector Injector Outcome Response Scoring Seqdiv_core Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_test_support Stdlib Trace Trained
