test/test_lfc.mli:
