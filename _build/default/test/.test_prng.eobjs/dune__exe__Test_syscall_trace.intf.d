test/test_syscall_trace.mli:
