test/test_stide.mli:
