test/test_coverage.ml: Alcotest Coverage List QCheck Seqdiv_core Seqdiv_test_support
