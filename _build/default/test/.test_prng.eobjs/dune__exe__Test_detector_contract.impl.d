test/test_detector_contract.ml: Alcotest Array Detector Injector Lazy List Printf Registry Response Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_test_support Suite Trace
