test/test_outcome.mli:
