test/test_neural.ml: Alcotest Alphabet Array List Neural Printf Response Seqdiv_detectors Seqdiv_stream Seqdiv_synth Seqdiv_test_support Trace
