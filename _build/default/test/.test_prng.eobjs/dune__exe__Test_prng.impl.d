test/test_prng.ml: Alcotest Array Printf Prng QCheck Seqdiv_test_support Seqdiv_util
