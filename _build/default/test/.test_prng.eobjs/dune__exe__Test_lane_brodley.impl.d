test/test_lane_brodley.ml: Alcotest Array Gen Lane_brodley List Printf QCheck Response Seqdiv_detectors Seqdiv_synth Seqdiv_test_support Seqdiv_util
