test/test_markov_chain.mli:
