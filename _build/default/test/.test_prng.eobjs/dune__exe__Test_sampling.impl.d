test/test_sampling.ml: Alcotest Array Float List Printf Prng QCheck Sampling Seqdiv_test_support Seqdiv_util
