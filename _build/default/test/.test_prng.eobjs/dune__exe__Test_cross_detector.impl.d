test/test_cross_detector.ml: Alcotest Array Float Gen Hmm Lane_brodley List Markov Neural QCheck Response Seq_db Seqdiv_detectors Seqdiv_stream Seqdiv_test_support Stide Trace Tstide
