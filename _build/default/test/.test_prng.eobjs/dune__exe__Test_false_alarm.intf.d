test/test_false_alarm.mli:
