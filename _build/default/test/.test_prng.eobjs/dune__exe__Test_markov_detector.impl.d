test/test_markov_detector.ml: Alcotest Array Float Gen Hashtbl List Markov QCheck Response Seqdiv_detectors Seqdiv_stream Seqdiv_test_support Trace
