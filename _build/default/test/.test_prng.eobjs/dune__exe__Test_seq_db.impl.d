test/test_seq_db.ml: Alcotest Array Float Gen List QCheck Seq_db Seqdiv_stream Seqdiv_test_support Trace
