test/test_incident.ml: Alcotest Array Format Incident List Printf Registry Response Seqdiv_core Seqdiv_detectors Seqdiv_synth Seqdiv_test_support Trained
