test/test_lane_brodley.mli:
