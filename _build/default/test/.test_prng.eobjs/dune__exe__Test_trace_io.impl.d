test/test_trace_io.ml: Alcotest Alphabet Array Filename Fun Gen QCheck Seqdiv_stream Seqdiv_test_support String Sys Trace Trace_io
