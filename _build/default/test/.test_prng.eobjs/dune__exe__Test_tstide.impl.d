test/test_tstide.ml: Alcotest Array Injector List Printf Response Seqdiv_detectors Seqdiv_synth Seqdiv_test_support Seqdiv_util Stide Suite Tstide
