test/test_generator.ml: Alcotest Generator List Ngram_index Printf Prng QCheck Seqdiv_stream Seqdiv_synth Seqdiv_test_support Seqdiv_util Trace
