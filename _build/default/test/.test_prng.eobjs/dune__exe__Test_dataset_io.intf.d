test/test_dataset_io.mli:
