test/test_trained_scoring.mli:
