test/test_tstide.mli:
