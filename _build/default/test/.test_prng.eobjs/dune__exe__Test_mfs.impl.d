test/test_mfs.ml: Alcotest Array List Mfs Ngram_index Printf QCheck Seqdiv_stream Seqdiv_synth Seqdiv_test_support String Suite Trace
