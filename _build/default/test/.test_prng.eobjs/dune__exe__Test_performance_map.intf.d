test/test_performance_map.mli:
