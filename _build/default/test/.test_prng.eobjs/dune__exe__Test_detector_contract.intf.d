test/test_detector_contract.mli:
