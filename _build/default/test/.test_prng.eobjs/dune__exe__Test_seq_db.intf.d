test/test_seq_db.mli:
