test/test_seq_trie.mli:
