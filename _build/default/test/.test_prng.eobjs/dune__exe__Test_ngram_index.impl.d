test/test_ngram_index.ml: Alcotest Array Gen List Ngram_index QCheck Seq_db Seqdiv_stream Seqdiv_test_support Trace
