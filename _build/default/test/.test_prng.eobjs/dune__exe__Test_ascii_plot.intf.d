test/test_ascii_plot.mli:
