test/test_mfs.mli:
