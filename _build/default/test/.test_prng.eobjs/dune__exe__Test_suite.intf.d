test/test_suite.mli:
