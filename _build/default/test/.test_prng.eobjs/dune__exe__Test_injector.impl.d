test/test_injector.ml: Alcotest Array Generator Injector List Mfs Ngram_index Printf QCheck Seqdiv_stream Seqdiv_synth Seqdiv_test_support Stdlib Suite Trace
