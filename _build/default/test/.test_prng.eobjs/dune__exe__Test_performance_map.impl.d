test/test_performance_map.ml: Alcotest List Outcome Performance_map Seqdiv_core
