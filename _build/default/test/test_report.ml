open Seqdiv_core
open Seqdiv_report

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* --- Table ------------------------------------------------------------- *)

let test_table_alignment () =
  let t = Table.make ~columns:[ "a"; "long header" ] in
  Table.add_row t [ "x"; "y" ];
  Table.add_row t [ "wide cell"; "z" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check bool) "header present" true (contains header "long header");
      Alcotest.(check bool) "rule dashes" true (contains rule "---")
  | _ -> Alcotest.fail "expected lines");
  Alcotest.(check bool) "rows present" true (contains s "wide cell")

let test_table_arity_checked () =
  let t = Table.make ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_empty_columns_rejected () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.make: no columns")
    (fun () -> ignore (Table.make ~columns:[]))

let test_table_no_trailing_spaces () =
  let t = Table.make ~columns:[ "col"; "x" ] in
  Table.add_row t [ "a"; "b" ];
  String.split_on_char '\n' (Table.to_string t)
  |> List.iter (fun line ->
         if line <> "" && line.[String.length line - 1] = ' ' then
           Alcotest.fail "trailing whitespace")

(* --- Csv --------------------------------------------------------------- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_row () =
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csv.row [ "a"; "b,c"; "d" ])

let test_csv_of_rows () =
  let s = Csv.of_rows ~header:[ "h1"; "h2" ] [ [ "1"; "2" ] ] in
  Alcotest.(check string) "document" "h1,h2\n1,2\n" s

let diagonal_map () =
  Performance_map.build ~detector:"synthetic" ~anomaly_sizes:[ 2; 3 ]
    ~windows:[ 2; 3 ] ~f:(fun ~anomaly_size ~window ->
      if window >= anomaly_size then Outcome.Capable 1.0 else Outcome.Blind)

let test_csv_map_rows () =
  let rows = Csv.map_rows (diagonal_map ()) in
  Alcotest.(check int) "one row per cell" 4 (List.length rows);
  match rows with
  | first :: _ ->
      Alcotest.(check (list string)) "row shape"
        [ "synthetic"; "2"; "2"; "capable"; "1.000000" ]
        first
  | [] -> Alcotest.fail "no rows"

(* --- Ascii_map ---------------------------------------------------------- *)

let test_ascii_map_compact () =
  let s = Ascii_map.render_compact (diagonal_map ()) in
  (* windows descending: DW=3 row then DW=2 row *)
  Alcotest.(check string) "glyph grid" "**\n*." s

let test_ascii_map_render () =
  let s = Ascii_map.render (diagonal_map ()) in
  Alcotest.(check bool) "names detector" true (contains s "synthetic");
  Alcotest.(check bool) "undefined column" true (contains s "?");
  Alcotest.(check bool) "legend" true (contains s "legend")

(* --- Paper -------------------------------------------------------------- *)

let test_figure2_structure () =
  let suite = Seqdiv_test_support.tiny_suite () in
  let s = Paper.figure2 suite ~window:5 ~anomaly_size:8 in
  Alcotest.(check bool) "names the parameters" true (contains s "DW=5, AS=8");
  Alcotest.(check bool) "incident span size" true (contains s "12 windows");
  Alcotest.(check bool) "boundary count" true (contains s "2(DW-1) = 8");
  (* exactly AS many F marks *)
  let f_count =
    String.fold_left (fun acc c -> if c = 'F' then acc + 1 else acc) 0 s
    (* the legend line contains one extra F in "F: injected..." and
       "foreign"; count only the marker row by re-deriving *)
  in
  Alcotest.(check bool) "F markers present" true (f_count >= 8)

let test_figure7_values () =
  let s = Paper.figure7 () in
  Alcotest.(check bool) "max 15" true (contains s "score = 15");
  Alcotest.(check bool) "mismatch 10" true (contains s "score = 10")

let test_table1_subset_claim () =
  (* Two synthetic maps where left ⊂ right: table must state it. *)
  let small =
    Performance_map.build ~detector:"small" ~anomaly_sizes:[ 2; 3 ]
      ~windows:[ 2; 3 ] ~f:(fun ~anomaly_size ~window ->
        if window >= anomaly_size then Outcome.Capable 1.0 else Outcome.Blind)
  in
  let big =
    Performance_map.build ~detector:"big" ~anomaly_sizes:[ 2; 3 ]
      ~windows:[ 2; 3 ] ~f:(fun ~anomaly_size:_ ~window:_ -> Outcome.Capable 1.0)
  in
  let s = Paper.table1 [ small; big ] in
  Alcotest.(check bool) "subset stated" true
    (contains s "small subset of big")

let test_extension2_verdicts () =
  let full =
    Performance_map.build ~detector:"markov" ~anomaly_sizes:[ 2; 3 ]
      ~windows:[ 2; 3 ] ~f:(fun ~anomaly_size:_ ~window:_ -> Outcome.Capable 1.0)
  in
  let blind =
    Performance_map.build ~detector:"stide" ~anomaly_sizes:[ 2; 3 ]
      ~windows:[ 2; 3 ] ~f:(fun ~anomaly_size:_ ~window:_ -> Outcome.Blind)
  in
  let s = Paper.extension2 [ full; blind ] in
  Alcotest.(check bool) "rare-sensitive verdict" true
    (contains s "rare-sensitive");
  Alcotest.(check bool) "blind verdict" true (contains s "blind to rarity")

let test_extension3_rows () =
  let s =
    Paper.extension3
      [
        {
          Ablation.seed = 42;
          stide_diagonal = true;
          markov_everywhere = true;
          lnb_nowhere = false;
        };
      ]
  in
  Alcotest.(check bool) "seed shown" true (contains s "42");
  Alcotest.(check bool) "no shown" true (contains s "no")

let test_extension4_rates () =
  let s =
    Paper.extension4
      [
        ( "stide",
          {
            Session_eval.true_positives = 10;
            false_negatives = 0;
            false_positives = 1;
            true_negatives = 9;
          } );
      ]
  in
  Alcotest.(check bool) "detection rate" true (contains s "1.00");
  Alcotest.(check bool) "fa rate" true (contains s "0.10")

let test_ablation6_rows () =
  let s =
    Paper.ablation6
      [ { Ablation.window = 6; coverage = 0.625; false_alarm_rate = 0.001 } ]
  in
  Alcotest.(check bool) "coverage percent" true (contains s "62%");
  Alcotest.(check bool) "fa" true (contains s "0.00100")

let test_ablation7_rows () =
  let s =
    Paper.ablation7
      [
        {
          Ablation.deviation = 0.0025;
          sizes_constructible = 8;
          suite_builds = true;
          stide_diagonal_held = true;
        };
        {
          Ablation.deviation = 0.2;
          sizes_constructible = 6;
          suite_builds = false;
          stide_diagonal_held = false;
        };
      ]
  in
  Alcotest.(check bool) "builds" true (contains s "yes");
  Alcotest.(check bool) "dash when not built" true (contains s "-")

let test_ablation8_rows () =
  let s =
    Paper.ablation8
      [
        {
          Ablation.alpha = 1000.0;
          capable = 0;
          weak = 8;
          max_span_response = 0.935;
        };
      ]
  in
  Alcotest.(check bool) "alpha" true (contains s "1000");
  Alcotest.(check bool) "max response" true (contains s "0.93500")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "arity" `Quick test_table_arity_checked;
          Alcotest.test_case "empty columns" `Quick test_table_empty_columns_rejected;
          Alcotest.test_case "no trailing spaces" `Quick test_table_no_trailing_spaces;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "row" `Quick test_csv_row;
          Alcotest.test_case "of_rows" `Quick test_csv_of_rows;
          Alcotest.test_case "map rows" `Quick test_csv_map_rows;
        ] );
      ( "ascii_map",
        [
          Alcotest.test_case "compact" `Quick test_ascii_map_compact;
          Alcotest.test_case "render" `Quick test_ascii_map_render;
        ] );
      ( "paper",
        [
          Alcotest.test_case "figure 2 structure" `Quick test_figure2_structure;
          Alcotest.test_case "figure 7 values" `Quick test_figure7_values;
          Alcotest.test_case "table1 subset claim" `Quick test_table1_subset_claim;
          Alcotest.test_case "extension2 verdicts" `Quick test_extension2_verdicts;
          Alcotest.test_case "extension3 rows" `Quick test_extension3_rows;
          Alcotest.test_case "extension4 rates" `Quick test_extension4_rates;
          Alcotest.test_case "ablation6 rows" `Quick test_ablation6_rows;
          Alcotest.test_case "ablation7 rows" `Quick test_ablation7_rows;
          Alcotest.test_case "ablation8 rows" `Quick test_ablation8_rows;
        ] );
    ]
