open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_test_support

let test_window_semantics () =
  let model = Markov.train ~window:3 (trace8 [ 0; 1; 2; 3; 4 ]) in
  Alcotest.(check int) "window" 3 (Markov.window model);
  Alcotest.(check int) "context length" 2 (Markov.context_length model)

let test_probability_estimates () =
  (* 0 1 0 1 0 2: after context [0], next is 1 twice and 2 once. *)
  let model = Markov.train ~window:2 (trace8 [ 0; 1; 0; 1; 0; 2 ]) in
  check_float "p(1|0)" ~epsilon:1e-9 (2.0 /. 3.0)
    (Markov.probability model ~context:[| 0 |] ~next:1);
  check_float "p(2|0)" ~epsilon:1e-9 (1.0 /. 3.0)
    (Markov.probability model ~context:[| 0 |] ~next:2);
  check_float "p(0|1) = 1" ~epsilon:1e-9 1.0
    (Markov.probability model ~context:[| 1 |] ~next:0);
  check_float "unseen continuation" ~epsilon:1e-9 0.0
    (Markov.probability model ~context:[| 0 |] ~next:7)

let test_unseen_context_scores_one () =
  let model = Markov.train ~window:2 (trace8 [ 0; 1; 0; 1 ]) in
  check_float "unseen context" ~epsilon:1e-9 0.0
    (Markov.probability model ~context:[| 5 |] ~next:0);
  let r = Markov.score model (trace8 [ 5; 0 ]) in
  Alcotest.(check (float 0.0)) "score 1 on unseen context" 1.0
    (Response.max_score r)

let test_score_is_one_minus_p () =
  let model = Markov.train ~window:2 (trace8 [ 0; 1; 0; 1; 0; 2 ]) in
  let r = Markov.score model (trace8 [ 0; 1 ]) in
  (match r.Response.items with
  | [| i |] -> check_float "1 - 2/3" ~epsilon:1e-9 (1.0 /. 3.0) i.Response.score
  | _ -> Alcotest.fail "expected one item")

let test_contexts_counted () =
  let model = Markov.train ~window:2 (trace8 [ 0; 1; 2; 0 ]) in
  Alcotest.(check int) "three contexts" 3 (Markov.contexts model)

let test_cover_spans_context_and_next () =
  let model = Markov.train ~window:4 (trace8 [ 0; 1; 2; 3; 4; 5; 6 ]) in
  let r = Markov.score model (trace8 [ 0; 1; 2; 3; 4 ]) in
  Alcotest.(check int) "two predictions" 2 (Response.length r);
  Array.iter
    (fun (i : Response.item) -> Alcotest.(check int) "cover" 4 i.Response.cover)
    r.Response.items

let test_rejects_short_trace () =
  Alcotest.check_raises "short"
    (Invalid_argument "Markov.train: trace shorter than window") (fun () ->
      ignore (Markov.train ~window:4 (trace8 [ 0; 1 ])))

let test_maximal_epsilon_is_rare_threshold () =
  check_float "epsilon" ~epsilon:0.0 0.005 Markov.maximal_epsilon

let test_detects_rare_continuation () =
  (* One rare continuation among many common ones: the response exceeds
     the alarm threshold 1 - epsilon. *)
  let symbols = List.concat (List.init 300 (fun i -> if i = 150 then [ 0; 3 ] else [ 0; 1 ])) in
  let model = Markov.train ~window:2 (trace8 symbols) in
  let r = Markov.score model (trace8 [ 0; 3 ]) in
  Alcotest.(check bool) "rare continuation maximal" true
    (Response.max_score r >= 1.0 -. Markov.maximal_epsilon)

let test_smoothing_probabilities () =
  (* 0 1 0 1 0 2: context 0 -> {1: 2, 2: 1}, total 3; alphabet 8. *)
  let base = Markov.train ~window:2 (trace8 [ 0; 1; 0; 1; 0; 2 ]) in
  check_float "default no smoothing" ~epsilon:0.0 0.0 (Markov.smoothing base);
  let m = Markov.with_smoothing base ~alpha:1.0 in
  check_float "alpha recorded" ~epsilon:0.0 1.0 (Markov.smoothing m);
  check_float "p(1|0) smoothed" ~epsilon:1e-9 (3.0 /. 11.0)
    (Markov.probability m ~context:[| 0 |] ~next:1);
  check_float "p(7|0) smoothed nonzero" ~epsilon:1e-9 (1.0 /. 11.0)
    (Markov.probability m ~context:[| 0 |] ~next:7);
  (* unseen context predicts uniformly *)
  check_float "unseen context uniform" ~epsilon:1e-9 (1.0 /. 8.0)
    (Markov.probability m ~context:[| 5 |] ~next:0);
  (* base model untouched *)
  check_float "base unchanged" ~epsilon:1e-9 0.0
    (Markov.probability base ~context:[| 0 |] ~next:7)

let test_smoothing_kills_maximal_responses () =
  let base = Markov.train ~window:2 (trace8 [ 0; 1; 0; 1; 0; 2 ]) in
  let m = Markov.with_smoothing base ~alpha:5.0 in
  let r = Markov.score m (trace8 [ 0; 7 ]) in
  Alcotest.(check bool) "never reaches 1" true (Response.max_score r < 1.0);
  Alcotest.(check bool) "still clearly anomalous" true
    (Response.max_score r > 0.8)

let prop_smoothed_distribution_normalised =
  qcheck ~count:50 "smoothed conditionals sum to 1"
    QCheck.(pair (list_of_size Gen.(5 -- 40) (int_bound 5)) (float_bound_inclusive 10.0))
    (fun (l, alpha) ->
      QCheck.assume (List.length l >= 2);
      let m = Markov.with_smoothing (Markov.train ~window:2 (trace8 l)) ~alpha in
      let total = ref 0.0 in
      for next = 0 to 7 do
        total := !total +. Markov.probability m ~context:[| List.hd l |] ~next
      done;
      Float.abs (!total -. 1.0) < 1e-9)

let prop_conditional_distribution =
  qcheck ~count:100 "sum over next of p(next|ctx) = 1 for seen contexts"
    QCheck.(list_of_size Gen.(5 -- 80) (int_bound 5))
    (fun l ->
      QCheck.assume (List.length l >= 2);
      let t = trace8 l in
      let model = Markov.train ~window:2 t in
      let seen = Hashtbl.create 8 in
      for i = 0 to Trace.length t - 2 do
        Hashtbl.replace seen (Trace.get t i) ()
      done;
      Hashtbl.fold
        (fun ctx () acc ->
          let total = ref 0.0 in
          for next = 0 to 7 do
            total := !total +. Markov.probability model ~context:[| ctx |] ~next
          done;
          acc && Float.abs (!total -. 1.0) < 1e-9)
        seen true)

let prop_scores_in_range =
  qcheck ~count:50 "scores within [0,1]"
    QCheck.(
      pair
        (list_of_size Gen.(6 -- 60) (int_bound 7))
        (list_of_size Gen.(3 -- 30) (int_bound 7)))
    (fun (train_l, test_l) ->
      QCheck.assume (List.length train_l >= 3 && List.length test_l >= 3);
      let model = Markov.train ~window:3 (trace8 train_l) in
      let r = Markov.score model (trace8 test_l) in
      Array.for_all
        (fun (i : Response.item) ->
          i.Response.score >= 0.0 && i.Response.score <= 1.0)
        r.Response.items)

let () =
  Alcotest.run "markov_detector"
    [
      ( "markov",
        [
          Alcotest.test_case "window semantics" `Quick test_window_semantics;
          Alcotest.test_case "probability estimates" `Quick test_probability_estimates;
          Alcotest.test_case "unseen context" `Quick test_unseen_context_scores_one;
          Alcotest.test_case "score = 1 - p" `Quick test_score_is_one_minus_p;
          Alcotest.test_case "contexts" `Quick test_contexts_counted;
          Alcotest.test_case "cover" `Quick test_cover_spans_context_and_next;
          Alcotest.test_case "rejects short" `Quick test_rejects_short_trace;
          Alcotest.test_case "epsilon = rare threshold" `Quick
            test_maximal_epsilon_is_rare_threshold;
          Alcotest.test_case "detects rare continuation" `Quick
            test_detects_rare_continuation;
          Alcotest.test_case "smoothing probabilities" `Quick
            test_smoothing_probabilities;
          Alcotest.test_case "smoothing vs maximality" `Quick
            test_smoothing_kills_maximal_responses;
          prop_smoothed_distribution_normalised;
          prop_conditional_distribution;
          prop_scores_in_range;
        ] );
    ]
