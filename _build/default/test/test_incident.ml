open Seqdiv_core
open Seqdiv_detectors

let response ?(window = 3) scores =
  Response.make ~detector:"x" ~window
    (Array.of_list
       (List.mapi
          (fun i s -> { Response.start = i; cover = window; score = s })
          scores))

let incidents ?gap scores =
  Incident.of_response ?gap (response scores) ~threshold:1.0

let test_no_alarms_no_incidents () =
  Alcotest.(check int) "empty" 0 (List.length (incidents [ 0.0; 0.5; 0.0 ]))

let test_single_burst () =
  match incidents [ 0.0; 1.0; 1.0; 1.0; 0.0 ] with
  | [ i ] ->
      Alcotest.(check int) "first" 1 i.Incident.first_start;
      Alcotest.(check int) "last" 3 i.Incident.last_start;
      Alcotest.(check int) "alarms" 3 i.Incident.alarms;
      Alcotest.(check int) "cover from" 1 i.Incident.cover_from;
      (* last alarm starts at 3 and covers 3 positions *)
      Alcotest.(check int) "cover to" 5 i.Incident.cover_to
  | l -> Alcotest.fail (Printf.sprintf "expected one incident, got %d" (List.length l))

let test_two_separate_incidents () =
  (* With window 1 the extents are single positions: alarms at 0 and 5
     cannot touch. *)
  let r = response ~window:1 [ 1.0; 0.0; 0.0; 0.0; 0.0; 1.0 ] in
  Alcotest.(check int) "two incidents" 2
    (Incident.count r ~threshold:1.0)

let test_overlapping_extents_merge () =
  (* Window 3: alarms at starts 0 and 2 — extents [0,2] and [2,4]
     overlap. *)
  let r = response [ 1.0; 0.0; 1.0 ] in
  Alcotest.(check int) "merged" 1 (Incident.count r ~threshold:1.0)

let test_gap_bridges () =
  let r = response ~window:1 [ 1.0; 0.0; 0.0; 1.0 ] in
  Alcotest.(check int) "no gap: separate" 2 (Incident.count r ~threshold:1.0);
  Alcotest.(check int) "gap 2 bridges" 1 (Incident.count ~gap:2 r ~threshold:1.0)

let test_peak_score () =
  let r = response [ 0.9; 1.0; 0.95 ] in
  match Incident.of_response r ~threshold:0.9 with
  | [ i ] ->
      Alcotest.(check (float 0.0)) "peak" 1.0 i.Incident.peak_score;
      Alcotest.(check int) "all three alarms" 3 i.Incident.alarms
  | _ -> Alcotest.fail "expected one incident"

let test_covers () =
  match incidents [ 0.0; 1.0; 0.0 ] with
  | [ i ] ->
      Alcotest.(check bool) "inside" true (Incident.covers i 2);
      Alcotest.(check bool) "outside" false (Incident.covers i 0)
  | _ -> Alcotest.fail "expected one incident"

let test_ground_truth_matching () =
  match incidents [ 0.0; 1.0; 1.0; 0.0 ] with
  | [ i ] ->
      (* extent [1, 4] *)
      Alcotest.(check bool) "intersects anomaly" true
        (Incident.matches_ground_truth i ~position:4 ~size:2);
      Alcotest.(check bool) "misses far anomaly" false
        (Incident.matches_ground_truth i ~position:10 ~size:3)
  | _ -> Alcotest.fail "expected one incident"

let test_split_by_ground_truth () =
  let r = response ~window:1 [ 1.0; 0.0; 0.0; 0.0; 1.0 ] in
  let incidents = Incident.of_response r ~threshold:1.0 in
  let hits, false_alarms =
    Incident.split_by_ground_truth incidents ~position:4 ~size:1
  in
  Alcotest.(check int) "one hit" 1 (List.length hits);
  Alcotest.(check int) "one false incident" 1 (List.length false_alarms)

let test_pp () =
  match incidents [ 1.0 ] with
  | [ i ] ->
      let s = Format.asprintf "%a" Incident.pp i in
      Alcotest.(check string) "render" "incident@[0,2] alarms=1 peak=1.00" s
  | _ -> Alcotest.fail "expected one incident"

let test_on_real_injection () =
  (* The suite stream's burst of Stide alarms coalesces into exactly one
     incident intersecting the ground truth. *)
  let suite = Seqdiv_test_support.tiny_suite () in
  let window = 7 and anomaly_size = 4 in
  let stide =
    Trained.train (Registry.find_exn "stide") ~window
      suite.Seqdiv_synth.Suite.training
  in
  let s = Seqdiv_synth.Suite.stream suite ~anomaly_size ~window in
  let inj = s.Seqdiv_synth.Suite.injection in
  let r = Trained.score stide inj.Seqdiv_synth.Injector.trace in
  let incidents = Incident.of_response r ~threshold:1.0 in
  Alcotest.(check int) "single incident" 1 (List.length incidents);
  List.iter
    (fun i ->
      Alcotest.(check bool) "matches ground truth" true
        (Incident.matches_ground_truth i
           ~position:inj.Seqdiv_synth.Injector.position ~size:anomaly_size))
    incidents

let () =
  Alcotest.run "incident"
    [
      ( "incident",
        [
          Alcotest.test_case "no alarms" `Quick test_no_alarms_no_incidents;
          Alcotest.test_case "single burst" `Quick test_single_burst;
          Alcotest.test_case "separate incidents" `Quick test_two_separate_incidents;
          Alcotest.test_case "overlap merges" `Quick test_overlapping_extents_merge;
          Alcotest.test_case "gap bridges" `Quick test_gap_bridges;
          Alcotest.test_case "peak score" `Quick test_peak_score;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "ground truth" `Quick test_ground_truth_matching;
          Alcotest.test_case "split" `Quick test_split_by_ground_truth;
          Alcotest.test_case "pp" `Quick test_pp;
          Alcotest.test_case "real injection" `Quick test_on_real_injection;
        ] );
    ]
