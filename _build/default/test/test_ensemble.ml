open Seqdiv_core
open Seqdiv_detectors

let response name scores =
  Response.make ~detector:name ~window:3
    (Array.of_list
       (List.mapi
          (fun i s -> { Response.start = i; cover = 3; score = s })
          scores))

let scores_of r =
  Array.to_list (Array.map (fun i -> i.Response.score) r.Response.items)

let test_combine_any () =
  let a = response "a" [ 1.0; 0.0; 0.0 ] in
  let b = response "b" [ 0.0; 1.0; 0.0 ] in
  let c = Ensemble.combine Ensemble.Any [ (a, 1.0); (b, 1.0) ] in
  Alcotest.(check (list (float 0.0))) "disjunction" [ 1.0; 1.0; 0.0 ]
    (scores_of c);
  Alcotest.(check string) "label" "any(a,b)" c.Response.detector

let test_combine_all () =
  let a = response "a" [ 1.0; 1.0; 0.0 ] in
  let b = response "b" [ 0.0; 1.0; 0.0 ] in
  let c = Ensemble.combine Ensemble.All [ (a, 1.0); (b, 1.0) ] in
  Alcotest.(check (list (float 0.0))) "conjunction" [ 0.0; 1.0; 0.0 ]
    (scores_of c)

let test_combine_thresholds_per_member () =
  (* member b alarms at a lower threshold *)
  let a = response "a" [ 1.0; 1.0 ] in
  let b = response "b" [ 0.4; 0.6 ] in
  let c = Ensemble.combine Ensemble.All [ (a, 1.0); (b, 0.5) ] in
  Alcotest.(check (list (float 0.0))) "per-member thresholds" [ 0.0; 1.0 ]
    (scores_of c)

let test_combine_inner_join () =
  let a = response "a" [ 1.0; 1.0; 1.0 ] in
  let b =
    Response.make ~detector:"b" ~window:3
      [| { Response.start = 1; cover = 3; score = 1.0 } |]
  in
  let c = Ensemble.combine Ensemble.All [ (a, 1.0); (b, 1.0) ] in
  Alcotest.(check int) "only common starts" 1 (Response.length c);
  Alcotest.(check int) "start preserved" 1 c.Response.items.(0).Response.start

let test_combine_empty_rejected () =
  Alcotest.check_raises "no members"
    (Invalid_argument "Ensemble.combine: no members") (fun () ->
      ignore (Ensemble.combine Ensemble.Any []))

let test_combine_single_member () =
  let a = response "a" [ 0.8; 1.0 ] in
  let c = Ensemble.combine Ensemble.Any [ (a, 0.9) ] in
  Alcotest.(check (list (float 0.0))) "binarised" [ 0.0; 1.0 ] (scores_of c)

let test_suppress () =
  let primary = response "markov" [ 1.0; 1.0; 1.0; 0.0 ] in
  let suppressor = response "stide" [ 1.0; 0.0; 1.0; 1.0 ] in
  let s =
    Ensemble.suppress ~primary:(primary, 1.0) ~suppressor:(suppressor, 1.0)
  in
  Alcotest.(check int) "primary alarms" 3 s.Ensemble.primary_alarms;
  Alcotest.(check int) "corroborated" 2 s.Ensemble.corroborated;
  Alcotest.(check int) "suppressed" 1 s.Ensemble.suppressed

let test_suppress_no_alarms () =
  let primary = response "markov" [ 0.0; 0.0 ] in
  let suppressor = response "stide" [ 1.0; 1.0 ] in
  let s =
    Ensemble.suppress ~primary:(primary, 1.0) ~suppressor:(suppressor, 1.0)
  in
  Alcotest.(check int) "no primary alarms" 0 s.Ensemble.primary_alarms;
  Alcotest.(check int) "nothing corroborated" 0 s.Ensemble.corroborated

let test_suppress_missing_starts () =
  (* A primary alarm with no matching suppressor item counts as
     suppressed (the suppressor did not raise it). *)
  let primary = response "markov" [ 1.0 ] in
  let suppressor =
    Response.make ~detector:"stide" ~window:3
      [| { Response.start = 5; cover = 3; score = 1.0 } |]
  in
  let s =
    Ensemble.suppress ~primary:(primary, 1.0) ~suppressor:(suppressor, 1.0)
  in
  Alcotest.(check int) "suppressed" 1 s.Ensemble.suppressed

let test_partition_sums () =
  let primary = response "p" [ 1.0; 0.9; 1.0; 1.0; 0.0 ] in
  let suppressor = response "s" [ 0.0; 1.0; 1.0; 0.0; 1.0 ] in
  let s =
    Ensemble.suppress ~primary:(primary, 0.9) ~suppressor:(suppressor, 1.0)
  in
  Alcotest.(check int) "corroborated + suppressed = alarms"
    s.Ensemble.primary_alarms
    (s.Ensemble.corroborated + s.Ensemble.suppressed)

let () =
  Alcotest.run "ensemble"
    [
      ( "ensemble",
        [
          Alcotest.test_case "any" `Quick test_combine_any;
          Alcotest.test_case "all" `Quick test_combine_all;
          Alcotest.test_case "per-member thresholds" `Quick
            test_combine_thresholds_per_member;
          Alcotest.test_case "inner join" `Quick test_combine_inner_join;
          Alcotest.test_case "empty rejected" `Quick test_combine_empty_rejected;
          Alcotest.test_case "single member" `Quick test_combine_single_member;
          Alcotest.test_case "suppress" `Quick test_suppress;
          Alcotest.test_case "suppress no alarms" `Quick test_suppress_no_alarms;
          Alcotest.test_case "suppress missing starts" `Quick
            test_suppress_missing_starts;
          Alcotest.test_case "partition sums" `Quick test_partition_sums;
        ] );
    ]
