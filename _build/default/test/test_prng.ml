open Seqdiv_util
open Seqdiv_test_support

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Prng.bits64 a = Prng.bits64 b)

let test_copy_independent () =
  let a = Prng.create ~seed:7 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b);
  let _ = Prng.bits64 a in
  (* advancing a does not advance b *)
  let a' = Prng.copy a in
  Alcotest.(check bool) "streams diverge after extra draw" false
    (Prng.bits64 a' = Prng.bits64 (Prng.copy b))

let test_split_diverges () =
  let a = Prng.create ~seed:9 in
  let b = Prng.split a in
  Alcotest.(check bool) "split produces distinct stream" false
    (Prng.bits64 a = Prng.bits64 b)

let test_int_range () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.fail "int out of range"
  done

let test_int_covers_all () =
  let rng = Prng.create ~seed:5 in
  let seen = Array.make 8 false in
  for _ = 1 to 5_000 do
    seen.(Prng.int rng 8) <- true
  done;
  Array.iteri
    (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d drawn" i) true s)
    seen

let test_float_range () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of range"
  done

let test_float_mean () =
  let rng = Prng.create ~seed:13 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng 1.0
  done;
  check_float "mean near 0.5" ~epsilon:0.01 0.5 (!sum /. float_of_int n)

let test_bool_balance () =
  let rng = Prng.create ~seed:17 in
  let n = 50_000 in
  let trues = ref 0 in
  for _ = 1 to n do
    if Prng.bool rng then incr trues
  done;
  check_float "bool near fair" ~epsilon:0.02 0.5
    (float_of_int !trues /. float_of_int n)

let test_choose () =
  let rng = Prng.create ~seed:19 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let v = Prng.choose rng a in
    Alcotest.(check bool) "chosen from array" true (Array.mem v a)
  done

let test_shuffle_permutation () =
  let rng = Prng.create ~seed:23 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle_in_place rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" a sorted

let test_shuffle_moves_something () =
  let rng = Prng.create ~seed:29 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle_in_place rng b;
  Alcotest.(check bool) "shuffle changed order" true (a <> b)

let test_gaussian_moments () =
  let rng = Prng.create ~seed:31 in
  let n = 100_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.gaussian rng in
    sum := !sum +. v;
    sum2 := !sum2 +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check_float "gaussian mean near 0" ~epsilon:0.02 0.0 mean;
  check_float "gaussian variance near 1" ~epsilon:0.03 1.0 var

let prop_int_bounds =
  qcheck "int stays in [0,n)" QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let rng = Prng.create ~seed in
      let v = Prng.int rng n in
      v >= 0 && v < n)

let prop_float_bounds =
  qcheck "float stays in [0,x)" QCheck.(pair small_int (float_bound_exclusive 100.0))
    (fun (seed, x) ->
      QCheck.assume (x > 0.0);
      let rng = Prng.create ~seed in
      let v = Prng.float rng x in
      v >= 0.0 && v < x)

let () =
  Alcotest.run "prng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_diverges;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int covers all" `Quick test_int_covers_all;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          prop_int_bounds;
          prop_float_bounds;
        ] );
    ]
