open Seqdiv_stream
open Seqdiv_test_support

let test_make () =
  let a = Alphabet.make 8 in
  Alcotest.(check int) "size" 8 (Alphabet.size a);
  Alcotest.(check string) "default names" "s3" (Alphabet.name a 3)

let test_of_names () =
  let a = Alphabet.of_names [| "open"; "read"; "close" |] in
  Alcotest.(check int) "size" 3 (Alphabet.size a);
  Alcotest.(check string) "name" "read" (Alphabet.name a 1);
  Alcotest.(check int) "index" 2 (Alphabet.index a "close")

let test_index_missing () =
  let a = Alphabet.make 3 in
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Alphabet.index a "zzz"))

let test_mem () =
  let a = Alphabet.make 4 in
  Alcotest.(check bool) "0 valid" true (Alphabet.mem a 0);
  Alcotest.(check bool) "3 valid" true (Alphabet.mem a 3);
  Alcotest.(check bool) "4 invalid" false (Alphabet.mem a 4);
  Alcotest.(check bool) "-1 invalid" false (Alphabet.mem a (-1))

let test_symbols () =
  Alcotest.(check (array int)) "symbols" [| 0; 1; 2 |]
    (Alphabet.symbols (Alphabet.make 3))

let test_pp () =
  Alcotest.(check string) "pp" "{size=5}"
    (Format.asprintf "%a" Alphabet.pp (Alphabet.make 5))

let test_of_names_immutable () =
  let names = [| "a"; "b" |] in
  let a = Alphabet.of_names names in
  names.(0) <- "mutated";
  Alcotest.(check string) "copied on construction" "a" (Alphabet.name a 0)

let prop_names_invertible =
  qcheck "index (name i) = i" QCheck.(int_range 1 50) (fun n ->
      let a = Alphabet.make n in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Alphabet.index a (Alphabet.name a i) <> i then ok := false
      done;
      !ok)

let () =
  Alcotest.run "alphabet"
    [
      ( "alphabet",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "of_names" `Quick test_of_names;
          Alcotest.test_case "index missing" `Quick test_index_missing;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "symbols" `Quick test_symbols;
          Alcotest.test_case "pp" `Quick test_pp;
          Alcotest.test_case "immutability" `Quick test_of_names_immutable;
          prop_names_invertible;
        ] );
    ]
