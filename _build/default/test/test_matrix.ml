open Seqdiv_util
open Seqdiv_test_support

let m_2x3 () = Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |]

let test_create_zero () =
  let m = Matrix.create ~rows:3 ~cols:2 in
  Alcotest.(check int) "rows" 3 (Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Matrix.cols m);
  for i = 0 to 2 do
    for j = 0 to 1 do
      check_float "zero" ~epsilon:0.0 0.0 (Matrix.get m i j)
    done
  done

let test_init () =
  let m = Matrix.init ~rows:2 ~cols:2 (fun i j -> float_of_int ((10 * i) + j)) in
  check_float "(0,1)" ~epsilon:0.0 1.0 (Matrix.get m 0 1);
  check_float "(1,0)" ~epsilon:0.0 10.0 (Matrix.get m 1 0)

let test_set_get () =
  let m = Matrix.create ~rows:2 ~cols:2 in
  Matrix.set m 1 1 42.0;
  check_float "set/get" ~epsilon:0.0 42.0 (Matrix.get m 1 1);
  check_float "others untouched" ~epsilon:0.0 0.0 (Matrix.get m 0 0)

let test_mul_vec () =
  let m = m_2x3 () in
  let v = Matrix.mul_vec m [| 1.0; 0.0; -1.0 |] in
  Alcotest.(check (array (float 1e-9))) "m*v" [| -2.0; -2.0 |] v

let test_tmul_vec () =
  let m = m_2x3 () in
  let v = Matrix.tmul_vec m [| 1.0; -1.0 |] in
  Alcotest.(check (array (float 1e-9))) "m'*v" [| -3.0; -3.0; -3.0 |] v

let test_add_outer () =
  let m = Matrix.create ~rows:2 ~cols:2 in
  Matrix.add_outer m [| 1.0; 2.0 |] [| 3.0; 4.0 |] ~scale:0.5;
  check_float "(0,0)" ~epsilon:1e-9 1.5 (Matrix.get m 0 0);
  check_float "(1,1)" ~epsilon:1e-9 4.0 (Matrix.get m 1 1)

let test_scale_add_in_place () =
  let m = m_2x3 () in
  let n = Matrix.copy m in
  Matrix.scale_in_place n 2.0;
  check_float "scaled" ~epsilon:1e-9 12.0 (Matrix.get n 1 2);
  check_float "original untouched" ~epsilon:1e-9 6.0 (Matrix.get m 1 2);
  Matrix.add_in_place n m;
  check_float "added" ~epsilon:1e-9 18.0 (Matrix.get n 1 2)

let test_map () =
  let m = Matrix.map (fun x -> -.x) (m_2x3 ()) in
  check_float "negated" ~epsilon:1e-9 (-5.0) (Matrix.get m 1 1)

let test_round_trip () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let m = Matrix.of_arrays a in
  Alcotest.(check bool) "round trip" true (Matrix.to_arrays m = a)

let test_frobenius () =
  let m = Matrix.of_arrays [| [| 3.0; 4.0 |] |] in
  check_float "3-4-5" ~epsilon:1e-9 5.0 (Matrix.frobenius_norm m)

let test_random_range () =
  let rng = Prng.create ~seed:1 in
  let m = Matrix.random rng ~rows:10 ~cols:10 ~scale:0.25 in
  Array.iter
    (Array.iter (fun x ->
         if x < -0.25 || x > 0.25 then Alcotest.fail "out of scale"))
    (Matrix.to_arrays m)

let small_mat =
  QCheck.(
    map
      (fun (rows, cols, seed) ->
        let rng = Prng.create ~seed in
        Matrix.random rng ~rows:(rows + 1) ~cols:(cols + 1) ~scale:1.0)
      (triple (int_bound 6) (int_bound 6) small_int))

let prop_adjoint =
  (* <A v, u> = <v, A' u> — exercises mul_vec and tmul_vec together. *)
  qcheck "adjoint identity" QCheck.(pair small_mat small_int) (fun (m, seed) ->
      let rng = Prng.create ~seed:(seed + 1) in
      let v = Array.init (Matrix.cols m) (fun _ -> Prng.float rng 2.0 -. 1.0) in
      let u = Array.init (Matrix.rows m) (fun _ -> Prng.float rng 2.0 -. 1.0) in
      let dot a b =
        Array.fold_left ( +. ) 0.0 (Array.mapi (fun i x -> x *. b.(i)) a)
      in
      let lhs = dot (Matrix.mul_vec m v) u in
      let rhs = dot v (Matrix.tmul_vec m u) in
      Float.abs (lhs -. rhs) < 1e-9)

let prop_outer_rank1 =
  qcheck "add_outer adds u_i*v_j" QCheck.(pair (int_bound 5) (int_bound 5))
    (fun (i, j) ->
      let rows = 6 and cols = 6 in
      let m = Matrix.create ~rows ~cols in
      let u = Array.init rows (fun x -> float_of_int (x + 1)) in
      let v = Array.init cols (fun x -> float_of_int ((2 * x) + 1)) in
      Matrix.add_outer m u v ~scale:1.0;
      Float.abs (Matrix.get m i j -. (u.(i) *. v.(j))) < 1e-9)

let () =
  Alcotest.run "matrix"
    [
      ( "matrix",
        [
          Alcotest.test_case "create zero" `Quick test_create_zero;
          Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "tmul_vec" `Quick test_tmul_vec;
          Alcotest.test_case "add_outer" `Quick test_add_outer;
          Alcotest.test_case "scale/add in place" `Quick test_scale_add_in_place;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "frobenius" `Quick test_frobenius;
          Alcotest.test_case "random range" `Quick test_random_range;
          prop_adjoint;
          prop_outer_rank1;
        ] );
    ]
