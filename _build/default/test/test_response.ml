open Seqdiv_detectors

let item start cover score = { Response.start; cover; score }

let make items = Response.make ~detector:"test" ~window:3 (Array.of_list items)

let test_make_valid () =
  let r = make [ item 0 3 0.0; item 1 3 0.5; item 2 3 1.0 ] in
  Alcotest.(check int) "length" 3 (Response.length r)

let test_make_rejects_bad_score () =
  Alcotest.check_raises "score > 1"
    (Invalid_argument "Response.make: score out of [0,1]") (fun () ->
      ignore (make [ item 0 3 1.5 ]));
  Alcotest.check_raises "score < 0"
    (Invalid_argument "Response.make: score out of [0,1]") (fun () ->
      ignore (make [ item 0 3 (-0.1) ]))

let test_make_rejects_bad_cover () =
  Alcotest.check_raises "cover 0"
    (Invalid_argument "Response.make: non-positive cover") (fun () ->
      ignore (make [ item 0 0 0.5 ]))

let test_make_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Response.make: unsorted starts") (fun () ->
      ignore (make [ item 5 3 0.5; item 1 3 0.5 ]))

let test_max_score () =
  Alcotest.(check (float 0.0)) "empty" 0.0 (Response.max_score (make []));
  Alcotest.(check (float 0.0)) "max" 0.8
    (Response.max_score (make [ item 0 3 0.3; item 1 3 0.8; item 2 3 0.1 ]))

let test_over_and_count () =
  let r = make [ item 0 3 0.2; item 1 3 0.9; item 2 3 0.9 ] in
  Alcotest.(check int) "count" 2 (Response.count_over r ~threshold:0.9);
  Alcotest.(check int) "over" 2 (List.length (Response.over r ~threshold:0.9));
  Alcotest.(check int) "all" 3 (Response.count_over r ~threshold:0.0)

let test_restrict () =
  (* items cover [start, start+2] *)
  let r = make [ item 0 3 0.1; item 5 3 0.2; item 10 3 0.3 ] in
  let sub = Response.restrict r ~lo:6 ~hi:9 in
  (* item 5 covers 5..7 (intersects), item 10 covers 10..12 (no) *)
  Alcotest.(check int) "restricted" 1 (Response.length sub);
  let sub2 = Response.restrict r ~lo:0 ~hi:100 in
  Alcotest.(check int) "all intersect" 3 (Response.length sub2);
  let sub3 = Response.restrict r ~lo:3 ~hi:4 in
  Alcotest.(check int) "none intersect" 0 (Response.length sub3)

let test_binarize () =
  let r = make [ item 0 3 0.2; item 1 3 0.7 ] in
  let b = Response.binarize r ~threshold:0.5 in
  let scores =
    Array.to_list (Array.map (fun i -> i.Response.score) b.Response.items)
  in
  Alcotest.(check (list (float 0.0))) "binary" [ 0.0; 1.0 ] scores

let test_metadata_preserved () =
  let r = make [ item 0 3 0.5 ] in
  Alcotest.(check string) "detector" "test" r.Response.detector;
  Alcotest.(check int) "window" 3 r.Response.window

let () =
  Alcotest.run "response"
    [
      ( "response",
        [
          Alcotest.test_case "make valid" `Quick test_make_valid;
          Alcotest.test_case "rejects bad score" `Quick test_make_rejects_bad_score;
          Alcotest.test_case "rejects bad cover" `Quick test_make_rejects_bad_cover;
          Alcotest.test_case "rejects unsorted" `Quick test_make_rejects_unsorted;
          Alcotest.test_case "max score" `Quick test_max_score;
          Alcotest.test_case "over/count" `Quick test_over_and_count;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "binarize" `Quick test_binarize;
          Alcotest.test_case "metadata" `Quick test_metadata_preserved;
        ] );
    ]
