open Seqdiv_util
open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_test_support

let test_of_matrix_normalises () =
  let a = Alphabet.make 2 in
  let chain = Markov_chain.of_matrix a [| [| 2.0; 6.0 |]; [| 1.0; 0.0 |] |] in
  check_float "p(0->1)" ~epsilon:1e-9 0.75 (Markov_chain.prob chain 0 1);
  check_float "p(1->0)" ~epsilon:1e-9 1.0 (Markov_chain.prob chain 1 0)

let test_of_matrix_validation () =
  let a = Alphabet.make 2 in
  Alcotest.check_raises "row count"
    (Invalid_argument "Markov_chain.of_matrix: row count") (fun () ->
      ignore (Markov_chain.of_matrix a [| [| 1.0; 1.0 |] |]));
  Alcotest.check_raises "column count"
    (Invalid_argument "Markov_chain.of_matrix: column count") (fun () ->
      ignore (Markov_chain.of_matrix a [| [| 1.0 |]; [| 1.0; 1.0 |] |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Markov_chain.of_matrix: negative") (fun () ->
      ignore (Markov_chain.of_matrix a [| [| -1.0; 2.0 |]; [| 1.0; 1.0 |] |]));
  Alcotest.check_raises "zero row"
    (Invalid_argument "Markov_chain.of_matrix: zero row") (fun () ->
      ignore (Markov_chain.of_matrix a [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |] |]))

let test_successors () =
  let a = Alphabet.make 3 in
  let chain =
    Markov_chain.of_matrix a
      [| [| 0.0; 1.0; 1.0 |]; [| 1.0; 0.0; 0.0 |]; [| 0.0; 0.0; 1.0 |] |]
  in
  Alcotest.(check (list int)) "successors of 0" [ 1; 2 ]
    (Markov_chain.successors chain 0);
  Alcotest.(check (list int)) "successors of 2" [ 2 ]
    (Markov_chain.successors chain 2);
  Alcotest.(check bool) "structural zeros" true
    (Markov_chain.has_structural_zeros chain)

let test_paper_chain_structure () =
  let chain = training_chain () in
  (* From each symbol: successor, +2 and +3 reachable; everything else a
     structural zero. *)
  List.iter
    (fun i ->
      Alcotest.(check (list int))
        (Printf.sprintf "successors of %d" i)
        (List.sort compare [ (i + 1) mod 8; (i + 2) mod 8; (i + 3) mod 8 ])
        (Markov_chain.successors chain i))
    [ 0; 3; 7 ];
  Alcotest.(check bool) "has zeros" true (Markov_chain.has_structural_zeros chain);
  check_float "cycle probability" ~epsilon:1e-9
    (1.0 -. Generator.default_deviation)
    (Markov_chain.prob chain 0 1)

let test_paper_chain_validation () =
  Alcotest.check_raises "alphabet too small"
    (Invalid_argument "Markov_chain.paper_chain: alphabet too small") (fun () ->
      ignore (Markov_chain.paper_chain (Alphabet.make 4) ~deviation:0.1));
  Alcotest.check_raises "deviation range"
    (Invalid_argument "Markov_chain.paper_chain: deviation out of range")
    (fun () ->
      ignore (Markov_chain.paper_chain (Alphabet.make 8) ~deviation:1.0))

let test_generate_deterministic () =
  let chain = training_chain () in
  let t1 = Markov_chain.generate chain (Prng.create ~seed:5) ~start:0 ~len:500 in
  let t2 = Markov_chain.generate chain (Prng.create ~seed:5) ~start:0 ~len:500 in
  Alcotest.(check bool) "same seed same trace" true (Trace.equal t1 t2);
  let t3 = Markov_chain.generate chain (Prng.create ~seed:6) ~start:0 ~len:500 in
  Alcotest.(check bool) "different seed different trace" false
    (Trace.equal t1 t3)

let test_generate_starts_at_start () =
  let chain = training_chain () in
  let t = Markov_chain.generate chain (Prng.create ~seed:1) ~start:5 ~len:10 in
  Alcotest.(check int) "first symbol" 5 (Trace.get t 0);
  Alcotest.(check int) "length" 10 (Trace.length t)

let test_generate_respects_zeros () =
  let chain = training_chain () in
  let t = Markov_chain.generate chain (Prng.create ~seed:2) ~start:0 ~len:20_000 in
  for i = 0 to Trace.length t - 2 do
    let a = Trace.get t i and b = Trace.get t (i + 1) in
    let diff = (b - a + 8) mod 8 in
    if diff < 1 || diff > 3 then
      Alcotest.fail
        (Printf.sprintf "forbidden transition %d -> %d at %d" a b i)
  done

let test_deviation_frequency () =
  let chain = training_chain () in
  let t = Markov_chain.generate chain (Prng.create ~seed:3) ~start:0 ~len:200_000 in
  let frac = Generator.cycle_fraction t in
  check_float "cycle fraction matches 1-deviation" ~epsilon:0.001
    (1.0 -. Generator.default_deviation)
    frac

let test_stationary_cycle () =
  let chain = training_chain () in
  Alcotest.(check (array int)) "one period" [| 0; 1; 2; 3; 4; 5; 6; 7 |]
    (Trace.to_array (Markov_chain.stationary_cycle chain))

let prop_rows_are_distributions =
  qcheck "normalised rows sum to 1" QCheck.(int_range 5 20) (fun k ->
      let chain = Markov_chain.paper_chain (Alphabet.make k) ~deviation:0.01 in
      List.for_all
        (fun i ->
          let total = ref 0.0 in
          for j = 0 to k - 1 do
            total := !total +. Markov_chain.prob chain i j
          done;
          Float.abs (!total -. 1.0) < 1e-9)
        (List.init k (fun i -> i)))

let () =
  Alcotest.run "markov_chain"
    [
      ( "markov_chain",
        [
          Alcotest.test_case "normalisation" `Quick test_of_matrix_normalises;
          Alcotest.test_case "validation" `Quick test_of_matrix_validation;
          Alcotest.test_case "successors" `Quick test_successors;
          Alcotest.test_case "paper chain structure" `Quick test_paper_chain_structure;
          Alcotest.test_case "paper chain validation" `Quick test_paper_chain_validation;
          Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "generate start" `Quick test_generate_starts_at_start;
          Alcotest.test_case "respects zeros" `Quick test_generate_respects_zeros;
          Alcotest.test_case "deviation frequency" `Quick test_deviation_frequency;
          Alcotest.test_case "stationary cycle" `Quick test_stationary_cycle;
          prop_rows_are_distributions;
        ] );
    ]
