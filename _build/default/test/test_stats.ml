open Seqdiv_util
open Seqdiv_test_support

let test_mean () =
  check_float "mean" ~epsilon:1e-9 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "singleton" ~epsilon:1e-9 5.0 (Stats.mean [| 5.0 |])

let test_variance () =
  check_float "variance of constant" ~epsilon:1e-9 0.0
    (Stats.variance [| 4.0; 4.0; 4.0 |]);
  (* population variance of 1..5 is 2 *)
  check_float "variance" ~epsilon:1e-9 2.0
    (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_stddev () =
  check_float "stddev" ~epsilon:1e-9 (sqrt 2.0)
    (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.5; 2.0 |] in
  check_float "min" ~epsilon:1e-9 (-1.0) lo;
  check_float "max" ~epsilon:1e-9 7.5 hi

let test_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "p0" ~epsilon:1e-9 1.0 (Stats.percentile a 0.0);
  check_float "p100" ~epsilon:1e-9 4.0 (Stats.percentile a 100.0);
  check_float "p50 interpolates" ~epsilon:1e-9 2.5 (Stats.percentile a 50.0);
  check_float "singleton" ~epsilon:1e-9 9.0 (Stats.percentile [| 9.0 |] 75.0)

let test_median () =
  check_float "odd" ~epsilon:1e-9 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "even" ~epsilon:1e-9 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile_unsorted_input () =
  let a = [| 9.0; 1.0; 5.0 |] in
  check_float "sorts internally" ~epsilon:1e-9 5.0 (Stats.percentile a 50.0);
  (* input untouched *)
  Alcotest.(check (array (float 0.0))) "input preserved" [| 9.0; 1.0; 5.0 |] a

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 0.25; 0.75; 1.0 |] in
  Alcotest.(check int) "two buckets" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "lower bucket" 2 c0;
  Alcotest.(check int) "upper bucket (closed right)" 2 c1

let test_histogram_constant () =
  let h = Stats.histogram ~bins:3 [| 2.0; 2.0 |] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 2 total

let test_rate () =
  check_float "rate" ~epsilon:1e-9 0.25 (Stats.rate ~count:1 ~total:4);
  check_float "zero total" ~epsilon:1e-9 0.0 (Stats.rate ~count:0 ~total:0)

let nonempty_floats =
  QCheck.(
    map
      (fun (x, xs) -> Array.of_list (x :: xs))
      (pair (float_bound_inclusive 1000.0) (small_list (float_bound_inclusive 1000.0))))

let prop_mean_bounds =
  qcheck "mean within min..max" nonempty_floats (fun a ->
      let lo, hi = Stats.min_max a in
      let m = Stats.mean a in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_variance_nonneg =
  qcheck "variance non-negative" nonempty_floats (fun a ->
      Stats.variance a >= -1e-9)

let prop_percentile_monotone =
  qcheck "percentile monotone in p"
    QCheck.(pair nonempty_floats (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (a, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

let prop_histogram_total =
  qcheck "histogram counts everything"
    QCheck.(pair (int_range 1 10) nonempty_floats)
    (fun (bins, a) ->
      let h = Stats.histogram ~bins a in
      Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h = Array.length a)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "percentile input" `Quick test_percentile_unsorted_input;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram constant" `Quick test_histogram_constant;
          Alcotest.test_case "rate" `Quick test_rate;
          prop_mean_bounds;
          prop_variance_nonneg;
          prop_percentile_monotone;
          prop_histogram_total;
        ] );
    ]
