open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_test_support

let fast = { Hmm.default_params with Hmm.iterations = 8; train_limit = 4_000 }

(* A deterministic 4-cycle: easy for an HMM to learn exactly. *)
let cycle4 len =
  Trace.of_array (Alphabet.make 4) (Array.init len (fun i -> i mod 4))

let test_predict_is_distribution () =
  let model = Hmm.train_with fast ~window:3 (cycle4 1_000) in
  let probs = Hmm.predict model [| 0; 1 |] in
  let total = Array.fold_left ( +. ) 0.0 probs in
  check_float "sums to 1" ~epsilon:1e-6 1.0 total;
  Array.iter (fun p -> if p < 0.0 then Alcotest.fail "negative") probs

let test_learns_cycle () =
  let model = Hmm.train_with fast ~window:2 (cycle4 1_000) in
  let probs = Hmm.predict model [| 1 |] in
  Alcotest.(check bool)
    (Printf.sprintf "p(2|1)=%.3f dominant" probs.(2))
    true (probs.(2) > 0.9)

let test_likelihood_improves_with_training () =
  let t = cycle4 1_000 in
  let untrained = Hmm.train_with { fast with Hmm.iterations = 0 } ~window:2 t in
  let trained = Hmm.train_with fast ~window:2 t in
  let probe = cycle4 100 in
  Alcotest.(check bool) "training raises likelihood" true
    (Hmm.log_likelihood trained probe > Hmm.log_likelihood untrained probe)

let test_deterministic () =
  let t = cycle4 500 in
  let m1 = Hmm.train_with fast ~window:2 t in
  let m2 = Hmm.train_with fast ~window:2 t in
  Alcotest.(check (array (float 0.0))) "same model" (Hmm.predict m1 [| 3 |])
    (Hmm.predict m2 [| 3 |])

let test_states_resolved () =
  let model = Hmm.train_with fast ~window:2 (cycle4 200) in
  Alcotest.(check int) "states default to alphabet size" 4
    (Hmm.params model).Hmm.states;
  let m2 = Hmm.train_with { fast with Hmm.states = 2 } ~window:2 (cycle4 200) in
  Alcotest.(check int) "explicit states" 2 (Hmm.params m2).Hmm.states

let test_degrades_gracefully_with_few_states () =
  (* With fewer states than symbols the model blurs but stays a valid
     distribution and still scores within range. *)
  let model = Hmm.train_with { fast with Hmm.states = 2 } ~window:3 (cycle4 500) in
  let r = Hmm.score model (cycle4 50) in
  Array.iter
    (fun (i : Response.item) ->
      if i.Response.score < 0.0 || i.Response.score > 1.0 then
        Alcotest.fail "score out of range")
    r.Response.items

let test_scores_cycle_low () =
  let model = Hmm.train_with fast ~window:2 (cycle4 2_000) in
  let r = Hmm.score model (cycle4 40) in
  Alcotest.(check bool) "familiar data scores low" true
    (Response.max_score r < 0.2)

let test_scores_novel_high () =
  let model = Hmm.train_with fast ~window:2 (cycle4 2_000) in
  (* 0 followed by 3 never happens in the 4-cycle. *)
  let r = Hmm.score model (Trace.of_list (Alphabet.make 4) [ 0; 3 ]) in
  Alcotest.(check bool)
    (Printf.sprintf "novel transition scores high (%.4f)" (Response.max_score r))
    true
    (Response.max_score r >= 1.0 -. Hmm.maximal_epsilon)

let test_empty_context_prediction () =
  let model = Hmm.train_with fast ~window:2 (cycle4 500) in
  let probs = Hmm.predict model [||] in
  check_float "prior sums to 1" ~epsilon:1e-6 1.0
    (Array.fold_left ( +. ) 0.0 probs)

let test_rejects_short_trace () =
  Alcotest.check_raises "short"
    (Invalid_argument "Hmm.train: trace shorter than window") (fun () ->
      ignore (Hmm.train ~window:5 (cycle4 2)))

let test_capable_on_suite_cell () =
  (* Extension E1: the HMM behaves like the Markov detector on the
     paper's data — capable below Stide's diagonal. *)
  let suite = tiny_suite () in
  let window = 3 and anomaly_size = 7 in
  let model = Hmm.train ~window suite.Seqdiv_synth.Suite.training in
  let s = Seqdiv_synth.Suite.stream suite ~anomaly_size ~window in
  let inj = s.Seqdiv_synth.Suite.injection in
  let lo, hi =
    Seqdiv_synth.Injector.incident_span
      ~position:inj.Seqdiv_synth.Injector.position ~size:anomaly_size
      ~width:window
  in
  let r = Hmm.score_range model inj.Seqdiv_synth.Injector.trace ~lo ~hi in
  Alcotest.(check bool) "capable below the diagonal" true
    (Response.max_score r >= 1.0 -. Hmm.maximal_epsilon)

let () =
  Alcotest.run "hmm"
    [
      ( "hmm",
        [
          Alcotest.test_case "predict distribution" `Quick test_predict_is_distribution;
          Alcotest.test_case "learns cycle" `Quick test_learns_cycle;
          Alcotest.test_case "likelihood improves" `Quick
            test_likelihood_improves_with_training;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "states resolved" `Quick test_states_resolved;
          Alcotest.test_case "few states degrade gracefully" `Quick
            test_degrades_gracefully_with_few_states;
          Alcotest.test_case "familiar scores low" `Quick test_scores_cycle_low;
          Alcotest.test_case "novel scores high" `Quick test_scores_novel_high;
          Alcotest.test_case "empty context" `Quick test_empty_context_prediction;
          Alcotest.test_case "rejects short" `Quick test_rejects_short_trace;
          Alcotest.test_case "capable on suite (E1)" `Slow test_capable_on_suite_cell;
        ] );
    ]
