(* Cross-detector properties: relations between detectors that the
   implementations must satisfy by construction, checked on random
   traces rather than the curated suite. *)

open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_test_support

let train_test_gen =
  QCheck.(
    pair
      (list_of_size Gen.(20 -- 120) (int_bound 7))
      (list_of_size Gen.(5 -- 40) (int_bound 7)))

let prop_stide_alarms_subset_of_tstide =
  (* Foreign implies (foreign or rare): every stide alarm is a t-stide
     alarm, window for window. *)
  qcheck ~count:100 "stide alarms ⊆ t-stide alarms" train_test_gen
    (fun (train_l, test_l) ->
      let window = 3 in
      QCheck.assume (List.length train_l >= window);
      QCheck.assume (List.length test_l >= window);
      let train = trace8 train_l and test = trace8 test_l in
      let stide = Stide.train ~window train in
      let tstide = Tstide.train ~window train in
      let rs = Stide.score stide test and rt = Tstide.score tstide test in
      Array.for_all2
        (fun (a : Response.item) (b : Response.item) ->
          a.Response.score <= b.Response.score)
        rs.Response.items rt.Response.items)

let prop_markov_matches_brute_force =
  (* The Markov detector's estimate equals the count ratio computed
     naively from the training trace. *)
  qcheck ~count:100 "markov = brute-force count ratio" train_test_gen
    (fun (train_l, test_l) ->
      let window = 2 in
      QCheck.assume (List.length train_l >= window);
      QCheck.assume (List.length test_l >= window);
      let train = trace8 train_l and test = trace8 test_l in
      let model = Markov.train ~window train in
      let brute context next =
        let ctx_count = ref 0 and pair_count = ref 0 in
        for i = 0 to Trace.length train - 2 do
          if Trace.get train i = context then begin
            incr ctx_count;
            if Trace.get train (i + 1) = next then incr pair_count
          end
        done;
        (* The final element also forms a bare context but never a pair;
           Markov.train only counts full windows, so exclude it. *)
        if !ctx_count = 0 then 0.0
        else float_of_int !pair_count /. float_of_int !ctx_count
      in
      let r = Markov.score model test in
      Array.for_all
        (fun (i : Response.item) ->
          let context = Trace.get test i.Response.start in
          let next = Trace.get test (i.Response.start + 1) in
          Float.abs (i.Response.score -. (1.0 -. brute context next)) < 1e-9)
        r.Response.items)

let prop_lnb_best_match_is_optimal =
  (* best_match really returns the maximum similarity over the stored
     instances. *)
  qcheck ~count:100 "lnb best match is optimal"
    QCheck.(
      pair
        (list_of_size Gen.(10 -- 60) (int_bound 7))
        (list_of_size Gen.(4 -- 4) (int_bound 7)))
    (fun (train_l, probe_l) ->
      let window = 4 in
      QCheck.assume (List.length train_l >= window);
      let train = trace8 train_l in
      let model = Lane_brodley.train ~window train in
      let probe = Array.of_list probe_l in
      let _, best = Lane_brodley.best_match model probe in
      let db = Seq_db.of_trace ~width:window train in
      Seq_db.fold db ~init:true ~f:(fun acc key _ ->
          acc
          && Lane_brodley.similarity probe (Trace.symbols_of_key key) <= best))

let prop_stide_tstide_agree_when_threshold_zeroish =
  (* With a near-zero rarity threshold, t-stide degenerates to stide. *)
  qcheck ~count:100 "t-stide at ~0 threshold = stide" train_test_gen
    (fun (train_l, test_l) ->
      let window = 3 in
      QCheck.assume (List.length train_l >= window);
      QCheck.assume (List.length test_l >= window);
      let train = trace8 train_l and test = trace8 test_l in
      let stide = Stide.train ~window train in
      let tstide = Tstide.train_with ~threshold:1e-12 ~window train in
      let rs = Stide.score stide test and rt = Tstide.score tstide test in
      Array.for_all2
        (fun (a : Response.item) (b : Response.item) ->
          Float.equal a.Response.score b.Response.score)
        rs.Response.items rt.Response.items)

let prop_markov_upper_bounds_stide_on_its_grams =
  (* If stide at window w alarms (the w-gram is foreign), the Markov
     detector at the same window alarms too: either its (w-1)-context is
     unseen, or the continuation never followed it. *)
  qcheck ~count:100 "foreign window implies markov-maximal" train_test_gen
    (fun (train_l, test_l) ->
      let window = 3 in
      QCheck.assume (List.length train_l >= window);
      QCheck.assume (List.length test_l >= window);
      let train = trace8 train_l and test = trace8 test_l in
      let stide = Stide.train ~window train in
      let markov = Markov.train ~window train in
      let rs = Stide.score stide test and rm = Markov.score markov test in
      Array.for_all2
        (fun (s : Response.item) (m : Response.item) ->
          s.Response.score < 1.0 || m.Response.score = 1.0)
        rs.Response.items rm.Response.items)

let prop_nn_hmm_distributions_normalised =
  qcheck ~count:20 "nn and hmm predictive distributions normalised"
    QCheck.(list_of_size Gen.(30 -- 80) (int_bound 7))
    (fun train_l ->
      let window = 3 in
      let train = trace8 train_l in
      let nn =
        Neural.train_with
          { Neural.default_params with Neural.epochs = 5 }
          ~window train
      in
      let hmm =
        Hmm.train_with
          { Hmm.default_params with Hmm.iterations = 2; train_limit = 100 }
          ~window train
      in
      let context = [| 0; 1 |] in
      let sums_to_one probs =
        Float.abs (Array.fold_left ( +. ) 0.0 probs -. 1.0) < 1e-6
      in
      sums_to_one (Neural.predict nn context)
      && sums_to_one (Hmm.predict hmm context))

let () =
  Alcotest.run "cross_detector"
    [
      ( "cross",
        [
          prop_stide_alarms_subset_of_tstide;
          prop_markov_matches_brute_force;
          prop_lnb_best_match_is_optimal;
          prop_stide_tstide_agree_when_threshold_zeroish;
          prop_markov_upper_bounds_stide_on_its_grams;
          prop_nn_hmm_distributions_normalised;
        ] );
    ]
