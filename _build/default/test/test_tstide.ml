open Seqdiv_synth
open Seqdiv_detectors
open Seqdiv_test_support

let test_default_threshold () =
  check_float "paper's rare threshold" ~epsilon:0.0 0.005
    Tstide.default_threshold

let test_foreign_flagged () =
  let model = Tstide.train ~window:2 (trace8 [ 0; 1; 2; 0; 1 ]) in
  let r = Tstide.score model (trace8 [ 1; 7 ]) in
  Alcotest.(check (float 0.0)) "foreign window" 1.0 (Response.max_score r)

let test_rare_flagged_foreign_by_stide_missed () =
  (* 0 1 repeated with a single 0 2: the window (0,2) is PRESENT but
     rare — t-stide flags it, stide does not. *)
  let symbols =
    List.concat (List.init 500 (fun i -> if i = 250 then [ 0; 2 ] else [ 0; 1 ]))
  in
  let trace = trace8 symbols in
  let tstide = Tstide.train ~window:2 trace in
  let stide = Stide.train ~window:2 trace in
  let probe = trace8 [ 0; 2 ] in
  Alcotest.(check (float 0.0)) "t-stide flags rare" 1.0
    (Response.max_score (Tstide.score tstide probe));
  Alcotest.(check (float 0.0)) "stide does not" 0.0
    (Response.max_score (Stide.score stide probe))

let test_common_not_flagged () =
  let model = Tstide.train ~window:2 (trace8 [ 0; 1; 0; 1; 0; 1 ]) in
  let r = Tstide.score model (trace8 [ 0; 1 ]) in
  Alcotest.(check (float 0.0)) "common window" 0.0 (Response.max_score r)

let test_threshold_recorded () =
  let model = Tstide.train_with ~threshold:0.1 ~window:3 (trace8 [ 0; 1; 2; 3 ]) in
  check_float "threshold" ~epsilon:0.0 0.1 (Tstide.threshold model);
  Alcotest.(check int) "window" 3 (Tstide.window model)

let test_binary_scores () =
  let suite = tiny_suite () in
  let model = Tstide.train ~window:5 suite.Suite.training in
  let test = Suite.stream suite ~anomaly_size:4 ~window:5 in
  let r = Tstide.score model test.Suite.injection.Injector.trace in
  Array.iter
    (fun (i : Response.item) ->
      if i.Response.score <> 0.0 && i.Response.score <> 1.0 then
        Alcotest.fail "non-binary t-stide score")
    r.Response.items

let test_covers_below_diagonal () =
  (* The extension claim: t-stide patches Stide's blind triangle because
     the MFS's sub-sequences are rare windows. *)
  let suite = tiny_suite () in
  List.iter
    (fun (anomaly_size, window) ->
      let model = Tstide.train ~window suite.Suite.training in
      let s = Suite.stream suite ~anomaly_size ~window in
      let inj = s.Suite.injection in
      let lo, hi =
        Injector.incident_span ~position:inj.Injector.position
          ~size:anomaly_size ~width:window
      in
      let r = Tstide.score_range model inj.Injector.trace ~lo ~hi in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "capable at AS=%d DW=%d" anomaly_size window)
        1.0 (Response.max_score r))
    [ (5, 2); (9, 3); (6, 5); (4, 8) ]

let test_rare_exposure () =
  (* The cost: like Markov, t-stide raises alarms on rare-but-benign
     deployment content where stide stays quiet. *)
  let suite = tiny_suite () in
  let chain = suite.Suite.chain in
  let deploy =
    Seqdiv_synth.Markov_chain.generate chain
      (Seqdiv_util.Prng.create ~seed:31)
      ~start:0 ~len:15_000
  in
  let window = 6 in
  let tstide = Tstide.train ~window suite.Suite.training in
  let stide = Stide.train ~window suite.Suite.training in
  let t_alarms = Response.count_over (Tstide.score tstide deploy) ~threshold:1.0 in
  let s_alarms = Response.count_over (Stide.score stide deploy) ~threshold:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "t-stide (%d) noisier than stide (%d)" t_alarms s_alarms)
    true (t_alarms > s_alarms)

let () =
  Alcotest.run "tstide"
    [
      ( "tstide",
        [
          Alcotest.test_case "default threshold" `Quick test_default_threshold;
          Alcotest.test_case "foreign flagged" `Quick test_foreign_flagged;
          Alcotest.test_case "rare flagged" `Quick
            test_rare_flagged_foreign_by_stide_missed;
          Alcotest.test_case "common ignored" `Quick test_common_not_flagged;
          Alcotest.test_case "threshold recorded" `Quick test_threshold_recorded;
          Alcotest.test_case "binary scores" `Quick test_binary_scores;
          Alcotest.test_case "covers below diagonal" `Quick
            test_covers_below_diagonal;
          Alcotest.test_case "rare exposure" `Quick test_rare_exposure;
        ] );
    ]
