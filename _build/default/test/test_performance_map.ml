open Seqdiv_core

(* A synthetic map: capable iff window >= anomaly_size, weak when one
   less, blind otherwise. *)
let diagonal_map () =
  Performance_map.build ~detector:"synthetic" ~anomaly_sizes:[ 2; 3; 4 ]
    ~windows:[ 2; 3; 4; 5 ] ~f:(fun ~anomaly_size ~window ->
      if window >= anomaly_size then Outcome.Capable 1.0
      else if window = anomaly_size - 1 then Outcome.Weak 0.5
      else Outcome.Blind)

let test_metadata () =
  let m = diagonal_map () in
  Alcotest.(check string) "detector" "synthetic" (Performance_map.detector m);
  Alcotest.(check (list int)) "anomaly sizes" [ 2; 3; 4 ]
    (Performance_map.anomaly_sizes m);
  Alcotest.(check (list int)) "windows" [ 2; 3; 4; 5 ]
    (Performance_map.windows m);
  Alcotest.(check int) "cells" 12 (Performance_map.cell_count m)

let test_outcome_lookup () =
  let m = diagonal_map () in
  Alcotest.(check bool) "capable cell" true
    (Outcome.is_capable (Performance_map.outcome m ~anomaly_size:3 ~window:4));
  Alcotest.(check bool) "weak cell" true
    (Outcome.is_weak (Performance_map.outcome m ~anomaly_size:4 ~window:3));
  Alcotest.(check bool) "blind cell" true
    (Outcome.is_blind (Performance_map.outcome m ~anomaly_size:4 ~window:2))

let test_cell_lists () =
  let m = diagonal_map () in
  (* capable: AS=2 -> DW 2..5 (4), AS=3 -> 3 cells, AS=4 -> 2 cells *)
  Alcotest.(check int) "capable" 9 (List.length (Performance_map.capable_cells m));
  Alcotest.(check int) "weak" 2 (List.length (Performance_map.weak_cells m));
  Alcotest.(check int) "blind" 1 (List.length (Performance_map.blind_cells m));
  Alcotest.(check (list (pair int int))) "blind cell" [ (4, 2) ]
    (Performance_map.blind_cells m)

let test_capable_fraction () =
  let m = diagonal_map () in
  Alcotest.(check (float 1e-9)) "fraction" 0.75
    (Performance_map.capable_fraction m)

let test_fold_visits_all () =
  let m = diagonal_map () in
  let count =
    Performance_map.fold m ~init:0 ~f:(fun acc ~anomaly_size:_ ~window:_ _ ->
        acc + 1)
  in
  Alcotest.(check int) "visits each cell" 12 count

let test_build_validates_ranges () =
  Alcotest.check_raises "descending"
    (Invalid_argument "Performance_map: range not ascending") (fun () ->
      ignore
        (Performance_map.build ~detector:"x" ~anomaly_sizes:[ 3; 2 ]
           ~windows:[ 2 ] ~f:(fun ~anomaly_size:_ ~window:_ -> Outcome.Blind)));
  Alcotest.check_raises "empty"
    (Invalid_argument "Performance_map: empty range") (fun () ->
      ignore
        (Performance_map.build ~detector:"x" ~anomaly_sizes:[] ~windows:[ 2 ]
           ~f:(fun ~anomaly_size:_ ~window:_ -> Outcome.Blind)))

let test_outcome_out_of_range () =
  let m = diagonal_map () in
  Alcotest.check_raises "unknown cell" Not_found (fun () ->
      ignore (Performance_map.outcome m ~anomaly_size:99 ~window:2))

let test_f_receives_correct_cells () =
  let seen = ref [] in
  let _ =
    Performance_map.build ~detector:"x" ~anomaly_sizes:[ 1; 2 ]
      ~windows:[ 5; 6 ] ~f:(fun ~anomaly_size ~window ->
        seen := (anomaly_size, window) :: !seen;
        Outcome.Blind)
  in
  Alcotest.(check (list (pair int int))) "all cells visited"
    [ (1, 5); (1, 6); (2, 5); (2, 6) ]
    (List.sort compare !seen)

let () =
  Alcotest.run "performance_map"
    [
      ( "performance_map",
        [
          Alcotest.test_case "metadata" `Quick test_metadata;
          Alcotest.test_case "lookup" `Quick test_outcome_lookup;
          Alcotest.test_case "cell lists" `Quick test_cell_lists;
          Alcotest.test_case "capable fraction" `Quick test_capable_fraction;
          Alcotest.test_case "fold" `Quick test_fold_visits_all;
          Alcotest.test_case "range validation" `Quick test_build_validates_ranges;
          Alcotest.test_case "out of range" `Quick test_outcome_out_of_range;
          Alcotest.test_case "build visits cells" `Quick test_f_receives_correct_cells;
        ] );
    ]
