(* Generic contract every registered detector must satisfy — run over
   the full extended roster so that adding a detector automatically
   subjects it to the same obligations. *)

open Seqdiv_stream
open Seqdiv_synth
open Seqdiv_detectors
open Seqdiv_test_support

let window = 4

let training = lazy (tiny_suite ()).Suite.training

let probe = lazy (
  let suite = tiny_suite () in
  let s = Suite.stream suite ~anomaly_size:4 ~window in
  s.Suite.injection.Injector.trace)

let with_detector f (module D : Detector.S) () =
  f (module D : Detector.S)

let contract_scores_in_range (module D : Detector.S) =
  let model = D.train ~window (Lazy.force training) in
  let r = D.score model (Lazy.force probe) in
  Array.iter
    (fun (i : Response.item) ->
      if i.Response.score < 0.0 || i.Response.score > 1.0 then
        Alcotest.fail (D.name ^ ": score out of [0,1]"))
    r.Response.items

let contract_item_alignment (module D : Detector.S) =
  let model = D.train ~window (Lazy.force training) in
  let r = D.score model (Lazy.force probe) in
  let expected = Trace.window_count (Lazy.force probe) ~width:window in
  Alcotest.(check int) (D.name ^ ": one item per window") expected
    (Response.length r);
  Array.iteri
    (fun idx (i : Response.item) ->
      Alcotest.(check int) (D.name ^ ": consecutive starts") idx
        i.Response.start;
      Alcotest.(check int) (D.name ^ ": cover = window") window
        i.Response.cover)
    r.Response.items

let contract_score_range_consistent (module D : Detector.S) =
  let model = D.train ~window (Lazy.force training) in
  let full = D.score model (Lazy.force probe) in
  let slice = D.score_range model (Lazy.force probe) ~lo:10 ~hi:20 in
  Alcotest.(check int) (D.name ^ ": slice size") 11 (Response.length slice);
  Array.iteri
    (fun idx (i : Response.item) ->
      let counterpart = full.Response.items.(10 + idx) in
      if i.Response.score <> counterpart.Response.score then
        Alcotest.fail (D.name ^ ": slice disagrees with full scoring"))
    slice.Response.items

let contract_training_deterministic (module D : Detector.S) =
  let m1 = D.train ~window (Lazy.force training) in
  let m2 = D.train ~window (Lazy.force training) in
  let r1 = D.score_range m1 (Lazy.force probe) ~lo:0 ~hi:50 in
  let r2 = D.score_range m2 (Lazy.force probe) ~lo:0 ~hi:50 in
  Array.iteri
    (fun idx (i : Response.item) ->
      if i.Response.score <> r2.Response.items.(idx).Response.score then
        Alcotest.fail (D.name ^ ": retraining changed responses"))
    r1.Response.items

let contract_window_recorded (module D : Detector.S) =
  let model = D.train ~window (Lazy.force training) in
  Alcotest.(check int) (D.name ^ ": window") window (D.window model);
  let r = D.score_range model (Lazy.force probe) ~lo:0 ~hi:0 in
  Alcotest.(check int) (D.name ^ ": response window") window r.Response.window;
  Alcotest.(check string) (D.name ^ ": response label") D.name
    r.Response.detector

let contract_epsilon_sane (module D : Detector.S) =
  Alcotest.(check bool) (D.name ^ ": epsilon in [0,1)") true
    (D.maximal_epsilon >= 0.0 && D.maximal_epsilon < 1.0)

let contract_capable_when_spanning (module D : Detector.S) =
  (* Every detector except L&B must register a maximal response when the
     window spans the whole foreign sequence; L&B must not (the paper's
     Fig. 3 vs Figs. 4-6). *)
  let suite = tiny_suite () in
  let model = D.train ~window:6 suite.Suite.training in
  let s = Suite.stream suite ~anomaly_size:4 ~window:6 in
  let inj = s.Suite.injection in
  let lo, hi =
    Injector.incident_span ~position:inj.Injector.position ~size:4 ~width:6
  in
  let r = D.score_range model inj.Injector.trace ~lo ~hi in
  let capable = Response.max_score r >= 1.0 -. D.maximal_epsilon in
  Alcotest.(check bool)
    (D.name ^ ": capable iff not lnb")
    (D.name <> "lnb") capable

let cases =
  List.concat_map
    (fun (module D : Detector.S) ->
      let case name f =
        Alcotest.test_case
          (Printf.sprintf "%s: %s" D.name name)
          `Quick
          (with_detector f (module D))
      in
      [
        case "scores in range" contract_scores_in_range;
        case "item alignment" contract_item_alignment;
        case "score_range consistent" contract_score_range_consistent;
        case "training deterministic" contract_training_deterministic;
        case "window recorded" contract_window_recorded;
        case "epsilon sane" contract_epsilon_sane;
        case "capable when spanning" contract_capable_when_spanning;
      ])
    Registry.extended

let test_registry_names_unique () =
  let names = Registry.names in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  List.iter
    (fun name ->
      match Registry.find name with
      | Some (module D : Detector.S) ->
          Alcotest.(check string) "find returns named detector" name D.name
      | None -> Alcotest.fail ("missing " ^ name))
    Registry.names;
  Alcotest.(check bool) "unknown name" true (Registry.find "nope" = None);
  Alcotest.check_raises "find_exn message"
    (Invalid_argument
       "unknown detector \"nope\" (expected one of: markov, lnb, nn, stide, \
        tstide, hmm)") (fun () -> ignore (Registry.find_exn "nope"))

let test_paper_roster () =
  Alcotest.(check int) "four studied detectors" 4 (List.length Registry.all);
  Alcotest.(check int) "six in the extended roster" 6
    (List.length Registry.extended)

let () =
  Alcotest.run "detector_contract"
    [
      ("contract", cases);
      ( "registry",
        [
          Alcotest.test_case "names unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "paper roster" `Quick test_paper_roster;
        ] );
    ]
