open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_test_support

let response scores =
  Response.make ~detector:"x" ~window:2
    (Array.of_list
       (List.mapi
          (fun i s -> { Response.start = i; cover = 2; score = s })
          scores))

let test_sweep_basic () =
  let clean = response [ 0.0; 0.2; 0.9; 0.1 ] in
  let spans = [ response [ 1.0 ]; response [ 0.5 ] ] in
  let points = Roc.sweep ~clean ~spans ~thresholds:[ 0.4; 0.95 ] in
  (match points with
  | [ p1; p2 ] ->
      check_float "hit rate at 0.4" ~epsilon:1e-9 1.0 p1.Roc.hit_rate;
      check_float "fa rate at 0.4 (0.9 only)" ~epsilon:1e-9 0.25 p1.Roc.fa_rate;
      check_float "hit rate at 0.95" ~epsilon:1e-9 0.5 p2.Roc.hit_rate;
      check_float "fa rate at 0.95" ~epsilon:1e-9 0.0 p2.Roc.fa_rate
  | _ -> Alcotest.fail "expected two points")

let test_sweep_requires_spans () =
  Alcotest.check_raises "no spans" (Invalid_argument "Roc.sweep: no spans")
    (fun () ->
      ignore (Roc.sweep ~clean:(response []) ~spans:[] ~thresholds:[ 0.5 ]))

let test_default_thresholds () =
  Alcotest.(check int) "grid size" 101 (List.length Roc.default_thresholds);
  check_float "first" ~epsilon:0.0 0.0 (List.hd Roc.default_thresholds);
  check_float "last" ~epsilon:1e-9 1.0
    (List.nth Roc.default_thresholds 100)

let test_auc_perfect () =
  (* A perfect detector: full hit rate at zero FA rate. *)
  let points =
    [ { Roc.threshold = 0.9; hit_rate = 1.0; fa_rate = 0.0 } ]
  in
  check_float "perfect auc" ~epsilon:1e-9 1.0 (Roc.auc points)

let test_auc_useless () =
  (* hit rate equals fa rate everywhere: diagonal, AUC 1/2. *)
  let points =
    List.map
      (fun x ->
        { Roc.threshold = x; hit_rate = x; fa_rate = x })
      [ 0.25; 0.5; 0.75 ]
  in
  check_float "diagonal auc" ~epsilon:1e-9 0.5 (Roc.auc points)

let test_auc_empty_uses_anchors () =
  check_float "anchors only" ~epsilon:1e-9 0.5 (Roc.auc [])

let test_sweep_on_suite () =
  (* End-to-end: the Markov detector on the small suite — high hit rate
     at every threshold, small FA rate at high thresholds. *)
  let suite = small_suite () in
  let window = 6 in
  let markov =
    Trained.train (Seqdiv_detectors.Registry.find_exn "markov") ~window
      suite.Seqdiv_synth.Suite.training
  in
  let deploy = Deployment.deployment_stream suite ~len:10_000 ~seed:4 in
  let clean = Trained.score markov deploy in
  let spans =
    List.map
      (fun anomaly_size ->
        let t = Seqdiv_synth.Suite.stream suite ~anomaly_size ~window in
        Scoring.incident_response markov t.Seqdiv_synth.Suite.injection)
      [ 2; 5; 9 ]
  in
  let points = Roc.sweep ~clean ~spans ~thresholds:[ 0.5; 0.995 ] in
  List.iter
    (fun p ->
      check_float "all spans hit" ~epsilon:1e-9 1.0 p.Roc.hit_rate;
      Alcotest.(check bool) "fa rate below 5%" true (p.Roc.fa_rate < 0.05))
    points

let prop_fa_rate_monotone =
  qcheck ~count:50 "fa rate non-increasing in threshold"
    QCheck.(small_list (float_bound_inclusive 1.0))
    (fun scores ->
      let clean = response scores in
      let spans = [ response [ 1.0 ] ] in
      match
        Roc.sweep ~clean ~spans ~thresholds:[ 0.1; 0.5; 0.9 ]
      with
      | [ a; b; c ] -> a.Roc.fa_rate >= b.Roc.fa_rate && b.Roc.fa_rate >= c.Roc.fa_rate
      | _ -> false)

let () =
  Alcotest.run "roc"
    [
      ( "roc",
        [
          Alcotest.test_case "sweep basic" `Quick test_sweep_basic;
          Alcotest.test_case "requires spans" `Quick test_sweep_requires_spans;
          Alcotest.test_case "default thresholds" `Quick test_default_thresholds;
          Alcotest.test_case "auc perfect" `Quick test_auc_perfect;
          Alcotest.test_case "auc diagonal" `Quick test_auc_useless;
          Alcotest.test_case "auc anchors" `Quick test_auc_empty_uses_anchors;
          Alcotest.test_case "sweep on suite" `Quick test_sweep_on_suite;
          prop_fa_rate_monotone;
        ] );
    ]
