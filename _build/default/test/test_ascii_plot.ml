open Seqdiv_report

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_render_basic () =
  let s =
    Ascii_plot.render ~width:20 ~height:6
      [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ]
  in
  Alcotest.(check bool) "has points" true (contains s "*");
  Alcotest.(check bool) "y max annotated" true (contains s "4");
  Alcotest.(check int) "expected line count" 9 (List.length (lines s))

let test_render_single_point () =
  (* Degenerate bounds must not crash. *)
  let s = Ascii_plot.render ~width:10 ~height:4 [ (5.0, 5.0) ] in
  Alcotest.(check bool) "renders" true (contains s "*")

let test_render_constant_y () =
  let s = Ascii_plot.render ~width:10 ~height:4 [ (0.0, 2.0); (9.0, 2.0) ] in
  Alcotest.(check bool) "renders" true (contains s "*")

let test_extremes_land_on_grid () =
  let s =
    Ascii_plot.render ~width:12 ~height:5 [ (0.0, 0.0); (10.0, 10.0) ]
  in
  let star_count =
    String.fold_left (fun acc c -> if c = '*' then acc + 1 else acc) 0 s
  in
  Alcotest.(check int) "both extremes plotted" 2 star_count

let test_labels () =
  let s =
    Ascii_plot.render ~width:10 ~height:4 ~x_label:"window" ~y_label:"rate"
      [ (1.0, 2.0); (2.0, 3.0) ]
  in
  Alcotest.(check bool) "x label" true (contains s "x: window");
  Alcotest.(check bool) "y label" true (contains s "y: rate")

let test_series_marks_and_legend () =
  let s =
    Ascii_plot.render_series ~width:20 ~height:6
      [
        ("coverage", [ (0.0, 0.0); (1.0, 1.0) ]);
        ("false alarms", [ (0.0, 1.0); (1.0, 0.0) ]);
      ]
  in
  Alcotest.(check bool) "legend a" true (contains s "a=coverage");
  Alcotest.(check bool) "legend b" true (contains s "b=false alarms");
  Alcotest.(check bool) "marks a" true (contains s "a");
  Alcotest.(check bool) "marks b" true (contains s "b")

let test_series_overwrite () =
  (* Two series on the same point: the later mark wins. *)
  let s =
    Ascii_plot.render_series ~width:10 ~height:4
      [ ("first", [ (0.0, 0.0); (1.0, 1.0) ]); ("second", [ (1.0, 1.0) ]) ]
  in
  Alcotest.(check bool) "second visible" true (contains s "b")

let () =
  Alcotest.run "ascii_plot"
    [
      ( "ascii_plot",
        [
          Alcotest.test_case "basic" `Quick test_render_basic;
          Alcotest.test_case "single point" `Quick test_render_single_point;
          Alcotest.test_case "constant y" `Quick test_render_constant_y;
          Alcotest.test_case "extremes" `Quick test_extremes_land_on_grid;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "series legend" `Quick test_series_marks_and_legend;
          Alcotest.test_case "series overwrite" `Quick test_series_overwrite;
        ] );
    ]
