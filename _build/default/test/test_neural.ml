open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_test_support

let fast_params = { Neural.default_params with Neural.epochs = 120 }

(* A small but structured training trace: the cycle with one rare
   deviation, so the network has both a dominant and a rare
   continuation to learn. *)
let structured_trace () =
  let symbols =
    List.concat
      (List.init 80 (fun i ->
           if i = 40 then [ 0; 1; 2; 4 ] else [ 0; 1; 2; 3 ]))
  in
  Trace.of_list (Alphabet.make 5) symbols

let test_predict_is_distribution () =
  let model = Neural.train_with fast_params ~window:2 (structured_trace ()) in
  let probs = Neural.predict model [| 0 |] in
  Alcotest.(check int) "size" 5 (Array.length probs);
  let total = Array.fold_left ( +. ) 0.0 probs in
  check_float "sums to 1" ~epsilon:1e-6 1.0 total;
  Array.iter (fun p -> if p < 0.0 then Alcotest.fail "negative prob") probs

let test_learns_dominant_transition () =
  let model = Neural.train_with fast_params ~window:2 (structured_trace ()) in
  let probs = Neural.predict model [| 0 |] in
  Alcotest.(check bool) "p(1|0) dominant" true (probs.(1) > 0.9)

let test_deterministic_in_seed () =
  let t = structured_trace () in
  let m1 = Neural.train_with fast_params ~window:2 t in
  let m2 = Neural.train_with fast_params ~window:2 t in
  let p1 = Neural.predict m1 [| 2 |] and p2 = Neural.predict m2 [| 2 |] in
  Alcotest.(check (array (float 0.0))) "same weights" p1 p2

let test_seed_changes_model () =
  let t = structured_trace () in
  let m1 = Neural.train_with fast_params ~window:2 t in
  let m2 =
    Neural.train_with { fast_params with Neural.seed = 7 } ~window:2 t
  in
  Alcotest.(check bool) "different predictions" false
    (Neural.predict m1 [| 2 |] = Neural.predict m2 [| 2 |])

let test_training_reduces_loss () =
  let t = structured_trace () in
  let untrained = Neural.train_with { fast_params with Neural.epochs = 1 } ~window:2 t in
  let trained = Neural.train_with fast_params ~window:2 t in
  Alcotest.(check bool)
    (Printf.sprintf "loss shrinks (%.4f -> %.4f)" (Neural.training_loss untrained)
       (Neural.training_loss trained))
    true
    (Neural.training_loss trained < Neural.training_loss untrained)

let test_scores_in_range () =
  let t = structured_trace () in
  let model = Neural.train_with fast_params ~window:3 t in
  let r = Neural.score model t in
  Array.iter
    (fun (i : Response.item) ->
      if i.Response.score < 0.0 || i.Response.score > 1.0 then
        Alcotest.fail "score out of range";
      Alcotest.(check int) "cover" 3 i.Response.cover)
    r.Response.items

let test_rare_transition_scores_high () =
  let t = structured_trace () in
  let model = Neural.train_with fast_params ~window:2 t in
  (* window (2,4): the rare deviation *)
  let r = Neural.score model (Trace.of_list (Alphabet.make 5) [ 2; 4 ]) in
  Alcotest.(check bool) "rare continuation anomalous" true
    (Response.max_score r > 0.8);
  (* window (2,3): the common continuation *)
  let r2 = Neural.score model (Trace.of_list (Alphabet.make 5) [ 2; 3 ]) in
  Alcotest.(check bool) "common continuation normal" true
    (Response.max_score r2 < 0.2)

let test_params_recorded () =
  let t = structured_trace () in
  let model = Neural.train_with fast_params ~window:2 t in
  Alcotest.(check int) "epochs" fast_params.Neural.epochs
    (Neural.params model).Neural.epochs;
  Alcotest.(check int) "window" 2 (Neural.window model)

let test_rejects_short_trace () =
  Alcotest.check_raises "short"
    (Invalid_argument "Neural.train: trace shorter than window") (fun () ->
      ignore (Neural.train ~window:5 (trace8 [ 0; 1 ])))

let test_mimics_markov_on_suite () =
  (* The paper's Section 7 conclusion: the NN approximates the Markov
     detector.  On one suite cell both should be capable. *)
  let suite = tiny_suite () in
  let training = suite.Seqdiv_synth.Suite.training in
  let window = 4 in
  let nn =
    Neural.train_with { Neural.default_params with Neural.epochs = 250 }
      ~window training
  in
  let s = Seqdiv_synth.Suite.stream suite ~anomaly_size:6 ~window in
  let inj = s.Seqdiv_synth.Suite.injection in
  let lo, hi =
    Seqdiv_synth.Injector.incident_span
      ~position:inj.Seqdiv_synth.Injector.position ~size:6 ~width:window
  in
  let r = Neural.score_range nn inj.Seqdiv_synth.Injector.trace ~lo ~hi in
  Alcotest.(check bool) "capable below the diagonal" true
    (Response.max_score r >= 1.0 -. Neural.maximal_epsilon)

let () =
  Alcotest.run "neural"
    [
      ( "neural",
        [
          Alcotest.test_case "predict distribution" `Quick test_predict_is_distribution;
          Alcotest.test_case "learns dominant" `Quick test_learns_dominant_transition;
          Alcotest.test_case "deterministic" `Quick test_deterministic_in_seed;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_model;
          Alcotest.test_case "loss decreases" `Quick test_training_reduces_loss;
          Alcotest.test_case "scores in range" `Quick test_scores_in_range;
          Alcotest.test_case "rare transition" `Quick test_rare_transition_scores_high;
          Alcotest.test_case "params recorded" `Quick test_params_recorded;
          Alcotest.test_case "rejects short" `Quick test_rejects_short_trace;
          Alcotest.test_case "mimics markov" `Quick test_mimics_markov_on_suite;
        ] );
    ]
