(** Multi-length n-gram index over a training trace.

    One shared {!Seq_trie} indexes every n-gram of the trace for every
    length [1 .. max_len] in a single scan; the per-length {!Seq_db.t}
    views are width slices of that trie (the pre-trie implementation
    re-scanned the trace once per length).  The anomaly synthesiser
    needs to ask, for arbitrary candidate sequences, whether every
    proper sub-sequence exists in the training data (minimality) while
    the full sequence does not (foreignness); this index answers those
    queries in O(length). *)

type t

val build : max_len:int -> Trace.t -> t
(** Index every n-gram of the trace for n in [1 .. max_len] in one
    pass.  Requires [max_len >= 1]. *)

val max_len : t -> int

val trie : t -> Seq_trie.t
(** The shared backing trie (e.g. to hand to detectors trained on the
    same trace). *)

val db : t -> int -> Seq_db.t
(** The per-length database view.  Requires [1 <= n <= max_len]. *)

val mem : t -> string -> bool
(** Whether a key of any indexed length occurs in the trace.
    Requires [1 <= String.length key <= max_len]. *)

val count : t -> string -> int
(** Occurrence count of a key of any indexed length. *)

val freq : t -> string -> float
(** Relative frequency among same-length windows. *)

val is_foreign : t -> string -> bool
(** The key never occurs. *)

val is_rare : t -> threshold:float -> string -> bool
(** Occurs, with relative frequency strictly below [threshold]. *)

val mem_at : t -> int array -> pos:int -> len:int -> bool
(** Allocation-free {!mem} over a raw trace slice.  Requires the slice
    in bounds and [1 <= len <= max_len]. *)

val is_foreign_at : t -> int array -> pos:int -> len:int -> bool
(** Allocation-free {!is_foreign} over a raw trace slice. *)

val is_rare_at : t -> threshold:float -> int array -> pos:int -> len:int -> bool
(** Allocation-free {!is_rare} over a raw trace slice. *)

val is_minimal_foreign : t -> string -> bool
(** [is_minimal_foreign t k] holds when [k] (length ≥ 2, within
    [max_len]) is foreign while both of its (length−1)-sub-sequences
    occur — which implies every shorter contiguous sub-sequence occurs
    as well, i.e. [k] is a minimal foreign sequence in the sense of the
    paper. *)
