(** Adapter for UNM-style system-call traces.

    The public "sense of self" datasets (University of New Mexico) store
    process traces as whitespace-separated [pid syscall-number] pairs,
    one event per line, with the events of different processes
    interleaved.  This module parses that format into a {!Sessions.t}
    (one session per process, events in arrival order) and renders it
    back.

    System-call numbers are sparse and platform-specific, so they are
    compacted into a dense alphabet: symbol [i] stands for the [i]-th
    distinct call number encountered.  The mapping back to original
    numbers is returned alongside. *)

type mapping = int array
(** [mapping.(symbol)] is the original system-call number. *)

val parse : string -> Sessions.t * mapping
(** Parse the pid/syscall text format.
    @raise Parse_error.Error on a malformed line, a negative number, or
    more than 255 distinct call numbers (the alphabet limit). *)

val parse_file : string -> Sessions.t * mapping
(** {!parse} on a file's contents. *)

val render : Sessions.t -> mapping -> string
(** Inverse of {!parse}: one [pid syscall-number] pair per line, pids
    numbered from 1 in session order.  [parse (render s m)] yields
    sessions with the same call-number sequences as [s]. *)

val syscall_name : mapping -> int -> int
(** The original call number of a symbol.  Requires a valid symbol. *)
