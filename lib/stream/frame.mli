(** Wire framing for the serve layer.

    A pure codec — no sockets, no side effects — for the two formats a
    [seqdiv serve] connection may speak:

    - {e binary}: each frame is a magic byte, a little-endian [u32]
      payload length, and the payload; symbols travel as raw bytes (one
      per symbol, codes 0..254).  Compact and allocation-light — the
      load generator's format.
    - {e ndjson}: one JSON object per line.  Self-describing and
      greppable — the debugging format.

    The format is sniffed from the first byte a connection sends (JSON
    objects start with ['{'], binary frames with {!binary_magic}), so a
    server needs no negotiation step.  Requests flow client-to-server,
    responses server-to-client; both directions use the same framing.

    Malformed input raises {!Parse_error.Error} naming the offending
    datum, never an anonymous [Failure]. *)

(** {1 Protocol types} *)

type event =
  | Data of { session : int; symbols : int array }
      (** symbols (codes 0..254) appended to one session's stream *)
  | End_of_session of { session : int }
      (** the session's stream is complete: flush and drop its monitor *)

type incident = {
  first_start : int;
  last_start : int;
  cover_from : int;
  cover_to : int;
  alarms : int;
  peak_score : float;
}
(** Structurally identical to [Seqdiv_core.Incident.t], restated here
    because the stream layer sits below core. *)

type incident_event =
  | Opened of { session : int; position : int }
  | Closed of { session : int; incident : incident }

type shard_stats = {
  shard : int;
  sessions_resident : int;
  events : int;  (** events applied since start *)
  symbols : int;  (** symbols applied since start *)
  batches : int;  (** sub-batches applied since start *)
  rejected : int;  (** sub-batches refused by backpressure *)
  queue_depth : int;  (** sub-batches waiting at sampling time *)
  bytes_resident : int;  (** estimated session-table heap bytes *)
  busy_ns : int;  (** cumulative sub-batch service time *)
  p50_batch_ns : int;  (** median recent sub-batch service time *)
  p99_batch_ns : int;  (** 99th-percentile recent service time *)
  restarts : int;  (** supervisor restarts of this shard's domain *)
  degraded : bool;  (** the shard took a fatal fault and serves [Failed] *)
  retry_after_ms : int;  (** current adaptive backpressure hint *)
  windows : int;  (** completed windows judged (departed + resident) *)
  alarms : int;  (** windows that alarmed *)
  threshold : float;
      (** published alarm threshold: the configured constant, or the max
          over resident adaptive controllers (wire-encoded as exact
          bits, so stats roundtrip losslessly) *)
}

type shard_health = {
  h_shard : int;
  h_alive : bool;  (** the shard domain is running (or restartable) *)
  h_degraded : bool;  (** fatal fault: batches answered [Failed] *)
  h_restarts : int;
  h_queue_depth : int;
  h_retry_after_ms : int;
  h_windows : int;  (** completed windows judged by the shard *)
  h_alarms : int;  (** windows that alarmed — observed alarm rate is
                       [h_alarms /. h_windows] *)
  h_threshold : float;  (** published alarm threshold (exact bits on
                            the wire) *)
}
(** One shard's row in a {!health} readiness report. *)

type health = {
  shards_health : shard_health list;
  connections : int;  (** live client connections *)
  evictions : int;  (** slow clients evicted since start *)
  draining : bool;  (** a drain handshake is in progress *)
}

type request =
  | Batch of { id : int; events : event list }
      (** [id] correlates the acks; a batch must carry at least one
          event (enforced by the codec in both directions) *)
  | Stats_request
  | Health_request  (** readiness probe: answered with {!Health} *)
  | Drain_request
      (** orderly stop-intake handshake: the server rejects new batches,
          finishes queued work, then answers [Drained] *)
  | Quit  (** orderly shutdown of the whole server *)

type response =
  | Ack of {
      id : int;
      shard : int;
      events : int;  (** events of the batch this shard applied *)
      incidents : incident_event list;
    }
      (** One [Ack] arrives {e per shard} the batch touched, after that
          shard has applied (and, when journalling, fsynced) its slice.
          A client knows the batch is done when the acked event counts
          sum to the batch size. *)
  | Rejected of { id : int; retry_after_ms : int }
      (** Backpressure: some touched shard's queue was full.  No part
          of the batch was enqueued; resend the whole batch after the
          hinted delay. *)
  | Failed of { id : int; shard : int; events : int; reason : string }
      (** The shard failed applying this batch's slice of [events]
          events (e.g. its per-batch deadline fired, or the shard is
          degraded); session state may have partially advanced.  Like
          [Ack], one [Failed] covers only the named shard's slice —
          other shards' acks for the same batch remain valid. *)
  | Stats of shard_stats list
  | Health of health  (** answer to {!Health_request} *)
  | Drained of { batches : int }
      (** answer to {!Drain_request} once all queues are empty;
          [batches] counts sub-batches applied since start *)
  | Error_msg of string  (** protocol-level failure; connection closes *)

(** {1 Session sharding} *)

val shard_of_session : shards:int -> int -> int
(** The shard owning a session id: a mixed 64-bit hash reduced mod
    [shards].  Deterministic across runs and processes — the routing
    half of the determinism contract.
    @raise Invalid_argument if [shards <= 0]. *)

(** {1 Encoding} *)

type encoding = Binary | Ndjson

val binary_magic : char
(** First byte of every binary frame (also the sniff byte). *)

val write_request : Buffer.t -> encoding -> request -> unit
val write_response : Buffer.t -> encoding -> response -> unit
(** Append one complete frame.
    @raise Invalid_argument on values the format cannot carry (symbol
    codes outside 0..254, an empty batch, negative ids). *)

(** {1 Incremental decoding} *)

type reader
(** Per-connection decode state: buffers raw bytes, sniffs the
    encoding from the first byte, and yields complete frames. *)

val reader : unit -> reader

val reader_encoding : reader -> encoding option
(** The sniffed encoding; [None] until the first byte arrives. *)

val feed_bytes : reader -> bytes -> pos:int -> len:int -> unit
(** Append a chunk read from the connection. *)

val next_request : reader -> request option
val next_response : reader -> response option
(** Decode the next complete frame, or [None] when more bytes are
    needed.  A reader is used for one direction only.
    @raise Parse_error.Error on malformed input (bad magic, oversized
    frame, unknown tag, symbol out of range, empty batch, trailing
    payload bytes). *)

(** {1 Incident-log rendering} *)

val render_incident_event : incident_event -> string
(** One deterministic line per event ([peak_score] rendered as exact
    bits), so incident logs can be compared byte-for-byte across runs,
    shard counts, and kill/resume cycles. *)

val render_health : health -> string
(** Multi-line human-readable readiness report (one header line plus
    one line per shard), for CLI health probes. *)
