let to_string t =
  let buf = Buffer.create (Trace.length t * 3) in
  Buffer.add_string buf
    (Printf.sprintf "#alphabet %d\n" (Alphabet.size (Trace.alphabet t)));
  for i = 0 to Trace.length t - 1 do
    Buffer.add_string buf (string_of_int (Trace.get t i));
    if (i + 1) mod 16 = 0 then Buffer.add_char buf '\n'
    else Buffer.add_char buf ' '
  done;
  if Trace.length t mod 16 <> 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | [] -> Parse_error.fail "Trace_io.of_string: empty input"
  | header :: rest ->
      let size =
        try Scanf.sscanf header "#alphabet %d" (fun n -> n)
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          Parse_error.fail "Trace_io.of_string: malformed header"
      in
      if size < 1 || size > 255 then
        Parse_error.fail "Trace_io.of_string: alphabet size out of range";
      let alphabet = Alphabet.make size in
      let symbols =
        rest
        |> List.concat_map (fun line ->
               String.split_on_char ' ' line
               |> List.filter (fun tok -> tok <> ""))
        |> List.map (fun tok ->
               match int_of_string_opt tok with
               | Some v -> v
               | None -> Parse_error.fail "Trace_io.of_string: bad token %S" tok)
      in
      (try Trace.of_list alphabet symbols
       with Invalid_argument msg ->
         Parse_error.fail "Trace_io.of_string: %s" msg)

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)
