(** Finite alphabets of categorical events.

    A symbol is an integer in [0 .. size-1].  Symbols may carry display
    names (e.g. system-call names) used only for printing; all detector
    and generator logic works on the integer codes. *)

type t

val make : int -> t
(** [make n] is an alphabet of [n] symbols named ["s0" .. "s(n-1)"].
    Requires [n >= 1].  Alphabets beyond 256 symbols are fully served by
    the trie-backed data layer; only the byte-packed {!Trace.key}
    encoding is then unavailable. *)

val of_names : string array -> t
(** Alphabet whose symbol [i] displays as the [i]-th name.  Names must be
    distinct and non-empty. *)

val size : t -> int
(** Number of symbols. *)

val name : t -> int -> string
(** Display name of a symbol.  Requires a valid symbol. *)

val index : t -> string -> int
(** Inverse of {!name}.  @raise Not_found if no symbol has that name. *)

val mem : t -> int -> bool
(** Whether an integer is a valid symbol of this alphabet. *)

val symbols : t -> int array
(** All symbols, ascending: [\[|0; 1; ...; size-1|\]]. *)

val pp : Format.formatter -> t -> unit
(** Prints like [{size=8}]. *)
