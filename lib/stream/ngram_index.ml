type t = { trie : Seq_trie.t; dbs : Seq_db.t array }

let build ~max_len trace =
  assert (max_len >= 1);
  let trie = Seq_trie.of_trace ~max_len trace in
  let dbs = Array.init max_len (fun i -> Seq_db.of_trie trie ~width:(i + 1)) in
  { trie; dbs }

let max_len t = Seq_trie.max_len t.trie
let trie t = t.trie

let db t n =
  assert (n >= 1 && n <= max_len t);
  t.dbs.(n - 1)

let check_len t n = assert (n >= 1 && n <= max_len t)

let mem t k =
  check_len t (String.length k);
  Seq_trie.mem t.trie k

let count t k =
  check_len t (String.length k);
  Seq_trie.count t.trie k

let freq t k =
  check_len t (String.length k);
  Seq_trie.freq t.trie k

let is_foreign t k = not (mem t k)

let is_rare t ~threshold k =
  check_len t (String.length k);
  Seq_trie.is_rare t.trie ~threshold k

let mem_at t a ~pos ~len =
  check_len t len;
  Seq_trie.mem_at t.trie a ~pos ~len

let is_foreign_at t a ~pos ~len = not (mem_at t a ~pos ~len)

let is_rare_at t ~threshold a ~pos ~len =
  check_len t len;
  Seq_trie.is_rare_at t.trie ~threshold a ~pos ~len

let is_minimal_foreign t k =
  let n = String.length k in
  n >= 2 && n <= max_len t
  && is_foreign t k
  && mem t (String.sub k 0 (n - 1))
  && mem t (String.sub k 1 (n - 1))
