(** Event traces: immutable sequences of alphabet symbols.

    A trace is the unit of data every other component consumes: training
    streams, background streams and injected test streams are all traces
    over a shared {!Alphabet.t}. *)

type t

val of_array : Alphabet.t -> int array -> t
(** Copies the array.  Every element must be a valid symbol of the
    alphabet.  @raise Invalid_argument otherwise. *)

val of_list : Alphabet.t -> int list -> t
(** List version of {!of_array}. *)

val alphabet : t -> Alphabet.t
val length : t -> int

val get : t -> int -> int
(** Symbol at a position.  Requires [0 <= i < length]. *)

val sub : t -> pos:int -> len:int -> t
(** Contiguous sub-trace.  Requires the range to be in bounds. *)

val to_array : t -> int array
(** Fresh copy of the underlying symbols. *)

val raw : t -> int array
(** The underlying symbol array itself — the zero-copy window accessor
    of the scoring hot paths, where {!key}'s per-window string would
    dominate the allocation profile.  The array is {e borrowed}: the
    caller must never mutate it (traces are immutable; writing through
    this view would corrupt every structure sharing the trace). *)

val concat : t -> t -> t
(** Concatenation.  Requires physically-equal or equally-sized
    alphabets; the left alphabet is kept. *)

val insert : t -> pos:int -> t -> t
(** [insert base ~pos piece] splices [piece] in front of position [pos]
    of [base] (so [pos = length base] appends).  Same alphabet rules as
    {!concat}. *)

val equal : t -> t -> bool
(** Same length and same symbols (alphabets are not compared beyond
    size). *)

val iter_windows : t -> width:int -> (int -> unit) -> unit
(** [iter_windows t ~width f] calls [f start] for every window start
    [0 .. length t - width].  Does nothing when the trace is shorter than
    [width].  Requires [width > 0]. *)

val window_count : t -> width:int -> int
(** Number of [width]-windows: [max 0 (length - width + 1)]. *)

val key : t -> pos:int -> len:int -> string
(** Compact byte-string encoding of a window, suitable as a hash key.
    Two windows have equal keys iff they contain the same symbols in the
    same order.  Requires the range to be in bounds, [len > 0], and
    every symbol in the window below 256 (one byte per symbol) — the
    trie cursor API has no such ceiling.  @raise Invalid_argument on a
    symbol 256 or larger. *)

val key_of_symbols : int array -> string
(** {!key} for a free-standing symbol array (used when testing candidate
    anomalies that are not yet part of any trace). *)

val symbols_of_key : string -> int array
(** Inverse of {!key_of_symbols}. *)

val pp : Format.formatter -> t -> unit
(** Prints symbol names separated by spaces; long traces are elided. *)
