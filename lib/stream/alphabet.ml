type t = { names : string array }

let validate names =
  let n = Array.length names in
  assert (n >= 1);
  let seen = Hashtbl.create n in
  Array.iter
    (fun s ->
      assert (s <> "");
      assert (not (Hashtbl.mem seen s));
      Hashtbl.add seen s ())
    names

let make n =
  assert (n >= 1);
  { names = Array.init n (fun i -> "s" ^ string_of_int i) }

let of_names names =
  validate names;
  { names = Array.copy names }

let size t = Array.length t.names

let name t i =
  assert (i >= 0 && i < size t);
  t.names.(i)

let index t s =
  let rec find i =
    if i >= size t then raise Not_found
    else if t.names.(i) = s then i
    else find (i + 1)
  in
  find 0

let mem t i = i >= 0 && i < size t

let symbols t = Array.init (size t) (fun i -> i)

let pp ppf t = Format.fprintf ppf "{size=%d}" (size t)
