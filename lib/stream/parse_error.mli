(** Dedicated exception for malformed external input.

    Every textual format the system reads (trace files, suite
    manifests, saved detector models, UNM syscall logs) raises
    {!Error} with a message naming the parser and the offending
    datum — never an anonymous [Failure] — so callers can distinguish
    "your input is bad" from a programming error and handle it without
    catching everything. *)

exception Error of string

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Error} with the formatted message. *)
