open Seqdiv_util

(* A depth-capped Aho-Corasick automaton over a counting trie.

   States are the trie nodes of depth <= depth, in breadth-first order
   (root = 0); the transition row of a state u resolves every symbol c:

     - to the child node, when u is shallower than the cap and the trie
       recorded u.c;
     - otherwise to delta(fail(u), c), where fail(u) is the longest
       proper suffix of u that is itself a trie path.

   Failure links exist only during compilation: BFS order guarantees
   that fail(u) — always strictly shallower than u — has a complete
   transition row by the time u (or a child of u) needs it, so the
   resolved table is built in one pass and the links are discarded.
   Stepping the compiled table maintains the invariant that the current
   state is the longest suffix of the fed stream that is a trie path
   (capped at [depth] symbols); a state of full depth therefore means
   exactly "the last [depth] symbols form a recorded window". *)

type table = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type score_table =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  alphabet_size : int;
  depth : int;
  states : int;
  trans : table;  (* states x alphabet_size, row-major *)
  depths : table;  (* per state: suffix length *)
  counts : table;  (* per state: trie occurrence count *)
  ctotals : table;  (* per state: trie continuation total *)
  parents : table;  (* per state: the state one symbol shorter *)
}

let depth t = t.depth
let alphabet_size t = t.alphabet_size
let states t = t.states
let start = 0

let int_table n : table =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

(* Count the trie nodes of depth <= limit: the state count of the
   automaton.  Explicit parameters (see the Seq_trie descent helpers)
   keep the recursion closure-free; the checkpoint keeps an armed
   deadline able to interrupt a compile of a huge trie. *)
let rec count_nodes trie node d limit k acc =
  Deadline.checkpoint ();
  if d = limit then acc
  else begin
    let total = ref acc in
    for c = 0 to k - 1 do
      match Seq_trie.child_node trie node c with
      | None -> ()
      | Some child -> total := count_nodes trie child (d + 1) limit k (!total + 1)
    done;
    !total
  end

let compile trie ~depth =
  if depth < 1 || depth > Seq_trie.max_len trie then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Flat_automaton.compile: depth out of range";
  let k = Seq_trie.alphabet_size trie in
  let root = Seq_trie.root trie in
  let states = count_nodes trie root 0 depth k 1 in
  let trans = int_table (states * k) in
  let depths = int_table states in
  let counts = int_table states in
  let ctotals = int_table states in
  let parents = int_table states in
  (* Failure links live only for the duration of this BFS. *)
  let fails = Array.make states 0 in
  let queue = Queue.create () in
  let next_id = ref 1 in
  Bigarray.Array1.set depths 0 0;
  Bigarray.Array1.set counts 0 (Seq_trie.occurrences root);
  Bigarray.Array1.set ctotals 0 (Seq_trie.context_total root);
  Bigarray.Array1.set parents 0 0;
  Queue.add (root, 0) queue;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    incr processed;
    if !processed land 1023 = 0 then Deadline.checkpoint ();
    let node, u = Queue.pop queue in
    let du = Bigarray.Array1.get depths u in
    let fu = fails.(u) in
    let row = u * k in
    for c = 0 to k - 1 do
      let child =
        if du < depth then Seq_trie.child_node trie node c else None
      in
      match child with
      | Some ch ->
          let v = !next_id in
          incr next_id;
          Bigarray.Array1.set trans (row + c) v;
          Bigarray.Array1.set depths v (du + 1);
          Bigarray.Array1.set counts v (Seq_trie.occurrences ch);
          Bigarray.Array1.set ctotals v (Seq_trie.context_total ch);
          Bigarray.Array1.set parents v u;
          (* fail(v) = delta(fail(u), c); the root's children fail back
             to the root itself. *)
          fails.(v) <-
            (if u = 0 then 0 else Bigarray.Array1.get trans ((fu * k) + c));
          Queue.add (ch, v) queue
      | None ->
          (* No child (or depth cap reached): resolve through the
             failure link, whose row — strictly shallower — is already
             complete. *)
          Bigarray.Array1.set trans (row + c)
            (if u = 0 then 0 else Bigarray.Array1.get trans ((fu * k) + c))
    done
  done;
  assert (!next_id = states);
  { alphabet_size = k; depth; states; trans; depths; counts; ctotals; parents }

(* The per-symbol hot path: one bounds check, one table read.  The
   [unsafe_get] is justified by construction ([compile]) or validation
   ([of_tables]): every stored transition target is a valid state, so a
   valid [state] input yields a valid output, inductively from
   [start]. *)
let step t state symbol =
  if symbol < 0 || symbol >= t.alphabet_size then 0
  else Bigarray.Array1.unsafe_get t.trans ((state * t.alphabet_size) + symbol)

let state_depth t state = Bigarray.Array1.get t.depths state
let state_count t state = Bigarray.Array1.get t.counts state
let state_context_total t state = Bigarray.Array1.get t.ctotals state
let state_parent t state = Bigarray.Array1.get t.parents state

(* --- scorers ------------------------------------------------------------ *)

type scorer = { auto : t; scores : score_table }

let make_scorer auto ~score =
  let scores =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout auto.states
  in
  for s = 0 to auto.states - 1 do
    if s land 1023 = 0 then Deadline.checkpoint ();
    Bigarray.Array1.set scores s (score s)
  done;
  { auto; scores }

let automaton scorer = scorer.auto

(* Safe for the same reason as [step]: [scores] has exactly [states]
   entries ([make_scorer] / [scorer_of_tables]). *)
let state_score scorer state = Bigarray.Array1.unsafe_get scorer.scores state
let score_table scorer = scorer.scores

(* --- reassembly from raw tables (the mmap-load path) -------------------- *)

let transitions t = t.trans
let depths t = t.depths
let counts t = t.counts
let context_totals t = t.ctotals
let parents t = t.parents

let of_tables ~alphabet_size ~depth ~transitions ~depths ~counts
    ~context_totals ~parents =
  let states = Bigarray.Array1.dim depths in
  let fail msg =
    (* lint: allow partiality — validating untrusted input *)
    invalid_arg ("Flat_automaton.of_tables: " ^ msg)
  in
  if alphabet_size < 1 then fail "alphabet_size";
  if depth < 1 then fail "depth";
  if states < 1 then fail "no states";
  if Bigarray.Array1.dim transitions <> states * alphabet_size then
    fail "transition table dimension";
  if
    Bigarray.Array1.dim counts <> states
    || Bigarray.Array1.dim context_totals <> states
    || Bigarray.Array1.dim parents <> states
  then fail "metadata table dimension";
  (* One full pass over the tables: afterwards every stored index is a
     valid state, which is what lets [step]/[state_score] skip bounds
     checks forever after. *)
  for i = 0 to (states * alphabet_size) - 1 do
    if i land 4095 = 0 then Deadline.checkpoint ();
    let target = Bigarray.Array1.get transitions i in
    if target < 0 || target >= states then fail "transition target out of range"
  done;
  for s = 0 to states - 1 do
    if s land 4095 = 0 then Deadline.checkpoint ();
    let d = Bigarray.Array1.get depths s in
    if d < 0 || d > depth then fail "state depth out of range";
    let p = Bigarray.Array1.get parents s in
    if p < 0 || p >= states then fail "parent out of range"
  done;
  {
    alphabet_size;
    depth;
    states;
    trans = transitions;
    depths;
    counts;
    ctotals = context_totals;
    parents;
  }

let scorer_of_tables auto scores =
  if Bigarray.Array1.dim scores <> auto.states then
    (* lint: allow partiality — validating untrusted input *)
    invalid_arg "Flat_automaton.scorer_of_tables: score table dimension";
  for s = 0 to auto.states - 1 do
    if s land 4095 = 0 then Deadline.checkpoint ();
    if not (Float.is_finite (Bigarray.Array1.get scores s)) then
      (* lint: allow partiality — validating untrusted input *)
      invalid_arg "Flat_automaton.scorer_of_tables: non-finite score"
  done;
  { auto; scores }
