(** Databases of fixed-length sequences with occurrence counts.

    This is the "normal database" every detector in the study trains
    from: the multiset of all [width]-windows observed in a training
    trace.  It also backs the rare/common/foreign classification of the
    data synthesiser: a sequence is {e foreign} when absent, {e rare}
    when its relative frequency is below a threshold, {e common}
    otherwise.

    A database is a width-slice view over a counting {!Seq_trie}.
    Standalone databases ({!create}, {!of_trace}) own their trie;
    {!of_trie} views one shared, deeper trie — the engine's
    train-once-serve-every-window layout, where all window widths of an
    experiment grid read the same structure.  The [*_at] cursor queries
    descend over raw trace arrays and build no string keys; the
    string-key functions remain as a compatibility shim for
    serialisation and tests (alphabets up to 256 symbols). *)

type t

val create : ?alphabet_size:int -> width:int -> unit -> t
(** Empty database of [width]-sequences backed by a private trie.
    Requires [width > 0].  [alphabet_size] defaults to 256 (every symbol
    a string key can carry); pass the real size to shrink the trie's
    child arrays or to admit symbols beyond 255. *)

val of_trie : Seq_trie.t -> width:int -> t
(** View of the [width]-slice of a shared trie.  Additions through the
    view write into the shared trie.  Requires
    [1 <= width <= Seq_trie.max_len trie]. *)

val width : t -> int
(** The fixed sequence length. *)

val trie : t -> Seq_trie.t
(** The backing trie (shared when the view came from {!of_trie}). *)

val add : t -> string -> unit
(** Record one occurrence of a window key (see {!Trace.key}).  The key
    length must equal [width]. *)

val add_many : t -> string -> count:int -> unit
(** Record [count] occurrences at once (used when deserialising a
    database).  Requires [count > 0]. *)

val of_trace : width:int -> Trace.t -> t
(** Database of every [width]-window of a trace. *)

val add_trace : t -> Trace.t -> unit
(** Record every [width]-window of another trace.  Crucially, windows
    never span from one trace into the next — the session-boundary rule
    of multi-trace training (e.g. per-process system-call traces). *)

val of_traces : width:int -> Trace.t list -> t
(** Database over a corpus of traces ({!add_trace} for each). *)

(** {1 Cursor queries — allocation-free lookups over raw trace arrays} *)

val mem_at : t -> int array -> pos:int -> bool
(** Whether the [width]-window starting at [pos] was ever observed.
    Requires the window in bounds. *)

val count_at : t -> int array -> pos:int -> int
(** Occurrences of the window at [pos] (0 when absent). *)

val freq_at : t -> int array -> pos:int -> float
(** Relative frequency of the window at [pos]. *)

val is_rare_at : t -> threshold:float -> int array -> pos:int -> bool
(** Present with relative frequency strictly below [threshold]. *)

(** {1 String-key queries (compatibility shim)} *)

val mem : t -> string -> bool
(** Whether a window key was ever observed. *)

val count : t -> string -> int
(** Occurrences of a window key (0 when absent). *)

val total : t -> int
(** Total number of recorded windows (with multiplicity). *)

val cardinal : t -> int
(** Number of distinct sequences. *)

val freq : t -> string -> float
(** Relative frequency: [count / total].  0 when the database is
    empty. *)

val is_foreign : t -> string -> bool
(** Absent from the database. *)

val is_rare : t -> threshold:float -> string -> bool
(** Present with relative frequency strictly below [threshold]. *)

val is_common : t -> threshold:float -> string -> bool
(** Present with relative frequency at least [threshold]. *)

(** {1 Traversal}

    All traversals run over one memoized materialisation of the
    bindings, built on first use and invalidated by additions — repeated
    traversals no longer re-walk (or re-sort) anything. *)

val iter : t -> (string -> int -> unit) -> unit
(** Iterate over distinct sequences and their counts, in ascending key
    order — traversal is deterministic, never hash order. *)

val fold : t -> init:'a -> f:('a -> string -> int -> 'a) -> 'a
(** Fold over distinct sequences and their counts, in ascending key
    order. *)

val keys : t -> string list
(** All distinct sequence keys, sorted ascending. *)

val rare_keys : t -> threshold:float -> string list
(** Distinct sequences that are rare at the given threshold. *)

val common_keys : t -> threshold:float -> string list
(** Distinct sequences that are common at the given threshold. *)
