(** Databases of fixed-length sequences with occurrence counts.

    This is the "normal database" every detector in the study trains
    from: the multiset of all [width]-windows observed in a training
    trace.  It also backs the rare/common/foreign classification of the
    data synthesiser: a sequence is {e foreign} when absent, {e rare}
    when its relative frequency is below a threshold, {e common}
    otherwise. *)

type t

val create : width:int -> t
(** Empty database of [width]-sequences.  Requires [width > 0]. *)

val width : t -> int
(** The fixed sequence length. *)

val add : t -> string -> unit
(** Record one occurrence of a window key (see {!Trace.key}).  The key
    length must equal [width]. *)

val add_many : t -> string -> count:int -> unit
(** Record [count] occurrences at once (used when deserialising a
    database).  Requires [count > 0]. *)

val of_trace : width:int -> Trace.t -> t
(** Database of every [width]-window of a trace. *)

val add_trace : t -> Trace.t -> unit
(** Record every [width]-window of another trace.  Crucially, windows
    never span from one trace into the next — the session-boundary rule
    of multi-trace training (e.g. per-process system-call traces). *)

val of_traces : width:int -> Trace.t list -> t
(** Database over a corpus of traces ({!add_trace} for each). *)

val mem : t -> string -> bool
(** Whether a window key was ever observed. *)

val count : t -> string -> int
(** Occurrences of a window key (0 when absent). *)

val total : t -> int
(** Total number of recorded windows (with multiplicity). *)

val cardinal : t -> int
(** Number of distinct sequences. *)

val freq : t -> string -> float
(** Relative frequency: [count / total].  0 when the database is
    empty. *)

val is_foreign : t -> string -> bool
(** Absent from the database. *)

val is_rare : t -> threshold:float -> string -> bool
(** Present with relative frequency strictly below [threshold]. *)

val is_common : t -> threshold:float -> string -> bool
(** Present with relative frequency at least [threshold]. *)

val iter : t -> (string -> int -> unit) -> unit
(** Iterate over distinct sequences and their counts, in ascending key
    order — traversal is deterministic, never hash order. *)

val fold : t -> init:'a -> f:('a -> string -> int -> 'a) -> 'a
(** Fold over distinct sequences and their counts, in ascending key
    order. *)

val keys : t -> string list
(** All distinct sequence keys, sorted ascending. *)

val rare_keys : t -> threshold:float -> string list
(** Distinct sequences that are rare at the given threshold. *)

val common_keys : t -> threshold:float -> string list
(** Distinct sequences that are common at the given threshold. *)
