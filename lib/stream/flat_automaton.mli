(** A counting trie compiled to an immutable flat automaton.

    The trie-descent scorers pay O(window) node hops per window — a
    pointer chase that re-reads [window - 1] symbols the previous window
    already consumed.  Compiling the depth-[depth] slice of a trie into
    an Aho-Corasick-style automaton (dense transition table plus failure
    links resolved away at compile time) makes scoring a live stream
    O(1) amortised per {e symbol}: one table read advances the state,
    and the state alone answers every per-window query.

    The state after feeding a stream is the longest suffix of that
    stream that is a path in the trie (capped at [depth] symbols);
    consequently [state_depth a s = depth a] holds exactly when the last
    [depth] symbols form a recorded window — the invariant the compiled
    Stide/t-Stide/Markov scorers ({!Seqdiv_detectors.Detector.S.compile})
    are built on.  Each state carries the occurrence count and
    continuation total of the trie node it was compiled from, plus its
    parent state, so frequency- and context-conditional scores need no
    descent either.

    Tables are [Bigarray]-backed: compact, cache-friendly, and mappable
    directly from a saved model file (the zero-copy load path of
    {!Seqdiv_detectors.Model_io}). *)

type t
(** A compiled automaton: transition table plus per-state metadata. *)

type table = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type score_table = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val compile : Seq_trie.t -> depth:int -> t
(** Compile the depth-[depth] slice of a trie.  States are the trie
    nodes of depth at most [depth], numbered in breadth-first order with
    the root as state 0; missing transitions are resolved through
    failure links at compile time, so stepping never consults them.
    Cost is O(states x alphabet); [Seqdiv_util.Deadline.checkpoint] is
    polled throughout, so an armed deadline can interrupt a compile.
    Requires [1 <= depth <= Seq_trie.max_len trie]. *)

val depth : t -> int
val alphabet_size : t -> int
val states : t -> int

val start : int
(** The initial state (the root): 0. *)

val step : t -> int -> int -> int
(** [step a state symbol] consumes one stream symbol: one bounds check
    on the symbol and one table read.  Symbols outside the alphabet
    reset to {!start} (they extend no recorded sequence), mirroring how
    the trie treats them as simply absent.  Allocation-free.  [state]
    must be a valid state of [a]. *)

val state_depth : t -> int -> int
(** Length of the suffix the state represents.  Equal to [depth a]
    exactly when the last [depth a] symbols fed form a recorded
    window. *)

val state_count : t -> int -> int
(** Occurrences of the state's sequence in the training trace (the trie
    node's count); 0 only for the root. *)

val state_context_total : t -> int -> int
(** Occurrences of the state's sequence that continued one symbol
    deeper — {!Seq_trie.context_total} of the compiled node. *)

val state_parent : t -> int -> int
(** The state one symbol shorter (the trie parent); the root is its own
    parent.  For a full-depth state this is exactly the Markov context
    of the window. *)

(** {1 Scorers — a per-state response table} *)

type scorer
(** An automaton paired with one precomputed response per state:
    stepping plus one table read scores a window. *)

val make_scorer : t -> score:(int -> float) -> scorer
(** Tabulate [score state] for every state.  [score] must return values
    acceptable to {!Seqdiv_detectors.Response.make} (finite, in
    [0, 1]) for the detector using the scorer. *)

val automaton : scorer -> t
val state_score : scorer -> int -> float
(** The precomputed response of a state.  Allocation-free. *)

val score_table : scorer -> score_table
(** The backing table (read-only view), for serialisation. *)

(** {1 Raw-table access — serialisation support} *)

val transitions : t -> table
val depths : t -> table
val counts : t -> table
val context_totals : t -> table
val parents : t -> table
(** Read-only views of the backing tables, row-major
    ([transitions] has [states x alphabet_size] entries, the rest
    [states]). *)

val of_tables :
  alphabet_size:int ->
  depth:int ->
  transitions:table ->
  depths:table ->
  counts:table ->
  context_totals:table ->
  parents:table ->
  t
(** Reassemble an automaton from its raw tables (the mmap-load path).
    Validates table dimensions and that every transition target, depth
    and parent is in range — the one full pass that keeps the
    allocation-free (and bounds-check-free) stepping safe on untrusted
    input.
    @raise Invalid_argument on inconsistent tables. *)

val scorer_of_tables : t -> score_table -> scorer
(** Reassemble a scorer from a loaded score table (one finite entry per
    state).
    @raise Invalid_argument on a length mismatch or non-finite entry. *)
