type mapping = int array

let parse text =
  let compact = Hashtbl.create 64 in
  let order = ref [] in
  let symbol_of_call call =
    match Hashtbl.find_opt compact call with
    | Some s -> s
    | None ->
        let s = Hashtbl.length compact in
        if s >= 255 then
          Parse_error.fail "Syscall_trace.parse: too many distinct calls";
        Hashtbl.add compact call s;
        order := call :: !order;
        s
  in
  (* Per-pid event lists (reversed), pids in order of first appearance. *)
  let events = Hashtbl.create 16 in
  let pid_order = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      let tokens =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      in
      match tokens with
      | [] -> ()
      | [ pid_tok; call_tok ] -> (
          match (int_of_string_opt pid_tok, int_of_string_opt call_tok) with
          | Some pid, Some call when pid >= 0 && call >= 0 ->
              let symbol = symbol_of_call call in
              if not (Hashtbl.mem events pid) then begin
                Hashtbl.add events pid (ref []);
                pid_order := pid :: !pid_order
              end;
              let cell = Hashtbl.find events pid in
              cell := symbol :: !cell
          | _ ->
              Parse_error.fail "Syscall_trace.parse: bad line %d: %S"
                (lineno + 1) line)
      | _ ->
          Parse_error.fail "Syscall_trace.parse: bad line %d: %S" (lineno + 1)
            line)
    lines;
  if Hashtbl.length events = 0 then
    Parse_error.fail "Syscall_trace.parse: no events";
  let mapping = Array.of_list (List.rev !order) in
  let alphabet = Alphabet.make (Stdlib.max 1 (Array.length mapping)) in
  let traces =
    (* [pid_order] holds newest-first; rev_map restores appearance order. *)
    List.rev_map
      (fun pid ->
        let cell = Hashtbl.find events pid in
        Trace.of_list alphabet (List.rev !cell))
      !pid_order
  in
  (Sessions.of_traces traces, mapping)

let parse_file path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

let render sessions mapping =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i trace ->
      let pid = i + 1 in
      for j = 0 to Trace.length trace - 1 do
        Buffer.add_string buf
          (Printf.sprintf "%d %d\n" pid mapping.(Trace.get trace j))
      done)
    (Sessions.traces sessions);
  Buffer.contents buf

let syscall_name mapping symbol =
  assert (symbol >= 0 && symbol < Array.length mapping);
  mapping.(symbol)
