type t = {
  width : int;
  counts : (string, int) Hashtbl.t;
  mutable total : int;
}

let create ~width =
  assert (width > 0);
  { width; counts = Hashtbl.create 64; total = 0 }

let width t = t.width

let add_many t k ~count =
  assert (String.length k = t.width);
  assert (count > 0);
  let prev = Option.value (Hashtbl.find_opt t.counts k) ~default:0 in
  Hashtbl.replace t.counts k (prev + count);
  t.total <- t.total + count

let add t k = add_many t k ~count:1

let add_trace t trace =
  Trace.iter_windows trace ~width:t.width (fun pos ->
      add t (Trace.key trace ~pos ~len:t.width))

let of_trace ~width trace =
  let t = create ~width in
  add_trace t trace;
  t

let of_traces ~width traces =
  let t = create ~width in
  List.iter (add_trace t) traces;
  t

let mem t k = Hashtbl.mem t.counts k
let count t k = Option.value (Hashtbl.find_opt t.counts k) ~default:0
let total t = t.total
let cardinal t = Hashtbl.length t.counts

let freq t k =
  if t.total = 0 then 0.0
  else float_of_int (count t k) /. float_of_int t.total

let is_foreign t k = not (mem t k)

let is_rare t ~threshold k =
  let c = count t k in
  c > 0 && freq t k < threshold

let is_common t ~threshold k = count t k > 0 && freq t k >= threshold

(* Hashtbl iteration order is unspecified, so every traversal goes
   through a key-sorted binding list: iteration is deterministic and
   identical across runs, machines and OCaml versions. *)
let sorted_bindings t =
  (* lint: allow determinism — collection order is erased by the sort *)
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let iter t f = List.iter (fun (k, c) -> f k c) (sorted_bindings t)

let fold t ~init ~f =
  List.fold_left (fun acc (k, c) -> f acc k c) init (sorted_bindings t)

let keys t = List.map fst (sorted_bindings t)

let rare_keys t ~threshold =
  List.filter (is_rare t ~threshold) (keys t)

let common_keys t ~threshold =
  List.filter (is_common t ~threshold) (keys t)
