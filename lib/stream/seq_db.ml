(* A width-slice view over a counting trie.  Standalone databases own a
   private trie of exactly [width] levels; [of_trie] views share one
   deeper trie across many widths (the engine's train-once layout).
   Either way every query is a trie descent — no string keys are built
   on the lookup paths. *)

type t = {
  width : int;
  trie : Seq_trie.t;
  mutable bindings : (string * int) list option;
      (* memoized sorted traversal; invalidated on every add *)
}

let default_alphabet = 256
(* [create] has no trace to size the alphabet from; 256 covers every
   symbol a string key can carry. *)

let create ?(alphabet_size = default_alphabet) ~width () =
  assert (width > 0);
  assert (alphabet_size >= 1);
  {
    width;
    trie = Seq_trie.create ~alphabet_size ~max_len:width;
    bindings = None;
  }

let of_trie trie ~width =
  assert (width >= 1 && width <= Seq_trie.max_len trie);
  { width; trie; bindings = None }

let width t = t.width
let trie t = t.trie

let add_many t k ~count =
  assert (String.length k = t.width);
  assert (count > 0);
  let symbols = Trace.symbols_of_key k in
  Seq_trie.add_many_at t.trie symbols ~pos:0 ~len:t.width ~count;
  t.bindings <- None

let add t k = add_many t k ~count:1

let add_trace t trace =
  let data = Trace.raw trace in
  Trace.iter_windows trace ~width:t.width (fun pos ->
      (* Cooperative watchdog hook (no-op unless a deadline is armed):
         recording a whole trace is the longest loop of a standalone-db
         train phase. *)
      if pos land 4095 = 0 then Seqdiv_util.Deadline.checkpoint ();
      Seq_trie.add_at t.trie data ~pos ~len:t.width);
  t.bindings <- None

let of_trace ~width trace =
  let t =
    create ~alphabet_size:(Alphabet.size (Trace.alphabet trace)) ~width ()
  in
  add_trace t trace;
  t

let alphabet_of_traces traces =
  List.fold_left
    (fun acc trace -> Stdlib.max acc (Alphabet.size (Trace.alphabet trace)))
    1 traces

let of_traces ~width traces =
  let t = create ~alphabet_size:(alphabet_of_traces traces) ~width () in
  List.iter (add_trace t) traces;
  t

(* --- queries: every one a descent at depth [width] ---------------------- *)

let mem_at t a ~pos = Seq_trie.mem_at t.trie a ~pos ~len:t.width
let count_at t a ~pos = Seq_trie.count_at t.trie a ~pos ~len:t.width
let freq_at t a ~pos = Seq_trie.freq_at t.trie a ~pos ~len:t.width

let is_rare_at t ~threshold a ~pos =
  Seq_trie.is_rare_at t.trie ~threshold a ~pos ~len:t.width

let check_key t k =
  assert (String.length k = t.width);
  k

let mem t k = Seq_trie.mem t.trie (check_key t k)
let count t k = Seq_trie.count t.trie (check_key t k)
let total t = Seq_trie.total t.trie t.width
let cardinal t = Seq_trie.distinct t.trie t.width

let freq t k =
  let tot = total t in
  if tot = 0 then 0.0 else float_of_int (count t k) /. float_of_int tot

let is_foreign t k = not (mem t k)

let is_rare t ~threshold k =
  let c = count t k in
  c > 0 && freq t k < threshold

let is_common t ~threshold k = count t k > 0 && freq t k >= threshold

(* The in-order trie walk already yields ascending key order, so the
   memo never sorts: it caches the (key, count) materialisation, which
   the pre-trie implementation rebuilt (and re-sorted) on every single
   traversal. *)
let sorted_bindings t =
  match t.bindings with
  | Some bs -> bs
  | None ->
      let acc = ref [] in
      Seq_trie.iter_slice t.trie ~depth:t.width (fun buf count ->
          acc := (Trace.key_of_symbols buf, count) :: !acc);
      let bs = List.rev !acc in
      t.bindings <- Some bs;
      bs

let iter t f = List.iter (fun (k, c) -> f k c) (sorted_bindings t)

let fold t ~init ~f =
  List.fold_left (fun acc (k, c) -> f acc k c) init (sorted_bindings t)

let keys t = List.map fst (sorted_bindings t)

(* Classification over the memoized bindings: counts ride along, so no
   per-key second lookup. *)
let rare_keys t ~threshold =
  let tot = float_of_int (total t) in
  List.filter_map
    (fun (k, c) ->
      if c > 0 && float_of_int c /. tot < threshold then Some k else None)
    (sorted_bindings t)

let common_keys t ~threshold =
  let tot = float_of_int (total t) in
  List.filter_map
    (fun (k, c) ->
      if c > 0 && float_of_int c /. tot >= threshold then Some k else None)
    (sorted_bindings t)
