type t = { alphabet : Alphabet.t; data : int array }

let of_array alphabet data =
  Array.iter
    (fun s ->
      if not (Alphabet.mem alphabet s) then
        (* lint: allow partiality — documented precondition *)
        invalid_arg (Printf.sprintf "Trace.of_array: symbol %d out of range" s))
    data;
  { alphabet; data = Array.copy data }

let of_list alphabet l = of_array alphabet (Array.of_list l)

let alphabet t = t.alphabet
let length t = Array.length t.data

let get t i =
  assert (i >= 0 && i < length t);
  t.data.(i)

let sub t ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= length t);
  { t with data = Array.sub t.data pos len }

let to_array t = Array.copy t.data
let raw t = t.data

let check_compatible a b =
  if Alphabet.size a.alphabet <> Alphabet.size b.alphabet then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Trace: incompatible alphabets"

let concat a b =
  check_compatible a b;
  { a with data = Array.append a.data b.data }

let insert base ~pos piece =
  check_compatible base piece;
  assert (pos >= 0 && pos <= length base);
  let n = length base and m = length piece in
  let out = Array.make (n + m) 0 in
  Array.blit base.data 0 out 0 pos;
  Array.blit piece.data 0 out pos m;
  Array.blit base.data pos out (pos + m) (n - pos);
  { base with data = out }

let equal a b = a.data = b.data

let iter_windows t ~width f =
  assert (width > 0);
  for start = 0 to length t - width do
    f start
  done

let window_count t ~width =
  assert (width > 0);
  Stdlib.max 0 (length t - width + 1)

let key t ~pos ~len =
  assert (len > 0 && pos >= 0 && pos + len <= length t);
  String.init len (fun i -> Char.chr t.data.(pos + i))

let key_of_symbols a =
  assert (Array.length a > 0);
  String.init (Array.length a) (fun i ->
      assert (a.(i) >= 0 && a.(i) < 256);
      Char.chr a.(i))

let symbols_of_key k = Array.init (String.length k) (fun i -> Char.code k.[i])

let pp ppf t =
  let n = length t in
  let shown = Stdlib.min n 32 in
  for i = 0 to shown - 1 do
    if i > 0 then Format.pp_print_char ppf ' ';
    Format.pp_print_string ppf (Alphabet.name t.alphabet t.data.(i))
  done;
  if n > shown then Format.fprintf ppf " ...(%d total)" n
