(** Counting trie over fixed-alphabet sequences — the shared data layer
    behind {!Seq_db}, {!Ngram_index} and the sequence detectors' hot
    paths.

    One single-pass build ({!of_trace}) indexes every n-gram of a trace
    for every length [1 .. max_len] at once, sharing prefixes
    structurally; one trie therefore serves all detector-window widths
    of an experiment grid.  The cursor API ({!mem_at}, {!count_at},
    {!freq_at}, {!context_at}) descends over raw [int array] slices and
    allocates nothing — it is the train-once/serve-every-window scoring
    path.  A string-key API compatible with {!Trace.key} is kept for
    serialisation, diagnostics and tests; unlike the cursor API it is
    limited to alphabets of at most 256 symbols (one byte per
    symbol). *)

open Seqdiv_util

type t

type node
(** A trie position reached by descent — used to answer several queries
    about one context without re-descending. *)

val create : alphabet_size:int -> max_len:int -> t
(** Empty trie for n-grams of length [1 .. max_len].
    Requires [alphabet_size >= 1] and [max_len >= 1]; alphabets larger
    than 256 are fully supported (only the string-key API is then
    unavailable). *)

val of_trace : max_len:int -> Trace.t -> t
(** Index every n-gram of the trace up to [max_len], in one
    O(length x max_len) pass. *)

val max_len : t -> int
val alphabet_size : t -> int

val add : t -> int array -> unit
(** Record one occurrence of a sequence and of each of its prefixes.
    The sequence length must be within [1 .. max_len]; symbols must be
    within the alphabet. *)

val add_at : t -> int array -> pos:int -> len:int -> unit
(** Incremental {!add} of the slice [a.(pos) .. a.(pos + len - 1)]
    without copying it out.  Requires the slice in bounds and
    [1 <= len <= max_len]. *)

val add_many_at : t -> int array -> pos:int -> len:int -> count:int -> unit
(** {!add_at} with multiplicity (used when deserialising counted
    models).  Requires [count > 0]. *)

(** {1 Cursor API — allocation-free lookups over raw slices} *)

val mem_at : t -> int array -> pos:int -> len:int -> bool
(** Whether the slice occurs.  Requires the slice in bounds and
    [1 <= len <= max_len].  Symbols outside the alphabet are simply
    absent (never an error), so foreign-symbol test traces score as
    foreign. *)

val count_at : t -> int array -> pos:int -> len:int -> int
(** Occurrences of the slice; 0 when absent. *)

val freq_at : t -> int array -> pos:int -> len:int -> float
(** Relative frequency among same-length windows; 0 when no window of
    that length was recorded. *)

val is_rare_at : t -> threshold:float -> int array -> pos:int -> len:int -> bool
(** Present with relative frequency strictly below the threshold. *)

val context_at : t -> int array -> pos:int -> len:int -> node option
(** The node of a Markov context slice, when the context was observed
    with at least one continuation.  Requires [len < max_len] windows to
    have been recorded deep enough, i.e. the trie must extend at least
    one symbol past [len]. *)

val context_total : node -> int
(** Occurrences of the context that continued one symbol deeper — the
    denominator of [P(next | context)]. *)

val root : t -> node
(** The empty-sequence node — the entry point of a read-only node walk
    (the {!Flat_automaton} compiler). *)

val occurrences : node -> int
(** Occurrences of the sequence this node spells — [count_at] without
    the descent. *)

val child_node : t -> node -> int -> node option
(** The child one symbol deeper, when that extension was recorded.
    Never creates a node.  Requires a valid alphabet symbol. *)

val continuation_count : t -> node -> int -> int
(** Occurrences of [context . symbol] — the numerator of
    [P(symbol | context)].  Requires a valid alphabet symbol. *)

(** {1 String-key API (alphabets up to 256 symbols)} *)

val count : t -> string -> int
(** Occurrences of a window key (see {!Trace.key}); 0 when absent.
    Requires [1 <= length <= max_len]. *)

val mem : t -> string -> bool
val is_foreign : t -> string -> bool

val total : t -> int -> int
(** Total windows recorded at a length (with multiplicity). *)

val freq : t -> string -> float
(** Relative frequency among same-length windows. *)

val is_rare : t -> threshold:float -> string -> bool
(** Present with relative frequency strictly below the threshold. *)

val distinct : t -> int -> int
(** Number of distinct sequences of a length. *)

val node_count : t -> int
(** Total allocated trie nodes — the memory-footprint proxy reported by
    the A5 benchmark and by {!Seqdiv_core.Engine.stats}. *)

(** {1 Traversal} *)

val iter_slice : t -> depth:int -> (int array -> int -> unit) -> unit
(** Visit every distinct sequence of one length with its count, in
    ascending lexicographic (string-key) order.  The symbol buffer
    passed to the callback is reused between calls — copy it if it
    escapes.  Requires [1 <= depth <= max_len]. *)

val iter_contexts : t -> depth:int -> (int array -> node -> unit) -> unit
(** Visit every distinct context of one length that has at least one
    recorded continuation, in ascending order, with its node (query it
    with {!context_total} / {!continuation_count}).  The symbol buffer
    is reused between calls.  Requires [1 <= depth < max_len]. *)

val memory_words : t -> int
(** Rough allocated size in machine words (nodes x (alphabet + 3)). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: max length, node count, distinct counts. *)

val random_probe : t -> Prng.t -> len:int -> string
(** A uniformly random key of the given length over the trie's alphabet
    (present or not) — handy for benchmarking lookups.  Requires an
    alphabet of at most 256 symbols. *)
