open Seqdiv_util

type node = {
  mutable count : int;
  mutable ctotal : int;
      (* occurrences of this prefix that continued one symbol deeper —
         the Markov denominator sum(children counts), maintained
         incrementally so context lookups stay O(1) *)
  children : node option array;
}

type t = {
  alphabet_size : int;
  max_len : int;
  root : node;
  totals : int array;  (* windows recorded per length, index = len - 1 *)
  mutable nodes : int;
  distincts : int array;  (* distinct sequences per length *)
}

let new_node k = { count = 0; ctotal = 0; children = Array.make k None }

let create ~alphabet_size ~max_len =
  assert (alphabet_size >= 1);
  assert (max_len >= 1);
  {
    alphabet_size;
    max_len;
    root = new_node alphabet_size;
    totals = Array.make max_len 0;
    nodes = 1;
    distincts = Array.make max_len 0;
  }

let max_len t = t.max_len
let alphabet_size t = t.alphabet_size

let child t node symbol =
  assert (symbol >= 0 && symbol < t.alphabet_size);
  match node.children.(symbol) with
  | Some c -> c
  | None ->
      let c = new_node t.alphabet_size in
      node.children.(symbol) <- Some c;
      t.nodes <- t.nodes + 1;
      c

(* Shared recording step: one occurrence (with multiplicity [count]) of
   the slice [a.(pos) .. a.(pos + len - 1)]. *)
let record t a ~pos ~len ~count =
  assert (len >= 1 && len <= t.max_len);
  assert (pos >= 0 && pos + len <= Array.length a);
  assert (count > 0);
  let node = ref t.root in
  for d = 0 to len - 1 do
    let c = child t !node a.(pos + d) in
    if c.count = 0 then t.distincts.(d) <- t.distincts.(d) + 1;
    c.count <- c.count + count;
    (!node).ctotal <- (!node).ctotal + count;
    t.totals.(d) <- t.totals.(d) + count;
    node := c
  done

let add_at t a ~pos ~len = record t a ~pos ~len ~count:1
let add_many_at t a ~pos ~len ~count = record t a ~pos ~len ~count
let add t symbols = record t symbols ~pos:0 ~len:(Array.length symbols) ~count:1

let of_trace ~max_len trace =
  let k = Alphabet.size (Trace.alphabet trace) in
  let t = create ~alphabet_size:k ~max_len in
  let data = Trace.raw trace in
  let len = Array.length data in
  for pos = 0 to len - 1 do
    (* Cooperative watchdog hook (no-op unless a deadline is armed):
       a trace scan is the longest single loop in a train phase. *)
    if pos land 4095 = 0 then Deadline.checkpoint ();
    let depth_limit = Stdlib.min max_len (len - pos) in
    let node = ref t.root in
    for d = 0 to depth_limit - 1 do
      let c = child t !node data.(pos + d) in
      if c.count = 0 then t.distincts.(d) <- t.distincts.(d) + 1;
      c.count <- c.count + 1;
      (!node).ctotal <- (!node).ctotal + 1;
      t.totals.(d) <- t.totals.(d) + 1;
      node := c
    done
  done;
  t

(* --- cursor/descent API over raw symbol slices -------------------------- *)

(* The scoring hot path: descend [len] symbols from the root without
   allocating.  The descent functions take every parameter explicitly —
   a local [let rec] capturing [t]/[a]/[pos]/[len] would allocate a
   closure on each call, which is most of what this module exists to
   avoid.  [descend_at] returns [None] when the path is absent or a
   symbol is outside the alphabet; [count_descend] is the option-free
   variant so count/membership probes allocate nothing at all. *)
let rec descend_at k a pos len node i =
  if i = len then Some node
  else
    let symbol = a.(pos + i) in
    if symbol < 0 || symbol >= k then None
    else
      match node.children.(symbol) with
      | None -> None
      | Some c -> descend_at k a pos len c (i + 1)

let rec count_descend k a pos len node i =
  if i = len then node.count
  else
    let symbol = a.(pos + i) in
    if symbol < 0 || symbol >= k then 0
    else
      match node.children.(symbol) with
      | None -> 0
      | Some c -> count_descend k a pos len c (i + 1)

let find_at t a ~pos ~len =
  assert (len >= 1 && len <= t.max_len);
  assert (pos >= 0 && pos + len <= Array.length a);
  descend_at t.alphabet_size a pos len t.root 0

let count_at t a ~pos ~len =
  assert (len >= 1 && len <= t.max_len);
  assert (pos >= 0 && pos + len <= Array.length a);
  count_descend t.alphabet_size a pos len t.root 0

let mem_at t a ~pos ~len = count_at t a ~pos ~len > 0

let total t n =
  assert (n >= 1 && n <= t.max_len);
  t.totals.(n - 1)

let freq_at t a ~pos ~len =
  let tot = total t len in
  if tot = 0 then 0.0
  else float_of_int (count_at t a ~pos ~len) /. float_of_int tot

let is_rare_at t ~threshold a ~pos ~len =
  let c = count_at t a ~pos ~len in
  c > 0 && float_of_int c /. float_of_int (total t len) < threshold

(* Markov support: the conditional-count row of a context slice.  The
   context node's [ctotal] is exactly the number of occurrences that
   continued — the denominator of P(next | context). *)
let context_at t a ~pos ~len =
  match find_at t a ~pos ~len with
  | Some node when node.ctotal > 0 -> Some node
  | Some _ | None -> None

let context_total node = node.ctotal

(* Compiler support ({!Flat_automaton}): a read-only walk over the node
   graph.  [child_node] never creates nodes (unlike the internal
   [child] used by the recording paths). *)
let root t = t.root
let occurrences node = node.count

let child_node t node symbol =
  assert (symbol >= 0 && symbol < t.alphabet_size);
  node.children.(symbol)

let continuation_count t node symbol =
  assert (symbol >= 0 && symbol < t.alphabet_size);
  match node.children.(symbol) with None -> 0 | Some c -> c.count

(* --- string-key compatibility API --------------------------------------- *)

(* Window keys (see {!Trace.key}) pack one symbol per byte, so the
   string API only reaches symbols 0..255; the [*_at] cursor API above
   is the full-alphabet (and allocation-free) form. *)

let find t key =
  let n = String.length key in
  assert (n >= 1 && n <= t.max_len);
  let rec descend node i =
    if i = n then Some node
    else begin
      let symbol = Char.code key.[i] in
      if symbol >= t.alphabet_size then None
      else
        match node.children.(symbol) with
        | None -> None
        | Some c -> descend c (i + 1)
    end
  in
  descend t.root 0

let count t key = match find t key with None -> 0 | Some n -> n.count
let mem t key = count t key > 0
let is_foreign t key = not (mem t key)

let freq t key =
  let n = String.length key in
  let tot = total t n in
  if tot = 0 then 0.0 else float_of_int (count t key) /. float_of_int tot

let is_rare t ~threshold key =
  let c = count t key in
  c > 0 && freq t key < threshold

let distinct t n =
  assert (n >= 1 && n <= t.max_len);
  t.distincts.(n - 1)

let node_count t = t.nodes

(* --- depth-slice traversal ---------------------------------------------- *)

(* In-order walk of every distinct sequence at one depth: children are
   visited in ascending symbol order, so the traversal is ascending in
   the lexicographic (= string-key) order — deterministic without any
   sort.  [f] receives the symbol buffer (valid up to [depth], reused
   between calls) and the occurrence count. *)
let iter_slice t ~depth f =
  assert (depth >= 1 && depth <= t.max_len);
  let buf = Array.make depth 0 in
  let rec walk node d =
    if d = depth then f buf node.count
    else
      Array.iteri
        (fun symbol c ->
          match c with
          | None -> ()
          | Some c ->
              buf.(d) <- symbol;
              walk c (d + 1))
        node.children
  in
  walk t.root 0

let iter_contexts t ~depth f =
  assert (depth >= 1 && depth < t.max_len);
  let buf = Array.make depth 0 in
  let rec walk node d =
    if d = depth then begin if node.ctotal > 0 then f buf node end
    else
      Array.iteri
        (fun symbol c ->
          match c with
          | None -> ()
          | Some c ->
              buf.(d) <- symbol;
              walk c (d + 1))
        node.children
  in
  walk t.root 0

let memory_words t = t.nodes * (t.alphabet_size + 3)

let pp_stats ppf t =
  Format.fprintf ppf "trie{max_len=%d nodes=%d distinct=[%s]}" t.max_len
    t.nodes
    (String.concat ";"
       (List.init t.max_len (fun i -> string_of_int t.distincts.(i))))

let random_probe t rng ~len =
  assert (len >= 1 && len <= t.max_len);
  assert (t.alphabet_size <= 256);
  String.init len (fun _ -> Char.chr (Prng.int rng t.alphabet_size))
