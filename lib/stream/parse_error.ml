exception Error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt
