(* Wire framing for the serve layer: a pure two-format codec (binary
   length-prefixed frames and ndjson lines) with an incremental
   per-connection reader that sniffs the format from the first byte.
   See frame.mli for the wire layout. *)

type event =
  | Data of { session : int; symbols : int array }
  | End_of_session of { session : int }

type incident = {
  first_start : int;
  last_start : int;
  cover_from : int;
  cover_to : int;
  alarms : int;
  peak_score : float;
}

type incident_event =
  | Opened of { session : int; position : int }
  | Closed of { session : int; incident : incident }

type shard_stats = {
  shard : int;
  sessions_resident : int;
  events : int;
  symbols : int;
  batches : int;
  rejected : int;
  queue_depth : int;
  bytes_resident : int;
  busy_ns : int;
  p50_batch_ns : int;
  p99_batch_ns : int;
  restarts : int;
  degraded : bool;
  retry_after_ms : int;
  windows : int;
  alarms : int;
  threshold : float;
}

type shard_health = {
  h_shard : int;
  h_alive : bool;
  h_degraded : bool;
  h_restarts : int;
  h_queue_depth : int;
  h_retry_after_ms : int;
  h_windows : int;
  h_alarms : int;
  h_threshold : float;
}

type health = {
  shards_health : shard_health list;
  connections : int;
  evictions : int;
  draining : bool;
}

type request =
  | Batch of { id : int; events : event list }
  | Stats_request
  | Health_request
  | Drain_request
  | Quit

type response =
  | Ack of {
      id : int;
      shard : int;
      events : int;
      incidents : incident_event list;
    }
  | Rejected of { id : int; retry_after_ms : int }
  | Failed of { id : int; shard : int; events : int; reason : string }
  | Stats of shard_stats list
  | Health of health
  | Drained of { batches : int }
  | Error_msg of string

(* --- session sharding --------------------------------------------------- *)

(* SplitMix64 finaliser: full-avalanche mixing so consecutive session
   ids spread evenly across shards. *)
let shard_of_session ~shards id =
  if shards <= 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Frame.shard_of_session: shards=%d" shards);
  let z = Int64.add (Int64.of_int id) 0x9e3779b97f4a7c15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int shards))

(* --- validation --------------------------------------------------------- *)

let check_symbol s =
  if s < 0 || s > 254 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Frame: symbol %d out of range 0..254" s)

let check_nonneg name v =
  if v < 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Frame: negative %s: %d" name v)

let check_batch id events =
  check_nonneg "batch id" id;
  if events = [] then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Frame: a batch must carry at least one event";
  List.iter
    (function
      | Data { session; symbols } ->
          check_nonneg "session id" session;
          Array.iter check_symbol symbols
      | End_of_session { session } -> check_nonneg "session id" session)
    events

(* --- binary encoding ---------------------------------------------------- *)

type encoding = Binary | Ndjson

let binary_magic = '\xab'
let max_payload = 1 lsl 26 (* 64 MiB: no hostile length can force the
                              reader into an absurd allocation *)

let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_payload out payload =
  let n = Buffer.length payload in
  if n > max_payload then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Frame: payload %d exceeds %d bytes" n
                   max_payload);
  Buffer.add_char out binary_magic;
  Buffer.add_int32_le out (Int32.of_int n);
  Buffer.add_buffer out payload

let add_string_field b s =
  add_i64 b (String.length s);
  Buffer.add_string b s

let binary_of_request out = function
  | Batch { id; events } ->
      let b = Buffer.create 256 in
      Buffer.add_char b 'B';
      add_i64 b id;
      add_i64 b (List.length events);
      List.iter
        (function
          | Data { session; symbols } ->
              Buffer.add_char b 'd';
              add_i64 b session;
              add_i64 b (Array.length symbols);
              Array.iter (fun s -> Buffer.add_char b (Char.chr s)) symbols
          | End_of_session { session } ->
              Buffer.add_char b 'e';
              add_i64 b session)
        events;
      add_payload out b
  | Stats_request ->
      let b = Buffer.create 1 in
      Buffer.add_char b 'S';
      add_payload out b
  | Health_request ->
      let b = Buffer.create 1 in
      Buffer.add_char b 'H';
      add_payload out b
  | Drain_request ->
      let b = Buffer.create 1 in
      Buffer.add_char b 'D';
      add_payload out b
  | Quit ->
      let b = Buffer.create 1 in
      Buffer.add_char b 'Q';
      add_payload out b

let add_incident_event b = function
  | Opened { session; position } ->
      Buffer.add_char b 'o';
      add_i64 b session;
      add_i64 b position
  | Closed { session; incident } ->
      Buffer.add_char b 'c';
      add_i64 b session;
      add_i64 b incident.first_start;
      add_i64 b incident.last_start;
      add_i64 b incident.cover_from;
      add_i64 b incident.cover_to;
      add_i64 b incident.alarms;
      Buffer.add_int64_le b (Int64.bits_of_float incident.peak_score)

let add_shard_stats b s =
  add_i64 b s.shard;
  add_i64 b s.sessions_resident;
  add_i64 b s.events;
  add_i64 b s.symbols;
  add_i64 b s.batches;
  add_i64 b s.rejected;
  add_i64 b s.queue_depth;
  add_i64 b s.bytes_resident;
  add_i64 b s.busy_ns;
  add_i64 b s.p50_batch_ns;
  add_i64 b s.p99_batch_ns;
  add_i64 b s.restarts;
  add_i64 b (if s.degraded then 1 else 0);
  add_i64 b s.retry_after_ms;
  add_i64 b s.windows;
  add_i64 b s.alarms;
  Buffer.add_int64_le b (Int64.bits_of_float s.threshold)

let add_shard_health b h =
  add_i64 b h.h_shard;
  add_i64 b (if h.h_alive then 1 else 0);
  add_i64 b (if h.h_degraded then 1 else 0);
  add_i64 b h.h_restarts;
  add_i64 b h.h_queue_depth;
  add_i64 b h.h_retry_after_ms;
  add_i64 b h.h_windows;
  add_i64 b h.h_alarms;
  Buffer.add_int64_le b (Int64.bits_of_float h.h_threshold)

let binary_of_response out = function
  | Ack { id; shard; events; incidents } ->
      let b = Buffer.create 64 in
      Buffer.add_char b 'A';
      add_i64 b id;
      add_i64 b shard;
      add_i64 b events;
      add_i64 b (List.length incidents);
      List.iter (add_incident_event b) incidents;
      add_payload out b
  | Rejected { id; retry_after_ms } ->
      let b = Buffer.create 24 in
      Buffer.add_char b 'R';
      add_i64 b id;
      add_i64 b retry_after_ms;
      add_payload out b
  | Failed { id; shard; events; reason } ->
      let b = Buffer.create 64 in
      Buffer.add_char b 'F';
      add_i64 b id;
      add_i64 b shard;
      add_i64 b events;
      add_string_field b reason;
      add_payload out b
  | Stats shards ->
      let b = Buffer.create 256 in
      Buffer.add_char b 'T';
      add_i64 b (List.length shards);
      List.iter (add_shard_stats b) shards;
      add_payload out b
  | Health { shards_health; connections; evictions; draining } ->
      let b = Buffer.create 256 in
      Buffer.add_char b 'h';
      add_i64 b connections;
      add_i64 b evictions;
      add_i64 b (if draining then 1 else 0);
      add_i64 b (List.length shards_health);
      List.iter (add_shard_health b) shards_health;
      add_payload out b
  | Drained { batches } ->
      let b = Buffer.create 16 in
      Buffer.add_char b 'd';
      add_i64 b batches;
      add_payload out b
  | Error_msg message ->
      let b = Buffer.create 64 in
      Buffer.add_char b 'E';
      add_string_field b message;
      add_payload out b

(* --- binary decoding ---------------------------------------------------- *)

(* A cursor over one complete payload; every read is bounds-checked so
   hostile lengths fail as Parse_error, not as an exception from
   Bytes. *)
type cursor = { data : bytes; mutable pos : int; limit : int }

let cursor_fail fmt = Parse_error.fail fmt

let need c n =
  if c.limit - c.pos < n then
    cursor_fail "Frame: truncated binary payload (need %d bytes at %d)" n c.pos

let read_char c =
  need c 1;
  let ch = Bytes.get c.data c.pos in
  c.pos <- c.pos + 1;
  ch

let read_i64 c =
  need c 8;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  Int64.to_int v

let read_nonneg c name =
  let v = read_i64 c in
  if v < 0 then cursor_fail "Frame: negative %s: %d" name v;
  v

let read_count c name ~min_item_bytes =
  let v = read_nonneg c name in
  if min_item_bytes > 0 && v > (c.limit - c.pos) / min_item_bytes then
    cursor_fail "Frame: %s %d larger than the remaining payload" name v;
  v

let read_string c name =
  let n = read_count c name ~min_item_bytes:1 in
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let read_symbols c n =
  need c n;
  let a =
    Array.init n (fun i ->
        let v = Char.code (Bytes.get c.data (c.pos + i)) in
        if v > 254 then cursor_fail "Frame: symbol byte %d out of range" v;
        v)
  in
  c.pos <- c.pos + n;
  a

let read_event c =
  match read_char c with
  | 'd' ->
      let session = read_nonneg c "session id" in
      let n = read_count c "symbol count" ~min_item_bytes:1 in
      Data { session; symbols = read_symbols c n }
  | 'e' -> End_of_session { session = read_nonneg c "session id" }
  | ch -> cursor_fail "Frame: unknown event tag %C" ch

let finish c v =
  if c.pos <> c.limit then
    cursor_fail "Frame: %d trailing payload bytes" (c.limit - c.pos);
  v

let decode_binary_request c =
  match read_char c with
  | 'B' ->
      let id = read_nonneg c "batch id" in
      let n = read_count c "event count" ~min_item_bytes:9 in
      if n = 0 then cursor_fail "Frame: a batch must carry at least one event";
      finish c (Batch { id; events = List.init n (fun _ -> read_event c) })
  | 'S' -> finish c Stats_request
  | 'H' -> finish c Health_request
  | 'D' -> finish c Drain_request
  | 'Q' -> finish c Quit
  | ch -> cursor_fail "Frame: unknown request tag %C" ch

let read_incident_event c =
  match read_char c with
  | 'o' ->
      let session = read_nonneg c "session id" in
      Opened { session; position = read_nonneg c "position" }
  | 'c' ->
      let session = read_nonneg c "session id" in
      let first_start = read_i64 c in
      let last_start = read_i64 c in
      let cover_from = read_i64 c in
      let cover_to = read_i64 c in
      let alarms = read_nonneg c "alarm count" in
      need c 8;
      let bits = Bytes.get_int64_le c.data c.pos in
      c.pos <- c.pos + 8;
      Closed
        {
          session;
          incident =
            {
              first_start;
              last_start;
              cover_from;
              cover_to;
              alarms;
              peak_score = Int64.float_of_bits bits;
            };
        }
  | ch -> cursor_fail "Frame: unknown incident tag %C" ch

let read_bool c name =
  match read_i64 c with
  | 0 -> false
  | 1 -> true
  | v -> cursor_fail "Frame: %s flag %d is not 0 or 1" name v

let read_float_bits c =
  need c 8;
  let bits = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  Int64.float_of_bits bits

let read_shard_stats c =
  let shard = read_i64 c in
  let sessions_resident = read_nonneg c "sessions_resident" in
  let events = read_nonneg c "events" in
  let symbols = read_nonneg c "symbols" in
  let batches = read_nonneg c "batches" in
  let rejected = read_nonneg c "rejected" in
  let queue_depth = read_nonneg c "queue_depth" in
  let bytes_resident = read_nonneg c "bytes_resident" in
  let busy_ns = read_nonneg c "busy_ns" in
  let p50_batch_ns = read_nonneg c "p50_batch_ns" in
  let p99_batch_ns = read_nonneg c "p99_batch_ns" in
  let restarts = read_nonneg c "restarts" in
  let degraded = read_bool c "degraded" in
  let retry_after_ms = read_nonneg c "retry_after_ms" in
  let windows = read_nonneg c "windows" in
  let alarms = read_nonneg c "alarms" in
  let threshold = read_float_bits c in
  {
    shard;
    sessions_resident;
    events;
    symbols;
    batches;
    rejected;
    queue_depth;
    bytes_resident;
    busy_ns;
    p50_batch_ns;
    p99_batch_ns;
    restarts;
    degraded;
    retry_after_ms;
    windows;
    alarms;
    threshold;
  }

let read_shard_health c =
  let h_shard = read_i64 c in
  let h_alive = read_bool c "alive" in
  let h_degraded = read_bool c "degraded" in
  let h_restarts = read_nonneg c "restarts" in
  let h_queue_depth = read_nonneg c "queue_depth" in
  let h_retry_after_ms = read_nonneg c "retry_after_ms" in
  let h_windows = read_nonneg c "windows" in
  let h_alarms = read_nonneg c "alarms" in
  let h_threshold = read_float_bits c in
  {
    h_shard;
    h_alive;
    h_degraded;
    h_restarts;
    h_queue_depth;
    h_retry_after_ms;
    h_windows;
    h_alarms;
    h_threshold;
  }

let decode_binary_response c =
  match read_char c with
  | 'A' ->
      let id = read_nonneg c "batch id" in
      let shard = read_i64 c in
      let events = read_nonneg c "event count" in
      let n = read_count c "incident count" ~min_item_bytes:17 in
      finish c
        (Ack
           { id; shard; events;
             incidents = List.init n (fun _ -> read_incident_event c) })
  | 'R' ->
      let id = read_nonneg c "batch id" in
      finish c (Rejected { id; retry_after_ms = read_nonneg c "retry-after" })
  | 'F' ->
      let id = read_nonneg c "batch id" in
      let shard = read_i64 c in
      let events = read_nonneg c "event count" in
      finish c
        (Failed { id; shard; events; reason = read_string c "reason length" })
  | 'T' ->
      let n = read_count c "shard count" ~min_item_bytes:136 in
      finish c (Stats (List.init n (fun _ -> read_shard_stats c)))
  | 'h' ->
      let connections = read_nonneg c "connections" in
      let evictions = read_nonneg c "evictions" in
      let draining = read_bool c "draining" in
      let n = read_count c "shard count" ~min_item_bytes:72 in
      finish c
        (Health
           {
             shards_health = List.init n (fun _ -> read_shard_health c);
             connections;
             evictions;
             draining;
           })
  | 'd' -> finish c (Drained { batches = read_nonneg c "batch count" })
  | 'E' -> finish c (Error_msg (read_string c "message length"))
  | ch -> cursor_fail "Frame: unknown response tag %C" ch

(* --- json values -------------------------------------------------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec print_json b = function
  | J_null -> Buffer.add_string b "null"
  | J_bool v -> Buffer.add_string b (if v then "true" else "false")
  | J_int v -> Buffer.add_string b (string_of_int v)
  | J_float v -> Buffer.add_string b (Printf.sprintf "%.17g" v)
  | J_string s ->
      Buffer.add_char b '"';
      Buffer.add_string b (json_escape s);
      Buffer.add_char b '"'
  | J_list items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          print_json b item)
        items;
      Buffer.add_char b ']'
  | J_obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (json_escape k);
          Buffer.add_string b "\":";
          print_json b v)
        fields;
      Buffer.add_char b '}'

(* A recursive-descent parser over one line.  Minimal but total: every
   malformed shape lands in Parse_error with a position. *)
let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail fmt = Parse_error.fail ("Frame: ndjson: " ^^ fmt) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | Some c -> fail "expected %C at %d, found %C" ch !pos c
    | None -> fail "expected %C at %d, found end of line" ch !pos
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub line !pos k = word then begin
      pos := !pos + k;
      value
    end
    else fail "bad literal at %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 256 -> Buffer.add_char b (Char.chr code)
              | Some code -> fail "unsupported \\u%04x escape" code
              | None -> fail "bad \\u escape %S" hex);
              go ()
          | Some c -> fail "bad escape \\%C" c
          | None -> fail "unterminated string")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    let s = String.sub line start (!pos - start) in
    match int_of_string_opt s with
    | Some v -> J_int v
    | None -> (
        match float_of_string_opt s with
        | Some v -> J_float v
        | None -> fail "bad number %S at %d" s start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' at %d" !pos
          in
          J_obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_list []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at %d" !pos
          in
          J_list (items [])
        end
    | Some '"' -> J_string (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail "unexpected %C at %d" c !pos
    | None -> fail "empty value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes at %d" !pos;
  v

(* Field accessors over a decoded object. *)

let obj_fields name = function
  | J_obj fields -> fields
  | _ -> Parse_error.fail "Frame: ndjson: %s is not an object" name

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> Parse_error.fail "Frame: ndjson: missing field %S" k

let int_field fields k =
  match field fields k with
  | J_int v -> v
  | _ -> Parse_error.fail "Frame: ndjson: field %S is not an integer" k

let str_field fields k =
  match field fields k with
  | J_string v -> v
  | _ -> Parse_error.fail "Frame: ndjson: field %S is not a string" k

let list_field fields k =
  match field fields k with
  | J_list v -> v
  | _ -> Parse_error.fail "Frame: ndjson: field %S is not a list" k

let bool_field fields k =
  match field fields k with
  | J_bool v -> v
  | _ -> Parse_error.fail "Frame: ndjson: field %S is not a boolean" k

let nonneg_field fields k =
  let v = int_field fields k in
  if v < 0 then Parse_error.fail "Frame: ndjson: negative field %S: %d" k v;
  v

let bits_field fields k =
  let s = str_field fields k in
  if String.length s <> 16 then
    Parse_error.fail "Frame: ndjson: field %S is not 16 hex digits" k;
  match Int64.of_string_opt ("0x" ^ s) with
  | Some bits -> Int64.float_of_bits bits
  | None -> Parse_error.fail "Frame: ndjson: field %S is not hex" k

(* --- ndjson encoding ---------------------------------------------------- *)

let json_of_event = function
  | Data { session; symbols } ->
      J_obj
        [
          ("type", J_string "data");
          ("session", J_int session);
          ("symbols", J_list (Array.to_list (Array.map (fun s -> J_int s) symbols)));
        ]
  | End_of_session { session } ->
      J_obj [ ("type", J_string "end"); ("session", J_int session) ]

let json_of_request = function
  | Batch { id; events } ->
      J_obj
        [
          ("type", J_string "batch");
          ("id", J_int id);
          ("events", J_list (List.map json_of_event events));
        ]
  | Stats_request -> J_obj [ ("type", J_string "stats") ]
  | Health_request -> J_obj [ ("type", J_string "health") ]
  | Drain_request -> J_obj [ ("type", J_string "drain") ]
  | Quit -> J_obj [ ("type", J_string "quit") ]

let json_of_incident_event = function
  | Opened { session; position } ->
      J_obj
        [
          ("type", J_string "opened");
          ("session", J_int session);
          ("position", J_int position);
        ]
  | Closed { session; incident = i } ->
      J_obj
        [
          ("type", J_string "closed");
          ("session", J_int session);
          ("first_start", J_int i.first_start);
          ("last_start", J_int i.last_start);
          ("cover_from", J_int i.cover_from);
          ("cover_to", J_int i.cover_to);
          ("alarms", J_int i.alarms);
          (* bits are authoritative (lossless); the float field rides
             along for human readers *)
          ( "peak_score_bits",
            J_string (Printf.sprintf "%016Lx" (Int64.bits_of_float i.peak_score))
          );
          ("peak_score", J_float i.peak_score);
        ]

let json_of_shard_stats s =
  J_obj
    [
      ("shard", J_int s.shard);
      ("sessions_resident", J_int s.sessions_resident);
      ("events", J_int s.events);
      ("symbols", J_int s.symbols);
      ("batches", J_int s.batches);
      ("rejected", J_int s.rejected);
      ("queue_depth", J_int s.queue_depth);
      ("bytes_resident", J_int s.bytes_resident);
      ("busy_ns", J_int s.busy_ns);
      ("p50_batch_ns", J_int s.p50_batch_ns);
      ("p99_batch_ns", J_int s.p99_batch_ns);
      ("restarts", J_int s.restarts);
      ("degraded", J_bool s.degraded);
      ("retry_after_ms", J_int s.retry_after_ms);
      ("windows", J_int s.windows);
      ("alarms", J_int s.alarms);
      (* bits are authoritative (lossless); the float field rides
         along for human readers *)
      ( "threshold_bits",
        J_string (Printf.sprintf "%016Lx" (Int64.bits_of_float s.threshold)) );
      ("threshold", J_float s.threshold);
    ]

let json_of_shard_health h =
  J_obj
    [
      ("shard", J_int h.h_shard);
      ("alive", J_bool h.h_alive);
      ("degraded", J_bool h.h_degraded);
      ("restarts", J_int h.h_restarts);
      ("queue_depth", J_int h.h_queue_depth);
      ("retry_after_ms", J_int h.h_retry_after_ms);
      ("windows", J_int h.h_windows);
      ("alarms", J_int h.h_alarms);
      ( "threshold_bits",
        J_string (Printf.sprintf "%016Lx" (Int64.bits_of_float h.h_threshold)) );
      ("threshold", J_float h.h_threshold);
    ]

let json_of_response = function
  | Ack { id; shard; events; incidents } ->
      J_obj
        [
          ("type", J_string "ack");
          ("id", J_int id);
          ("shard", J_int shard);
          ("events", J_int events);
          ("incidents", J_list (List.map json_of_incident_event incidents));
        ]
  | Rejected { id; retry_after_ms } ->
      J_obj
        [
          ("type", J_string "rejected");
          ("id", J_int id);
          ("retry_after_ms", J_int retry_after_ms);
        ]
  | Failed { id; shard; events; reason } ->
      J_obj
        [
          ("type", J_string "failed");
          ("id", J_int id);
          ("shard", J_int shard);
          ("events", J_int events);
          ("reason", J_string reason);
        ]
  | Stats shards ->
      J_obj
        [
          ("type", J_string "stats");
          ("shards", J_list (List.map json_of_shard_stats shards));
        ]
  | Health { shards_health; connections; evictions; draining } ->
      J_obj
        [
          ("type", J_string "health");
          ("connections", J_int connections);
          ("evictions", J_int evictions);
          ("draining", J_bool draining);
          ("shards", J_list (List.map json_of_shard_health shards_health));
        ]
  | Drained { batches } ->
      J_obj [ ("type", J_string "drained"); ("batches", J_int batches) ]
  | Error_msg message ->
      J_obj [ ("type", J_string "error"); ("message", J_string message) ]

let add_json_line out v =
  print_json out v;
  Buffer.add_char out '\n'

(* --- ndjson decoding ---------------------------------------------------- *)

let event_of_json v =
  let fields = obj_fields "event" v in
  match str_field fields "type" with
  | "data" ->
      let symbols =
        list_field fields "symbols"
        |> List.map (function
             | J_int s when s >= 0 && s <= 254 -> s
             | J_int s ->
                 Parse_error.fail "Frame: ndjson: symbol %d out of range" s
             | _ -> Parse_error.fail "Frame: ndjson: symbol is not an integer")
        |> Array.of_list
      in
      Data { session = nonneg_field fields "session"; symbols }
  | "end" -> End_of_session { session = nonneg_field fields "session" }
  | t -> Parse_error.fail "Frame: ndjson: unknown event type %S" t

let request_of_json v =
  let fields = obj_fields "request" v in
  match str_field fields "type" with
  | "batch" ->
      let events = List.map event_of_json (list_field fields "events") in
      if events = [] then
        Parse_error.fail "Frame: a batch must carry at least one event";
      Batch { id = nonneg_field fields "id"; events }
  | "stats" -> Stats_request
  | "health" -> Health_request
  | "drain" -> Drain_request
  | "quit" -> Quit
  | t -> Parse_error.fail "Frame: ndjson: unknown request type %S" t

let incident_event_of_json v =
  let fields = obj_fields "incident event" v in
  match str_field fields "type" with
  | "opened" ->
      Opened
        {
          session = nonneg_field fields "session";
          position = nonneg_field fields "position";
        }
  | "closed" ->
      Closed
        {
          session = nonneg_field fields "session";
          incident =
            {
              first_start = int_field fields "first_start";
              last_start = int_field fields "last_start";
              cover_from = int_field fields "cover_from";
              cover_to = int_field fields "cover_to";
              alarms = nonneg_field fields "alarms";
              peak_score = bits_field fields "peak_score_bits";
            };
        }
  | t -> Parse_error.fail "Frame: ndjson: unknown incident type %S" t

let shard_stats_of_json v =
  let fields = obj_fields "shard stats" v in
  {
    shard = int_field fields "shard";
    sessions_resident = nonneg_field fields "sessions_resident";
    events = nonneg_field fields "events";
    symbols = nonneg_field fields "symbols";
    batches = nonneg_field fields "batches";
    rejected = nonneg_field fields "rejected";
    queue_depth = nonneg_field fields "queue_depth";
    bytes_resident = nonneg_field fields "bytes_resident";
    busy_ns = nonneg_field fields "busy_ns";
    p50_batch_ns = nonneg_field fields "p50_batch_ns";
    p99_batch_ns = nonneg_field fields "p99_batch_ns";
    restarts = nonneg_field fields "restarts";
    degraded = bool_field fields "degraded";
    retry_after_ms = nonneg_field fields "retry_after_ms";
    windows = nonneg_field fields "windows";
    alarms = nonneg_field fields "alarms";
    threshold = bits_field fields "threshold_bits";
  }

let shard_health_of_json v =
  let fields = obj_fields "shard health" v in
  {
    h_shard = int_field fields "shard";
    h_alive = bool_field fields "alive";
    h_degraded = bool_field fields "degraded";
    h_restarts = nonneg_field fields "restarts";
    h_queue_depth = nonneg_field fields "queue_depth";
    h_retry_after_ms = nonneg_field fields "retry_after_ms";
    h_windows = nonneg_field fields "windows";
    h_alarms = nonneg_field fields "alarms";
    h_threshold = bits_field fields "threshold_bits";
  }

let response_of_json v =
  let fields = obj_fields "response" v in
  match str_field fields "type" with
  | "ack" ->
      Ack
        {
          id = nonneg_field fields "id";
          shard = int_field fields "shard";
          events = nonneg_field fields "events";
          incidents =
            List.map incident_event_of_json (list_field fields "incidents");
        }
  | "rejected" ->
      Rejected
        {
          id = nonneg_field fields "id";
          retry_after_ms = nonneg_field fields "retry_after_ms";
        }
  | "failed" ->
      Failed
        {
          id = nonneg_field fields "id";
          shard = int_field fields "shard";
          events = nonneg_field fields "events";
          reason = str_field fields "reason";
        }
  | "stats" -> Stats (List.map shard_stats_of_json (list_field fields "shards"))
  | "health" ->
      Health
        {
          shards_health =
            List.map shard_health_of_json (list_field fields "shards");
          connections = nonneg_field fields "connections";
          evictions = nonneg_field fields "evictions";
          draining = bool_field fields "draining";
        }
  | "drained" -> Drained { batches = nonneg_field fields "batches" }
  | "error" -> Error_msg (str_field fields "message")
  | t -> Parse_error.fail "Frame: ndjson: unknown response type %S" t

(* --- public encoders ---------------------------------------------------- *)

let write_request out encoding request =
  (match request with
  | Batch { id; events } -> check_batch id events
  | Stats_request | Health_request | Drain_request | Quit -> ());
  match encoding with
  | Binary -> binary_of_request out request
  | Ndjson -> add_json_line out (json_of_request request)

let write_response out encoding response =
  match encoding with
  | Binary -> binary_of_response out response
  | Ndjson -> add_json_line out (json_of_response response)

(* --- incremental reader ------------------------------------------------- *)

type reader = {
  mutable buf : bytes;
  mutable start : int;  (* first unconsumed byte *)
  mutable fill : int;  (* end of valid data *)
  mutable enc : encoding option;
}

let reader () = { buf = Bytes.create 4096; start = 0; fill = 0; enc = None }

let available r = r.fill - r.start

let feed_bytes r src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Frame.feed_bytes: bad slice";
  let cap = Bytes.length r.buf in
  if r.fill + len > cap then begin
    let live = available r in
    if live + len <= cap && r.start > 0 then begin
      (* compaction is enough *)
      Bytes.blit r.buf r.start r.buf 0 live;
      r.start <- 0;
      r.fill <- live
    end
    else begin
      let cap' = max (live + len) (cap * 2) in
      let buf' = Bytes.create cap' in
      Bytes.blit r.buf r.start buf' 0 live;
      r.buf <- buf';
      r.start <- 0;
      r.fill <- live
    end
  end;
  Bytes.blit src pos r.buf r.fill len;
  r.fill <- r.fill + len

let sniff r =
  match r.enc with
  | Some e -> Some e
  | None ->
      if available r = 0 then None
      else begin
        let e =
          if Bytes.get r.buf r.start = binary_magic then Binary else Ndjson
        in
        r.enc <- Some e;
        Some e
      end

let reader_encoding r = sniff r

(* One complete binary payload, or None for more bytes. *)
let next_binary_payload r =
  if available r < 5 then None
  else begin
    if Bytes.get r.buf r.start <> binary_magic then
      Parse_error.fail "Frame: bad frame magic 0x%02x"
        (Char.code (Bytes.get r.buf r.start));
    let len =
      Int32.to_int (Bytes.get_int32_le r.buf (r.start + 1)) land 0xffffffff
    in
    if len > max_payload then
      Parse_error.fail "Frame: frame length %d exceeds %d" len max_payload;
    if available r < 5 + len then None
    else begin
      let c = { data = r.buf; pos = r.start + 5; limit = r.start + 5 + len } in
      r.start <- r.start + 5 + len;
      Some c
    end
  end

(* One complete ndjson line (sans newline), skipping blank lines. *)
let rec next_line r =
  match Bytes.index_from_opt r.buf r.start '\n' with
  | Some i when i < r.fill ->
      let line = Bytes.sub_string r.buf r.start (i - r.start) in
      r.start <- i + 1;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if String.for_all (fun c -> c = ' ' || c = '\t') line then next_line r
      else Some line
  | Some _ | None ->
      if available r > max_payload then
        Parse_error.fail "Frame: ndjson line exceeds %d bytes" max_payload;
      None

let next_frame r ~binary ~ndjson =
  match sniff r with
  | None -> None
  | Some Binary -> Option.map binary (next_binary_payload r)
  | Some Ndjson -> Option.map (fun l -> ndjson (parse_json l)) (next_line r)

let next_request r =
  next_frame r ~binary:decode_binary_request ~ndjson:request_of_json

let next_response r =
  next_frame r ~binary:decode_binary_response ~ndjson:response_of_json

(* --- incident-log rendering --------------------------------------------- *)

let render_incident_event = function
  | Opened { session; position } ->
      Printf.sprintf "session %d opened %d" session position
  | Closed { session; incident = i } ->
      Printf.sprintf
        "session %d closed first=%d last=%d cover=%d..%d alarms=%d peak=%016Lx"
        session i.first_start i.last_start i.cover_from i.cover_to i.alarms
        (Int64.bits_of_float i.peak_score)

(* --- health rendering ---------------------------------------------------- *)

let render_health h =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "serve: connections=%d evictions=%d draining=%b\n"
       h.connections h.evictions h.draining);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "shard %d: %s restarts=%d queue_depth=%d retry_after_ms=%d \
            windows=%d alarms=%d threshold=%h\n"
           s.h_shard
           (if s.h_degraded then "DEGRADED"
            else if s.h_alive then "alive"
            else "dead")
           s.h_restarts s.h_queue_depth s.h_retry_after_ms s.h_windows
           s.h_alarms s.h_threshold))
    h.shards_health;
  Buffer.contents b
