
type t = { alphabet : Alphabet.t; traces : Trace.t list }

let of_traces traces =
  match traces with
  (* lint: allow partiality — documented precondition *)
  | [] -> invalid_arg "Sessions.of_traces: empty corpus"
  | first :: rest ->
      let alphabet = Trace.alphabet first in
      List.iter
        (fun tr ->
          if Alphabet.size (Trace.alphabet tr) <> Alphabet.size alphabet then
            (* lint: allow partiality — documented precondition *)
            invalid_arg "Sessions.of_traces: mismatched alphabets")
        rest;
      { alphabet; traces }

let alphabet t = t.alphabet
let count t = List.length t.traces
let total_length t = List.fold_left (fun acc tr -> acc + Trace.length tr) 0 t.traces
let traces t = t.traces

let window_count t ~width =
  List.fold_left (fun acc tr -> acc + Trace.window_count tr ~width) 0 t.traces

let seq_db t ~width = Seq_db.of_traces ~width t.traces

let split trace ~session_length =
  assert (session_length >= 2);
  let n = Trace.length trace in
  let rec cut pos acc =
    if pos >= n then List.rev acc
    else begin
      let remaining = n - pos in
      if remaining >= session_length then
        cut (pos + session_length)
          (Trace.sub trace ~pos ~len:session_length :: acc)
      else if remaining >= session_length / 2 then
        List.rev (Trace.sub trace ~pos ~len:remaining :: acc)
      else List.rev acc
    end
  in
  of_traces (cut 0 [])

let generate make rng ~sessions ~length =
  assert (sessions >= 1 && length >= 1);
  let traces =
    List.init sessions (fun i ->
        let tr = make rng i in
        assert (Trace.length tr = length);
        tr)
  in
  of_traces traces
