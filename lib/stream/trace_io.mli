(** Text serialisation of traces.

    Format: one header line [#alphabet <size>] followed by
    whitespace-separated integer symbols (any line structure).  This is
    the interchange format of the [seqdiv synth] CLI command. *)

val to_string : Trace.t -> string
(** Serialise (symbols 16 per line). *)

val of_string : string -> Trace.t
(** Parse.  @raise Parse_error.Error on a malformed header, a
    non-integer token or an out-of-range symbol. *)

val to_file : string -> Trace.t -> unit
(** Write to a file path. *)

val of_file : string -> Trace.t
(** Read from a file path.  @raise Sys_error or {!Parse_error.Error}. *)
