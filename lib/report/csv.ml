open Seqdiv_core

let escape field =
  let needs_quotes =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if needs_quotes then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let row fields = String.concat "," (List.map escape fields)

let of_rows ~header rows =
  String.concat "" (List.map (fun r -> row r ^ "\n") (header :: rows))

let map_rows map =
  Performance_map.fold map ~init:[] ~f:(fun acc ~anomaly_size ~window o ->
      [
        Performance_map.detector map;
        string_of_int anomaly_size;
        string_of_int window;
        (match o with
        | Outcome.Blind -> "blind"
        | Outcome.Weak _ -> "weak"
        | Outcome.Capable _ -> "capable"
        | Outcome.Failed fault ->
            Printf.sprintf "failed:%s"
              (Fault.severity_to_string fault.Fault.severity));
        Printf.sprintf "%.6f" (Outcome.max_response o);
      ]
      :: acc)
  |> List.rev

let write_file path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_rows ~header rows))
