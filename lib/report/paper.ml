open Seqdiv_stream
open Seqdiv_core
open Seqdiv_detectors
open Seqdiv_synth

let figure2 suite ~window ~anomaly_size =
  let test = Suite.stream suite ~anomaly_size ~window in
  let inj = test.Suite.injection in
  let trace = inj.Injector.trace in
  let pos = inj.Injector.position in
  let size = Array.length inj.Injector.anomaly in
  let lo, hi = Injector.incident_span ~position:pos ~size ~width:window in
  let show_from = Stdlib.max 0 (pos - window - 2) in
  let show_to =
    Stdlib.min (Trace.length trace - 1) (pos + size + window + 1)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "Figure 2 — boundary sequences and incident span (DW=%d, AS=%d)\n"
       window anomaly_size);
  Buffer.add_string buf "  stream: ";
  for i = show_from to show_to do
    Buffer.add_string buf (string_of_int (Trace.get trace i));
    Buffer.add_char buf ' '
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "          ";
  for i = show_from to show_to do
    let c =
      if i >= pos && i < pos + size then 'F'
      else if i >= pos - window + 1 && i < pos + size + window - 1 then '+'
      else ' '
    in
    Buffer.add_char buf c;
    Buffer.add_char buf ' '
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf
       "  F: injected foreign sequence; +: background elements involved in \
        boundary sequences\n\
       \  incident span: window starts %d..%d (%d windows of size %d); \
        boundary sequences: 2(DW-1) = %d\n"
       lo hi (hi - lo + 1) window
       (2 * (window - 1)));
  Buffer.contents buf

let figure7 () =
  let names = [| "cd"; "<1>"; "ls"; "laf"; "tar" |] in
  let normal = [| 0; 1; 2; 3; 4 |] in
  let foreign = [| 0; 1; 2; 3; 0 |] (* final element differs: "cd" *) in
  let pp_seq s =
    s |> Array.to_list |> List.map (fun i -> names.(i)) |> String.concat " "
  in
  let sim_id = Lane_brodley.similarity normal normal in
  let sim_f = Lane_brodley.similarity normal foreign in
  Printf.sprintf
    "Figure 7 — L&B similarity between two size-5 sequences\n\
    \  normal  vs normal : %-22s score = %d (maximum, DW(DW+1)/2 = %d)\n\
    \  normal  vs foreign: %-22s score = %d (one terminal mismatch)\n\
    \  the dip from %d to %d is all that marks the foreign sequence; the \
     maximally\n\
    \  anomalous value for this detector is 0, so the response stays close \
     to normal.\n"
    (pp_seq normal) sim_id
    (Lane_brodley.max_similarity 5)
    (pp_seq foreign) sim_f sim_id sim_f

let figure_map map = Ascii_map.render map

let table1 maps =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "T1 — coverage summary (cells are AS x DW pairs)\n";
  let summaries = List.map Experiment.summary maps in
  (* The failed column appears only on a degraded (partial) run, so
     healthy outputs stay byte-identical with or without supervision. *)
  let any_failed = List.exists (fun s -> s.Experiment.failed > 0) summaries in
  let columns =
    [ "detector"; "capable"; "weak"; "blind" ]
    @ (if any_failed then [ "failed" ] else [])
    @ [ "coverage" ]
  in
  let summary_table = Table.make ~columns in
  List.iter
    (fun s ->
      Table.add_row summary_table
        ([
           s.Experiment.detector;
           string_of_int s.Experiment.capable;
           string_of_int s.Experiment.weak;
           string_of_int s.Experiment.blind;
         ]
        @ (if any_failed then [ string_of_int s.Experiment.failed ] else [])
        @ [ Printf.sprintf "%.0f%%" (100.0 *. s.Experiment.capable_fraction) ]))
    summaries;
  Buffer.add_string buf (Table.to_string summary_table);
  Buffer.add_string buf "\nPairwise coverage relations:\n";
  let rel_table =
    Table.make
      ~columns:[ "pair"; "left-only"; "both"; "right-only"; "jaccard"; "relation" ]
  in
  List.iter
    (fun r ->
      let relation_text =
        if r.Experiment.left_subset_of_right && r.Experiment.right_subset_of_left
        then "equal"
        else if r.Experiment.left_subset_of_right then
          r.Experiment.left ^ " subset of " ^ r.Experiment.right
        else if r.Experiment.right_subset_of_left then
          r.Experiment.right ^ " subset of " ^ r.Experiment.left
        else "incomparable"
      in
      Table.add_row rel_table
        [
          r.Experiment.left ^ " vs " ^ r.Experiment.right;
          string_of_int r.Experiment.left_only;
          string_of_int r.Experiment.both;
          string_of_int r.Experiment.right_only;
          Printf.sprintf "%.2f" r.Experiment.jaccard;
          relation_text;
        ])
    (Experiment.pairwise_relations maps);
  Buffer.add_string buf (Table.to_string rel_table);
  Buffer.contents buf

let table2 (r : Deployment.suppressor_report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "T2 — false alarms and the Stide-suppressor ensemble (DW=%d, AS=%d)\n"
       r.Deployment.window r.Deployment.anomaly_size);
  let t =
    Table.make ~columns:[ "detector"; "windows"; "false alarms"; "FA rate"; "hit" ]
  in
  List.iter
    (fun (d : Deployment.detector_report) ->
      let fa = d.Deployment.false_alarms in
      Table.add_row t
        [
          d.Deployment.name;
          string_of_int fa.False_alarm.windows;
          string_of_int fa.False_alarm.alarms;
          Printf.sprintf "%.5f" fa.False_alarm.rate;
          (if d.Deployment.hit then "yes" else "no");
        ])
    r.Deployment.detectors;
  Buffer.add_string buf (Table.to_string t);
  let s = r.Deployment.suppression in
  Buffer.add_string buf
    (Printf.sprintf
       "\nMarkov alarms on the deployment stream: %d; corroborated by Stide: \
        %d; suppressed: %d\n\
        Conjunctive ensemble (markov AND stide) retains the injected-anomaly \
        hit: %s\n"
       s.Ensemble.primary_alarms s.Ensemble.corroborated s.Ensemble.suppressed
       (if r.Deployment.ensemble_hit then "yes" else "no"));
  Buffer.contents buf

let table3 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "T3 — lowering the L&B threshold to the next-most-normal value\n";
  let t =
    Table.make ~columns:[ "DW"; "score threshold"; "MFS caught"; "FA rate" ]
  in
  List.iter
    (fun (p : Deployment.lnb_threshold_point) ->
      Table.add_row t
        [
          string_of_int p.Deployment.window;
          Printf.sprintf "%.4f" p.Deployment.score_threshold;
          (if p.Deployment.hit then "yes" else "no");
          Printf.sprintf "%.5f" p.Deployment.false_alarm_rate;
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let ablation1 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "A1 — Stide with and without the locality frame count\n";
  let t =
    Table.make
      ~columns:
        [ "frame"; "min count"; "hit raw"; "hit LFC"; "FAs raw"; "FAs LFC" ]
  in
  List.iter
    (fun (p : Ablation.lfc_point) ->
      Table.add_row t
        [
          string_of_int p.Ablation.frame;
          string_of_int p.Ablation.min_count;
          (if p.Ablation.raw_hit then "yes" else "no");
          (if p.Ablation.lfc_hit then "yes" else "no");
          string_of_int p.Ablation.raw_false_alarms;
          string_of_int p.Ablation.lfc_false_alarms;
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let ablation2 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "A2 — neural-network hyper-parameter sensitivity\n";
  let t =
    Table.make
      ~columns:
        [ "hidden"; "epochs"; "lr"; "momentum"; "loss"; "capable"; "weak"; "min span resp" ]
  in
  List.iter
    (fun (p : Ablation.nn_point) ->
      let pr = p.Ablation.params in
      Table.add_row t
        [
          string_of_int pr.Neural.hidden;
          string_of_int pr.Neural.epochs;
          Printf.sprintf "%.2f" pr.Neural.learning_rate;
          Printf.sprintf "%.2f" pr.Neural.momentum;
          Printf.sprintf "%.4f" p.Ablation.loss;
          string_of_int p.Ablation.capable;
          string_of_int p.Ablation.weak;
          Printf.sprintf "%.4f" p.Ablation.min_span_response;
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let ablation3 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "A3 — alphabet-size invariance of the map shapes\n";
  let t =
    Table.make
      ~columns:[ "alphabet"; "stide = diagonal"; "markov = everywhere" ]
  in
  List.iter
    (fun (p : Ablation.alphabet_point) ->
      Table.add_row t
        [
          string_of_int p.Ablation.alphabet_size;
          (if p.Ablation.stide_diagonal then "yes" else "no");
          (if p.Ablation.markov_everywhere then "yes" else "no");
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let extension1 ~paper_maps ~extension_maps =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "E1 — extension detectors (t-stide and HMM, Warrender et al. 1999)\n\n";
  List.iter
    (fun m ->
      Buffer.add_string buf (Ascii_map.render m);
      Buffer.add_char buf '\n')
    extension_maps;
  let t =
    Table.make ~columns:[ "pair"; "jaccard"; "relation" ]
  in
  List.iter
    (fun ext ->
      List.iter
        (fun paper_map ->
          let r = Experiment.relation ext paper_map in
          let relation_text =
            if r.Experiment.left_subset_of_right && r.Experiment.right_subset_of_left
            then "equal coverage"
            else if r.Experiment.left_subset_of_right then "subset"
            else if r.Experiment.right_subset_of_left then "superset"
            else "incomparable"
          in
          Table.add_row t
            [
              r.Experiment.left ^ " vs " ^ r.Experiment.right;
              Printf.sprintf "%.2f" r.Experiment.jaccard;
              relation_text;
            ])
        paper_maps)
    extension_maps;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let extension2 maps =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "E2 — rare-sequence anomalies (present in training, below the 0.5% \
     threshold)\n";
  let t =
    Table.make ~columns:[ "detector"; "capable"; "weak"; "blind"; "verdict" ]
  in
  List.iter
    (fun m ->
      let s = Experiment.summary m in
      let cells = Performance_map.cell_count m in
      let verdict =
        if s.Experiment.capable = cells then "rare-sensitive"
        else if s.Experiment.blind = cells then "blind to rarity"
        else "mixed"
      in
      Table.add_row t
        [
          s.Experiment.detector;
          string_of_int s.Experiment.capable;
          string_of_int s.Experiment.weak;
          string_of_int s.Experiment.blind;
          verdict;
        ])
    maps;
  Buffer.add_string buf (Table.to_string t);
  Buffer.add_string buf
    "Stide and L&B perceive a rare-but-seen sequence as completely normal \
     at every\ncell — the Section 5.1 dichotomy, charted.\n";
  Buffer.contents buf

let ablation6 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "A6 — window selection: Stide coverage vs false alarms (\"Why 6?\")\n";
  let t =
    Table.make ~columns:[ "DW"; "anomaly sizes covered"; "FA rate (undertrained)" ]
  in
  List.iter
    (fun (p : Ablation.window_point) ->
      Table.add_row t
        [
          string_of_int p.Ablation.window;
          Printf.sprintf "%.0f%%" (100.0 *. p.Ablation.coverage);
          Printf.sprintf "%.5f" p.Ablation.false_alarm_rate;
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.add_string buf
    "Growing the window buys coverage of longer anomalies but pays in false \
     alarms\nonce training no longer exhausts benign windows — the window \
     should be sized\nto the longest anomaly that matters, and no larger.\n";
  Buffer.contents buf

let extension3 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "E3 — map-shape invariance across seeds\n";
  let t =
    Table.make
      ~columns:[ "seed"; "stide = diagonal"; "markov = everywhere"; "lnb = nowhere" ]
  in
  List.iter
    (fun (p : Ablation.seed_point) ->
      let yn b = if b then "yes" else "no" in
      Table.add_row t
        [
          string_of_int p.Ablation.seed;
          yn p.Ablation.stide_diagonal;
          yn p.Ablation.markov_everywhere;
          yn p.Ablation.lnb_nowhere;
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let ablation7 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "A7 — synthesis operating envelope: deviation-rate sweep\n";
  let t =
    Table.make
      ~columns:
        [ "deviation"; "MFS sizes constructible"; "suite builds"; "stide diagonal" ]
  in
  List.iter
    (fun (p : Ablation.deviation_point) ->
      Table.add_row t
        [
          Printf.sprintf "%g" p.Ablation.deviation;
          string_of_int p.Ablation.sizes_constructible;
          (if p.Ablation.suite_builds then "yes" else "no");
          (if p.Ablation.suite_builds then
             if p.Ablation.stide_diagonal_held then "yes" else "no"
           else "-");
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.add_string buf
    "Too few deviations and the anomalies' sub-sequences are missing from \
     training;\ntoo many and the \"foreign\" sequences start occurring — the \
     band in between is\nwhere the paper's construction lives (DESIGN.md \
     section 5).\n";
  Buffer.contents buf

let ablation8 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "A8 — Laplace smoothing vs the maximal-response guarantee (Markov)\n";
  let t =
    Table.make ~columns:[ "alpha"; "capable"; "weak"; "max span response" ]
  in
  List.iter
    (fun (p : Ablation.smoothing_point) ->
      Table.add_row t
        [
          Printf.sprintf "%g" p.Ablation.alpha;
          string_of_int p.Ablation.capable;
          string_of_int p.Ablation.weak;
          Printf.sprintf "%.5f" p.Ablation.max_span_response;
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.add_string buf
    "Smoothing caps every estimated probability away from 0, so the \
     threshold-of-1\ncomparison of the paper presumes unsmoothed \
     maximum-likelihood estimates.\n";
  Buffer.contents buf

let extension4 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "E4 — per-session classification\n";
  let t =
    Table.make
      ~columns:[ "detector"; "TP"; "FN"; "FP"; "TN"; "detection"; "session FA" ]
  in
  List.iter
    (fun (name, c) ->
      Table.add_row t
        [
          name;
          string_of_int c.Session_eval.true_positives;
          string_of_int c.Session_eval.false_negatives;
          string_of_int c.Session_eval.false_positives;
          string_of_int c.Session_eval.true_negatives;
          Printf.sprintf "%.2f" (Session_eval.detection_rate c);
          Printf.sprintf "%.2f" (Session_eval.false_alarm_rate c);
        ])
    rows;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf

let ablation4 points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "A4 — sensitivity of the rare-sequence threshold\n";
  let t =
    Table.make
      ~columns:
        [ "threshold"; "rare 2-grams"; "common 2-grams"; "rare-composed MFS(5)" ]
  in
  List.iter
    (fun (p : Ablation.rare_point) ->
      Table.add_row t
        [
          Printf.sprintf "%.4f" p.Ablation.threshold;
          string_of_int p.Ablation.rare_twograms;
          string_of_int p.Ablation.common_twograms;
          string_of_int p.Ablation.mfs_candidates;
        ])
    points;
  Buffer.add_string buf (Table.to_string t);
  Buffer.contents buf
