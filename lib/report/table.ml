type t = { columns : string list; mutable rows : string list list }

let make ~columns =
  (* lint: allow partiality — documented precondition *)
  if columns = [] then invalid_arg "Table.make: no columns";
  { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- t.rows @ [ row ]

let to_string t =
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w c -> Stdlib.max w (String.length c)) widths row)
      (List.map (fun _ -> 0) t.columns)
      (t.columns :: t.rows)
  in
  let pad width cell = cell ^ String.make (width - String.length cell) ' ' in
  let line row =
    (* Right-trim so padding on the last column leaves no trailing blanks. *)
    let s = String.concat "  " (List.map2 pad widths row) in
    let rec rstrip i = if i > 0 && s.[i - 1] = ' ' then rstrip (i - 1) else i in
    String.sub s 0 (rstrip (String.length s))
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let print t = Fmt.pr "%s@?" (to_string t)
