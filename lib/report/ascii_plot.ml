let bounds points =
  let widen lo hi = if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
  match points with
  | [] -> widen 0.0 0.0 |> fun (x0, x1) -> (x0, x1, x0, x1)
  | (x, y) :: rest ->
      let xmin, xmax, ymin, ymax =
        List.fold_left
          (fun (xmin, xmax, ymin, ymax) (px, py) ->
            ( Float.min xmin px,
              Float.max xmax px,
              Float.min ymin py,
              Float.max ymax py ))
          (x, x, y, y) rest
      in
      let x0, x1 = widen xmin xmax in
      let y0, y1 = widen ymin ymax in
      (x0, x1, y0, y1)

let plot_onto grid ~width ~height ~boundsxy mark points =
  let x0, x1, y0, y1 = boundsxy in
  List.iter
    (fun (x, y) ->
      let col =
        int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
      in
      let row =
        (height - 1)
        - int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
      in
      if row >= 0 && row < height && col >= 0 && col < width then
        grid.(row).(col) <- mark)
    points

let render_grid grid ~width ~height ~boundsxy ~x_label ~y_label ~legend =
  let x0, x1, y0, y1 = boundsxy in
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  (match legend with
  | "" -> ()
  | l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n');
  Buffer.add_string buf (Printf.sprintf "%10.4g +" y1);
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf "           |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%10.4g +" y0);
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "            %.4g%s%.4g\n" x0
       (String.make (Stdlib.max 1 (width - 16)) ' ')
       x1);
  (match (x_label, y_label) with
  | "", "" -> ()
  | x, y -> Buffer.add_string buf (Printf.sprintf "            x: %s   y: %s\n" x y));
  Buffer.contents buf

let render ?(width = 60) ?(height = 16) ?(x_label = "") ?(y_label = "") points =
  assert (points <> []);
  assert (width > 2 && height > 2);
  let boundsxy = bounds points in
  let grid = Array.make_matrix height width ' ' in
  plot_onto grid ~width ~height ~boundsxy '*' points;
  render_grid grid ~width ~height ~boundsxy ~x_label ~y_label ~legend:""

let render_series ?(width = 60) ?(height = 16) ?(x_label = "") ?(y_label = "")
    series =
  assert (series <> [] && List.length series <= 9);
  let all_points = List.concat_map snd series in
  assert (all_points <> []);
  let boundsxy = bounds all_points in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun i (_name, points) ->
      plot_onto grid ~width ~height ~boundsxy
        (Char.chr (Char.code 'a' + i))
        points)
    series;
  let legend =
    series
    |> List.mapi (fun i (name, _) ->
           Printf.sprintf "%c=%s" (Char.chr (Char.code 'a' + i)) name)
    |> String.concat "  "
  in
  render_grid grid ~width ~height ~boundsxy ~x_label ~y_label ~legend
