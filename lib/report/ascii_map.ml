open Seqdiv_core

let glyph map ~anomaly_size ~window =
  Outcome.to_char (Performance_map.outcome map ~anomaly_size ~window)

let render map =
  let anomaly_sizes = Performance_map.anomaly_sizes map in
  let windows = List.rev (Performance_map.windows map) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "Performance map — %s (detector window vs anomaly size)\n"
       (Performance_map.detector map));
  List.iter
    (fun window ->
      Buffer.add_string buf (Printf.sprintf "  DW %2d | ? " window);
      List.iter
        (fun anomaly_size ->
          Buffer.add_char buf (glyph map ~anomaly_size ~window);
          Buffer.add_char buf ' ')
        anomaly_sizes;
      Buffer.add_char buf '\n')
    windows;
  Buffer.add_string buf "         +";
  List.iter (fun _ -> Buffer.add_string buf "--") (1 :: anomaly_sizes);
  Buffer.add_char buf '\n';
  Buffer.add_string buf "           1 ";
  List.iter
    (fun anomaly_size -> Buffer.add_string buf (Printf.sprintf "%d " anomaly_size))
    anomaly_sizes;
  Buffer.add_string buf "  <- anomaly size (AS)\n";
  Buffer.add_string buf
    "  legend: * capable (maximal response)   o weak   . blind   ! failed   \
     ? undefined\n";
  (match Performance_map.failed_cells map with
  | [] -> ()
  | failed ->
      Buffer.add_string buf
        (Printf.sprintf "  %d cell(s) FAILED — partial map:\n"
           (List.length failed));
      List.iter
        (fun (anomaly_size, window) ->
          match Performance_map.outcome map ~anomaly_size ~window with
          | Outcome.Failed fault ->
              Buffer.add_string buf
                (Printf.sprintf "    AS %2d DW %2d: %s\n" anomaly_size window
                   (Fault.to_string fault))
          | Outcome.Blind | Outcome.Weak _ | Outcome.Capable _ -> ())
        failed);
  Buffer.contents buf

let render_compact map =
  let anomaly_sizes = Performance_map.anomaly_sizes map in
  let windows = List.rev (Performance_map.windows map) in
  windows
  |> List.map (fun window ->
         anomaly_sizes
         |> List.map (fun anomaly_size ->
                String.make 1 (glyph map ~anomaly_size ~window))
         |> String.concat "")
  |> String.concat "\n"

let print map = Fmt.pr "%s@?" (render map)
