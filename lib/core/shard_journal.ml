(* Per-shard serve journal: Journal's disciplines (versioned magic,
   context pinning, per-line FNV-1a digests, append+fsync fast path,
   threshold compaction, torn-tail recovery) plus commit groups, which
   make one flush atomic with respect to recovery.  See the .mli for
   the contract and the format rationale. *)

open Seqdiv_stream

let magic = "seqdiv-shard-journal v1"

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type session_state = {
  js_session : int;
  js_consumed : int;
  js_state : int;
  js_open : Frame.incident option;
  js_adaptive : string option;
      (* opaque Adaptive_threshold token; space-free by construction *)
}

type batch_record = {
  jb_id : int;
  jb_shard : int;
  jb_events : int;
  jb_incidents : Frame.incident_event list;
}

(* A parsed record line, pre-commit. *)
type record =
  | Session of session_state
  | Ended of int
  | Batch of batch_record

type t = {
  path : string;
  context : string;
  compact_factor : float;
  batch_history : int;
  live : (int, session_state) Hashtbl.t;
  batch_q : batch_record Queue.t; (* oldest first, bounded *)
  mutable pending : string list; (* record lines, newest first *)
  mutable pending_count : int;
  mutable written_lines : int; (* record + commit lines on disk *)
  mutable appendable : bool;
  mutable recovered_sessions : int;
  mutable recovered_batches : int;
  mutable dropped : int;
  mutable appends : int;
  mutable compactions : int;
}

(* --- line codec --------------------------------------------------------- *)

let fnv_string s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let with_digest body = Printf.sprintf "%s %016Lx" body (fnv_string body)

let incident_token (i : Frame.incident) =
  Printf.sprintf "%d:%d:%d:%d:%d:%016Lx" i.Frame.first_start i.Frame.last_start
    i.Frame.cover_from i.Frame.cover_to i.Frame.alarms
    (Int64.bits_of_float i.Frame.peak_score)

let incident_of_token tok =
  match String.split_on_char ':' tok with
  | [ first; last; cfrom; cto; alarms; bits ] -> (
      match
        ( int_of_string_opt first,
          int_of_string_opt last,
          int_of_string_opt cfrom,
          int_of_string_opt cto,
          int_of_string_opt alarms,
          Int64.of_string_opt ("0x" ^ bits) )
      with
      | Some first_start, Some last_start, Some cover_from, Some cover_to,
        Some alarms, Some bits ->
          Some
            {
              Frame.first_start;
              last_start;
              cover_from;
              cover_to;
              alarms;
              peak_score = Int64.float_of_bits bits;
            }
      | _ -> None)
  | _ -> None

(* Static sessions keep the historical 5-field line; adaptive sessions
   append the controller token as a 6th field (it contains no spaces,
   so the space-split parse sees exactly one extra field). *)
let session_body s =
  let base =
    Printf.sprintf "s %d %d %d %s" s.js_session s.js_consumed s.js_state
      (match s.js_open with None -> "-" | Some i -> incident_token i)
  in
  match s.js_adaptive with
  | None -> base
  | Some token -> base ^ " " ^ token

let ended_body session = Printf.sprintf "e %d" session

let incident_event_token = function
  | Frame.Opened { session; position } -> Printf.sprintf "o:%d:%d" session position
  | Frame.Closed { session; incident } ->
      Printf.sprintf "c:%d:%s" session (incident_token incident)

let incident_event_of_token tok =
  match String.index_opt tok ':' with
  | None -> None
  | Some cut -> (
      let rest = String.sub tok (cut + 1) (String.length tok - cut - 1) in
      match String.sub tok 0 cut with
      | "o" -> (
          match String.split_on_char ':' rest with
          | [ session; position ] -> (
              match (int_of_string_opt session, int_of_string_opt position) with
              | Some session, Some position ->
                  Some (Frame.Opened { session; position })
              | _ -> None)
          | _ -> None)
      | "c" -> (
          match String.index_opt rest ':' with
          | None -> None
          | Some cut2 -> (
              let session = String.sub rest 0 cut2 in
              let inc = String.sub rest (cut2 + 1) (String.length rest - cut2 - 1) in
              match (int_of_string_opt session, incident_of_token inc) with
              | Some session, Some incident ->
                  Some (Frame.Closed { session; incident })
              | _ -> None))
      | _ -> None)

let batch_body b =
  Printf.sprintf "b %d %d %d %d%s" b.jb_id b.jb_shard b.jb_events
    (List.length b.jb_incidents)
    (String.concat ""
       (List.map (fun e -> " " ^ incident_event_token e) b.jb_incidents))

let commit_body count = Printf.sprintf "k %d" count

(* A digested line back into its parsed form; None on any damage. *)
let parse_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some cut -> (
      let body = String.sub line 0 cut in
      let digest = String.sub line (cut + 1) (String.length line - cut - 1) in
      match Int64.of_string_opt ("0x" ^ digest) with
      | Some d when Int64.equal d (fnv_string body) -> (
          match String.split_on_char ' ' body with
          | [ "s"; session; consumed; state; open_tok ]
          | [ "s"; session; consumed; state; open_tok; _ ] -> (
              let js_adaptive =
                match String.split_on_char ' ' body with
                | [ _; _; _; _; _; adaptive ] when adaptive <> "" ->
                    Some adaptive
                | _ -> None
              in
              match
                ( int_of_string_opt session,
                  int_of_string_opt consumed,
                  int_of_string_opt state )
              with
              | Some js_session, Some js_consumed, Some js_state -> (
                  match
                    if open_tok = "-" then Some None
                    else Option.map Option.some (incident_of_token open_tok)
                  with
                  | Some js_open ->
                      Some
                        (`Record
                          (Session
                             {
                               js_session;
                               js_consumed;
                               js_state;
                               js_open;
                               js_adaptive;
                             }))
                  | None -> None)
              | _ -> None)
          | [ "e"; session ] ->
              Option.map (fun s -> `Record (Ended s)) (int_of_string_opt session)
          | "b" :: id :: shard :: events :: count :: toks -> (
              match
                ( int_of_string_opt id,
                  int_of_string_opt shard,
                  int_of_string_opt events,
                  int_of_string_opt count )
              with
              | Some jb_id, Some jb_shard, Some jb_events, Some count
                when count = List.length toks -> (
                  let incidents = List.map incident_event_of_token toks in
                  if List.for_all Option.is_some incidents then
                    Some
                      (`Record
                        (Batch
                           {
                             jb_id;
                             jb_shard;
                             jb_events;
                             jb_incidents = List.filter_map Fun.id incidents;
                           }))
                  else None)
              | _ -> None)
          | [ "k"; count ] ->
              Option.map (fun c -> `Commit c) (int_of_string_opt count)
          | _ -> None)
      | Some _ | None -> None)

(* --- in-memory state ---------------------------------------------------- *)

let apply_record t = function
  | Session s -> Hashtbl.replace t.live s.js_session s
  | Ended session -> Hashtbl.remove t.live session
  | Batch b ->
      Queue.push b t.batch_q;
      while Queue.length t.batch_q > t.batch_history do
        ignore (Queue.pop t.batch_q)
      done

(* --- load --------------------------------------------------------------- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some line -> go (line :: acc)
        | None -> List.rev acc
      in
      go [])

let ends_with_newline path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      if n = 0 then false
      else begin
        seek_in ic (n - 1);
        input_char ic = '\n'
      end)

let load_into t =
  match read_lines t.path with
  | [] -> corrupt "%s: empty journal (missing %S header)" t.path magic
  | header :: rest ->
      if not (String.equal header magic) then
        corrupt "%s: bad journal header %S (want %S)" t.path header magic;
      (match rest with
      | context_line :: _
        when String.length context_line > 8
             && String.equal (String.sub context_line 0 8) "context " ->
          let ctx = String.sub context_line 8 (String.length context_line - 8) in
          if not (String.equal ctx t.context) then
            corrupt
              "%s: journal was written for a different serve run (%s, this \
               run is %s) — refusing to resume from it"
              t.path ctx t.context
      | _ -> corrupt "%s: missing context line" t.path);
      let cells = match rest with [] -> [] | _ :: cells -> cells in
      (* Commit-group recovery: records buffer until their commit
         marker; a damaged line, a count mismatch, or end-of-file drops
         the buffered group (and everything after a damaged line)
         instead of applying a half-flush. *)
      let rec go group_rev group_n = function
        | [] -> t.dropped <- t.dropped + group_n
        | line :: more -> (
            match parse_line line with
            | Some (`Record r) ->
                go (r :: group_rev) (group_n + 1) more
            | Some (`Commit count) when count = group_n ->
                List.iter (apply_record t) (List.rev group_rev);
                t.written_lines <- t.written_lines + group_n + 1;
                go [] 0 more
            | Some (`Commit _) | None ->
                t.dropped <- t.dropped + group_n + 1 + List.length more)
      in
      go [] 0 cells;
      t.recovered_sessions <- Hashtbl.length t.live;
      t.recovered_batches <- Queue.length t.batch_q;
      t.appendable <- t.dropped = 0 && ends_with_newline t.path

(* --- public api --------------------------------------------------------- *)

let default_compact_factor = 4.0
let default_batch_history = 64

let start ?(resume = false) ?(compact_factor = default_compact_factor)
    ?(batch_history = default_batch_history) ~context path =
  if String.exists (fun c -> c = '\n') context then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Shard_journal.start: context contains a newline";
  let t =
    {
      path;
      context;
      compact_factor;
      batch_history = max 1 batch_history;
      live = Hashtbl.create 256;
      batch_q = Queue.create ();
      pending = [];
      pending_count = 0;
      written_lines = 0;
      appendable = false;
      recovered_sessions = 0;
      recovered_batches = 0;
      dropped = 0;
      appends = 0;
      compactions = 0;
    }
  in
  if resume && Sys.file_exists path then load_into t;
  t

let path t = t.path
let context t = t.context
let recovered_sessions t = t.recovered_sessions
let recovered_batches t = t.recovered_batches
let dropped_lines t = t.dropped
let appends t = t.appends
let compactions t = t.compactions

let push_pending t body record =
  apply_record t record;
  t.pending <- with_digest body :: t.pending;
  t.pending_count <- t.pending_count + 1

let record_session t s = push_pending t (session_body s) (Session s)
let record_end t ~session = push_pending t (ended_body session) (Ended session)
let record_batch t b = push_pending t (batch_body b) (Batch b)

let sessions t =
  (* lint: allow determinism — collection order is erased by the sort *)
  Hashtbl.fold (fun _ s acc -> s :: acc) t.live []
  |> List.sort (fun a b -> compare a.js_session b.js_session)

let batches t = List.of_seq (Queue.to_seq t.batch_q)

let fsync_out oc =
  Stdlib.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let output_line oc line =
  output_string oc line;
  output_char oc '\n'

(* Whole-file rewrite (also compaction): live sessions plus retained
   batches as one committed group, via write-tmp-then-rename. *)
let rewrite t =
  let lines =
    List.map (fun s -> with_digest (session_body s)) (sessions t)
    @ List.map (fun b -> with_digest (batch_body b)) (batches t)
  in
  let count = List.length lines in
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_line oc magic;
         output_line oc ("context " ^ t.context);
         List.iter (output_line oc) lines;
         output_line oc (with_digest (commit_body count));
         fsync_out oc)
   with
  | () -> ()
  (* lint: allow swallow — tmp cleanup only; the exception is re-raised *)
  | exception exn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
  Sys.rename tmp t.path;
  t.written_lines <- count + 1;
  t.pending <- [];
  t.pending_count <- 0;
  t.appendable <- true;
  t.compactions <- t.compactions + 1

let append t =
  let pending = List.rev t.pending in
  let count = t.pending_count in
  (* If the append is interrupted the tail state is unknown; the next
     commit (or resume) must go through the rewrite path. *)
  t.appendable <- false;
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (output_line oc) pending;
      output_line oc (with_digest (commit_body count));
      fsync_out oc);
  t.written_lines <- t.written_lines + count + 1;
  t.pending <- [];
  t.pending_count <- 0;
  t.appendable <- true;
  t.appends <- t.appends + 1

let commit t =
  if t.pending_count > 0 then begin
    let live = Hashtbl.length t.live + Queue.length t.batch_q + 1 in
    let must_rewrite =
      (not t.appendable)
      || not (Sys.file_exists t.path)
      || t.compact_factor <= 0.0
      || float_of_int (t.written_lines + t.pending_count)
         > t.compact_factor *. float_of_int live
    in
    if must_rewrite then rewrite t else append t
  end
