open Seqdiv_stream
open Seqdiv_detectors

type packed =
  | Trained :
      (module Detector.S with type model = 'm) * 'm
      -> packed

type t = { packed : packed; scorer : Flat_automaton.scorer option }
(* [scorer]: an optional compiled fast path.  When present, scoring
   dispatches to the shared flat-automaton loop — which is bit-identical
   to the detector's own trie descent (the [Detector.S.compile]
   contract), so attaching a scorer is behaviourally invisible. *)

let of_packed packed = { packed; scorer = None }

let train (module D : Detector.S) ~window trace =
  (* A train task whose budget is already spent fails here, before the
     detector commits to a possibly checkpoint-free training loop. *)
  Seqdiv_util.Deadline.checkpoint ();
  of_packed (Trained ((module D), D.train ~window trace))

let trie_capable (module D : Detector.S) = Option.is_some D.train_of_trie

let train_of_trie (module D : Detector.S) trie ~window =
  match D.train_of_trie with
  | None -> None
  | Some of_trie -> Some (of_packed (Trained ((module D), of_trie trie ~window)))

let name { packed = Trained ((module D), _); _ } = D.name
let window { packed = Trained ((module D), m); _ } = D.window m
let maximal_epsilon { packed = Trained ((module D), _); _ } = D.maximal_epsilon
let alarm_threshold t = 1.0 -. maximal_epsilon t

let compile ?automaton { packed = Trained ((module D), m); _ } =
  match D.compile with
  | None -> None
  | Some compile_model -> compile_model ?automaton m

let scorer t = t.scorer
let with_scorer t scorer = { t with scorer = Some scorer }

let compiled t =
  match t.scorer with
  | Some _ -> t
  | None -> (
      match compile t with Some s -> with_scorer t s | None -> t)

let score t trace =
  match t with
  | { packed = Trained ((module D), m); scorer = None } -> D.score m trace
  | { packed = Trained ((module D), _); scorer = Some scorer } ->
      let lo, hi =
        Detector.full_range ~trace_len:(Trace.length trace)
          ~window:(Flat_automaton.depth (Flat_automaton.automaton scorer))
      in
      Detector.compiled_score_range scorer ~detector:D.name trace ~lo ~hi

let score_range t trace ~lo ~hi =
  match t with
  | { packed = Trained ((module D), m); scorer = None } ->
      D.score_range m trace ~lo ~hi
  | { packed = Trained ((module D), _); scorer = Some scorer } ->
      Detector.compiled_score_range scorer ~detector:D.name trace ~lo ~hi
