open Seqdiv_detectors

type t =
  | Trained :
      (module Detector.S with type model = 'm) * 'm
      -> t

let train (module D : Detector.S) ~window trace =
  (* A train task whose budget is already spent fails here, before the
     detector commits to a possibly checkpoint-free training loop. *)
  Seqdiv_util.Deadline.checkpoint ();
  Trained ((module D), D.train ~window trace)

let trie_capable (module D : Detector.S) = Option.is_some D.train_of_trie

let train_of_trie (module D : Detector.S) trie ~window =
  match D.train_of_trie with
  | None -> None
  | Some of_trie -> Some (Trained ((module D), of_trie trie ~window))

let name (Trained ((module D), _)) = D.name
let window (Trained ((module D), m)) = D.window m
let maximal_epsilon (Trained ((module D), _)) = D.maximal_epsilon
let alarm_threshold t = 1.0 -. maximal_epsilon t
let score (Trained ((module D), m)) trace = D.score m trace

let score_range (Trained ((module D), m)) trace ~lo ~hi =
  D.score_range m trace ~lo ~hi
