open Seqdiv_stream
open Seqdiv_detectors

type event =
  | Window_scored of Response.item
  | Incident_opened of int
  | Incident_closed of Incident.t

(* Two scoring paths behind one monitor:

   - [Automaton]: a compiled flat-automaton scorer steps once per fed
     symbol — O(1) per symbol, no buffering, no per-window allocation.
   - [Window_slide]: the reference path.  A ring buffer keeps the last
     [window] symbols; each completed window is materialised as a
     one-window trace and scored through the trained model.

   The [Detector.S.compile] contract makes the two emit bit-identical
   events on every valid stream (asserted by test_flat_automaton). *)
type path =
  | Automaton of {
      scorer : Flat_automaton.scorer;
      mutable state : int;
    }
  | Window_slide of {
      trained : Trained.t;
      alphabet : Alphabet.t;
      buffer : int array;  (* ring of the last [window] symbols *)
    }

type t = {
  path : path;
  threshold : float;  (* static threshold (and the adaptive initial) *)
  adaptive : Adaptive_threshold.t option;
  window : int;
  mutable consumed : int;
  (* Static-path window/alarm counters; when [adaptive] is present the
     controller's own (journal-carried, exactly-once) counters are
     authoritative instead. *)
  mutable scored : int;
  mutable alarmed : int;
  mutable open_incident : Incident.t option;
  mutable closed : Incident.t list;  (* newest first *)
}

let make ~path ~threshold ~adaptive ~window =
  {
    path;
    threshold;
    adaptive;
    window;
    consumed = 0;
    scored = 0;
    alarmed = 0;
    open_incident = None;
    closed = [];
  }

let window_slide trained ~window =
  Window_slide
    {
      trained;
      (* The detector does not expose its training alphabet; symbols are
         validated when the window trace is built, against the widest
         alphabet, and again by the model's own lookup tables. *)
      alphabet = Alphabet.make 255;
      buffer = Array.make window 0;
    }

let create trained ?(compile = true) ?threshold ?adaptive () =
  let threshold =
    match threshold with
    | Some thr -> thr
    | None -> Trained.alarm_threshold trained
  in
  let window = Trained.window trained in
  let path =
    if not compile then window_slide trained ~window
    else
      let scorer =
        match Trained.scorer trained with
        | Some _ as s -> s
        | None -> Trained.compile trained
      in
      match scorer with
      | Some scorer
        when Flat_automaton.depth (Flat_automaton.automaton scorer) = window
        ->
          Automaton { scorer; state = Flat_automaton.start }
      | Some _ | None -> window_slide trained ~window
  in
  make ~path ~threshold
    ~adaptive:(Option.map Adaptive_threshold.create adaptive)
    ~window

let of_scorer ?adaptive scorer ~threshold =
  let window = Flat_automaton.depth (Flat_automaton.automaton scorer) in
  make
    ~path:(Automaton { scorer; state = Flat_automaton.start })
    ~threshold
    ~adaptive:(Option.map Adaptive_threshold.create adaptive)
    ~window

let position t = t.consumed

let current_threshold t =
  match t.adaptive with
  | Some a -> Adaptive_threshold.threshold a
  | None -> t.threshold

let windows_scored t =
  match t.adaptive with
  | Some a -> Adaptive_threshold.windows a
  | None -> t.scored

let alarm_windows t =
  match t.adaptive with
  | Some a -> Adaptive_threshold.alarms a
  | None -> t.alarmed

let incidents t = List.rev t.closed

let current_window t buffer =
  (* Oldest-first view of the ring buffer. *)
  Array.init t.window (fun i -> buffer.((t.consumed + i) mod t.window))

let item_of_score t score =
  {
    Response.start = t.consumed - t.window;
    cover = t.window;
    score;
  }

let grow_incident incident (item : Response.item) =
  {
    incident with
    Incident.last_start = item.Response.start;
    cover_to =
      Stdlib.max incident.Incident.cover_to
        (item.Response.start + item.Response.cover - 1);
    alarms = incident.Incident.alarms + 1;
    peak_score = Float.max incident.Incident.peak_score item.Response.score;
  }

let incident_of_item (item : Response.item) =
  {
    Incident.first_start = item.Response.start;
    last_start = item.Response.start;
    cover_from = item.Response.start;
    cover_to = item.Response.start + item.Response.cover - 1;
    alarms = 1;
    peak_score = item.Response.score;
  }

let close_incident t =
  match t.open_incident with
  | None -> []
  | Some incident ->
      t.open_incident <- None;
      t.closed <- incident :: t.closed;
      [ Incident_closed incident ]

(* Incident bookkeeping for one completed window — shared verbatim by
   both paths so they can only differ through the score itself.  The
   alarm decision is made at the {e pre-update} threshold: the window
   being judged must not move the bar it is judged against.  Note the
   rules differ at the boundary: the static path alarms at-or-above its
   fixed threshold, while the adaptive controller alarms strictly above
   its tracked quantile (the quantile value can be a heavy atom of the
   score distribution, and charging that atom would blow the budget). *)
let emit t score =
  let alarm =
    match t.adaptive with
    | Some a -> Adaptive_threshold.step a score
    | None -> score >= t.threshold
  in
  t.scored <- t.scored + 1;
  if alarm then t.alarmed <- t.alarmed + 1;
  let item = item_of_score t score in
  let scored = Window_scored item in
  if alarm then
    match t.open_incident with
    | Some incident when item.Response.start <= incident.Incident.cover_to + 1
      ->
        t.open_incident <- Some (grow_incident incident item);
        [ scored ]
    | Some _ ->
        let closed = close_incident t in
        t.open_incident <- Some (incident_of_item item);
        (scored :: closed) @ [ Incident_opened item.Response.start ]
    | None ->
        t.open_incident <- Some (incident_of_item item);
        [ scored; Incident_opened item.Response.start ]
  else
    match t.open_incident with
    | Some incident when item.Response.start > incident.Incident.cover_to ->
        scored :: close_incident t
    | Some _ | None -> [ scored ]

let feed t symbol =
  (match t.path with
  | Automaton a ->
      (* The window path validates against its 255-symbol alphabet when
         a completed window is materialised; the automaton path never
         materialises one, so it validates here. *)
      if symbol < 0 || symbol > 254 then
        (* lint: allow partiality — documented precondition *)
        invalid_arg
          (Printf.sprintf "Online.feed: symbol %d out of range" symbol);
      a.state <-
        Flat_automaton.step (Flat_automaton.automaton a.scorer) a.state symbol
  | Window_slide w -> w.buffer.(t.consumed mod t.window) <- symbol);
  t.consumed <- t.consumed + 1;
  if t.consumed < t.window then []
  else
    let score =
      match t.path with
      | Automaton a -> Flat_automaton.state_score a.scorer a.state
      | Window_slide w ->
          let window_trace =
            Trace.of_array w.alphabet (current_window t w.buffer)
          in
          let response =
            Trained.score_range w.trained window_trace ~lo:0 ~hi:0
          in
          if Response.length response = 0 then 0.0
          else response.Response.items.(0).Response.score
    in
    emit t score

let flush t = close_incident t

(* --- persistence (the serve layer's shard journals) -------------------- *)

type snapshot = {
  snap_consumed : int;
  snap_state : int;
  snap_open : Incident.t option;
  snap_adaptive : string option;
}

let snapshot t =
  match t.path with
  | Automaton a ->
      Some
        {
          snap_consumed = t.consumed;
          snap_state = a.state;
          snap_open = t.open_incident;
          snap_adaptive = Option.map Adaptive_threshold.to_string t.adaptive;
        }
  | Window_slide _ -> None

let restore ?adaptive scorer ~threshold snap =
  let automaton = Flat_automaton.automaton scorer in
  if
    snap.snap_consumed < 0 || snap.snap_state < 0
    || snap.snap_state >= Flat_automaton.states automaton
  then
    (* lint: allow partiality — documented precondition *)
    invalid_arg
      (Printf.sprintf "Online.restore: invalid snapshot (consumed=%d state=%d)"
         snap.snap_consumed snap.snap_state);
  let controller =
    match (adaptive, snap.snap_adaptive) with
    | None, None -> None
    | Some cfg, Some token -> (
        match Adaptive_threshold.of_string cfg token with
        | Some c -> Some c
        | None ->
            (* lint: allow partiality — documented precondition *)
            invalid_arg
              "Online.restore: adaptive-threshold token is corrupt or was \
               written under a different controller configuration")
    | Some _, None | None, Some _ ->
        (* lint: allow partiality — documented precondition *)
        invalid_arg
          "Online.restore: snapshot and configuration disagree about \
           adaptive thresholding"
  in
  let window = Flat_automaton.depth automaton in
  let t =
    make
      ~path:(Automaton { scorer; state = snap.snap_state })
      ~threshold ~adaptive:controller ~window
  in
  t.consumed <- snap.snap_consumed;
  (* Static-path counters restart from the resumable position: windows
     are derivable, alarms are not (they are exact — journal-carried —
     only under adaptive thresholding). *)
  t.scored <- Stdlib.max 0 (snap.snap_consumed - window + 1);
  t.open_incident <- snap.snap_open;
  t
