(* Adaptive per-detector thresholds (see the .mli for the model).

   [step] is a registered hot/score root (Reach): the per-window path
   is straight-line, allocation-free, and checkpointed through the
   sketch's own insert/compress loops. *)

type estimator = Gk | P2

type config = {
  budget : float;
  epsilon : float;
  warmup : int;
  refresh : int;
  hysteresis : float;
  initial : float;
  estimator : estimator;
}

let config ~budget ?epsilon ?(warmup = 128) ?(refresh = 32)
    ?(hysteresis = 0.25) ?(estimator = Gk) ~initial () =
  let epsilon = match epsilon with Some e -> e | None -> budget /. 4.0 in
  if not (budget > 0.0 && budget < 1.0) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg
      (Printf.sprintf "Adaptive_threshold.config: budget %g not in (0, 1)"
         budget);
  if not (epsilon > 0.0 && epsilon < 0.5) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg
      (Printf.sprintf "Adaptive_threshold.config: epsilon %g not in (0, 0.5)"
         epsilon);
  if warmup < 1 || refresh < 1 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Adaptive_threshold.config: warmup and refresh must be >= 1";
  if not (hysteresis >= 0.0) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Adaptive_threshold.config: hysteresis must be >= 0";
  if Float.is_nan initial then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Adaptive_threshold.config: initial threshold is NaN";
  { budget; epsilon; warmup; refresh; hysteresis; initial; estimator }

type sketch = Sk_gk of Quantile.t | Sk_p2 of Quantile.P2.t

type t = {
  cfg : config;
  sk : sketch;
  mutable cur : float;
  mutable n_windows : int;
  mutable n_alarms : int;
  mutable n_adjustments : int;
}

let target_phi cfg = 1.0 -. cfg.budget

let create cfg =
  {
    cfg;
    sk =
      (match cfg.estimator with
      | Gk -> Sk_gk (Quantile.create ~epsilon:cfg.epsilon)
      | P2 -> Sk_p2 (Quantile.P2.create ~phi:(target_phi cfg)));
    cur = cfg.initial;
    n_windows = 0;
    n_alarms = 0;
    n_adjustments = 0;
  }

let threshold t = t.cur
let windows t = t.n_windows
let alarms t = t.n_alarms
let adjustments t = t.n_adjustments

let observed_rate t =
  if t.n_windows = 0 then 0.0
  else float_of_int t.n_alarms /. float_of_int t.n_windows

(* Hysteresis lives in probability space, not value space: the
   threshold moves only when keeping it would misprice the tail mass —
   the alarm rate the sketch implies for the current threshold — by
   more than [hysteresis * budget].  A value-space band fails on
   atom-heavy score distributions: a move of 1e-3 in score can reprice
   20% of the mass (a heavy atom just above the threshold), while a
   move of 0.5 can reprice none at all.  Refreshes between real
   distribution shifts leave the threshold (and the incident log)
   untouched. *)
let refresh t =
  let implied_tail =
    1.0
    -. (match t.sk with
       | Sk_gk s -> Quantile.rank s t.cur
       | Sk_p2 s -> Quantile.P2.rank s t.cur)
  in
  if
    Float.abs (implied_tail -. t.cfg.budget)
    > t.cfg.hysteresis *. t.cfg.budget
  then begin
    let candidate =
      match t.sk with
      | Sk_gk s -> Quantile.quantile s (target_phi t.cfg)
      | Sk_p2 s -> Quantile.P2.quantile s
    in
    if Int64.bits_of_float candidate <> Int64.bits_of_float t.cur then begin
      t.cur <- candidate;
      t.n_adjustments <- t.n_adjustments + 1
    end
  end

(* Strictly above, not at: the tracked quantile value can itself be an
   atom carrying arbitrary probability mass (discrete detector scores),
   and charging that atom to the budget would overshoot it unboundedly.
   With [>] the rank guarantee gives P(score > q_phi) <= budget + eps
   for any score distribution; on continuous scores the two rules
   coincide. *)
let step t score =
  let alarm = score > t.cur in
  t.n_windows <- t.n_windows + 1;
  if alarm then t.n_alarms <- t.n_alarms + 1;
  (match t.sk with
  | Sk_gk s -> Quantile.observe s score
  | Sk_p2 s -> Quantile.P2.observe s score);
  if t.n_windows >= t.cfg.warmup && t.n_windows mod t.cfg.refresh = 0 then
    refresh t;
  alarm

(* --- serialization -----------------------------------------------------

   at1:<windows>:<alarms>:<adjustments>:<threshold-bits>:<sketch...>

   The sketch token keeps its own ':' separators, so parsing splits
   off the first five fields and rejoins the tail. *)

let to_string t =
  Printf.sprintf "at1:%d:%d:%d:%016Lx:%s" t.n_windows t.n_alarms
    t.n_adjustments
    (Int64.bits_of_float t.cur)
    (match t.sk with
    | Sk_gk s -> Quantile.to_string s
    | Sk_p2 s -> Quantile.P2.to_string s)

let of_string cfg s =
  match String.split_on_char ':' s with
  | "at1" :: w_s :: a_s :: adj_s :: cur_s :: (_ :: _ as sketch_parts) -> (
      let sketch_s = String.concat ":" sketch_parts in
      let nat x = match int_of_string_opt x with
        | Some i when i >= 0 -> Some i
        | _ -> None
      in
      let cur =
        if String.length cur_s <> 16 then None
        else
          match Int64.of_string_opt ("0x" ^ cur_s) with
          | Some b ->
              let f = Int64.float_of_bits b in
              if Float.is_nan f then None else Some f
          | None -> None
      in
      match (nat w_s, nat a_s, nat adj_s, cur) with
      | Some w, Some a, Some adj, Some cur when a <= w -> (
          (* The sketch must agree with the supplied config: right
             estimator kind, same epsilon / quantile target (bitwise —
             both sides compute them the same way), and exactly one
             observation per judged window. *)
          match cfg.estimator with
          | Gk -> (
              match Quantile.of_string sketch_s with
              | Some sk
                when Int64.bits_of_float (Quantile.epsilon sk)
                     = Int64.bits_of_float cfg.epsilon
                     && Quantile.count sk = w ->
                  Some
                    {
                      cfg;
                      sk = Sk_gk sk;
                      cur;
                      n_windows = w;
                      n_alarms = a;
                      n_adjustments = adj;
                    }
              | _ -> None)
          | P2 -> (
              match Quantile.P2.of_string sketch_s with
              | Some sk
                when Int64.bits_of_float (Quantile.P2.phi sk)
                     = Int64.bits_of_float (target_phi cfg)
                     && Quantile.P2.count sk = w ->
                  Some
                    {
                      cfg;
                      sk = Sk_p2 sk;
                      cur;
                      n_windows = w;
                      n_alarms = a;
                      n_adjustments = adj;
                    }
              | _ -> None))
      | _ -> None)
  | _ -> None

let equal a b =
  a.n_windows = b.n_windows
  && a.n_alarms = b.n_alarms
  && a.n_adjustments = b.n_adjustments
  && Int64.bits_of_float a.cur = Int64.bits_of_float b.cur
  && (match (a.sk, b.sk) with
     | Sk_gk x, Sk_gk y -> Quantile.equal x y
     | Sk_p2 x, Sk_p2 y -> Quantile.P2.equal x y
     | Sk_gk _, Sk_p2 _ | Sk_p2 _, Sk_gk _ -> false)

(* --- budget allocation -------------------------------------------------- *)

type role = Emitter | Suppressor of string

type member = { m_name : string; m_role : role; m_weight : float }

type allocation = { a_member : member; a_rate : float }

let default_members =
  [
    { m_name = "markov"; m_role = Emitter; m_weight = 1.0 };
    { m_name = "stide"; m_role = Suppressor "markov"; m_weight = 1.0 };
  ]

(* A suppressor's alarms only gate its emitter, so its rate is not
   budget: it is set well above the emitter's (capped at 0.25) so the
   conjunction rarely vetoes a true detection.  The factor is a
   heuristic from the suppression study (test_adaptive_threshold pins
   its effect on the 112-stream suite). *)
let suppressor_relax = 16.0
let suppressor_cap = 0.25

let allocate ~system_rate members =
  if not (system_rate > 0.0 && system_rate < 1.0) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg
      (Printf.sprintf "Adaptive_threshold.allocate: rate %g not in (0, 1)"
         system_rate);
  if members = [] then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Adaptive_threshold.allocate: no members";
  List.iteri
    (fun i m ->
      if m.m_name = "" then
        (* lint: allow partiality — documented precondition *)
        invalid_arg "Adaptive_threshold.allocate: empty member name";
      if not (m.m_weight > 0.0 && Float.is_finite m.m_weight) then
        (* lint: allow partiality — documented precondition *)
        invalid_arg
          (Printf.sprintf
             "Adaptive_threshold.allocate: member %s has weight %g (want a \
              positive finite weight)"
             m.m_name m.m_weight);
      List.iteri
        (fun j m' ->
          if i < j && m.m_name = m'.m_name then
            (* lint: allow partiality — documented precondition *)
            invalid_arg
              (Printf.sprintf
                 "Adaptive_threshold.allocate: duplicate member %s" m.m_name))
        members)
    members;
  let is_emitter m =
    match m.m_role with Emitter -> true | Suppressor _ -> false
  in
  let emitter_weight =
    List.fold_left
      (fun acc m -> if is_emitter m then acc +. m.m_weight else acc)
      0.0 members
  in
  if not (emitter_weight > 0.0) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Adaptive_threshold.allocate: no Emitter member";
  let emitter_rate m = system_rate *. m.m_weight /. emitter_weight in
  List.map
    (fun m ->
      match m.m_role with
      | Emitter -> { a_member = m; a_rate = emitter_rate m }
      | Suppressor target -> (
          match
            List.find_opt
              (fun m' -> m'.m_name = target && is_emitter m')
              members
          with
          | Some tgt ->
              {
                a_member = m;
                a_rate =
                  Float.min suppressor_cap
                    (suppressor_relax *. emitter_rate tgt);
              }
          | None ->
              (* lint: allow partiality — documented precondition *)
              invalid_arg
                (Printf.sprintf
                   "Adaptive_threshold.allocate: suppressor %s names %s, \
                    which is not an Emitter in the list"
                   m.m_name target)))
    members
