open Seqdiv_util
open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth

type lfc_point = {
  frame : int;
  min_count : int;
  raw_hit : bool;
  lfc_hit : bool;
  raw_false_alarms : int;
  lfc_false_alarms : int;
}

let lfc_experiment ?engine ~training ~(injection : Injector.injection) ~deploy
    ~window ~settings () =
  let stide = Registry.find_exn "stide" in
  let trained = Engine.train (Engine.default engine) stide ~window training in
  let threshold = Trained.alarm_threshold trained in
  let span = Scoring.incident_response trained injection in
  let deploy_response = Trained.score trained deploy in
  let raw_hit = Response.max_score span >= threshold in
  let raw_false_alarms =
    Response.count_over deploy_response ~threshold
  in
  List.map
    (fun (frame, min_count) ->
      let lfc_hit =
        Lfc.alarm_count span ~frame ~min_count ~threshold > 0
      in
      let lfc_false_alarms =
        Lfc.alarm_count deploy_response ~frame ~min_count ~threshold
      in
      { frame; min_count; raw_hit; lfc_hit; raw_false_alarms; lfc_false_alarms })
    settings

type nn_point = {
  params : Neural.params;
  loss : float;
  capable : int;
  weak : int;
  min_span_response : float;
}

let nn_sensitivity ?engine suite ~window ~params =
  (* Each parameter point trains its own deterministically-seeded
     network — pure, so the points run on the engine's pool. *)
  Pool.map
    (Engine.pool (Engine.default engine))
    (fun p ->
      let model = Neural.train_with p ~window suite.Suite.training in
      let loss = Neural.training_loss model in
      let outcomes =
        List.map
          (fun anomaly_size ->
            let test = Suite.stream suite ~anomaly_size ~window in
            let inj = test.Suite.injection in
            let lo, hi =
              Injector.incident_span ~position:inj.Injector.position
                ~size:(Array.length inj.Injector.anomaly) ~width:window
            in
            let span = Neural.score_range model inj.Injector.trace ~lo ~hi in
            Response.max_score span)
          (Suite.anomaly_sizes suite)
      in
      let capable =
        List.length
          (List.filter (fun m -> m >= 1.0 -. Neural.maximal_epsilon) outcomes)
      in
      let weak =
        List.length
          (List.filter
             (fun m -> m > 0.0 && m < 1.0 -. Neural.maximal_epsilon)
             outcomes)
      in
      let min_span_response = List.fold_left Float.min 1.0 outcomes in
      { params = p; loss; capable; weak; min_span_response })
    params

type alphabet_point = {
  alphabet_size : int;
  stide_diagonal : bool;
  markov_everywhere : bool;
}

let alphabet_invariance ?engine ~(base : Suite.params) ~sizes () =
  List.map
    (fun alphabet_size ->
      let suite = Suite.build { base with Suite.alphabet_size } in
      let stide_map =
        Experiment.performance_map ?engine suite (Registry.find_exn "stide")
      in
      let markov_map =
        Experiment.performance_map ?engine suite (Registry.find_exn "markov")
      in
      let stide_diagonal =
        Performance_map.fold stide_map ~init:true
          ~f:(fun acc ~anomaly_size ~window o ->
            acc && Outcome.is_capable o = (window >= anomaly_size))
      in
      let markov_everywhere =
        Performance_map.fold markov_map ~init:true
          ~f:(fun acc ~anomaly_size:_ ~window:_ o ->
            acc && Outcome.is_capable o)
      in
      { alphabet_size; stide_diagonal; markov_everywhere })
    sizes

type rare_point = {
  threshold : float;
  rare_twograms : int;
  common_twograms : int;
  mfs_candidates : int;
}

type window_point = {
  window : int;
  coverage : float;
  false_alarm_rate : float;
}

let window_tradeoff ?engine suite ~fa_training ~deploy =
  let e = Engine.default engine in
  let stide = Registry.find_exn "stide" in
  let anomaly_sizes = Suite.anomaly_sizes suite in
  let n_sizes = float_of_int (List.length anomaly_sizes) in
  let windows = Suite.windows suite in
  (* Train phase for both model families, then pure per-window scoring
     on the pool. *)
  let trained =
    Engine.train_batch e
      (List.map (fun w -> (stide, w, suite.Suite.training)) windows)
  in
  let fa_models =
    Engine.train_batch e (List.map (fun w -> (stide, w, fa_training)) windows)
  in
  Pool.map (Engine.pool e)
    (fun (window, trained, fa_model) ->
      let detected =
        List.filter
          (fun anomaly_size ->
            let s = Suite.stream suite ~anomaly_size ~window in
            Outcome.is_capable (Scoring.outcome trained s.Suite.injection))
          anomaly_sizes
      in
      let fa = False_alarm.on_clean fa_model deploy in
      {
        window;
        coverage = float_of_int (List.length detected) /. n_sizes;
        false_alarm_rate = fa.False_alarm.rate;
      })
    (List.map2
       (fun (w, t) fa -> (w, t, fa))
       (List.combine windows trained) fa_models)

type smoothing_point = {
  alpha : float;
  capable : int;
  weak : int;
  max_span_response : float;
}

let smoothing_sweep suite ~window ~alphas =
  let base = Markov.train ~window suite.Suite.training in
  List.map
    (fun alpha ->
      let model = Markov.with_smoothing base ~alpha in
      let maxima =
        List.map
          (fun anomaly_size ->
            let test = Suite.stream suite ~anomaly_size ~window in
            let inj = test.Suite.injection in
            let lo, hi =
              Injector.incident_span ~position:inj.Injector.position
                ~size:(Array.length inj.Injector.anomaly) ~width:window
            in
            Response.max_score (Markov.score_range model inj.Injector.trace ~lo ~hi))
          (Suite.anomaly_sizes suite)
      in
      let capable =
        List.length
          (List.filter (fun m -> m >= 1.0 -. Markov.maximal_epsilon) maxima)
      in
      let weak =
        List.length
          (List.filter
             (fun m -> m > 0.0 && m < 1.0 -. Markov.maximal_epsilon)
             maxima)
      in
      {
        alpha;
        capable;
        weak;
        max_span_response = List.fold_left Float.max 0.0 maxima;
      })
    alphas

type deviation_point = {
  deviation : float;
  sizes_constructible : int;
  suite_builds : bool;
  stide_diagonal_held : bool;
}

let deviation_sweep ?engine ~(base : Suite.params) ~deviations () =
  List.map
    (fun deviation ->
      let p = { base with Suite.deviation } in
      let alphabet = Alphabet.make p.Suite.alphabet_size in
      let chain = Markov_chain.paper_chain alphabet ~deviation in
      let rng = Seqdiv_util.Prng.create ~seed:p.Suite.seed in
      let training = Generator.training chain rng ~len:p.Suite.train_len in
      let index =
        Ngram_index.build
          ~max_len:(Stdlib.max p.Suite.dw_max (p.Suite.as_max + 1))
          training
      in
      let sizes_constructible =
        List.length
          (List.filter
             (fun size ->
               Mfs.candidates index alphabet ~size
                 ~rare_threshold:p.Suite.rare_threshold
               <> [])
             (List.init
                (p.Suite.as_max - p.Suite.as_min + 1)
                (fun i -> p.Suite.as_min + i)))
      in
      match Suite.build p with
      | suite ->
          let stide_map =
            Experiment.performance_map ?engine suite (Registry.find_exn "stide")
          in
          let stide_diagonal_held =
            Performance_map.fold stide_map ~init:true
              ~f:(fun acc ~anomaly_size ~window o ->
                acc && Outcome.is_capable o = (window >= anomaly_size))
          in
          { deviation; sizes_constructible; suite_builds = true;
            stide_diagonal_held }
      | exception Injector.No_clean_injection _ ->
          { deviation; sizes_constructible; suite_builds = false;
            stide_diagonal_held = false })
    deviations

type seed_point = {
  seed : int;
  stide_diagonal : bool;
  markov_everywhere : bool;
  lnb_nowhere : bool;
}

let seed_robustness ?engine ~(base : Suite.params) ~seeds () =
  List.map
    (fun seed ->
      let suite = Suite.build { base with Suite.seed } in
      let map name =
        Experiment.performance_map ?engine suite (Registry.find_exn name)
      in
      let stide_diagonal =
        Performance_map.fold (map "stide") ~init:true
          ~f:(fun acc ~anomaly_size ~window o ->
            acc && Outcome.is_capable o = (window >= anomaly_size))
      in
      let markov_everywhere =
        Performance_map.fold (map "markov") ~init:true
          ~f:(fun acc ~anomaly_size:_ ~window:_ o -> acc && Outcome.is_capable o)
      in
      let lnb_nowhere =
        Performance_map.capable_cells (map "lnb") = []
      in
      { seed; stide_diagonal; markov_everywhere; lnb_nowhere })
    seeds

let rare_threshold_sweep suite ~thresholds =
  let index = suite.Suite.index in
  let db2 = Ngram_index.db index 2 in
  List.map
    (fun threshold ->
      let rare_twograms = List.length (Seq_db.rare_keys db2 ~threshold) in
      let common_twograms = List.length (Seq_db.common_keys db2 ~threshold) in
      let mfs_candidates =
        Mfs.candidates index suite.Suite.alphabet ~size:5
          ~rare_threshold:threshold
        |> List.filter (fun c ->
               let n = Array.length c in
               let rare_at i =
                 Ngram_index.is_rare index ~threshold
                   (Trace.key_of_symbols [| c.(i); c.(i + 1) |])
               in
               rare_at 0 && rare_at (n - 2))
        |> List.length
      in
      { threshold; rare_twograms; common_twograms; mfs_candidates })
    thresholds
