open Seqdiv_detectors

type point = { threshold : float; hit_rate : float; fa_rate : float }

let sweep ~clean ~spans ~thresholds =
  (* lint: allow partiality — documented precondition *)
  if spans = [] then invalid_arg "Roc.sweep: no spans";
  let span_maxima = List.map Response.max_score spans in
  let n_spans = float_of_int (List.length spans) in
  List.map
    (fun threshold ->
      let hits =
        List.length (List.filter (fun m -> m >= threshold) span_maxima)
      in
      let fa = False_alarm.of_response clean ~threshold in
      {
        threshold;
        hit_rate = float_of_int hits /. n_spans;
        fa_rate = fa.False_alarm.rate;
      })
    thresholds

let default_thresholds = List.init 101 (fun i -> float_of_int i /. 100.0)

let auc points =
  let sorted =
    List.sort
      (fun a b -> compare (a.fa_rate, a.hit_rate) (b.fa_rate, b.hit_rate))
      points
  in
  let anchored =
    ({ threshold = nan; hit_rate = 0.0; fa_rate = 0.0 } :: sorted)
    @ [ { threshold = nan; hit_rate = 1.0; fa_rate = 1.0 } ]
  in
  let rec area acc = function
    | a :: (b :: _ as rest) ->
        let w = b.fa_rate -. a.fa_rate in
        let h = (a.hit_rate +. b.hit_rate) /. 2.0 in
        area (acc +. (w *. h)) rest
    | [ _ ] | [] -> acc
  in
  area 0.0 anchored
