(** Per-detector adaptive thresholds under a system false-alarm budget.

    The paper fixes each detector's alarm threshold offline; deployed
    on a drifting stream that constant either floods the operator or
    goes blind.  Bridges et al. ("Setting the threshold for high
    throughput detectors", PAPERS.md) recast the threshold as the
    [(1 - rate)]-quantile of the detector's own score distribution,
    estimated online — the threshold then {e tracks} the distribution
    and the observed alarm rate holds near the configured budget.

    A {!t} is one detector's controller: a streaming quantile sketch
    ({!Quantile}) plus hysteresis.  {!step} is the only mutation: it
    decides the current window {e at the pre-update threshold} (the
    decision must not depend on the score being judged), absorbs the
    score, and refreshes the threshold every [refresh] windows once
    [warmup] windows have been seen.  The controller is a pure
    function of its score sequence, so per-session controllers keep
    the serve layer's incident logs byte-identical across shard counts
    and kill/resume (the sketch rides in {!to_string} tokens inside
    shard journals).

    {!allocate} is the ensemble half of Bridges et al.: split one
    system-wide alarm budget across heterogeneous members by the union
    bound, with the paper's Stide-suppresses-Markov policy
    ({!default_members}) as the wired default. *)

(** Which sketch backs the controller.  [Gk] (default) has the
    deterministic ε rank-error bound; [P2] is the constant-space
    heuristic alternative (compared in [bench --adaptive]). *)
type estimator = Gk | P2

type config = {
  budget : float;  (** target per-detector false-alarm rate, in (0,1) *)
  epsilon : float;  (** GK rank-error bound (default [budget /. 4.]) *)
  warmup : int;  (** windows before the first refresh (default 128) *)
  refresh : int;  (** windows between refreshes (default 32) *)
  hysteresis : float;
      (** dead band, in {e probability space}: a refresh moves the
          threshold only when the alarm rate the sketch implies for
          the current threshold strays from [budget] by more than
          [hysteresis *. budget] (default 0.25, matching the default
          sketch error [epsilon = budget /. 4.]).  Probability space
          matters: on atom-heavy score distributions a tiny value move
          can reprice a large mass, so a value-space band would either
          chatter or stick *)
  initial : float;  (** threshold until the first refresh *)
  estimator : estimator;
}

val config :
  budget:float ->
  ?epsilon:float ->
  ?warmup:int ->
  ?refresh:int ->
  ?hysteresis:float ->
  ?estimator:estimator ->
  initial:float ->
  unit ->
  config
(** Validated construction.
    @raise Invalid_argument unless [0 < budget < 1],
    [0 < epsilon < 0.5], [warmup >= 1], [refresh >= 1],
    [hysteresis >= 0] and [initial] is not NaN. *)

type t

val create : config -> t

val step : t -> float -> bool
(** Judge one window's score: [true] iff it is {e strictly above} the
    current threshold.  Strict comparison matters: the tracked quantile
    value can itself be an atom carrying arbitrary probability mass
    (detector scores are often discrete), and an at-or-above rule would
    charge that whole atom to the budget.  With [>] the rank guarantee
    bounds the long-run alarm rate by [budget + epsilon] for any score
    distribution.  After judging, absorb the score and, on a refresh
    boundary past warmup, move the threshold to the sketch's
    [(1 - budget)]-quantile if the move clears the hysteresis band.
    Deterministic in the score sequence alone. *)

val threshold : t -> float
(** The current (post-[step]) threshold. *)

val windows : t -> int
(** Windows judged so far. *)

val alarms : t -> int
(** Windows that alarmed. *)

val adjustments : t -> int
(** Refreshes that actually moved the threshold. *)

val observed_rate : t -> float
(** [alarms / windows] (0 before any window). *)

val to_string : t -> string
(** Lossless, space-free serialization of the full controller state
    (threshold, counters, sketch) — the shard-journal session token.
    The config is {e not} embedded: it is pinned by the journal
    context line and re-supplied to {!of_string}. *)

val of_string : config -> string -> t option
(** Parse a {!to_string} token back under [config]; [None] if the
    token is malformed or disagrees with [config] (wrong estimator
    kind, epsilon or quantile target). *)

val equal : t -> t -> bool
(** Bit-level state equality (counters, threshold, sketch). *)

(** {1 Budget allocation across an ensemble}

    Per Bridges et al.: member detectors that raise alarms directly
    ([Emitter]) share the system budget in proportion to their
    weights — by the union bound the system false-alarm rate is at
    most the sum of member rates, so weights summing the budget keep
    the system under it.  A [Suppressor] member implements the paper's
    conjunctive scheme (Section 7): its alarms only {e gate} a named
    emitter's alarms, a conjunction that can only lower the system
    rate, so it is not charged against the budget; instead it runs at
    a deliberately {e relaxed} threshold so corroboration does not eat
    true detections. *)

type role =
  | Emitter
  | Suppressor of string  (** gates the named emitter's alarms *)

type member = { m_name : string; m_role : role; m_weight : float }

type allocation = { a_member : member; a_rate : float }
(** A member with its allocated per-detector alarm rate (the [budget]
    to put in that member's {!config}). *)

val default_members : member list
(** The paper's policy: Markov as the emitter, Stide as its
    suppressor (Stide's coverage is a subset of the Markov
    detector's, so uncorroborated Markov alarms are rare-sequence
    false alarms). *)

val allocate : system_rate:float -> member list -> allocation list
(** Split [system_rate] across [members], preserving order.  Emitters
    receive [system_rate * weight / sum-of-emitter-weights];
    suppressors receive [min 0.25 (16 * their-target's rate)].
    @raise Invalid_argument unless [0 < system_rate < 1], names are
    unique and non-empty, weights are positive and finite, at least
    one member is an [Emitter], and every suppressor names an emitter
    in the list. *)
