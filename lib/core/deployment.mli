(** Deployment-style experiments behind the paper's combination
    arguments (Section 7): false-alarm behaviour on realistic,
    rare-containing data and the Stide-as-suppressor ensemble (T2), and
    the cost of lowering the L&B threshold far enough to catch a minimal
    foreign sequence (T3). *)

open Seqdiv_stream
open Seqdiv_synth

type detector_report = {
  name : string;
  false_alarms : False_alarm.stats;
      (** alarms on an anomaly-free stream sampled from the same process
          as the training data (its rare content triggers detectors that
          respond to rarity) *)
  hit : bool;  (** capable on the injected suite stream for this cell *)
}

type suppressor_report = {
  window : int;
  anomaly_size : int;
  detectors : detector_report list;
  suppression : Ensemble.suppression;
      (** Markov alarms on the anomaly-free stream, partitioned by Stide
          corroboration *)
  ensemble_hit : bool;
      (** the conjunctive Markov∧Stide ensemble still detects the
          injected anomaly *)
}

val suppressor_experiment :
  ?engine:Engine.t ->
  Suite.t -> window:int -> anomaly_size:int -> deploy_len:int -> seed:int ->
  suppressor_report
(** Run T2 at one cell: sample a fresh deployment stream from the
    suite's generating chain, measure each detector's false alarms on
    it, partition the Markov detector's alarms by Stide corroboration,
    and check that the conjunctive ensemble still detects the suite's
    injected anomaly for this cell.  Requires the cell to be within the
    suite's ranges and [window >= anomaly_size] (the regime the paper's
    scheme addresses: both detectors are capable there). *)

type lnb_threshold_point = {
  window : int;
  score_threshold : float;
      (** the "next most normal value" threshold: the response of a
          window matching a stored instance everywhere but its first or
          last element, i.e. [2 / (window + 1)] *)
  hit : bool;  (** the injected MFS registers at that threshold *)
  false_alarm_rate : float;
      (** alarm rate at that threshold on a fresh deployment stream *)
}

val lnb_threshold_experiment :
  ?engine:Engine.t ->
  Suite.t -> anomaly_size:int -> deploy_trace:Trace.t ->
  fa_training:Trace.t -> lnb_threshold_point list
(** Run T3: for every window size of the suite, lower the L&B threshold
    to the next-most-normal value and measure the hit on the suite's
    injected stream (model trained on the suite's full training data,
    keeping the clean-injection attribution) and the false-alarm rate on
    [deploy_trace] with a model trained on [fa_training].

    Pass a {e shorter} stream as [fa_training] to model the realistic
    regime in which training does not exhaust benign behaviour: at the
    lowered threshold every deployment window that fails to match a
    stored instance exactly registers as an alarm, so the false-alarm
    rate tracks the fraction of benign-but-unseen windows — which grows
    with the window size, the paper's "increasingly worse as the
    sequence length grows".  (With [fa_training] equal to the full
    training stream the rate collapses towards zero on this synthetic
    data, because a million elements do exhaust the single-deviation
    windows.) *)

val deployment_stream : Suite.t -> len:int -> seed:int -> Trace.t
(** A fresh, anomaly-free stream sampled from the suite's generating
    chain — rare sequences included, foreign anomalies excluded by
    construction of the chain. *)
