(* The serve loop: reader/writer domains per connection, one domain and
   bounded ingress queue per shard, all-or-nothing batch admission, and
   journalled durability.  The ONE module besides lib/util/pool.ml
   allowed to touch Domain/Atomic/Mutex/Condition (lint R6 standing
   exemption — see docs/LINTING.md): its loops are live stateful
   services, not a finite batch of pure closures, so they cannot ride
   the pool.  The determinism the pool normally guarantees is enforced
   from outside instead, by the qcheck replay suite over
   Session_table. *)

open Seqdiv_stream
open Seqdiv_util

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  shards : int;
  queue_capacity : int;
  retry_after_ms : int;
  scorer : Flat_automaton.scorer;
  threshold : float;
  model_tag : string;
  journal_dir : string option;
  resume : bool;
  deadline : Deadline.spec option;
  clock : unit -> float;
  max_connections : int;
}

let default_queue_capacity = 64
let default_retry_after_ms = 5
let default_max_connections = 16

(* --- a mutex/condition channel ----------------------------------------- *)

(* Plain blocking MPSC channel.  Bounding is enforced by the admission
   path (which must check several queues atomically), not by push. *)
type 'a channel = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}

let channel () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    closed = false;
  }

let channel_push ch v =
  Mutex.lock ch.mutex;
  if not ch.closed then begin
    Queue.push v ch.items;
    Condition.signal ch.nonempty
  end;
  Mutex.unlock ch.mutex

let channel_pop ch =
  Mutex.lock ch.mutex;
  let rec wait () =
    if not (Queue.is_empty ch.items) then Some (Queue.pop ch.items)
    else if ch.closed then None
    else begin
      Condition.wait ch.nonempty ch.mutex;
      wait ()
    end
  in
  let v = wait () in
  Mutex.unlock ch.mutex;
  v

let channel_close ch =
  Mutex.lock ch.mutex;
  ch.closed <- true;
  Condition.broadcast ch.nonempty;
  Mutex.unlock ch.mutex

let channel_length ch =
  Mutex.lock ch.mutex;
  let n = Queue.length ch.items in
  Mutex.unlock ch.mutex;
  n

(* --- server state ------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  out : Frame.response channel;
  (* Sniffed by the reader from the first byte, read by the writer; no
     response can be produced before the first request decoded, so the
     writer always observes the set value. *)
  encoding : Frame.encoding option Atomic.t;
  (* Set by the reader domain once the peer's write side is gone, read
     by the accept loop to reap the connection's domains and fd so a
     long-lived server admits an unbounded sequence of clients under a
     bounded concurrent-connection limit. *)
  reader_done : bool Atomic.t;
}

type job = {
  reply : conn;
  batch_id : int;
  events : Frame.event list;
  nevents : int;
}

let latency_ring = 1024

type shard = {
  index : int;
  queue : job channel;
  table : Session_table.t;
  (* Everything below is shared with sampling readers and therefore
     only touched under [stats_lock]. *)
  stats_lock : Mutex.t;
  mutable busy_ns : int;
  mutable rejected : int;
  ring : int array; (* recent sub-batch service times, ns *)
  mutable ring_pos : int;
  mutable ring_len : int;
  mutable pub_sessions : int;
  mutable pub_events : int;
  mutable pub_symbols : int;
  mutable pub_batches : int;
  mutable pub_bytes : int;
}

type server = {
  cfg : config;
  shard_tab : shard array;
  stop : bool Atomic.t;
}

(* --- stats -------------------------------------------------------------- *)

let percentile sorted n p =
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float ((float_of_int (n - 1) *. p) +. 0.5)))

let sample sh =
  let queue_depth = channel_length sh.queue in
  Mutex.lock sh.stats_lock;
  let n = sh.ring_len in
  let sorted = Array.sub sh.ring 0 n in
  Array.sort compare sorted;
  let stats =
    {
      Frame.shard = sh.index;
      sessions_resident = sh.pub_sessions;
      events = sh.pub_events;
      symbols = sh.pub_symbols;
      batches = sh.pub_batches;
      rejected = sh.rejected;
      queue_depth;
      bytes_resident = sh.pub_bytes;
      busy_ns = sh.busy_ns;
      p50_batch_ns = percentile sorted n 0.5;
      p99_batch_ns = percentile sorted n 0.99;
    }
  in
  Mutex.unlock sh.stats_lock;
  stats

let sample_all t = Array.to_list (Array.map sample t.shard_tab)

(* --- admission (reader side) -------------------------------------------- *)

(* All-or-nothing: lock the touched shard queues in ascending index
   order (the only multi-lock path, so no deadlock), admit only when
   every queue has room, and otherwise push nothing. *)
let admit cap subs =
  let qs = List.map (fun (sh, _) -> sh.queue) subs in
  List.iter (fun q -> Mutex.lock q.mutex) qs;
  let ok =
    List.for_all
      (fun q -> (not q.closed) && Queue.length q.items < cap)
      qs
  in
  if ok then
    List.iter2
      (fun q (_, job) ->
        Queue.push job q.items;
        Condition.signal q.nonempty)
      qs subs;
  List.iter (fun q -> Mutex.unlock q.mutex) qs;
  ok

let route_batch t conn ~id events =
  let nshards = Array.length t.shard_tab in
  let buckets = Array.make nshards [] in
  let counts = Array.make nshards 0 in
  List.iter
    (fun (e : Frame.event) ->
      let session =
        match e with
        | Frame.Data { session; _ } | Frame.End_of_session { session } ->
            session
      in
      let s = Frame.shard_of_session ~shards:nshards session in
      buckets.(s) <- e :: buckets.(s);
      counts.(s) <- counts.(s) + 1)
    events;
  let subs = ref [] in
  for s = nshards - 1 downto 0 do
    if counts.(s) > 0 then
      subs :=
        ( t.shard_tab.(s),
          {
            reply = conn;
            batch_id = id;
            events = List.rev buckets.(s);
            nevents = counts.(s);
          } )
        :: !subs
  done;
  if not (admit t.cfg.queue_capacity !subs) then begin
    List.iter
      (fun (sh, _) ->
        Mutex.lock sh.stats_lock;
        sh.rejected <- sh.rejected + 1;
        Mutex.unlock sh.stats_lock)
      !subs;
    channel_push conn.out
      (Frame.Rejected { id; retry_after_ms = t.cfg.retry_after_ms })
  end

(* --- per-connection domains --------------------------------------------- *)

let reader_loop t conn =
  let buf = Bytes.create 65536 in
  let r = Frame.reader () in
  let finished = ref false in
  (try
     while not !finished do
       let n = Unix.read conn.fd buf 0 (Bytes.length buf) in
       if n = 0 then finished := true
       else begin
         Frame.feed_bytes r buf ~pos:0 ~len:n;
         if Atomic.get conn.encoding = None then
           Atomic.set conn.encoding (Frame.reader_encoding r);
         let rec drain () =
           if not !finished then
             match Frame.next_request r with
             | None -> ()
             | Some (Frame.Batch { id; events }) ->
                 route_batch t conn ~id events;
                 drain ()
             | Some Frame.Stats_request ->
                 channel_push conn.out (Frame.Stats (sample_all t));
                 drain ()
             | Some Frame.Quit ->
                 Atomic.set t.stop true;
                 finished := true
         in
         drain ()
       end
     done
   with
  | Parse_error.Error msg -> channel_push conn.out (Frame.Error_msg msg)
  | Unix.Unix_error _ -> (* connection torn down under the read *) ());
  Atomic.set conn.reader_done true

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let writer_loop conn =
  let b = Buffer.create 8192 in
  let send response =
    Buffer.clear b;
    let enc = Option.value (Atomic.get conn.encoding) ~default:Frame.Binary in
    Frame.write_response b enc response;
    write_all conn.fd (Buffer.to_bytes b)
  in
  let rec loop () =
    match channel_pop conn.out with
    | None -> ()
    | Some response ->
        send response;
        loop ()
  in
  try loop () with
  | Unix.Unix_error _ ->
      (* The client went away mid-write: keep draining so shard domains
         never block on this connection's acks. *)
      let rec drain () =
        match channel_pop conn.out with None -> () | Some _ -> drain ()
      in
      drain ()

(* --- shard domains ------------------------------------------------------ *)

let apply_job deadline sh job =
  let run () = Session_table.apply sh.table ~batch_id:job.batch_id job.events in
  match
    match deadline with
    | Some spec -> Deadline.with_deadline spec run
    | None -> run ()
  with
  | incidents ->
      Frame.Ack
        { id = job.batch_id; shard = sh.index; events = job.nevents; incidents }
  | exception Deadline.Exceeded budget ->
      Frame.Failed
        {
          id = job.batch_id;
          shard = sh.index;
          reason = Printf.sprintf "Deadline.Exceeded(budget=%dms)" budget;
        }
  (* lint: allow swallow — a poisoned batch fails its client with a rendered reason, not the server *)
  | exception exn ->
      Frame.Failed
        { id = job.batch_id; shard = sh.index; reason = Printexc.to_string exn }

let shard_loop ~clock deadline sh =
  let rec loop () =
    match channel_pop sh.queue with
    | None -> ()
    | Some job ->
        let t0 = clock () in
        let response = apply_job deadline sh job in
        let dt_ns = int_of_float ((clock () -. t0) *. 1e9) in
        Mutex.lock sh.stats_lock;
        sh.busy_ns <- sh.busy_ns + dt_ns;
        sh.ring.(sh.ring_pos) <- dt_ns;
        sh.ring_pos <- (sh.ring_pos + 1) mod latency_ring;
        sh.ring_len <- min (sh.ring_len + 1) latency_ring;
        sh.pub_sessions <- Session_table.sessions_resident sh.table;
        sh.pub_events <- Session_table.events_applied sh.table;
        sh.pub_symbols <- Session_table.symbols_applied sh.table;
        sh.pub_batches <- Session_table.batches_applied sh.table;
        sh.pub_bytes <- Session_table.bytes_resident sh.table;
        Mutex.unlock sh.stats_lock;
        channel_push job.reply.out response;
        loop ()
  in
  loop ()

(* --- setup -------------------------------------------------------------- *)

let journal_for cfg ~depth ~states index =
  match cfg.journal_dir with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let context =
        Printf.sprintf "serve model=%s depth=%d states=%d threshold=%016Lx \
                        shards=%d shard=%d"
          cfg.model_tag depth states
          (Int64.bits_of_float cfg.threshold)
          cfg.shards index
      in
      Some
        (Shard_journal.start ~resume:cfg.resume ~context
           (Filename.concat dir (Printf.sprintf "shard-%d.journal" index)))

let make_shard cfg ~depth ~states index =
  let journal = journal_for cfg ~depth ~states index in
  let table =
    Session_table.create ~scorer:cfg.scorer ~threshold:cfg.threshold ?journal
      ~shard:index ()
  in
  {
    index;
    queue = channel ();
    table;
    stats_lock = Mutex.create ();
    busy_ns = 0;
    rejected = 0;
    ring = Array.make latency_ring 0;
    ring_pos = 0;
    ring_len = 0;
    pub_sessions = Session_table.sessions_resident table;
    pub_events = 0;
    pub_symbols = 0;
    pub_batches = 0;
    pub_bytes = Session_table.bytes_resident table;
  }

let listen_socket = function
  | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                (* lint: allow partiality — documented precondition *)
                invalid_arg (Printf.sprintf "Serve: unknown host %S" host)
            | entry -> entry.Unix.h_addr_list.(0)
            | exception Not_found ->
                (* lint: allow partiality — documented precondition *)
                invalid_arg (Printf.sprintf "Serve: unknown host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

(* --- the run loop ------------------------------------------------------- *)

let run ?(on_ready = fun () -> ()) cfg =
  if cfg.shards <= 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Serve.run: shards=%d" cfg.shards);
  if cfg.queue_capacity <= 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Serve.run: queue_capacity=%d"
                   cfg.queue_capacity);
  let previous_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigpipe previous_sigpipe)
  @@ fun () ->
  let automaton = Flat_automaton.automaton cfg.scorer in
  let depth = Flat_automaton.depth automaton in
  let states = Flat_automaton.states automaton in
  let shard_tab =
    Array.init cfg.shards (make_shard cfg ~depth ~states)
  in
  let t = { cfg; shard_tab; stop = Atomic.make false } in
  let shard_domains =
    Array.map
      (fun sh -> Domain.spawn (fun () -> shard_loop ~clock:cfg.clock cfg.deadline sh))
      shard_tab
  in
  let lfd = listen_socket cfg.address in
  on_ready ();
  let conns = ref [] in
  (* Retire connections whose peer has hung up: join the reader (it has
     already exited), close the response channel so the writer flushes
     what is queued and exits, then release the fd.  Without this the
     connection list only grows and [max_connections] would cap the
     server's lifetime total instead of its concurrency. *)
  let reap () =
    let finished, live =
      List.partition (fun (c, _, _) -> Atomic.get c.reader_done) !conns
    in
    conns := live;
    List.iter
      (fun (c, rd, wd) ->
        Domain.join rd;
        channel_close c.out;
        Domain.join wd;
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      finished
  in
  while not (Atomic.get t.stop) do
    reap ();
    (* A poll instead of a blocking accept, so a Quit observed by any
       reader domain stops the loop within one tick. *)
    match Unix.select [ lfd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept lfd with
        | exception Unix.Unix_error _ -> (* client vanished pre-accept *) ()
        | fd, _ ->
            if List.length !conns >= cfg.max_connections then
              (try Unix.close fd with Unix.Unix_error _ -> ())
            else begin
              let conn =
                {
                  fd;
                  out = channel ();
                  encoding = Atomic.make None;
                  reader_done = Atomic.make false;
                }
              in
              let rd = Domain.spawn (fun () -> reader_loop t conn) in
              let wd = Domain.spawn (fun () -> writer_loop conn) in
              conns := (conn, rd, wd) :: !conns
            end)
  done;
  (* Orderly drain: stop intake, let every admitted batch finish and
     every produced response flush, then tear the connections down. *)
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match cfg.address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  List.iter
    (fun (c, _, _) ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    !conns;
  List.iter (fun (_, rd, _) -> Domain.join rd) !conns;
  Array.iter (fun sh -> channel_close sh.queue) shard_tab;
  Array.iter Domain.join shard_domains;
  List.iter (fun (c, _, _) -> channel_close c.out) !conns;
  List.iter (fun (_, _, wd) -> Domain.join wd) !conns;
  List.iter
    (fun (c, _, _) -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    !conns;
  sample_all t
