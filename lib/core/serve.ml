(* The serve loop: reader/writer domains per connection, one domain and
   bounded ingress queue per shard, all-or-nothing batch admission,
   journalled durability, and a shard lifecycle supervisor.  The ONE
   module besides lib/util/pool.ml allowed to touch
   Domain/Atomic/Mutex/Condition (lint R6 standing exemption — see
   docs/LINTING.md): its loops are live stateful services, not a finite
   batch of pure closures, so they cannot ride the pool.  The
   determinism the pool normally guarantees is enforced from outside
   instead, by the qcheck replay suite over Session_table.

   Lock ordering, the whole of it: shard queue mutexes are taken in
   ascending shard index (admission, the only multi-lock path), and a
   queue mutex is never held while taking a [stats_lock] or vice versa.
   Connection out-channel mutexes nest inside nothing. *)

open Seqdiv_stream
open Seqdiv_util

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  shards : int;
  queue_capacity : int;
  retry_after_ms : int;
  scorer : Flat_automaton.scorer;
  threshold : float;
  adaptive : Adaptive_threshold.config option;
  model_tag : string;
  journal_dir : string option;
  resume : bool;
  deadline : Deadline.spec option;
  clock : unit -> float;
  max_connections : int;
  max_restarts : int;
  write_timeout_ms : int;
  chaos : Fault_plan.Serve.t option;
}

let default_queue_capacity = 64
let default_retry_after_ms = 5
let default_max_connections = 16
let default_max_restarts = 3
let default_write_timeout_ms = 2000

(* The adaptive backpressure hint never exceeds this: an overloaded
   server wants clients back soon after the queue drains, not parked
   for seconds on a stale estimate. *)
let max_retry_after_ms = 1000

(* Responses queued to one connection: a client that cannot drain this
   many acks is not reading and gets evicted, never buffered without
   bound. *)
let max_pending_responses = 1024

(* --- a mutex/condition channel ----------------------------------------- *)

(* Plain blocking MPSC channel.  Bounding is enforced by the admission
   path (which must check several queues atomically), not by push. *)
type 'a channel = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}

let channel () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    closed = false;
  }

let channel_pop ch =
  Mutex.lock ch.mutex;
  let rec wait () =
    if not (Queue.is_empty ch.items) then Some (Queue.pop ch.items)
    else if ch.closed then None
    else begin
      Condition.wait ch.nonempty ch.mutex;
      wait ()
    end
  in
  let v = wait () in
  Mutex.unlock ch.mutex;
  v

let channel_close ch =
  Mutex.lock ch.mutex;
  ch.closed <- true;
  Condition.broadcast ch.nonempty;
  Mutex.unlock ch.mutex

(* Close and return everything still queued, atomically — the degrade
   path, which must answer every stranded job instead of dropping it. *)
let channel_drain_close ch =
  Mutex.lock ch.mutex;
  ch.closed <- true;
  let stranded = List.of_seq (Queue.to_seq ch.items) in
  Queue.clear ch.items;
  Condition.broadcast ch.nonempty;
  Mutex.unlock ch.mutex;
  stranded

let channel_length ch =
  Mutex.lock ch.mutex;
  let n = Queue.length ch.items in
  Mutex.unlock ch.mutex;
  n

(* --- server state ------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  out : Frame.response channel;
  (* Sniffed by the reader from the first byte, read by the writer; no
     response can be produced before the first request decoded, so the
     writer always observes the set value. *)
  encoding : Frame.encoding option Atomic.t;
  (* Set by the reader domain once the peer's write side is gone, read
     by the accept loop to reap the connection's domains and fd so a
     long-lived server admits an unbounded sequence of clients under a
     bounded concurrent-connection limit. *)
  reader_done : bool Atomic.t;
  (* Flipped exactly once by [evict]; the fd itself is closed exactly
     once, by the reaper, after both domains exited. *)
  evicted : bool Atomic.t;
}

type job = {
  reply : conn;
  batch_id : int;
  events : Frame.event list;
  nevents : int;
  (* Executions so far, for the chaos plan's sticky window: bumped each
     time a shard domain picks the job up, so the re-run after a
     supervised restart is a distinguishable attempt. *)
  mutable attempts : int;
}

let latency_ring = 1024

type shard = {
  index : int;
  queue : job channel;
  (* Admitted sub-batches not yet answered (queued or in execution),
     maintained under the queue mutex on admission so the drain
     handshake can detect a fully idle shard without racing pushes. *)
  inflight : int Atomic.t;
  (* Everything below is shared with sampling readers, the supervisor
     and the shard domain, and therefore only touched under
     [stats_lock]. *)
  stats_lock : Mutex.t;
  mutable table : Session_table.t;
  mutable busy_ns : int;
  mutable rejected : int;
  ring : int array; (* recent sub-batch service times, ns *)
  mutable ring_pos : int;
  mutable ring_len : int;
  mutable pub_sessions : int;
  mutable pub_events : int;
  mutable pub_symbols : int;
  mutable pub_batches : int;
  mutable pub_bytes : int;
  mutable pub_windows : int;
  mutable pub_alarms : int;
  mutable pub_threshold : float;
  (* Cached median service time for the adaptive retry hint, refreshed
     every [percentile_refresh] jobs so the admission hot path never
     sorts the ring. *)
  mutable cached_p50_ns : int;
  mutable jobs_done : int;
  (* Supervisor state.  [poison] is the exception that killed the shard
     domain (set by the dying domain as its last act); [pending_job]
     the job it held, re-run first after a restart; [degraded] the
     rendered reason once the supervisor gave up on the shard. *)
  mutable poison : exn option;
  mutable pending_job : job option;
  mutable degraded : string option;
  mutable restarts : int;
  mutable consecutive_restarts : int;
}

type server = {
  cfg : config;
  shard_tab : shard array;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
  live_conns : int Atomic.t;
  evictions : int Atomic.t;
  (* Connections owed a [Drained] response once every queue is idle. *)
  drain_lock : Mutex.t;
  mutable drain_waiters : conn list;
  (* Response frames already torn once by the chaos plan, keyed by
     {!Fault_plan.Serve.frame_key}: the resend after the client
     reconnects must pass, so torn-frame chaos always converges. *)
  torn_lock : Mutex.t;
  torn : (int64, unit) Hashtbl.t;
}

(* --- eviction and bounded response push --------------------------------- *)

let evict t conn =
  if not (Atomic.exchange conn.evicted true) then begin
    Atomic.incr t.evictions;
    (* Shutdown, not close: the reader observes EOF and the reaper —
       the single close site — releases the fd after both domains
       exit, so it is closed exactly once. *)
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

let push_response t conn response =
  Mutex.lock conn.out.mutex;
  let overflow =
    (not conn.out.closed)
    && Queue.length conn.out.items >= max_pending_responses
  in
  if not overflow then begin
    if not conn.out.closed then begin
      Queue.push response conn.out.items;
      Condition.signal conn.out.nonempty
    end
  end;
  Mutex.unlock conn.out.mutex;
  if overflow then evict t conn

(* --- stats -------------------------------------------------------------- *)

let percentile sorted n p =
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float ((float_of_int (n - 1) *. p) +. 0.5)))

(* retry_after_ms, from load: the time to drain this queue at the
   median recent service rate, clamped to [floor, max_retry_after_ms].
   An idle or never-measured shard answers the configured floor. *)
let retry_hint ~floor ~p50_ns ~queue_depth =
  let est = (queue_depth + 1) * p50_ns / 1_000_000 in
  Stdlib.min max_retry_after_ms (Stdlib.max floor est)

let shard_retry_hint t sh =
  let queue_depth = channel_length sh.queue in
  Mutex.lock sh.stats_lock;
  let p50_ns = sh.cached_p50_ns in
  Mutex.unlock sh.stats_lock;
  retry_hint ~floor:t.cfg.retry_after_ms ~p50_ns ~queue_depth

let sample t sh =
  let queue_depth = channel_length sh.queue in
  Mutex.lock sh.stats_lock;
  let n = sh.ring_len in
  let sorted = Array.sub sh.ring 0 n in
  Array.sort compare sorted;
  let p50 = percentile sorted n 0.5 in
  let stats =
    {
      Frame.shard = sh.index;
      sessions_resident = sh.pub_sessions;
      events = sh.pub_events;
      symbols = sh.pub_symbols;
      batches = sh.pub_batches;
      rejected = sh.rejected;
      queue_depth;
      bytes_resident = sh.pub_bytes;
      busy_ns = sh.busy_ns;
      p50_batch_ns = p50;
      p99_batch_ns = percentile sorted n 0.99;
      restarts = sh.restarts;
      degraded = sh.degraded <> None;
      retry_after_ms =
        retry_hint ~floor:t.cfg.retry_after_ms ~p50_ns:p50 ~queue_depth;
      windows = sh.pub_windows;
      alarms = sh.pub_alarms;
      threshold = sh.pub_threshold;
    }
  in
  Mutex.unlock sh.stats_lock;
  stats

let sample_all t = Array.to_list (Array.map (sample t) t.shard_tab)

let sample_health t =
  let shards_health =
    Array.to_list
      (Array.map
         (fun sh ->
           let h_queue_depth = channel_length sh.queue in
           Mutex.lock sh.stats_lock;
           let h_degraded = sh.degraded <> None in
           let h_alive = (not h_degraded) && sh.poison = None in
           let h_restarts = sh.restarts in
           let p50_ns = sh.cached_p50_ns in
           let h_windows = sh.pub_windows in
           let h_alarms = sh.pub_alarms in
           let h_threshold = sh.pub_threshold in
           Mutex.unlock sh.stats_lock;
           {
             Frame.h_shard = sh.index;
             h_alive;
             h_degraded;
             h_restarts;
             h_queue_depth;
             h_retry_after_ms =
               retry_hint ~floor:t.cfg.retry_after_ms ~p50_ns
                 ~queue_depth:h_queue_depth;
             h_windows;
             h_alarms;
             h_threshold;
           })
         t.shard_tab)
  in
  {
    Frame.shards_health;
    connections = Atomic.get t.live_conns;
    evictions = Atomic.get t.evictions;
    draining = Atomic.get t.draining;
  }

(* --- admission (reader side) -------------------------------------------- *)

(* All-or-nothing: lock the touched shard queues in ascending index
   order (the only multi-lock path, so no deadlock), admit only when
   every queue has room, and otherwise push nothing.  The inflight
   counters are bumped under the same mutexes as the pushes, so a shard
   with [inflight = 0] has nothing queued and nothing executing. *)
let admit cap subs =
  let qs = List.map (fun (sh, _) -> sh.queue) subs in
  List.iter (fun q -> Mutex.lock q.mutex) qs;
  let ok =
    List.for_all
      (fun q -> (not q.closed) && Queue.length q.items < cap)
      qs
  in
  if ok then
    List.iter2
      (fun q ((sh : shard), job) ->
        Queue.push job q.items;
        Atomic.incr sh.inflight;
        Condition.signal q.nonempty)
      qs subs;
  List.iter (fun q -> Mutex.unlock q.mutex) qs;
  ok

let shard_degraded sh =
  Mutex.lock sh.stats_lock;
  let d = sh.degraded in
  Mutex.unlock sh.stats_lock;
  d

let route_batch t conn ~id events =
  let nshards = Array.length t.shard_tab in
  let buckets = Array.make nshards [] in
  let counts = Array.make nshards 0 in
  List.iter
    (fun (e : Frame.event) ->
      let session =
        match e with
        | Frame.Data { session; _ } | Frame.End_of_session { session } ->
            session
      in
      let s = Frame.shard_of_session ~shards:nshards session in
      buckets.(s) <- e :: buckets.(s);
      counts.(s) <- counts.(s) + 1)
    events;
  let subs = ref [] in
  for s = nshards - 1 downto 0 do
    if counts.(s) > 0 then
      subs :=
        ( t.shard_tab.(s),
          {
            reply = conn;
            batch_id = id;
            events = List.rev buckets.(s);
            nevents = counts.(s);
            attempts = 0;
          } )
        :: !subs
  done;
  let reject hint_subs =
    List.iter
      (fun (sh, _) ->
        Mutex.lock sh.stats_lock;
        sh.rejected <- sh.rejected + 1;
        Mutex.unlock sh.stats_lock)
      !subs;
    let retry_after_ms =
      List.fold_left
        (fun acc (sh, _) -> Stdlib.max acc (shard_retry_hint t sh))
        t.cfg.retry_after_ms hint_subs
    in
    push_response t conn (Frame.Rejected { id; retry_after_ms })
  in
  if Atomic.get t.draining then reject !subs
  else begin
    (* A degraded shard's slice fails immediately with the shard's
       rendered fate; the rest of the batch is admitted all-or-nothing
       as usual, so a fatal shard fault degrades only the sessions
       routed to it.  Failures are sent only when the live slice is
       admitted: a rejected batch is resent whole, and answering part
       of it early would double-count on the resend. *)
    let degraded_subs, live_subs =
      List.partition (fun (sh, _) -> shard_degraded sh <> None) !subs
    in
    if live_subs = [] || admit t.cfg.queue_capacity live_subs then
      List.iter
        (fun (sh, (job : job)) ->
          let reason =
            match shard_degraded sh with
            | Some r -> r
            | None -> "shard degraded"
          in
          push_response t conn
            (Frame.Failed
               { id; shard = sh.index; events = job.nevents; reason }))
        degraded_subs
    else reject live_subs
  end

(* --- per-connection domains --------------------------------------------- *)

let reader_loop t conn =
  let buf = Bytes.create 65536 in
  let r = Frame.reader () in
  let finished = ref false in
  (try
     while not !finished do
       let n = Unix.read conn.fd buf 0 (Bytes.length buf) in
       if n = 0 then finished := true
       else begin
         Frame.feed_bytes r buf ~pos:0 ~len:n;
         if Atomic.get conn.encoding = None then
           Atomic.set conn.encoding (Frame.reader_encoding r);
         let rec drain () =
           if not !finished then
             match Frame.next_request r with
             | None -> ()
             | Some (Frame.Batch { id; events }) ->
                 route_batch t conn ~id events;
                 drain ()
             | Some Frame.Stats_request ->
                 push_response t conn (Frame.Stats (sample_all t));
                 drain ()
             | Some Frame.Health_request ->
                 push_response t conn (Frame.Health (sample_health t));
                 drain ()
             | Some Frame.Drain_request ->
                 Atomic.set t.draining true;
                 Mutex.lock t.drain_lock;
                 t.drain_waiters <- conn :: t.drain_waiters;
                 Mutex.unlock t.drain_lock;
                 drain ()
             | Some Frame.Quit ->
                 Atomic.set t.stop true;
                 finished := true
         in
         drain ()
       end
     done
   with
  | Parse_error.Error msg -> push_response t conn (Frame.Error_msg msg)
  | Unix.Unix_error _ -> (* connection torn down under the read *) ());
  Atomic.set conn.reader_done true

(* Write under a deadline: a peer that stops reading stalls the socket
   buffer, [select] times out, and the caller evicts — one stalled
   client never wedges a writer domain (or, transitively, the shard
   domains waiting to push acks to it). *)
let write_with_deadline fd bytes ~timeout_ms =
  let len = Bytes.length bytes in
  let off = ref 0 in
  let ok = ref true in
  while !ok && !off < len do
    match Unix.select [] [ fd ] [] (float_of_int timeout_ms /. 1000.) with
    | _, [], _ -> ok := false
    | _ -> off := !off + Unix.write fd bytes !off (len - !off)
  done;
  !ok

(* Chaos: tear this response frame on the wire?  Only acks are torn
   (the frames whose loss exercises the resend/re-acknowledge path),
   and each frame key at most once. *)
let should_tear t = function
  | Frame.Ack { id; shard; _ } -> (
      match t.cfg.chaos with
      | None -> false
      | Some plan ->
          let key = Fault_plan.Serve.frame_key ~batch_id:id ~shard in
          Mutex.lock t.torn_lock;
          let attempt = if Hashtbl.mem t.torn key then 1 else 0 in
          let tear = Fault_plan.Serve.tear plan ~key ~attempt in
          if tear then Hashtbl.replace t.torn key ();
          Mutex.unlock t.torn_lock;
          tear)
  | _ -> false

let writer_loop t conn =
  let b = Buffer.create 8192 in
  let send response =
    Buffer.clear b;
    let enc = Option.value (Atomic.get conn.encoding) ~default:Frame.Binary in
    Frame.write_response b enc response;
    let bytes = Buffer.to_bytes b in
    if should_tear t response then begin
      (* Half a frame, then eviction: the client sees a truncated frame
         and EOF, reconnects, and resends — the journal answers the
         duplicate with the same incidents. *)
      let half = Bytes.length bytes / 2 in
      (try ignore (Unix.write conn.fd bytes 0 half)
       with Unix.Unix_error _ -> ());
      evict t conn;
      false
    end
    else if
      write_with_deadline conn.fd bytes ~timeout_ms:t.cfg.write_timeout_ms
    then true
    else begin
      evict t conn;
      false
    end
  in
  let rec drain () =
    match channel_pop conn.out with None -> () | Some _ -> drain ()
  in
  let rec loop () =
    match channel_pop conn.out with
    | None -> ()
    | Some response -> if send response then loop () else drain ()
  in
  try loop () with
  | Unix.Unix_error _ ->
      (* The client went away mid-write: keep draining so shard domains
         never block on this connection's acks. *)
      drain ()

(* --- shard domains ------------------------------------------------------ *)

let apply_job deadline sh (job : job) =
  let run () = Session_table.apply sh.table ~batch_id:job.batch_id job.events in
  match
    match deadline with
    | Some spec -> Deadline.with_deadline spec run
    | None -> run ()
  with
  | incidents ->
      Frame.Ack
        { id = job.batch_id; shard = sh.index; events = job.nevents; incidents }
  | exception Deadline.Exceeded budget ->
      Frame.Failed
        {
          id = job.batch_id;
          shard = sh.index;
          events = job.nevents;
          reason = Printf.sprintf "Deadline.Exceeded(budget=%dms)" budget;
        }
  (* lint: allow swallow — asynchronous exns re-raise to the supervisor; everything else fails its client with Fault custody, not the server *)
  | exception exn when not (Fault.is_asynchronous exn) ->
      Frame.Failed
        {
          id = job.batch_id;
          shard = sh.index;
          events = job.nevents;
          reason =
            Printf.sprintf "%s: %s"
              (Fault.severity_to_string (Fault.classify exn))
              (Printexc.to_string exn);
        }

let percentile_refresh = 32

let refresh_percentiles sh =
  let n = sh.ring_len in
  let sorted = Array.sub sh.ring 0 n in
  Array.sort compare sorted;
  sh.cached_p50_ns <- percentile sorted n 0.5

(* One sub-batch, start to answered.  Raises only when the domain is
   being killed: a chaos crash/hang fate (injected before the per-batch
   handler, i.e. outside apply_job's custody) or an asynchronous
   exception re-raised by apply_job — both leave the job unanswered for
   the supervisor to requeue or fail. *)
let process t sh (job : job) =
  let deadline = t.cfg.deadline in
  (match t.cfg.chaos with
  | None -> ()
  | Some plan ->
      let key =
        Fault_plan.Serve.job_key ~batch_id:job.batch_id ~shard:sh.index
      in
      let attempt = job.attempts in
      job.attempts <- job.attempts + 1;
      let trip () = Fault_plan.Serve.trip plan ~key ~attempt in
      (* A hang fate spins inside the armed per-batch deadline when one
         is configured (surfacing as Timeout); with none it raises
         [Hang_refused] (Fatal) instead of wedging the domain. *)
      (match deadline with
      | Some spec -> Deadline.with_deadline spec trip
      | None -> trip ()));
  let clock = t.cfg.clock in
  let t0 = clock () in
  let response = apply_job deadline sh job in
  let dt_ns = int_of_float ((clock () -. t0) *. 1e9) in
  Mutex.lock sh.stats_lock;
  sh.busy_ns <- sh.busy_ns + dt_ns;
  sh.ring.(sh.ring_pos) <- dt_ns;
  sh.ring_pos <- (sh.ring_pos + 1) mod latency_ring;
  sh.ring_len <- min (sh.ring_len + 1) latency_ring;
  sh.jobs_done <- sh.jobs_done + 1;
  if sh.jobs_done mod percentile_refresh = 0 then refresh_percentiles sh;
  sh.pub_sessions <- Session_table.sessions_resident sh.table;
  sh.pub_events <- Session_table.events_applied sh.table;
  sh.pub_symbols <- Session_table.symbols_applied sh.table;
  sh.pub_batches <- Session_table.batches_applied sh.table;
  sh.pub_bytes <- Session_table.bytes_resident sh.table;
  sh.pub_windows <- Session_table.windows_scored sh.table;
  sh.pub_alarms <- Session_table.alarm_windows sh.table;
  sh.pub_threshold <- Session_table.current_threshold sh.table;
  (* The shard made progress: a later crash starts a fresh restart
     budget, so any sticky-bounded chaos crash rate fully recovers. *)
  sh.consecutive_restarts <- 0;
  Mutex.unlock sh.stats_lock;
  push_response t job.reply response;
  Atomic.decr sh.inflight

let shard_loop t sh =
  (* The job in hand when the domain last crashed runs first (the queue
     has no push-front, and order is the determinism contract). *)
  let next_job () =
    Mutex.lock sh.stats_lock;
    let pending = sh.pending_job in
    sh.pending_job <- None;
    Mutex.unlock sh.stats_lock;
    match pending with Some _ as j -> j | None -> channel_pop sh.queue
  in
  let rec loop () =
    match next_job () with
    | None -> ()
    | Some job -> (
        match process t sh job with
        | () -> loop ()
        (* lint: allow swallow — this IS the supervisor handoff: the exn is recorded as poison and classified by Fault.classify in supervise *)
        | exception exn ->
            (* Domain poisoned: record custody for the supervisor as
               the last act and exit.  The job stays pending so a
               restart re-runs it (or a degrade fails it) — it is never
               silently dropped. *)
            Mutex.lock sh.stats_lock;
            sh.poison <- Some exn;
            sh.pending_job <- Some job;
            Mutex.unlock sh.stats_lock)
  in
  loop ()

(* --- setup -------------------------------------------------------------- *)

let journal_for cfg ~resume ~depth ~states index =
  match cfg.journal_dir with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let context =
        Printf.sprintf "serve model=%s depth=%d states=%d threshold=%016Lx \
                        shards=%d shard=%d"
          cfg.model_tag depth states
          (Int64.bits_of_float cfg.threshold)
          cfg.shards index
      in
      (* The alarm-budget token appears only under adaptive
         thresholding, so static journals keep their historical context
         byte-for-byte; resuming a static journal with --alarm-budget
         (or vice versa) refuses via the context check. *)
      let context =
        match cfg.adaptive with
        | None -> context
        | Some a ->
            Printf.sprintf "%s alarm_budget=%016Lx" context
              (Int64.bits_of_float a.Adaptive_threshold.budget)
      in
      Some
        (Shard_journal.start ~resume ~context
           (Filename.concat dir (Printf.sprintf "shard-%d.journal" index)))

let make_shard cfg ~depth ~states index =
  let journal = journal_for cfg ~resume:cfg.resume ~depth ~states index in
  let table =
    Session_table.create ~scorer:cfg.scorer ~threshold:cfg.threshold
      ?adaptive:cfg.adaptive ?journal ~shard:index ()
  in
  {
    index;
    queue = channel ();
    inflight = Atomic.make 0;
    table;
    stats_lock = Mutex.create ();
    busy_ns = 0;
    rejected = 0;
    ring = Array.make latency_ring 0;
    ring_pos = 0;
    ring_len = 0;
    pub_sessions = Session_table.sessions_resident table;
    pub_events = 0;
    pub_symbols = 0;
    pub_batches = 0;
    pub_bytes = Session_table.bytes_resident table;
    pub_windows = Session_table.windows_scored table;
    pub_alarms = Session_table.alarm_windows table;
    pub_threshold = Session_table.current_threshold table;
    cached_p50_ns = 0;
    jobs_done = 0;
    poison = None;
    pending_job = None;
    degraded = None;
    restarts = 0;
    consecutive_restarts = 0;
  }

let listen_socket = function
  | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                (* lint: allow partiality — documented precondition *)
                invalid_arg (Printf.sprintf "Serve: unknown host %S" host)
            | entry -> entry.Unix.h_addr_list.(0)
            | exception Not_found ->
                (* lint: allow partiality — documented precondition *)
                invalid_arg (Printf.sprintf "Serve: unknown host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

(* --- the shard lifecycle supervisor ------------------------------------- *)

(* Answer a job the shard will never execute. *)
let fail_job t sh reason (job : job) =
  push_response t job.reply
    (Frame.Failed
       { id = job.batch_id; shard = sh.index; events = job.nevents; reason });
  Atomic.decr sh.inflight

(* A shard domain died: classify its poison through the one policy
   point and either restart it (Transient, journal attached, budget
   left — state recovered exactly where the last committed batch left
   it, the crashed job re-run) or degrade the shard (queue closed, its
   job and every stranded one answered [Failed] with the rendered
   fate, all future slices failed at admission).  Only the poisoned
   shard's sessions are affected either way. *)
let supervise t domains ~depth ~states =
  Array.iteri
    (fun i sh ->
      let poison =
        Mutex.lock sh.stats_lock;
        let p = sh.poison in
        Mutex.unlock sh.stats_lock;
        p
      in
      match poison with
      | None -> ()
      | Some exn ->
          (* The domain set poison as its last act; join is prompt. *)
          (match domains.(i) with
          | Some d ->
              Domain.join d;
              domains.(i) <- None
          | None -> ());
          let severity = Fault.classify exn in
          let restartable =
            severity = Fault.Transient
            && t.cfg.journal_dir <> None
            && sh.consecutive_restarts < t.cfg.max_restarts
          in
          if restartable then begin
            (* Rebuild the shard's state from its journal — committed
               batches and session snapshots only, exactly the state
               the acks promised.  The dead domain's journal handle is
               abandoned (it will never write again); the leak is
               bounded by the restart budget. *)
            let journal =
              journal_for t.cfg ~resume:true ~depth ~states sh.index
            in
            let table =
              Session_table.create ~scorer:t.cfg.scorer
                ~threshold:t.cfg.threshold ?adaptive:t.cfg.adaptive ?journal
                ~shard:sh.index ()
            in
            Mutex.lock sh.stats_lock;
            sh.table <- table;
            sh.poison <- None;
            sh.restarts <- sh.restarts + 1;
            sh.consecutive_restarts <- sh.consecutive_restarts + 1;
            sh.pub_sessions <- Session_table.sessions_resident table;
            sh.pub_bytes <- Session_table.bytes_resident table;
            sh.pub_windows <- Session_table.windows_scored table;
            sh.pub_alarms <- Session_table.alarm_windows table;
            sh.pub_threshold <- Session_table.current_threshold table;
            Mutex.unlock sh.stats_lock;
            domains.(i) <- Some (Domain.spawn (fun () -> shard_loop t sh))
          end
          else begin
            let reason =
              Printf.sprintf "shard %d degraded (%s): %s" sh.index
                (Fault.severity_to_string severity)
                (Printexc.to_string exn)
            in
            let pending =
              Mutex.lock sh.stats_lock;
              sh.degraded <- Some reason;
              let p = sh.pending_job in
              sh.pending_job <- None;
              Mutex.unlock sh.stats_lock;
              p
            in
            Option.iter (fail_job t sh reason) pending;
            List.iter (fail_job t sh reason) (channel_drain_close sh.queue)
          end)
    t.shard_tab

(* Answer pending [Drained] waiters once every shard is idle:
   [inflight] counters cover both queued and executing sub-batches, so
   zero everywhere (with intake rejecting under [draining]) means the
   serve layer holds no work. *)
let answer_drain t =
  if
    Atomic.get t.draining
    && Array.for_all (fun sh -> Atomic.get sh.inflight = 0) t.shard_tab
  then begin
    Mutex.lock t.drain_lock;
    let waiters = t.drain_waiters in
    t.drain_waiters <- [];
    Mutex.unlock t.drain_lock;
    if waiters <> [] then begin
      let batches =
        Array.fold_left
          (fun acc sh ->
            Mutex.lock sh.stats_lock;
            let b = sh.pub_batches in
            Mutex.unlock sh.stats_lock;
            acc + b)
          0 t.shard_tab
      in
      List.iter
        (fun conn -> push_response t conn (Frame.Drained { batches }))
        waiters
    end
  end

(* --- the run loop ------------------------------------------------------- *)

let run ?(on_ready = fun () -> ()) cfg =
  if cfg.shards <= 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Serve.run: shards=%d" cfg.shards);
  if cfg.queue_capacity <= 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Serve.run: queue_capacity=%d"
                   cfg.queue_capacity);
  if cfg.max_restarts < 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Serve.run: max_restarts=%d" cfg.max_restarts);
  if cfg.write_timeout_ms <= 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Serve.run: write_timeout_ms=%d"
                   cfg.write_timeout_ms);
  let previous_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigpipe previous_sigpipe)
  @@ fun () ->
  let automaton = Flat_automaton.automaton cfg.scorer in
  let depth = Flat_automaton.depth automaton in
  let states = Flat_automaton.states automaton in
  let shard_tab =
    Array.init cfg.shards (make_shard cfg ~depth ~states)
  in
  let t =
    {
      cfg;
      shard_tab;
      stop = Atomic.make false;
      draining = Atomic.make false;
      live_conns = Atomic.make 0;
      evictions = Atomic.make 0;
      drain_lock = Mutex.create ();
      drain_waiters = [];
      torn_lock = Mutex.create ();
      torn = Hashtbl.create 64;
    }
  in
  let domains =
    Array.map
      (fun sh -> Some (Domain.spawn (fun () -> shard_loop t sh)))
      shard_tab
  in
  let lfd = listen_socket cfg.address in
  on_ready ();
  let conns = ref [] in
  (* Retire connections whose peer has hung up: join the reader (it has
     already exited), close the response channel so the writer flushes
     what is queued and exits, then release the fd.  Without this the
     connection list only grows and [max_connections] would cap the
     server's lifetime total instead of its concurrency. *)
  let reap () =
    let finished, live =
      List.partition (fun (c, _, _) -> Atomic.get c.reader_done) !conns
    in
    conns := live;
    List.iter
      (fun (c, rd, wd) ->
        Domain.join rd;
        channel_close c.out;
        Domain.join wd;
        Atomic.decr t.live_conns;
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      finished
  in
  while not (Atomic.get t.stop) do
    reap ();
    supervise t domains ~depth ~states;
    answer_drain t;
    (* A poll instead of a blocking accept, so a Quit observed by any
       reader domain stops the loop within one tick. *)
    match Unix.select [ lfd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept lfd with
        | exception Unix.Unix_error _ -> (* client vanished pre-accept *) ()
        | fd, _ ->
            if List.length !conns >= cfg.max_connections then
              (try Unix.close fd with Unix.Unix_error _ -> ())
            else begin
              let conn =
                {
                  fd;
                  out = channel ();
                  encoding = Atomic.make None;
                  reader_done = Atomic.make false;
                  evicted = Atomic.make false;
                }
              in
              Atomic.incr t.live_conns;
              let rd = Domain.spawn (fun () -> reader_loop t conn) in
              let wd = Domain.spawn (fun () -> writer_loop t conn) in
              conns := (conn, rd, wd) :: !conns
            end)
  done;
  (* Orderly drain: stop intake, let every admitted batch finish and
     every produced response flush, then tear the connections down. *)
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match cfg.address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  List.iter
    (fun (c, _, _) ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    !conns;
  List.iter (fun (_, rd, _) -> Domain.join rd) !conns;
  Array.iter (fun sh -> channel_close sh.queue) shard_tab;
  Array.iter (function Some d -> Domain.join d | None -> ()) domains;
  (* A crash racing the shutdown leaves a poisoned shard with work in
     hand or still queued; answer it rather than drop it silently. *)
  Array.iter
    (fun sh ->
      let poisoned, pending =
        Mutex.lock sh.stats_lock;
        let r = (sh.poison <> None, sh.pending_job) in
        sh.pending_job <- None;
        Mutex.unlock sh.stats_lock;
        r
      in
      if poisoned then begin
        let reason = "server shutting down" in
        Option.iter (fail_job t sh reason) pending;
        List.iter (fail_job t sh reason) (channel_drain_close sh.queue)
      end)
    shard_tab;
  List.iter (fun (c, _, _) -> channel_close c.out) !conns;
  List.iter (fun (_, _, wd) -> Domain.join wd) !conns;
  List.iter
    (fun (c, _, _) -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    !conns;
  sample_all t
