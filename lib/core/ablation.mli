(** Ablation studies of the design choices the paper sets aside or
    flags (experiments A1–A4 of DESIGN.md).

    Sweeps that train or score detectors accept an [?engine] so their
    models come from the shared trained-model cache and their pure
    per-point work runs on the engine's worker pool; the default is a
    fresh serial engine.  Functions whose parameters are all labelled
    take a final [unit] so the optional engine can be erased. *)

open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth

(** {1 A1 — Stide's locality frame count} *)

type lfc_point = {
  frame : int;
  min_count : int;
  raw_hit : bool;  (** anomaly detected without the LFC *)
  lfc_hit : bool;  (** anomaly still detected through the LFC *)
  raw_false_alarms : int;  (** on the deployment stream, without LFC *)
  lfc_false_alarms : int;  (** on the deployment stream, through LFC *)
}

val lfc_experiment :
  ?engine:Engine.t ->
  training:Trace.t -> injection:Injector.injection -> deploy:Trace.t ->
  window:int -> settings:(int * int) list -> unit -> lfc_point list
(** For each [(frame, min_count)] setting, compare Stide with and
    without the LFC post-processor on a hit (the injected stream) and on
    false alarms (the deployment stream).  Train Stide on [training] —
    pass a deliberately short stream to leave unseen-but-benign windows
    in the deployment data, the condition under which the LFC has
    anything to suppress. *)

(** {1 A2 — neural-network hyper-parameter sensitivity} *)

type nn_point = {
  params : Neural.params;
  loss : float;  (** final training loss *)
  capable : int;  (** cells capable at the probed window *)
  weak : int;
  min_span_response : float;
      (** smallest maximum-span response across anomaly sizes — how
          close the weakest cell is to the maximal-response criterion *)
}

val nn_sensitivity :
  ?engine:Engine.t ->
  Suite.t -> window:int -> params:Neural.params list -> nn_point list
(** Train the neural detector at one window under each hyper-parameter
    setting and score every anomaly size of the suite — reproducing the
    paper's observation that unlucky parameter choices weaken the
    anomaly signal (Section 7). *)

(** {1 A3 — alphabet-size invariance} *)

type alphabet_point = {
  alphabet_size : int;
  stide_diagonal : bool;
      (** Stide capable exactly when window >= anomaly size *)
  markov_everywhere : bool;  (** Markov capable at every cell *)
}

val alphabet_invariance :
  ?engine:Engine.t ->
  base:Suite.params -> sizes:int list -> unit -> alphabet_point list
(** Rebuild the suite at each alphabet size and check that the shape of
    the Stide and Markov maps is unchanged — the paper's Section 5.3
    claim that alphabet size does not affect foreign-sequence
    detection. *)

(** {1 A4 — sensitivity of the rare-sequence definition} *)

type rare_point = {
  threshold : float;
  rare_twograms : int;  (** distinct 2-grams classified rare *)
  common_twograms : int;
  mfs_candidates : int;
      (** minimal foreign sequences of size 5 whose end 2-grams are all
          rare at this threshold *)
}

val rare_threshold_sweep : Suite.t -> thresholds:float list -> rare_point list
(** How the rare/common split of the training data and the pool of
    rare-composed anomalies respond to moving the paper's 0.5 %
    threshold. *)

(** {1 A6 — choosing the detector window ("Why 6?", Tan & Maxion 2002)} *)

type window_point = {
  window : int;
  coverage : float;
      (** fraction of the suite's anomaly sizes Stide detects at this
          window (= fraction of sizes ≤ window, by the diagonal law) *)
  false_alarm_rate : float;
      (** Stide's alarm rate on a fresh deployment stream when trained
          on [fa_training] — the realistic, undertrained regime in which
          longer windows are increasingly likely to be unseen *)
}

val window_tradeoff :
  ?engine:Engine.t ->
  Suite.t -> fa_training:Seqdiv_stream.Trace.t ->
  deploy:Seqdiv_stream.Trace.t -> window_point list
(** The operational trade-off behind window selection: growing the
    window buys detection coverage of longer minimal foreign sequences
    but pays in false alarms once training no longer exhausts benign
    windows.  The detection column uses the suite's full training data
    (clean attribution); the false-alarm column uses [fa_training]. *)

(** {1 A8 — Laplace smoothing vs the maximal-response guarantee} *)

type smoothing_point = {
  alpha : float;
  capable : int;  (** cells capable at the probed window *)
  weak : int;
  max_span_response : float;
      (** highest incident-span response across the probed anomaly
          sizes *)
}

val smoothing_sweep :
  Suite.t -> window:int -> alphas:float list -> smoothing_point list
(** Sweep the Markov detector's Laplace constant at one window.  At
    [alpha = 0] (the paper's maximum-likelihood detector) every anomaly
    size is capable; with enough smoothing no response reaches the
    maximal band and the whole column degrades to weak — the paper's
    threshold-of-1 methodology silently presumes unsmoothed
    estimates. *)

(** {1 A7 — the synthesis operating envelope} *)

type deviation_point = {
  deviation : float;
  sizes_constructible : int;
      (** anomaly sizes in the suite's range for which at least one
          minimal foreign sequence exists in the generated training
          data *)
  suite_builds : bool;
  stide_diagonal_held : bool;
      (** meaningful only when the suite builds *)
}

val deviation_sweep :
  ?engine:Engine.t ->
  base:Suite.params -> deviations:float list -> unit -> deviation_point list
(** DESIGN.md §5 argues the deviation rate must sit in a band: low
    enough that two-deviation sequences at a fixed spacing stay foreign,
    high enough that single-deviation sub-sequences are present.  This
    sweep maps the band empirically: outside it, minimal foreign
    sequences stop being constructible and the suite build fails
    (gracefully). *)

(** {1 E3 — seed robustness} *)

type seed_point = {
  seed : int;
  stide_diagonal : bool;  (** Stide capable exactly when DW >= AS *)
  markov_everywhere : bool;
  lnb_nowhere : bool;  (** L&B capable at no cell *)
}

val seed_robustness :
  ?engine:Engine.t -> base:Suite.params -> seeds:int list -> unit -> seed_point list
(** Rebuild the suite under each seed and check that the paper's map
    shapes are invariant — the reproduction does not hinge on a lucky
    random stream. *)
