(** The paper's main experiment: build the performance map of each
    detector over the evaluation suite (Figures 3–6) and summarise the
    coverage relations between them (the Section 7–8 analysis).

    Training is shared across anomaly sizes: for each detector-window
    size every detector is trained once on the training stream and then
    scored against the incident span of each injected test stream.

    The map builders are thin plans over {!Engine}: pass [?engine] to
    share a trained-model cache across calls and to run train/score
    tasks on its worker pool; the default is a fresh serial engine.
    Results are byte-identical for every jobs count. *)

open Seqdiv_detectors
open Seqdiv_synth

val performance_map :
  ?engine:Engine.t ->
  ?journal:Journal.t ->
  Suite.t ->
  Detector.t ->
  Performance_map.t
(** Evaluate one detector over every cell of the suite.  [journal]
    arms crash-safe cell recording and resume (see
    {!Engine.all_maps}). *)

val performance_map_over :
  ?engine:Engine.t ->
  Suite.t ->
  injection:(anomaly_size:int -> window:int -> Injector.injection) ->
  Detector.t ->
  Performance_map.t
(** Like {!performance_map} but against caller-supplied injections (one
    per cell) instead of the suite's minimal-foreign-sequence streams —
    used by the rare-anomaly extension ({!Rare_anomaly}).  Models are
    still trained once per window on the suite's training stream. *)

val all_maps :
  ?engine:Engine.t ->
  ?journal:Journal.t ->
  Suite.t ->
  Detector.t list ->
  Performance_map.t list
(** {!performance_map} for each detector, in the given order, as one
    engine plan (single train phase, one score batch per detector). *)

type relation = {
  left : string;
  right : string;
  left_only : int;  (** cells covered by [left] but not [right] *)
  right_only : int;
  both : int;
  jaccard : float;
  left_subset_of_right : bool;
  right_subset_of_left : bool;
}

val relation : Performance_map.t -> Performance_map.t -> relation
(** Coverage relation between two maps (over identical cell grids). *)

type summary = {
  detector : string;
  capable : int;
  weak : int;
  blind : int;
  failed : int;  (** cells lost to supervised-execution faults (0 when healthy) *)
  capable_fraction : float;
}

val summary : Performance_map.t -> summary
(** Per-detector outcome counts for the T1 table. *)

val pairwise_relations : Performance_map.t list -> relation list
(** {!relation} for every unordered pair, in list order. *)
