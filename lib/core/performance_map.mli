(** Performance maps — the paper's central result artifact
    (Figures 3–6).

    A map records, for one detector, the outcome at every
    (anomaly size, detector window) cell of the evaluation suite.
    Anomaly size 1 is undefined (a size-1 foreign sequence would have to
    be simultaneously foreign and rare, Section 6), which the rendering
    layer shows as an undefined region. *)

type t

val detector : t -> string
val anomaly_sizes : t -> int list
(** Ascending. *)

val windows : t -> int list
(** Ascending. *)

val build :
  detector:string ->
  anomaly_sizes:int list ->
  windows:int list ->
  f:(anomaly_size:int -> window:int -> Outcome.t) ->
  t
(** Evaluate [f] at every cell.  The ranges must be non-empty and
    ascending. *)

val outcome : t -> anomaly_size:int -> window:int -> Outcome.t
(** Outcome at a cell.  Requires the cell to be in range. *)

val capable_cells : t -> (int * int) list
(** [(anomaly_size, window)] pairs where the detector is capable,
    row-major ascending. *)

val blind_cells : t -> (int * int) list
(** Cells where the detector is blind (zero response). *)

val weak_cells : t -> (int * int) list
(** Cells with a weak (sub-maximal, non-zero) response. *)

val failed_cells : t -> (int * int) list
(** Cells whose train/score task failed past the supervisor's retry
    budget ({!Outcome.Failed}).  Empty on a healthy run. *)

val cell_count : t -> int
(** Total number of cells. *)

val capable_fraction : t -> float
(** Fraction of cells where the detector is capable — the scalar
    "coverage" used in the summary tables. *)

val fold :
  t -> init:'a -> f:('a -> anomaly_size:int -> window:int -> Outcome.t -> 'a) ->
  'a
(** Row-major fold over all cells. *)
