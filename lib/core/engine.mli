(** The execution engine: every experiment driver reduces its work to
    an explicit plan of {e train tasks} (one per detector × window,
    deduplicated through a trained-model cache) and {e score tasks}
    (one per performance-map cell), which the engine executes
    train-phase-then-score-phase on a {!Seqdiv_util.Pool} of worker
    domains.

    {b Determinism contract.}  Results are byte-identical for every
    jobs count.  The engine only ever hands the pool pure work:
    training (each detector seeds its own PRNG deterministically) and
    scoring (a function of model and trace).  Everything that consumes
    shared randomness or mutates shared state — suite generation,
    injection search, the model cache, the stage counters — runs on
    the calling domain.  {!Pool.map} is order-preserving, so phase
    outputs are assembled in plan order regardless of which domain
    computed them.

    {b Cache keying.}  A trained model is cached under
    (detector name, window, training-trace fingerprint), where the
    fingerprint is a 64-bit FNV-1a hash of the trace contents.  The
    cache is what removes the duplicated retraining between
    [Experiment] and [Deployment]: any driver asking for the same
    (detector, window, trace) triple gets the already-trained model.

    {b Shared tries.}  Alongside the model cache, the engine keeps one
    counting {!Seqdiv_stream.Seq_trie} per training-trace fingerprint
    (the deepest requested so far).  Detectors that declare
    {!Seqdiv_detectors.Detector.S.train_of_trie} — Stide, t-stide,
    Markov — train as width-slice views of that trie: a whole
    detector x window grid over one training trace costs a single
    O(length x max window) trace scan instead of one scan per cell.
    Trie construction and reuse are reported in {!stats}.

    {b Instrumentation.}  Per-stage wall-clock timers and task
    counters accumulate in {!stats} and are logged through [Logs]
    (source ["seqdiv.engine"]).  The clock is injected — the library
    default reads no wall clock at all (timings stay 0); executables
    pass [Unix.gettimeofday] to get real [--trace] output.

    {b Supervision.}  Every train and score task executes isolated
    ({!Seqdiv_util.Pool.map_result}): an exception lands in that task's
    own result slot, is classified by {!Fault.classify}, and — when
    transient — the task is re-run on the calling domain's schedule up
    to the engine's retry budget.  Retry bookkeeping lives in {!stats}
    and in each fault's [attempts] field, never in any PRNG state, so
    a recovered run is byte-identical to an undisturbed one.  A task
    that fails past the budget degrades its cell to
    {!Outcome.Failed} (map plans) or raises {!Fault.Error}
    ({!train_batch}).  Chaos testing hooks in through
    {!Fault_plan}: a seeded plan trips tasks by {e content key} — a
    fingerprint of what the task computes — identically at every jobs
    count and across resumes.

    {b Journal.}  Map plans optionally record every completed cell in
    a crash-safe {!Journal}; a resumed run answers journalled cells
    without training or scoring (counted as [cells_resumed]) and
    re-executes only the rest, byte-identically to a fresh run.
    Failed cells are never journalled, so a resume retries them. *)

open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth

type t

val create :
  ?clock:(unit -> float) ->
  ?jobs:int ->
  ?retries:int ->
  ?fault_plan:Fault_plan.t ->
  ?deadline:Seqdiv_util.Deadline.spec ->
  ?compile:bool ->
  unit ->
  t
(** A fresh engine with an empty model cache.  [jobs] defaults to 1
    (strictly serial); [clock] defaults to [fun () -> 0.] so that
    library code performs no wall-clock reads.  [retries] (default 2,
    clamped to at least 0) is the supervisor's budget of {e additional}
    executions for a transiently-failed task.  [fault_plan] arms the
    seeded chaos harness: every train/score task consults the plan
    before running (tests and [bench --chaos] only).  [deadline] arms a
    cooperative watchdog afresh around every supervised task execution
    (and every trie build): a task that checkpoints past the budget
    degrades its cell to {!Outcome.Failed} with the non-retried
    [Timeout] severity instead of stalling the run.  [compile] (default
    [false]) attaches compiled flat-automaton scorers
    ({!Trained.compile}) to models as they are committed to the cache;
    detectors sharing a training trace and window share one automaton,
    cached per (fingerprint, window).  Responses are bit-identical with
    the flag on or off (asserted against the golden fixtures). *)

val default : t option -> t
(** [default (Some e)] is [e]; [default None] is a fresh serial
    engine — the idiom drivers use for their [?engine] parameter. *)

val jobs : t -> int
(** Worker count of the underlying pool. *)

val compiles : t -> bool
(** Whether the engine attaches compiled scorers to trained models. *)

val pool : t -> Seqdiv_util.Pool.t
(** The engine's pool, for drivers that parallelise pure per-item
    work of their own (e.g. per-window false-alarm scoring).  The
    pool contract applies: closures must not touch the engine, any
    PRNG, or other shared mutable state. *)

val retries : t -> int
(** The supervisor's retry budget per transiently-failed task. *)

val fault_plan : t -> Fault_plan.t option
(** The armed chaos plan, if any. *)

val deadline : t -> Seqdiv_util.Deadline.spec option
(** The per-task deadline policy, if any. *)

(** {1 Stage instrumentation} *)

type stats = {
  train_executed : int;  (** train tasks actually run *)
  train_cached : int;  (** train tasks satisfied by the model cache *)
  score_tasks : int;  (** score tasks run *)
  train_seconds : float;  (** wall-clock spent in train phases *)
  score_seconds : float;  (** wall-clock spent in score phases *)
  tries_built : int;  (** shared training tries constructed *)
  trie_hits : int;
      (** trie-capable models served as views of an already-built trie
          (rather than triggering a trie construction) *)
  trie_nodes : int;  (** total nodes across all constructed tries *)
  faults_injected : int;  (** chaos-plan faults that actually fired *)
  retries : int;  (** task re-executions granted by the supervisor *)
  cells_failed : int;
      (** cells degraded to {!Outcome.Failed} (score faults and cells
          downstream of a failed training) *)
  cells_timed_out : int;
      (** the subset of [cells_failed] whose fault severity is
          [Timeout] (deadline expiry) *)
  cells_resumed : int;  (** cells answered from the journal *)
  automata_built : int;
      (** flat automata compiled (when the engine was created with
          [~compile:true]) *)
  automata_hits : int;
      (** compiled models that shared an already-built automaton *)
}

val stats : t -> stats
(** Cumulative counters since creation (or the last {!reset_stats}). *)

val reset_stats : t -> unit

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering used by the [--trace] flag of the
    executables. *)

(** {1 Training (the only [Trained.train] call sites in the tree)} *)

val train : t -> Detector.t -> window:int -> Trace.t -> Trained.t
(** Train one model through the cache, on the calling domain. *)

val train_batch : t -> (Detector.t * int * Trace.t) list -> Trained.t list
(** The train phase of a plan: deduplicate the (detector, window,
    trace) specs against each other and the cache, train the misses in
    parallel on the pool under supervision, commit them to the cache,
    and return one trained model per input spec, in input order.
    @raise Fault.Error if any spec's training failed past the retry
    budget (use {!train_batch_result} to keep per-spec failures). *)

val train_batch_result :
  t ->
  (Detector.t * int * Trace.t) list ->
  (Trained.t, Fault.t) result list
(** {!train_batch} with per-spec fault isolation: a failed training
    yields [Error fault] in its own slot (and stays out of the cache);
    every other spec still trains.  Specs sharing a failed spec's cache
    key share its fault. *)

(** {1 Score phase} *)

val score_batch : t -> (Trained.t * Injector.injection) list -> Outcome.t list
(** Score every (model, injection) cell in parallel on the pool under
    supervision; results in input order.  A cell whose task failed past
    the retry budget comes back as {!Outcome.Failed} — never an
    exception. *)

(** {1 Whole-experiment plans} *)

val performance_map :
  ?journal:Journal.t -> t -> Suite.t -> Detector.t -> Performance_map.t
(** Plan and execute one detector's map over the suite's own injected
    streams.  With [journal], completed cells are recorded (and
    journalled cells of a resumed run are answered without
    re-execution — see {!all_maps}). *)

val performance_map_over :
  t ->
  Suite.t ->
  injection:(anomaly_size:int -> window:int -> Injector.injection) ->
  Detector.t ->
  Performance_map.t
(** Like {!performance_map} against caller-supplied injections.  The
    [injection] callback runs serially on the calling domain, once per
    cell in row-major order, before the score phase starts — callbacks
    may therefore consume PRNG state or count calls. *)

val all_maps :
  ?journal:Journal.t -> t -> Suite.t -> Detector.t list -> Performance_map.t list
(** One plan for all detectors: a single train phase over every
    (detector, window) pair followed by one supervised score batch per
    detector — the paper's Figures 3–6 sweep.

    With [journal], cells the journal already holds (keyed on the
    suite's seed, detector, window and anomaly size) are answered from
    it directly — their training and scoring are skipped — and every
    newly completed, non-failed cell is recorded, with a crash-safe
    flush after each detector.  An interrupted run resumed against its
    journal therefore re-executes only the missing cells and produces
    byte-identical maps at any jobs count.  Journals key suite-injected
    cells only, which is why {!performance_map_over} (caller-supplied
    injections) takes no journal. *)
