(* The fault taxonomy of the supervised execution layer.  A fault is
   the {e record} of a task failure — enough to classify it, report it
   in a performance-map cell, and account for the retries it consumed —
   never the exception itself escaping a batch. *)

type severity = Transient | Fatal | Timeout

exception Injected of severity * string

type t = {
  severity : severity;
  origin : string;
  attempts : int;
  backtrace : string;
}

(* A deadline expiry is its own severity: retrying a task that just
   spent its whole budget would spend another budget to learn nothing,
   so [Timeout] — like [Fatal] — is never retried, but it renders
   distinctly ([failed:timeout]) because the remedy differs: raise
   [--deadline-ms], don't fix the detector. *)
(* The named [Fatal] cases are the constructors the whole-program
   analysis (lint R10) proves raisable on supervised paths today; the
   final catch-all keeps custody of anything unforeseen, at the same
   severity. *)
let classify = function
  | Injected (severity, _) -> severity
  | Seqdiv_util.Deadline.Exceeded _ -> Timeout
  | Seqdiv_util.Deadline.Hang_refused -> Fatal
  | Invalid_argument _ -> Fatal
  | Assert_failure _ -> Fatal
  | _ -> Fatal

(* Asynchronous exceptions report exhaustion of the whole process, not
   a fault of the task that happened to observe them: rendering one
   into a per-task failure would hide that the server itself is dying.
   Supervised paths re-raise these before classifying. *)
let is_asynchronous = function
  | Out_of_memory | Stack_overflow -> true
  | _ -> false

let of_exn ~attempts exn backtrace =
  {
    severity = classify exn;
    origin = Printexc.to_string exn;
    attempts;
    backtrace = Printexc.raw_backtrace_to_string backtrace;
  }

let severity_to_string = function
  | Transient -> "transient"
  | Fatal -> "fatal"
  | Timeout -> "timeout"

let to_string t =
  Printf.sprintf "%s after %d attempt(s): %s"
    (severity_to_string t.severity)
    t.attempts t.origin

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Backtraces are diagnostic only: two runs of the same plan must
   compare equal even when captured stacks differ. *)
let equal a b =
  a.severity = b.severity && a.origin = b.origin && a.attempts = b.attempts

exception Error of t

let () =
  Printexc.register_printer (function
    | Injected (severity, what) ->
        Some
          (Printf.sprintf "Fault.Injected(%s, %s)"
             (severity_to_string severity)
             what)
    | Error fault -> Some (Printf.sprintf "Fault.Error(%s)" (to_string fault))
    | _ -> None)
