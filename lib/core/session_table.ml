(* One shard's session registry: Online monitors keyed by session id,
   stepped in arrival order, with optional journal-backed durability
   and batch dedup.  Single-domain by construction — see the .mli. *)

open Seqdiv_stream
open Seqdiv_util

type t = {
  scorer : Flat_automaton.scorer;
  threshold : float;
  adaptive : Adaptive_threshold.config option;
  journal : Shard_journal.t option;
  shard : int;
  monitors : (int, Online.t) Hashtbl.t;
  (* Resent-batch dedup: id -> the incident events the original apply
     emitted, bounded to the same window as the journal's batch
     history (64 when no journal is attached). *)
  dedup : (int, Frame.incident_event list) Hashtbl.t;
  dedup_order : int Queue.t;
  dedup_capacity : int;
  mutable events : int;
  mutable symbols : int;
  mutable batches : int;
  mutable replays : int;
  (* Window/alarm counts of sessions that have already ended: the
     shard totals are these plus a sum over resident monitors. *)
  mutable departed_windows : int;
  mutable departed_alarms : int;
}

let default_dedup_capacity = 64

let incident_of_core (i : Incident.t) =
  {
    Frame.first_start = i.Incident.first_start;
    last_start = i.Incident.last_start;
    cover_from = i.Incident.cover_from;
    cover_to = i.Incident.cover_to;
    alarms = i.Incident.alarms;
    peak_score = i.Incident.peak_score;
  }

let incident_to_core (i : Frame.incident) =
  {
    Incident.first_start = i.Frame.first_start;
    last_start = i.Frame.last_start;
    cover_from = i.Frame.cover_from;
    cover_to = i.Frame.cover_to;
    alarms = i.Frame.alarms;
    peak_score = i.Frame.peak_score;
  }

let remember_batch t ~batch_id incidents =
  Hashtbl.replace t.dedup batch_id incidents;
  Queue.push batch_id t.dedup_order;
  while Queue.length t.dedup_order > t.dedup_capacity do
    Hashtbl.remove t.dedup (Queue.pop t.dedup_order)
  done

let create ~scorer ~threshold ?adaptive ?journal ~shard () =
  let t =
    {
      scorer;
      threshold;
      adaptive;
      journal;
      shard;
      monitors = Hashtbl.create 1024;
      dedup = Hashtbl.create 128;
      dedup_order = Queue.create ();
      dedup_capacity =
        (match journal with
        | Some _ -> max default_dedup_capacity 1
        | None -> default_dedup_capacity);
      events = 0;
      symbols = 0;
      batches = 0;
      replays = 0;
      departed_windows = 0;
      departed_alarms = 0;
    }
  in
  Option.iter
    (fun j ->
      List.iter
        (fun (s : Shard_journal.session_state) ->
          let monitor =
            Online.restore ?adaptive scorer ~threshold
              {
                Online.snap_consumed = s.Shard_journal.js_consumed;
                snap_state = s.Shard_journal.js_state;
                snap_open =
                  Option.map incident_to_core s.Shard_journal.js_open;
                snap_adaptive = s.Shard_journal.js_adaptive;
              }
          in
          Hashtbl.replace t.monitors s.Shard_journal.js_session monitor)
        (Shard_journal.sessions j);
      List.iter
        (fun (b : Shard_journal.batch_record) ->
          remember_batch t ~batch_id:b.Shard_journal.jb_id
            b.Shard_journal.jb_incidents)
        (Shard_journal.batches j))
    journal;
  t

(* Incident events of one monitor's Online events, appended in emission
   order; Window_scored responses are the monitor's business, not the
   wire's. *)
let push_incident_events acc session events =
  List.iter
    (fun (e : Online.event) ->
      match e with
      | Online.Window_scored _ -> ()
      | Online.Incident_opened position ->
          acc := Frame.Opened { session; position } :: !acc
      | Online.Incident_closed incident ->
          acc :=
            Frame.Closed { session; incident = incident_of_core incident }
            :: !acc)
    events

let checkpoint_stride = 1024

let apply t ~batch_id events =
  match Hashtbl.find_opt t.dedup batch_id with
  | Some incidents ->
      t.replays <- t.replays + 1;
      incidents
  | None ->
      let acc = ref [] in
      (* First-touch order of the sessions this batch advanced, so the
         journal's session records are deterministic too. *)
      let touched = Hashtbl.create 16 in
      let touched_order = ref [] in
      let ended = Hashtbl.create 4 in
      let since_checkpoint = ref 0 in
      List.iter
        (fun (event : Frame.event) ->
          t.events <- t.events + 1;
          match event with
          | Frame.Data { session; symbols } ->
              let monitor =
                match Hashtbl.find_opt t.monitors session with
                | Some m -> m
                | None ->
                    let m =
                      Online.of_scorer ?adaptive:t.adaptive t.scorer
                        ~threshold:t.threshold
                    in
                    Hashtbl.replace t.monitors session m;
                    m
              in
              if not (Hashtbl.mem touched session) then begin
                Hashtbl.replace touched session ();
                touched_order := session :: !touched_order
              end;
              Hashtbl.remove ended session;
              t.symbols <- t.symbols + Array.length symbols;
              Array.iter
                (fun symbol ->
                  push_incident_events acc session (Online.feed monitor symbol);
                  incr since_checkpoint;
                  if !since_checkpoint >= checkpoint_stride then begin
                    since_checkpoint := 0;
                    Deadline.checkpoint ()
                  end)
                symbols
          | Frame.End_of_session { session } -> (
              match Hashtbl.find_opt t.monitors session with
              | None -> () (* unknown or already ended: nothing to flush *)
              | Some monitor ->
                  push_incident_events acc session (Online.flush monitor);
                  t.departed_windows <-
                    t.departed_windows + Online.windows_scored monitor;
                  t.departed_alarms <-
                    t.departed_alarms + Online.alarm_windows monitor;
                  Hashtbl.remove t.monitors session;
                  if not (Hashtbl.mem touched session) then begin
                    Hashtbl.replace touched session ();
                    touched_order := session :: !touched_order
                  end;
                  Hashtbl.replace ended session ()))
        events;
      let incidents = List.rev !acc in
      t.batches <- t.batches + 1;
      Option.iter
        (fun journal ->
          List.iter
            (fun session ->
              if Hashtbl.mem ended session then
                Shard_journal.record_end journal ~session
              else
                match Hashtbl.find_opt t.monitors session with
                | None -> ()
                | Some monitor -> (
                    match Online.snapshot monitor with
                    | None -> () (* of_scorer monitors always snapshot *)
                    | Some snap ->
                        Shard_journal.record_session journal
                          {
                            Shard_journal.js_session = session;
                            js_consumed = snap.Online.snap_consumed;
                            js_state = snap.Online.snap_state;
                            js_open =
                              Option.map incident_of_core snap.Online.snap_open;
                            js_adaptive = snap.Online.snap_adaptive;
                          }))
            (List.rev !touched_order);
          Shard_journal.record_batch journal
            {
              Shard_journal.jb_id = batch_id;
              jb_shard = t.shard;
              jb_events = List.length events;
              jb_incidents = incidents;
            };
          Shard_journal.commit journal)
        t.journal;
      remember_batch t ~batch_id incidents;
      incidents

let shard t = t.shard
let sessions_resident t = Hashtbl.length t.monitors
let events_applied t = t.events
let symbols_applied t = t.symbols
let batches_applied t = t.batches
let batches_replayed t = t.replays

(* Shard totals are departed counters plus a sum over resident
   monitors. *)
let windows_scored t =
  (* lint: allow determinism — integer sum is order-insensitive *)
  Hashtbl.fold
    (fun _ monitor total -> total + Online.windows_scored monitor)
    t.monitors t.departed_windows

let alarm_windows t =
  (* lint: allow determinism — integer sum is order-insensitive *)
  Hashtbl.fold
    (fun _ monitor total -> total + Online.alarm_windows monitor)
    t.monitors t.departed_alarms

(* The shard's published threshold: static configurations report the
   configured constant; adaptive ones report the maximum over resident
   monitors (max is hashtable-order-independent, keeping serve frames
   byte-stable across runs), falling back to the controller's starting
   point when no session is resident. *)
let current_threshold t =
  match t.adaptive with
  | None -> t.threshold
  | Some _ ->
      let best =
        (* lint: allow determinism — max is order-insensitive *)
        Hashtbl.fold
          (fun _ monitor acc ->
            match acc with
            | None -> Some (Online.current_threshold monitor)
            | Some b -> Some (Float.max b (Online.current_threshold monitor)))
          t.monitors None
      in
      Option.value best ~default:t.threshold

(* Word-count estimate: a resident monitor is the Online record, its
   automaton path record and a hashtable slot (~24 words, plus ~8 when
   an incident is open — called 28 flat); a dedup entry is the bucket,
   the queue cell and a short incident list (~16 words).  Estimated,
   not measured — the stat exists so capacity planning has an order of
   magnitude, not a byte count. *)
let bytes_resident t =
  let word = Sys.word_size / 8 in
  (Hashtbl.length t.monitors * 28 * word)
  + (Hashtbl.length t.dedup * 16 * word)
