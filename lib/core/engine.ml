open Seqdiv_util
open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth

let src = Logs.Src.create "seqdiv.engine" ~doc:"Plan/execute experiment engine"

module Log = (val Logs.src_log src)

type stats = {
  train_executed : int;
  train_cached : int;
  score_tasks : int;
  train_seconds : float;
  score_seconds : float;
  tries_built : int;
  trie_hits : int;
  trie_nodes : int;
}

let zero_stats =
  {
    train_executed = 0;
    train_cached = 0;
    score_tasks = 0;
    train_seconds = 0.0;
    score_seconds = 0.0;
    tries_built = 0;
    trie_hits = 0;
    trie_nodes = 0;
  }

type key = string * int * int64

type t = {
  pool : Pool.t;
  clock : unit -> float;
  cache : (key, Trained.t) Hashtbl.t;
  tries : (int64, Seq_trie.t) Hashtbl.t;
      (* fingerprint -> deepest trie built for that training trace;
         every trie-capable (detector, window) model is a view of it *)
  mutable fingerprints : (Trace.t * int64) list;
      (* physical-equality memo: the same training trace is
         fingerprinted once per engine, not once per task *)
  mutable stats : stats;
}

let create ?(clock = fun () -> 0.0) ?(jobs = 1) () =
  {
    pool = Pool.create ~jobs ();
    clock;
    cache = Hashtbl.create 64;
    tries = Hashtbl.create 8;
    fingerprints = [];
    stats = zero_stats;
  }

let default = function Some e -> e | None -> create ()
let jobs t = Pool.jobs t.pool
let pool t = t.pool
let stats t = t.stats
let reset_stats t = t.stats <- zero_stats

let pp_stats ppf s =
  Format.fprintf ppf
    "engine: trained %d model(s) (%d cache hit(s)) in %.3fs; scored %d \
     cell(s) in %.3fs; %d trie(s) built (%d node(s), %d view hit(s))"
    s.train_executed s.train_cached s.train_seconds s.score_tasks
    s.score_seconds s.tries_built s.trie_nodes s.trie_hits

(* --- cache keys -------------------------------------------------------- *)

let compute_fingerprint trace =
  (* FNV-1a over the length and every symbol. *)
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix x = h := Int64.mul (Int64.logxor !h (Int64.of_int x)) prime in
  mix (Trace.length trace);
  for i = 0 to Trace.length trace - 1 do
    mix (Trace.get trace i)
  done;
  !h

let max_fingerprint_memo = 8

let fingerprint t trace =
  match List.find_opt (fun (tr, _) -> tr == trace) t.fingerprints with
  | Some (_, fp) -> fp
  | None ->
      let fp = compute_fingerprint trace in
      let keep =
        if List.length t.fingerprints >= max_fingerprint_memo then
          List.filteri (fun i _ -> i < max_fingerprint_memo - 1) t.fingerprints
        else t.fingerprints
      in
      t.fingerprints <- (trace, fp) :: keep;
      fp

let key t (module D : Detector.S) ~window trace : key =
  (D.name, window, fingerprint t trace)

(* --- shared-trie plan --------------------------------------------------- *)

(* One trie per training trace serves every trie-capable
   (detector, window) model as a cheap width-slice view.  The cache
   keeps the deepest trie built so far for a fingerprint; a shallower
   request is a hit, a deeper one rebuilds (and the deeper trie then
   serves everything the old one did). *)
let obtain_trie t fp trace ~max_len =
  match Hashtbl.find_opt t.tries fp with
  | Some trie when Seq_trie.max_len trie >= max_len -> (trie, false)
  | Some _ | None ->
      let trie = Seq_trie.of_trace ~max_len trace in
      Hashtbl.replace t.tries fp trie;
      t.stats <-
        {
          t.stats with
          tries_built = t.stats.tries_built + 1;
          trie_nodes = t.stats.trie_nodes + Seq_trie.node_count trie;
        };
      (trie, true)

let train_miss t d ~window trace fp =
  if Trained.trie_capable d then begin
    let trie, built = obtain_trie t fp trace ~max_len:window in
    if not built then
      t.stats <- { t.stats with trie_hits = t.stats.trie_hits + 1 };
    match Trained.train_of_trie d trie ~window with
    | Some trained -> trained
    | None -> Trained.train d ~window trace
  end
  else Trained.train d ~window trace

(* --- train phase ------------------------------------------------------- *)

let train t d ~window trace =
  let k = key t d ~window trace in
  match Hashtbl.find_opt t.cache k with
  | Some trained ->
      t.stats <- { t.stats with train_cached = t.stats.train_cached + 1 };
      trained
  | None ->
      let t0 = t.clock () in
      let _, _, fp = k in
      let trained = train_miss t d ~window trace fp in
      Hashtbl.add t.cache k trained;
      t.stats <-
        {
          t.stats with
          train_executed = t.stats.train_executed + 1;
          train_seconds = t.stats.train_seconds +. (t.clock () -. t0);
        };
      trained

let train_batch t specs =
  (* Plan: resolve keys serially, keep the first spec of every
     cache-missing key.  Execute: train the misses on the pool, commit
     on the calling domain, answer every spec from the cache. *)
  let keyed =
    List.map (fun (d, window, trace) -> (key t d ~window trace, d, window, trace)) specs
  in
  let misses =
    List.fold_left
      (fun acc (k, d, window, trace) ->
        if Hashtbl.mem t.cache k || List.exists (fun (k', _, _, _) -> k' = k) acc
        then acc
        else (k, d, window, trace) :: acc)
      [] keyed
    |> List.rev
  in
  let t0 = t.clock () in
  let trie_misses, plain_misses =
    List.partition (fun (_, d, _, _) -> Trained.trie_capable d) misses
  in
  (* Shared-trie plan: one trie per distinct training trace, deep
     enough for every trie-capable miss that shares it; the 14x3
     (window x detector) grid then trains as one trace scan plus cheap
     view constructions. *)
  let upsert groups fp trace window =
    let rec go = function
      | [] -> [ (fp, (trace, window)) ]
      | (fp', (tr, w)) :: rest when Int64.equal fp' fp ->
          (fp', (tr, Stdlib.max w window)) :: rest
      | g :: rest -> g :: go rest
    in
    go groups
  in
  let groups =
    List.fold_left
      (fun acc ((_, _, fp), _, window, trace) -> upsert acc fp trace window)
      [] trie_misses
  in
  let needs_build =
    List.filter
      (fun (fp, (_, maxw)) ->
        match Hashtbl.find_opt t.tries fp with
        | Some trie -> Seq_trie.max_len trie < maxw
        | None -> true)
      groups
  in
  let built =
    Pool.map t.pool
      (fun (_, (trace, maxw)) -> Seq_trie.of_trace ~max_len:maxw trace)
      needs_build
  in
  List.iter2 (fun (fp, _) trie -> Hashtbl.replace t.tries fp trie) needs_build
    built;
  t.stats <-
    {
      t.stats with
      tries_built = t.stats.tries_built + List.length needs_build;
      trie_nodes =
        List.fold_left
          (fun acc trie -> acc + Seq_trie.node_count trie)
          t.stats.trie_nodes built;
      trie_hits =
        t.stats.trie_hits + List.length trie_misses - List.length needs_build;
    };
  let trie_models =
    List.map
      (fun ((_, _, fp), d, window, trace) ->
        match Trained.train_of_trie d (Hashtbl.find t.tries fp) ~window with
        | Some trained -> trained
        | None -> Trained.train d ~window trace)
      trie_misses
  in
  let plain_models =
    Pool.map t.pool
      (fun (_, d, window, trace) -> Trained.train d ~window trace)
      plain_misses
  in
  List.iter2 (fun (k, _, _, _) trained -> Hashtbl.add t.cache k trained)
    trie_misses trie_models;
  List.iter2 (fun (k, _, _, _) trained -> Hashtbl.add t.cache k trained)
    plain_misses plain_models;
  let dt = t.clock () -. t0 in
  let executed = List.length misses in
  t.stats <-
    {
      t.stats with
      train_executed = t.stats.train_executed + executed;
      train_cached = t.stats.train_cached + List.length specs - executed;
      train_seconds = t.stats.train_seconds +. dt;
    };
  Log.debug (fun m ->
      m "train phase: %d task(s), %d trained, %d from cache, %.3fs (%d job(s))"
        (List.length specs) executed
        (List.length specs - executed)
        dt (Pool.jobs t.pool));
  List.map (fun (k, _, _, _) -> Hashtbl.find t.cache k) keyed

(* --- score phase ------------------------------------------------------- *)

let score_batch t tasks =
  let t0 = t.clock () in
  let outcomes =
    Pool.map t.pool (fun (trained, inj) -> Scoring.outcome trained inj) tasks
  in
  let dt = t.clock () -. t0 in
  t.stats <-
    {
      t.stats with
      score_tasks = t.stats.score_tasks + List.length tasks;
      score_seconds = t.stats.score_seconds +. dt;
    };
  Log.debug (fun m ->
      m "score phase: %d cell(s), %.3fs (%d job(s))" (List.length tasks) dt
        (Pool.jobs t.pool));
  outcomes

(* --- whole-experiment plans -------------------------------------------- *)

(* One detector's cells in the row-major order of
   [Performance_map.build]. *)
let cells suite =
  let windows = Suite.windows suite in
  List.concat_map
    (fun anomaly_size -> List.map (fun window -> (anomaly_size, window)) windows)
    (Suite.anomaly_sizes suite)

let assemble_map suite ~detector outcomes =
  let anomaly_sizes = Array.of_list (Suite.anomaly_sizes suite) in
  let windows = Array.of_list (Suite.windows suite) in
  let index_of a v =
    let n = Array.length a in
    let rec go i = if i >= n || a.(i) = v then i else go (i + 1) in
    go 0
  in
  Performance_map.build ~detector
    ~anomaly_sizes:(Suite.anomaly_sizes suite)
    ~windows:(Suite.windows suite)
    ~f:(fun ~anomaly_size ~window ->
      outcomes.((index_of anomaly_sizes anomaly_size * Array.length windows)
                + index_of windows window))

let maps_over t suite ~injection detectors =
  let windows = Suite.windows suite in
  let train_specs =
    List.concat_map
      (fun d -> List.map (fun w -> (d, w, suite.Suite.training)) windows)
      detectors
  in
  ignore (train_batch t train_specs);
  (* Resolve injections serially, per detector per cell, before any
     parallel work: the callback may consume PRNG state. *)
  let score_specs =
    List.map
      (fun d ->
        let trained_at =
          List.map
            (fun w ->
              (w, Hashtbl.find t.cache (key t d ~window:w suite.Suite.training)))
            windows
        in
        ( d,
          List.map
            (fun (anomaly_size, window) ->
              (List.assoc window trained_at, injection ~anomaly_size ~window))
            (cells suite) ))
      detectors
  in
  let flat = List.concat_map snd score_specs in
  let outcomes = Array.of_list (score_batch t flat) in
  let per_map = List.length (cells suite) in
  List.mapi
    (fun i (d, _) ->
      let (module D : Detector.S) = d in
      assemble_map suite ~detector:D.name
        (Array.sub outcomes (i * per_map) per_map))
    score_specs

let performance_map_over t suite ~injection d =
  match maps_over t suite ~injection [ d ] with
  | [ m ] -> m
  | _ ->
      (* Unreachable: one detector in, one map out. *)
      (* lint: allow partiality — arity invariant *)
      invalid_arg "Engine.performance_map_over: plan arity mismatch"

let suite_injection suite ~anomaly_size ~window =
  (Suite.stream suite ~anomaly_size ~window).Suite.injection

let performance_map t suite d =
  performance_map_over t suite ~injection:(suite_injection suite) d

let all_maps t suite detectors =
  maps_over t suite ~injection:(suite_injection suite) detectors
