open Seqdiv_util
open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth

let src = Logs.Src.create "seqdiv.engine" ~doc:"Plan/execute experiment engine"

module Log = (val Logs.src_log src)

type stats = {
  train_executed : int;
  train_cached : int;
  score_tasks : int;
  train_seconds : float;
  score_seconds : float;
  tries_built : int;
  trie_hits : int;
  trie_nodes : int;
  faults_injected : int;
  retries : int;
  cells_failed : int;
  cells_timed_out : int;
  cells_resumed : int;
  automata_built : int;
  automata_hits : int;
}

let zero_stats =
  {
    train_executed = 0;
    train_cached = 0;
    score_tasks = 0;
    train_seconds = 0.0;
    score_seconds = 0.0;
    tries_built = 0;
    trie_hits = 0;
    trie_nodes = 0;
    faults_injected = 0;
    retries = 0;
    cells_failed = 0;
    cells_timed_out = 0;
    cells_resumed = 0;
    automata_built = 0;
    automata_hits = 0;
  }

type key = string * int * int64

type t = {
  pool : Pool.t;
  clock : unit -> float;
  retries : int;
      (* extra executions granted to a transient-faulted task, beyond
         its first attempt *)
  fault_plan : Fault_plan.t option;
  deadline : Deadline.spec option;
      (* armed afresh around every supervised task execution (and every
         trie build): a task that checkpoints past the budget degrades
         to a Timeout fault instead of stalling the run *)
  compile : bool;
      (* attach compiled flat-automaton scorers to trained models as
         they are committed to the cache *)
  cache : (key, Trained.t) Hashtbl.t;
  tries : (int64, Seq_trie.t) Hashtbl.t;
      (* fingerprint -> deepest trie built for that training trace;
         every trie-capable (detector, window) model is a view of it *)
  autos : (int64 * int, Flat_automaton.t) Hashtbl.t;
      (* (fingerprint, window) -> compiled automaton; detectors sharing
         a training trace and window share the transition table and
         differ only in their per-state score tables *)
  mutable fingerprints : (Trace.t * int64) list;
      (* physical-equality memo: the same training trace is
         fingerprinted once per engine, not once per task *)
  mutable stats : stats;
}

let create ?(clock = fun () -> 0.0) ?(jobs = 1) ?(retries = 2) ?fault_plan
    ?deadline ?(compile = false) () =
  {
    pool = Pool.create ~jobs ();
    clock;
    retries = Stdlib.max 0 retries;
    fault_plan;
    deadline;
    compile;
    cache = Hashtbl.create 64;
    tries = Hashtbl.create 8;
    autos = Hashtbl.create 8;
    fingerprints = [];
    stats = zero_stats;
  }

let default = function Some e -> e | None -> create ()
let jobs t = Pool.jobs t.pool
let compiles t = t.compile
let pool t = t.pool
let retries (t : t) = t.retries
let fault_plan t = t.fault_plan
let deadline t = t.deadline
let stats t = t.stats
let reset_stats t = t.stats <- zero_stats

let pp_stats ppf s =
  Format.fprintf ppf
    "engine: trained %d model(s) (%d cache hit(s)) in %.3fs; scored %d \
     cell(s) in %.3fs; %d trie(s) built (%d node(s), %d view hit(s)); \
     supervision: %d fault(s) injected, %d retry(ies), %d cell(s) failed \
     (%d timed out), %d cell(s) resumed; %d automaton(s) compiled (%d \
     shared)"
    s.train_executed s.train_cached s.train_seconds s.score_tasks
    s.score_seconds s.tries_built s.trie_nodes s.trie_hits s.faults_injected
    s.retries s.cells_failed s.cells_timed_out s.cells_resumed
    s.automata_built s.automata_hits

(* Arm the engine's deadline (when configured) around one task body.
   Worker domains execute one task at a time, so the ambient
   domain-local deadline is exactly this task's watchdog. *)
let armed t f =
  match t.deadline with
  | None -> f ()
  | Some spec -> Deadline.with_deadline spec f

(* --- cache keys -------------------------------------------------------- *)

let compute_fingerprint trace =
  (* FNV-1a over the length and every symbol. *)
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix x = h := Int64.mul (Int64.logxor !h (Int64.of_int x)) prime in
  mix (Trace.length trace);
  for i = 0 to Trace.length trace - 1 do
    mix (Trace.get trace i)
  done;
  !h

let max_fingerprint_memo = 8

let fingerprint t trace =
  match List.find_opt (fun (tr, _) -> tr == trace) t.fingerprints with
  | Some (_, fp) -> fp
  | None ->
      let fp = compute_fingerprint trace in
      let keep =
        if List.length t.fingerprints >= max_fingerprint_memo then
          List.filteri (fun i _ -> i < max_fingerprint_memo - 1) t.fingerprints
        else t.fingerprints
      in
      t.fingerprints <- (trace, fp) :: keep;
      fp

let key t (module D : Detector.S) ~window trace : key =
  (D.name, window, fingerprint t trace)

(* --- task supervision --------------------------------------------------- *)

(* Chaos-plan task keys are content fingerprints (FNV-1a over what the
   task computes), never positional indices: the same task hashes the
   same at every jobs count, in every scheduling order, and across
   [--resume], so a seeded fault plan trips an identical task set in
   every execution of the same grid. *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L
let fnv_int h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime
let fnv_int64 h x = Int64.mul (Int64.logxor h x) fnv_prime

let fnv_string h s =
  String.fold_left (fun h c -> fnv_int h (Char.code c)) h s

let train_task_key ((name, window, fp) : key) =
  fnv_int64 (fnv_int (fnv_string (fnv_int fnv_basis 1) name) window) fp

let score_task_key (trained, inj) =
  let h = fnv_int fnv_basis 2 in
  let h = fnv_string h (Trained.name trained) in
  let h = fnv_int h (Trained.window trained) in
  let h = fnv_int h inj.Injector.position in
  Array.fold_left fnv_int
    (fnv_int h (Array.length inj.Injector.anomaly))
    inj.Injector.anomaly

(* The task supervisor.  Executes keyed pure thunks on [pool] with
   per-task isolation, classifies every captured exception
   ({!Fault.classify}), re-runs transient failures up to the engine's
   retry budget, and returns per-task results in input order.  The
   retry loop runs on the calling domain; each round is one
   order-preserving [Pool.map_result] batch over the still-failing
   indices, so the outcome is deterministic whatever the domain
   scheduling.  Retry counts land in the stats (and in each fault's
   [attempts]) — never in any PRNG state. *)
let supervised_thunks t pool tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let results = Array.make n None in
  let rec rounds attempt pending =
    if pending <> [] then begin
      let outs =
        Pool.map_result pool
          (fun i ->
            let key, thunk = arr.(i) in
            (* The chaos trip runs *inside* the armed deadline: a
               hang-fated task spins on checkpoints until the watchdog
               fires, just as a genuinely hung detector loop would. *)
            armed t (fun () ->
                (match t.fault_plan with
                | Some plan -> Fault_plan.trip plan ~key ~attempt
                | None -> ());
                thunk ()))
          pending
      in
      let injected = ref 0 in
      let again =
        List.concat
          (List.map2
             (fun i out ->
               match out with
               | Ok v ->
                   results.(i) <- Some (Ok v);
                   []
               | Error { Pool.exn; backtrace; _ } ->
                   (match exn with
                   | Fault.Injected _ -> incr injected
                   | _ -> ());
                   if Fault.classify exn = Fault.Transient && attempt < t.retries
                   then [ i ]
                   else begin
                     results.(i) <-
                       Some (Error (Fault.of_exn ~attempts:(attempt + 1) exn backtrace));
                     []
                   end)
             pending outs)
      in
      t.stats <-
        {
          t.stats with
          faults_injected = t.stats.faults_injected + !injected;
          retries = t.stats.retries + List.length again;
        };
      if again <> [] then
        Log.debug (fun m ->
            m "supervisor: retrying %d transient failure(s) (attempt %d/%d)"
              (List.length again) (attempt + 2) (t.retries + 1));
      rounds (attempt + 1) again
    end
  in
  rounds 0 (List.init n Fun.id);
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None ->
             (* lint: allow partiality — supervisor fill invariant *)
             invalid_arg "Engine.supervised_thunks: unfilled result slot")
       results)

(* --- shared-trie plan --------------------------------------------------- *)

(* One trie per training trace serves every trie-capable
   (detector, window) model as a cheap width-slice view.  The cache
   keeps the deepest trie built so far for a fingerprint; a shallower
   request is a hit, a deeper one rebuilds (and the deeper trie then
   serves everything the old one did). *)
let obtain_trie t fp trace ~max_len =
  match Hashtbl.find_opt t.tries fp with
  | Some trie when Seq_trie.max_len trie >= max_len -> (trie, false)
  | Some _ | None ->
      let trie = Seq_trie.of_trace ~max_len trace in
      Hashtbl.replace t.tries fp trie;
      t.stats <-
        {
          t.stats with
          tries_built = t.stats.tries_built + 1;
          trie_nodes = t.stats.trie_nodes + Seq_trie.node_count trie;
        };
      (trie, true)

let train_miss t d ~window trace fp =
  if Trained.trie_capable d then begin
    let trie, built = obtain_trie t fp trace ~max_len:window in
    if not built then
      t.stats <- { t.stats with trie_hits = t.stats.trie_hits + 1 };
    match Trained.train_of_trie d trie ~window with
    | Some trained -> trained
    | None -> Trained.train d ~window trace
  end
  else Trained.train d ~window trace

(* Compiled fast path (opt-in): attach a flat-automaton scorer to a
   freshly trained model as it is committed to the cache.  Detectors
   trained on the same trace at the same window share one automaton
   (the transition table depends only on the trie slice, not on the
   similarity metric); only the per-state score table is per-detector.
   Attachment runs on the calling domain, outside any armed deadline —
   like cache commits themselves, it is engine bookkeeping, not a
   supervised task — so chaos/deadline behaviour is unchanged. *)
let attach_scorer t fp trained =
  if not t.compile then trained
  else begin
    let akey = (fp, Trained.window trained) in
    let cached = Hashtbl.find_opt t.autos akey in
    match Trained.compile ?automaton:cached trained with
    | None -> trained
    | Some scorer ->
        let auto = Flat_automaton.automaton scorer in
        (match cached with
        | Some shared when shared == auto ->
            t.stats <-
              { t.stats with automata_hits = t.stats.automata_hits + 1 }
        | Some _ | None ->
            Hashtbl.replace t.autos akey auto;
            t.stats <-
              { t.stats with automata_built = t.stats.automata_built + 1 });
        Trained.with_scorer trained scorer
  end

(* --- train phase ------------------------------------------------------- *)

let train t d ~window trace =
  let k = key t d ~window trace in
  match Hashtbl.find_opt t.cache k with
  | Some trained ->
      t.stats <- { t.stats with train_cached = t.stats.train_cached + 1 };
      trained
  | None ->
      let t0 = t.clock () in
      let _, _, fp = k in
      let trained = attach_scorer t fp (train_miss t d ~window trace fp) in
      Hashtbl.add t.cache k trained;
      t.stats <-
        {
          t.stats with
          train_executed = t.stats.train_executed + 1;
          train_seconds = t.stats.train_seconds +. (t.clock () -. t0);
        };
      trained

let train_batch_result t specs =
  (* Plan: resolve keys serially, keep the first spec of every
     cache-missing key.  Execute: train the misses under supervision on
     the pool, commit the successes on the calling domain, answer every
     spec from the cache (or with the fault that kept it out). *)
  let keyed =
    List.map (fun (d, window, trace) -> (key t d ~window trace, d, window, trace)) specs
  in
  let misses =
    List.fold_left
      (fun acc (k, d, window, trace) ->
        if Hashtbl.mem t.cache k || List.exists (fun (k', _, _, _) -> k' = k) acc
        then acc
        else (k, d, window, trace) :: acc)
      [] keyed
    |> List.rev
  in
  let t0 = t.clock () in
  let trie_misses, plain_misses =
    List.partition (fun (_, d, _, _) -> Trained.trie_capable d) misses
  in
  (* Shared-trie plan: one trie per distinct training trace, deep
     enough for every trie-capable miss that shares it; the 14x3
     (window x detector) grid then trains as one trace scan plus cheap
     view constructions. *)
  let upsert groups fp trace window =
    let rec go = function
      | [] -> [ (fp, (trace, window)) ]
      | (fp', (tr, w)) :: rest when Int64.equal fp' fp ->
          (fp', (tr, Stdlib.max w window)) :: rest
      | g :: rest -> g :: go rest
    in
    go groups
  in
  let groups =
    List.fold_left
      (fun acc ((_, _, fp), _, window, trace) -> upsert acc fp trace window)
      [] trie_misses
  in
  let needs_build =
    List.filter
      (fun (fp, (_, maxw)) ->
        match Hashtbl.find_opt t.tries fp with
        | Some trie -> Seq_trie.max_len trie < maxw
        | None -> true)
      groups
  in
  (* Trie construction is isolated but not chaos-injected (the plan
     targets train/score tasks): a genuinely crashed build degrades
     every dependent model below instead of poisoning the batch. *)
  let built =
    Pool.map_result t.pool
      (fun (_, (trace, maxw)) ->
        armed t (fun () -> Seq_trie.of_trace ~max_len:maxw trace))
      needs_build
  in
  let trie_faults = Hashtbl.create 4 in
  let built_ok = ref 0 in
  List.iter2
    (fun (fp, _) result ->
      match result with
      | Ok trie ->
          Hashtbl.replace t.tries fp trie;
          incr built_ok;
          t.stats <-
            {
              t.stats with
              trie_nodes = t.stats.trie_nodes + Seq_trie.node_count trie;
            }
      | Error { Pool.exn; backtrace; _ } ->
          Hashtbl.replace trie_faults fp (Fault.of_exn ~attempts:1 exn backtrace))
    needs_build built;
  t.stats <-
    {
      t.stats with
      tries_built = t.stats.tries_built + !built_ok;
      trie_hits =
        t.stats.trie_hits + List.length trie_misses - List.length needs_build;
    };
  (* Trie-capable models are cheap width-slice views: supervise them
     serially on the calling domain, in miss order. *)
  let serial = Pool.create ~jobs:1 () in
  let healthy, poisoned =
    List.partition
      (fun ((_, _, fp), _, _, _) -> not (Hashtbl.mem trie_faults fp))
      trie_misses
  in
  let healthy_results =
    supervised_thunks t serial
      (List.map
         (fun ((_, _, fp) as k, d, window, trace) ->
           let trie = Hashtbl.find_opt t.tries fp in
           ( train_task_key k,
             fun () ->
               match trie with
               | Some trie -> (
                   match Trained.train_of_trie d trie ~window with
                   | Some trained -> trained
                   | None -> Trained.train d ~window trace)
               | None -> Trained.train d ~window trace ))
         healthy)
  in
  let plain_results =
    supervised_thunks t t.pool
      (List.map
         (fun (k, d, window, trace) ->
           (train_task_key k, fun () -> Trained.train d ~window trace))
         plain_misses)
  in
  let miss_faults = Hashtbl.create 4 in
  let commit miss_list results =
    List.iter2
      (fun (((_, _, fp) as k), _, _, _) result ->
        match result with
        | Ok trained -> Hashtbl.add t.cache k (attach_scorer t fp trained)
        | Error fault -> Hashtbl.replace miss_faults k fault)
      miss_list results
  in
  commit healthy healthy_results;
  commit plain_misses plain_results;
  List.iter
    (fun (((_, _, fp) as k), _, _, _) ->
      match Hashtbl.find_opt trie_faults fp with
      | Some fault -> Hashtbl.replace miss_faults k fault
      | None -> ())
    poisoned;
  let dt = t.clock () -. t0 in
  let executed = List.length misses in
  let failed = Hashtbl.length miss_faults in
  t.stats <-
    {
      t.stats with
      train_executed = t.stats.train_executed + executed;
      train_cached = t.stats.train_cached + List.length specs - executed;
      train_seconds = t.stats.train_seconds +. dt;
    };
  Log.debug (fun m ->
      m
        "train phase: %d task(s), %d trained, %d from cache, %d failed, \
         %.3fs (%d job(s))"
        (List.length specs) executed
        (List.length specs - executed)
        failed dt (Pool.jobs t.pool));
  List.map
    (fun (k, _, _, _) ->
      match Hashtbl.find_opt t.cache k with
      | Some trained -> Ok trained
      | None -> (
          match Hashtbl.find_opt miss_faults k with
          | Some fault -> Error fault
          | None ->
              (* lint: allow partiality — every miss commits or faults *)
              invalid_arg "Engine.train_batch_result: unresolved spec"))
    keyed

let train_batch t specs =
  List.map
    (function
      | Ok trained -> trained
      | Error fault -> raise (Fault.Error fault))
    (train_batch_result t specs)

(* --- score phase ------------------------------------------------------- *)

let score_batch t tasks =
  let t0 = t.clock () in
  let results =
    supervised_thunks t t.pool
      (List.map
         (fun ((trained, inj) as task) ->
           (score_task_key task, fun () -> Scoring.outcome trained inj))
         tasks)
  in
  let failed = ref 0 in
  let timed_out = ref 0 in
  let outcomes =
    List.map
      (function
        | Ok outcome -> outcome
        | Error fault ->
            incr failed;
            if fault.Fault.severity = Fault.Timeout then incr timed_out;
            Outcome.Failed fault)
      results
  in
  let dt = t.clock () -. t0 in
  t.stats <-
    {
      t.stats with
      score_tasks = t.stats.score_tasks + List.length tasks;
      score_seconds = t.stats.score_seconds +. dt;
      cells_failed = t.stats.cells_failed + !failed;
      cells_timed_out = t.stats.cells_timed_out + !timed_out;
    };
  Log.debug (fun m ->
      m "score phase: %d cell(s), %d failed, %.3fs (%d job(s))"
        (List.length tasks) !failed dt (Pool.jobs t.pool));
  outcomes

(* --- whole-experiment plans -------------------------------------------- *)

(* One detector's cells in the row-major order of
   [Performance_map.build]. *)
let cells suite =
  let windows = Suite.windows suite in
  List.concat_map
    (fun anomaly_size -> List.map (fun window -> (anomaly_size, window)) windows)
    (Suite.anomaly_sizes suite)

let assemble_map suite ~detector outcomes =
  let anomaly_sizes = Array.of_list (Suite.anomaly_sizes suite) in
  let windows = Array.of_list (Suite.windows suite) in
  let index_of a v =
    let n = Array.length a in
    let rec go i = if i >= n || a.(i) = v then i else go (i + 1) in
    go 0
  in
  Performance_map.build ~detector
    ~anomaly_sizes:(Suite.anomaly_sizes suite)
    ~windows:(Suite.windows suite)
    ~f:(fun ~anomaly_size ~window ->
      outcomes.((index_of anomaly_sizes anomaly_size * Array.length windows)
                + index_of windows window))

let maps_over ?journal t suite ~injection detectors =
  let windows = Suite.windows suite in
  let seed = suite.Suite.params.Suite.seed in
  (* Plan per detector: resolve every cell against the journal first —
     a hit is a finished cell a resumed run never re-executes. *)
  let plans =
    List.map
      (fun d ->
        let (module D : Detector.S) = d in
        let resolved =
          List.map
            (fun (anomaly_size, window) ->
              let hit =
                match journal with
                | None -> None
                | Some j ->
                    Journal.lookup j ~seed ~detector:D.name ~window
                      ~anomaly_size
              in
              ((anomaly_size, window), hit))
            (cells suite)
        in
        let pending_windows =
          List.filter
            (fun w ->
              List.exists
                (fun ((_, w'), hit) -> w' = w && Option.is_none hit)
                resolved)
            windows
        in
        (d, resolved, pending_windows))
      detectors
  in
  let train_specs =
    List.concat_map
      (fun (d, _, pending) ->
        List.map (fun w -> (d, w, suite.Suite.training)) pending)
      plans
  in
  let train_results = ref (train_batch_result t train_specs) in
  let take n =
    let rec go n acc rest =
      if n = 0 then (List.rev acc, rest)
      else
        match rest with
        | x :: rest -> go (n - 1) (x :: acc) rest
        | [] ->
            (* lint: allow partiality — one result per train spec *)
            invalid_arg "Engine.maps_over: train phase arity mismatch"
    in
    let taken, rest = go n [] !train_results in
    train_results := rest;
    taken
  in
  (* Execute detector by detector: injections resolve serially on the
     calling domain (the callback may consume PRNG state), each
     detector's missing cells score as one supervised batch, and the
     journal — when present — flushes after every detector, so a killed
     run loses at most one detector's worth of scoring. *)
  List.map
    (fun (d, resolved, pending_windows) ->
      let (module D : Detector.S) = d in
      let trained_at = List.combine pending_windows (take (List.length pending_windows)) in
      let slots =
        List.map
          (fun ((anomaly_size, window), hit) ->
            match hit with
            | Some outcome -> `Journalled outcome
            | None -> (
                let inj = injection ~anomaly_size ~window in
                match List.assoc_opt window trained_at with
                | Some (Ok trained) -> `Run (trained, inj)
                | Some (Error fault) -> `Train_failed fault
                | None ->
                    (* pending windows cover every non-journalled cell *)
                    (* lint: allow partiality — plan arity invariant *)
                    invalid_arg "Engine.maps_over: untrained window"))
          resolved
      in
      let scored =
        ref
          (score_batch t
             (List.filter_map
                (function `Run task -> Some task | _ -> None)
                slots))
      in
      let resumed = ref 0 in
      let train_failed = ref 0 in
      let train_timed_out = ref 0 in
      let outcomes =
        List.map
          (fun slot ->
            match slot with
            | `Journalled outcome ->
                incr resumed;
                outcome
            | `Train_failed fault ->
                incr train_failed;
                if fault.Fault.severity = Fault.Timeout then
                  incr train_timed_out;
                Outcome.Failed fault
            | `Run _ -> (
                match !scored with
                | outcome :: rest ->
                    scored := rest;
                    outcome
                | [] ->
                    (* lint: allow partiality — one outcome per task *)
                    invalid_arg "Engine.maps_over: score phase arity mismatch"))
          slots
      in
      t.stats <-
        {
          t.stats with
          cells_resumed = t.stats.cells_resumed + !resumed;
          cells_failed = t.stats.cells_failed + !train_failed;
          cells_timed_out = t.stats.cells_timed_out + !train_timed_out;
        };
      (match journal with
      | None -> ()
      | Some j ->
          List.iter2
            (fun ((anomaly_size, window), _) (slot, outcome) ->
              match (slot, outcome) with
              | `Run _, Outcome.Failed _ -> () (* retried on next resume *)
              | `Run _, outcome ->
                  Journal.record j
                    {
                      Journal.seed;
                      detector = D.name;
                      window;
                      anomaly_size;
                      outcome;
                    }
              | (`Journalled _ | `Train_failed _), _ -> ())
            resolved
            (List.combine slots outcomes);
          Journal.flush j);
      assemble_map suite ~detector:D.name (Array.of_list outcomes))
    plans

let performance_map_over t suite ~injection d =
  match maps_over t suite ~injection [ d ] with
  | [ m ] -> m
  | _ ->
      (* Unreachable: one detector in, one map out. *)
      (* lint: allow partiality — arity invariant *)
      invalid_arg "Engine.performance_map_over: plan arity mismatch"

let suite_injection suite ~anomaly_size ~window =
  (Suite.stream suite ~anomaly_size ~window).Suite.injection

let performance_map ?journal t suite d =
  match maps_over ?journal t suite ~injection:(suite_injection suite) [ d ] with
  | [ m ] -> m
  | _ ->
      (* lint: allow partiality — arity invariant *)
      invalid_arg "Engine.performance_map: plan arity mismatch"

let all_maps ?journal t suite detectors =
  maps_over ?journal t suite ~injection:(suite_injection suite) detectors
