open Seqdiv_util
open Seqdiv_stream
open Seqdiv_detectors
open Seqdiv_synth

let src = Logs.Src.create "seqdiv.engine" ~doc:"Plan/execute experiment engine"

module Log = (val Logs.src_log src)

type stats = {
  train_executed : int;
  train_cached : int;
  score_tasks : int;
  train_seconds : float;
  score_seconds : float;
}

let zero_stats =
  {
    train_executed = 0;
    train_cached = 0;
    score_tasks = 0;
    train_seconds = 0.0;
    score_seconds = 0.0;
  }

type key = string * int * int64

type t = {
  pool : Pool.t;
  clock : unit -> float;
  cache : (key, Trained.t) Hashtbl.t;
  mutable fingerprints : (Trace.t * int64) list;
      (* physical-equality memo: the same training trace is
         fingerprinted once per engine, not once per task *)
  mutable stats : stats;
}

let create ?(clock = fun () -> 0.0) ?(jobs = 1) () =
  {
    pool = Pool.create ~jobs ();
    clock;
    cache = Hashtbl.create 64;
    fingerprints = [];
    stats = zero_stats;
  }

let default = function Some e -> e | None -> create ()
let jobs t = Pool.jobs t.pool
let pool t = t.pool
let stats t = t.stats
let reset_stats t = t.stats <- zero_stats

let pp_stats ppf s =
  Format.fprintf ppf
    "engine: trained %d model(s) (%d cache hit(s)) in %.3fs; scored %d \
     cell(s) in %.3fs"
    s.train_executed s.train_cached s.train_seconds s.score_tasks
    s.score_seconds

(* --- cache keys -------------------------------------------------------- *)

let compute_fingerprint trace =
  (* FNV-1a over the length and every symbol. *)
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix x = h := Int64.mul (Int64.logxor !h (Int64.of_int x)) prime in
  mix (Trace.length trace);
  for i = 0 to Trace.length trace - 1 do
    mix (Trace.get trace i)
  done;
  !h

let max_fingerprint_memo = 8

let fingerprint t trace =
  match List.find_opt (fun (tr, _) -> tr == trace) t.fingerprints with
  | Some (_, fp) -> fp
  | None ->
      let fp = compute_fingerprint trace in
      let keep =
        if List.length t.fingerprints >= max_fingerprint_memo then
          List.filteri (fun i _ -> i < max_fingerprint_memo - 1) t.fingerprints
        else t.fingerprints
      in
      t.fingerprints <- (trace, fp) :: keep;
      fp

let key t (module D : Detector.S) ~window trace : key =
  (D.name, window, fingerprint t trace)

(* --- train phase ------------------------------------------------------- *)

let train t d ~window trace =
  let k = key t d ~window trace in
  match Hashtbl.find_opt t.cache k with
  | Some trained ->
      t.stats <- { t.stats with train_cached = t.stats.train_cached + 1 };
      trained
  | None ->
      let t0 = t.clock () in
      let trained = Trained.train d ~window trace in
      Hashtbl.add t.cache k trained;
      t.stats <-
        {
          t.stats with
          train_executed = t.stats.train_executed + 1;
          train_seconds = t.stats.train_seconds +. (t.clock () -. t0);
        };
      trained

let train_batch t specs =
  (* Plan: resolve keys serially, keep the first spec of every
     cache-missing key.  Execute: train the misses on the pool, commit
     on the calling domain, answer every spec from the cache. *)
  let keyed =
    List.map (fun (d, window, trace) -> (key t d ~window trace, d, window, trace)) specs
  in
  let misses =
    List.fold_left
      (fun acc (k, d, window, trace) ->
        if Hashtbl.mem t.cache k || List.exists (fun (k', _, _, _) -> k' = k) acc
        then acc
        else (k, d, window, trace) :: acc)
      [] keyed
    |> List.rev
  in
  let t0 = t.clock () in
  let models =
    Pool.map t.pool
      (fun (_, d, window, trace) -> Trained.train d ~window trace)
      misses
  in
  List.iter2 (fun (k, _, _, _) trained -> Hashtbl.add t.cache k trained) misses
    models;
  let dt = t.clock () -. t0 in
  let executed = List.length misses in
  t.stats <-
    {
      t.stats with
      train_executed = t.stats.train_executed + executed;
      train_cached = t.stats.train_cached + List.length specs - executed;
      train_seconds = t.stats.train_seconds +. dt;
    };
  Log.debug (fun m ->
      m "train phase: %d task(s), %d trained, %d from cache, %.3fs (%d job(s))"
        (List.length specs) executed
        (List.length specs - executed)
        dt (Pool.jobs t.pool));
  List.map (fun (k, _, _, _) -> Hashtbl.find t.cache k) keyed

(* --- score phase ------------------------------------------------------- *)

let score_batch t tasks =
  let t0 = t.clock () in
  let outcomes =
    Pool.map t.pool (fun (trained, inj) -> Scoring.outcome trained inj) tasks
  in
  let dt = t.clock () -. t0 in
  t.stats <-
    {
      t.stats with
      score_tasks = t.stats.score_tasks + List.length tasks;
      score_seconds = t.stats.score_seconds +. dt;
    };
  Log.debug (fun m ->
      m "score phase: %d cell(s), %.3fs (%d job(s))" (List.length tasks) dt
        (Pool.jobs t.pool));
  outcomes

(* --- whole-experiment plans -------------------------------------------- *)

(* One detector's cells in the row-major order of
   [Performance_map.build]. *)
let cells suite =
  let windows = Suite.windows suite in
  List.concat_map
    (fun anomaly_size -> List.map (fun window -> (anomaly_size, window)) windows)
    (Suite.anomaly_sizes suite)

let assemble_map suite ~detector outcomes =
  let anomaly_sizes = Array.of_list (Suite.anomaly_sizes suite) in
  let windows = Array.of_list (Suite.windows suite) in
  let index_of a v =
    let n = Array.length a in
    let rec go i = if i >= n || a.(i) = v then i else go (i + 1) in
    go 0
  in
  Performance_map.build ~detector
    ~anomaly_sizes:(Suite.anomaly_sizes suite)
    ~windows:(Suite.windows suite)
    ~f:(fun ~anomaly_size ~window ->
      outcomes.((index_of anomaly_sizes anomaly_size * Array.length windows)
                + index_of windows window))

let maps_over t suite ~injection detectors =
  let windows = Suite.windows suite in
  let train_specs =
    List.concat_map
      (fun d -> List.map (fun w -> (d, w, suite.Suite.training)) windows)
      detectors
  in
  ignore (train_batch t train_specs);
  (* Resolve injections serially, per detector per cell, before any
     parallel work: the callback may consume PRNG state. *)
  let score_specs =
    List.map
      (fun d ->
        let trained_at =
          List.map
            (fun w ->
              (w, Hashtbl.find t.cache (key t d ~window:w suite.Suite.training)))
            windows
        in
        ( d,
          List.map
            (fun (anomaly_size, window) ->
              (List.assoc window trained_at, injection ~anomaly_size ~window))
            (cells suite) ))
      detectors
  in
  let flat = List.concat_map snd score_specs in
  let outcomes = Array.of_list (score_batch t flat) in
  let per_map = List.length (cells suite) in
  List.mapi
    (fun i (d, _) ->
      let (module D : Detector.S) = d in
      assemble_map suite ~detector:D.name
        (Array.sub outcomes (i * per_map) per_map))
    score_specs

let performance_map_over t suite ~injection d =
  match maps_over t suite ~injection [ d ] with
  | [ m ] -> m
  | _ ->
      (* Unreachable: one detector in, one map out. *)
      (* lint: allow partiality — arity invariant *)
      invalid_arg "Engine.performance_map_over: plan arity mismatch"

let suite_injection suite ~anomaly_size ~window =
  (Suite.stream suite ~anomaly_size ~window).Suite.injection

let performance_map t suite d =
  performance_map_over t suite ~injection:(suite_injection suite) d

let all_maps t suite detectors =
  maps_over t suite ~injection:(suite_injection suite) detectors
