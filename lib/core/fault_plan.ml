(* Seeded, stateless fault injection.  Every decision is a pure
   function of (plan seed, task key, attempt): no PRNG state is
   consumed, so the plan trips the same tasks at every jobs count, in
   every execution order, and across interrupted-and-resumed runs —
   which is what lets the chaos tests compare faulted runs
   byte-for-byte. *)

type t = {
  seed : int;
  transient_rate : float;
  fatal_rate : float;
  hang_rate : float;
  sticky : int;
}

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Fault_plan.of_seed: %s not in [0, 1]" name)

let of_seed ?(transient_rate = 0.05) ?(fatal_rate = 0.0) ?(hang_rate = 0.0)
    ?(sticky = 1) ~seed () =
  check_rate "transient_rate" transient_rate;
  check_rate "fatal_rate" fatal_rate;
  check_rate "hang_rate" hang_rate;
  check_rate "transient_rate + fatal_rate + hang_rate"
    (transient_rate +. fatal_rate +. hang_rate);
  { seed; transient_rate; fatal_rate; hang_rate; sticky = Stdlib.max 1 sticky }

let seed t = t.seed
let transient_rate t = t.transient_rate
let fatal_rate t = t.fatal_rate
let hang_rate t = t.hang_rate
let sticky t = t.sticky

(* SplitMix64 finaliser over the (seed, key) pair: a high-quality,
   order-free hash — the same mixer Seqdiv_util.Prng steps with, used
   here statelessly. *)
let mix seed key =
  let z = Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L) key in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform seed key =
  Int64.to_float (Int64.shift_right_logical (mix seed key) 11)
  /. 9007199254740992.0 (* 2^53 *)

let decide t ~key ~attempt =
  let u = uniform t.seed key in
  if u < t.fatal_rate then Some Fault.Fatal
  else if u < t.fatal_rate +. t.hang_rate then Some Fault.Timeout
  else if
    u < t.fatal_rate +. t.hang_rate +. t.transient_rate && attempt < t.sticky
  then Some Fault.Transient
  else None

let trip t ~key ~attempt =
  match decide t ~key ~attempt with
  | None -> ()
  | Some Fault.Timeout ->
      (* A hang-fated task never returns: spin cooperatively until the
         supervisor's armed deadline fires.  Without an armed deadline
         this raises [Deadline.Hang_refused] (classified Fatal) instead
         of actually hanging the run. *)
      Seqdiv_util.Deadline.hang ()
  | Some severity ->
      raise
        (Fault.Injected
           ( severity,
             Printf.sprintf "chaos seed=%d key=0x%Lx attempt=%d" t.seed key
               attempt ))

let describe t =
  Printf.sprintf
    "chaos plan: seed=%d transient=%.3f fatal=%.3f hang=%.3f sticky=%d \
     attempt(s)"
    t.seed t.transient_rate t.fatal_rate t.hang_rate t.sticky

(* A public window onto the same stateless hash, for consumers that
   need deterministic per-key randomness outside a fault decision —
   e.g. the bench client's backoff jitter. *)
let jitter ~seed ~key = uniform seed key

(* --- serve-layer chaos --------------------------------------------------- *)

(* The serve band reuses the stateless (seed, key, attempt) discipline
   but speaks the serve layer's failure modes: a shard domain dying
   outside the per-batch handler, a shard hanging, and a response frame
   torn on the wire.  Job fates and frame fates hash disjoint key
   spaces (the key builders differ), so one seed drives both without
   correlation. *)
module Serve = struct
  type t = {
    seed : int;
    crash_rate : float;
    hang_rate : float;
    torn_rate : float;
    sticky : int;
  }

  type job_fate = Crash | Hang

  let of_seed ?(crash_rate = 0.0) ?(hang_rate = 0.0) ?(torn_rate = 0.0)
      ?(sticky = 1) ~seed () =
    check_rate "crash_rate" crash_rate;
    check_rate "hang_rate" hang_rate;
    check_rate "crash_rate + hang_rate" (crash_rate +. hang_rate);
    check_rate "torn_rate" torn_rate;
    { seed; crash_rate; hang_rate; torn_rate; sticky = Stdlib.max 1 sticky }

  let seed (t : t) = t.seed
  let crash_rate (t : t) = t.crash_rate
  let hang_rate (t : t) = t.hang_rate
  let torn_rate (t : t) = t.torn_rate
  let sticky (t : t) = t.sticky

  (* Stable fingerprints: a sub-batch is (batch id, shard); the frame
     key inverts the bits to land in a disjoint space before mixing. *)
  let job_key ~batch_id ~shard =
    Int64.logxor
      (Int64.shift_left (Int64.of_int shard) 48)
      (Int64.of_int batch_id)

  let frame_key ~batch_id ~shard = Int64.lognot (job_key ~batch_id ~shard)

  let job_fate (t : t) ~key ~attempt =
    let u = uniform t.seed key in
    if u < t.hang_rate then Some Hang
    else if u < t.hang_rate +. t.crash_rate && attempt < t.sticky then
      Some Crash
    else None

  let trip t ~key ~attempt =
    match job_fate t ~key ~attempt with
    | None -> ()
    | Some Hang ->
        (* Spin until the shard's armed deadline fires; with no armed
           deadline this raises [Deadline.Hang_refused] (Fatal) rather
           than actually wedging the domain. *)
        Seqdiv_util.Deadline.hang ()
    | Some Crash ->
        raise
          (Fault.Injected
             ( Fault.Transient,
               Printf.sprintf "serve chaos seed=%d key=0x%Lx attempt=%d" t.seed
                 key attempt ))

  let tear (t : t) ~key ~attempt =
    attempt = 0 && uniform t.seed key < t.torn_rate

  let describe (t : t) =
    Printf.sprintf
      "serve chaos plan: seed=%d crash=%.3f hang=%.3f torn=%.3f sticky=%d \
       attempt(s)"
      t.seed t.crash_rate t.hang_rate t.torn_rate t.sticky
end
