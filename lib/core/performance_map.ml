type t = {
  detector : string;
  anomaly_sizes : int array;
  windows : int array;
  cells : Outcome.t array array; (* [as_idx].[dw_idx] *)
}

let detector t = t.detector
let anomaly_sizes t = Array.to_list t.anomaly_sizes
let windows t = Array.to_list t.windows

let check_ascending l =
  let rec go = function
    | a :: (b :: _ as rest) ->
        (* lint: allow partiality — documented precondition *)
        if a >= b then invalid_arg "Performance_map: range not ascending"
        else go rest
    | [ _ ] | [] -> ()
  in
  (* lint: allow partiality — documented precondition *)
  if l = [] then invalid_arg "Performance_map: empty range";
  go l

let build ~detector ~anomaly_sizes ~windows ~f =
  check_ascending anomaly_sizes;
  check_ascending windows;
  let anomaly_sizes = Array.of_list anomaly_sizes in
  let windows = Array.of_list windows in
  let cells =
    Array.map
      (fun anomaly_size ->
        Array.map (fun window -> f ~anomaly_size ~window) windows)
      anomaly_sizes
  in
  { detector; anomaly_sizes; windows; cells }

let index_of a v =
  let rec go i =
    if i >= Array.length a then raise Not_found
    else if a.(i) = v then i
    else go (i + 1)
  in
  go 0

let outcome t ~anomaly_size ~window =
  let i = index_of t.anomaly_sizes anomaly_size in
  let j = index_of t.windows window in
  t.cells.(i).(j)

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun i anomaly_size ->
      Array.iteri
        (fun j window -> acc := f !acc ~anomaly_size ~window t.cells.(i).(j))
        t.windows)
    t.anomaly_sizes;
  !acc

let cells_matching t pred =
  fold t ~init:[] ~f:(fun acc ~anomaly_size ~window o ->
      if pred o then (anomaly_size, window) :: acc else acc)
  |> List.rev

let capable_cells t = cells_matching t Outcome.is_capable
let blind_cells t = cells_matching t Outcome.is_blind
let weak_cells t = cells_matching t Outcome.is_weak
let failed_cells t = cells_matching t Outcome.is_failed

let cell_count t = Array.length t.anomaly_sizes * Array.length t.windows

let capable_fraction t =
  float_of_int (List.length (capable_cells t)) /. float_of_int (cell_count t)
