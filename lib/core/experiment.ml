(* Every map is a plan over the engine: train tasks deduplicated
   through its model cache, score tasks executed on its domain pool.
   Without an explicit [?engine] a fresh serial one is used, which is
   exactly the old hand-rolled loop. *)

let performance_map_over ?engine suite ~injection detector =
  Engine.performance_map_over (Engine.default engine) suite ~injection detector

let performance_map ?engine ?journal suite detector =
  Engine.performance_map ?journal (Engine.default engine) suite detector

let all_maps ?engine ?journal suite detectors =
  Engine.all_maps ?journal (Engine.default engine) suite detectors

type relation = {
  left : string;
  right : string;
  left_only : int;
  right_only : int;
  both : int;
  jaccard : float;
  left_subset_of_right : bool;
  right_subset_of_left : bool;
}

let relation left_map right_map =
  let a = Coverage.of_map left_map and b = Coverage.of_map right_map in
  {
    left = Performance_map.detector left_map;
    right = Performance_map.detector right_map;
    left_only = Coverage.cardinal (Coverage.diff a b);
    right_only = Coverage.cardinal (Coverage.diff b a);
    both = Coverage.cardinal (Coverage.inter a b);
    jaccard = Coverage.jaccard a b;
    left_subset_of_right = Coverage.subset a b;
    right_subset_of_left = Coverage.subset b a;
  }

type summary = {
  detector : string;
  capable : int;
  weak : int;
  blind : int;
  failed : int;
  capable_fraction : float;
}

let summary m =
  {
    detector = Performance_map.detector m;
    capable = List.length (Performance_map.capable_cells m);
    weak = List.length (Performance_map.weak_cells m);
    blind = List.length (Performance_map.blind_cells m);
    failed = List.length (Performance_map.failed_cells m);
    capable_fraction = Performance_map.capable_fraction m;
  }

let pairwise_relations maps =
  let rec pairs = function
    | [] -> []
    | m :: rest -> List.map (fun n -> relation m n) rest @ pairs rest
  in
  pairs maps
