(** Online (streaming) detection.

    The batch API scores whole traces; a monitor deployed on a live
    event stream must score each window as it completes.  This wrapper
    feeds symbols one at a time to any trained detector, emitting the
    response of each completed window and tracking a running incident
    (a maximal run of threshold-crossing windows) so callers can react
    to incident openings and closures as they happen.

    When the trained model compiles to a flat automaton
    ({!Trained.compile}), the monitor steps the automaton once per fed
    symbol — O(1) per symbol instead of a fresh O(window) descent per
    completed window — and emits bit-identical events; otherwise it
    falls back to re-scoring each completed window through the
    model. *)

open Seqdiv_stream
open Seqdiv_detectors

type t

type event =
  | Window_scored of Response.item
      (** a window just completed, with its response *)
  | Incident_opened of int
      (** the stream position at which an incident began *)
  | Incident_closed of Incident.t
      (** a completed incident (emitted when alarms stop) *)

val create : Trained.t -> ?compile:bool -> ?threshold:float -> unit -> t
(** A monitor around a trained detector.  [threshold] defaults to the
    detector's alarm threshold.  [compile] (default [true]) allows the
    monitor to use the model's compiled flat-automaton scorer (attached
    or freshly compiled); pass [false] to force the reference
    window-rescoring path. *)

val of_scorer : Flat_automaton.scorer -> threshold:float -> t
(** A monitor directly around a compiled scorer (e.g. one mmap-loaded
    by {!Seqdiv_detectors.Model_io.load_flat_file}) — deployment needs
    no detector module, no trie, and no training trace in memory. *)

val feed : t -> int -> event list
(** Push one symbol; returns the events it triggered, in order.  Until
    [window] symbols have been seen nothing is emitted.  The symbol must
    be a valid alphabet code for the detector's training alphabet
    (validated by the underlying scorer). *)

val flush : t -> event list
(** Close any open incident (end of stream). *)

val position : t -> int
(** Symbols consumed so far. *)

val incidents : t -> Incident.t list
(** All incidents closed so far, oldest first (not including an
    incident still open). *)

(** {1 Persistence}

    The serve layer journals per-session monitor state so a killed
    server resumes mid-stream with byte-identical subsequent output.  A
    snapshot is the complete feed-relevant state of an automaton-path
    monitor: position, automaton state, and the open incident. *)

type snapshot = {
  snap_consumed : int;  (** symbols consumed so far *)
  snap_state : int;  (** current flat-automaton state *)
  snap_open : Incident.t option;  (** the incident open at the snapshot *)
}

val snapshot : t -> snapshot option
(** The monitor's resumable state, or [None] on the window-rescoring
    path (which the serve layer never uses). *)

val restore : Flat_automaton.scorer -> threshold:float -> snapshot -> t
(** A monitor continuing exactly where [snapshot] left off.  Feeding it
    the remainder of the stream emits the same events the snapshotted
    monitor would have; incidents closed {e before} the snapshot are not
    carried (they are already journalled), so {!incidents} reports only
    post-restore closures.
    @raise Invalid_argument if the snapshot's state is not a valid state
    of this scorer's automaton. *)
