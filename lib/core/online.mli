(** Online (streaming) detection.

    The batch API scores whole traces; a monitor deployed on a live
    event stream must score each window as it completes.  This wrapper
    feeds symbols one at a time to any trained detector, emitting the
    response of each completed window and tracking a running incident
    (a maximal run of threshold-crossing windows) so callers can react
    to incident openings and closures as they happen.

    When the trained model compiles to a flat automaton
    ({!Trained.compile}), the monitor steps the automaton once per fed
    symbol — O(1) per symbol instead of a fresh O(window) descent per
    completed window — and emits bit-identical events; otherwise it
    falls back to re-scoring each completed window through the
    model. *)

open Seqdiv_stream
open Seqdiv_detectors

type t

type event =
  | Window_scored of Response.item
      (** a window just completed, with its response *)
  | Incident_opened of int
      (** the stream position at which an incident began *)
  | Incident_closed of Incident.t
      (** a completed incident (emitted when alarms stop) *)

val create :
  Trained.t ->
  ?compile:bool ->
  ?threshold:float ->
  ?adaptive:Adaptive_threshold.config ->
  unit ->
  t
(** A monitor around a trained detector.  [threshold] defaults to the
    detector's alarm threshold.  [compile] (default [true]) allows the
    monitor to use the model's compiled flat-automaton scorer (attached
    or freshly compiled); pass [false] to force the reference
    window-rescoring path.  With [adaptive], the monitor owns a fresh
    {!Adaptive_threshold} controller and the alarm threshold tracks the
    controller instead of staying constant (the static [threshold] is
    still the controller's starting point via [adaptive.initial]). *)

val of_scorer :
  ?adaptive:Adaptive_threshold.config ->
  Flat_automaton.scorer ->
  threshold:float ->
  t
(** A monitor directly around a compiled scorer (e.g. one mmap-loaded
    by {!Seqdiv_detectors.Model_io.load_flat_file}) — deployment needs
    no detector module, no trie, and no training trace in memory.
    [adaptive] as in {!create}; each monitor owns its own controller,
    so a session's threshold trajectory depends only on its own
    stream (the serve layer's shard-count determinism contract). *)

val feed : t -> int -> event list
(** Push one symbol; returns the events it triggered, in order.  Until
    [window] symbols have been seen nothing is emitted.  The symbol must
    be a valid alphabet code for the detector's training alphabet
    (validated by the underlying scorer). *)

val flush : t -> event list
(** Close any open incident (end of stream). *)

val position : t -> int
(** Symbols consumed so far. *)

val current_threshold : t -> float
(** The threshold the {e next} completed window will be judged at: the
    adaptive controller's current threshold, or the static one. *)

val windows_scored : t -> int
(** Completed windows judged so far.  Under adaptive thresholding this
    is the controller's (journal-exact) count; on the static path it
    counts from creation or restore. *)

val alarm_windows : t -> int
(** Windows that alarmed.  Journal-exact under adaptive thresholding;
    counted since creation/restore on the static path (a restored
    static monitor restarts at 0 — alarms are not derivable from its
    snapshot). *)

val incidents : t -> Incident.t list
(** All incidents closed so far, oldest first (not including an
    incident still open). *)

(** {1 Persistence}

    The serve layer journals per-session monitor state so a killed
    server resumes mid-stream with byte-identical subsequent output.  A
    snapshot is the complete feed-relevant state of an automaton-path
    monitor: position, automaton state, and the open incident. *)

type snapshot = {
  snap_consumed : int;  (** symbols consumed so far *)
  snap_state : int;  (** current flat-automaton state *)
  snap_open : Incident.t option;  (** the incident open at the snapshot *)
  snap_adaptive : string option;
      (** the adaptive controller's {!Adaptive_threshold.to_string}
          token (threshold, counters and quantile-sketch state), when
          the monitor is adaptive — this is what keeps kill/resume
          byte-identical with moving thresholds *)
}

val snapshot : t -> snapshot option
(** The monitor's resumable state, or [None] on the window-rescoring
    path (which the serve layer never uses). *)

val restore :
  ?adaptive:Adaptive_threshold.config ->
  Flat_automaton.scorer ->
  threshold:float ->
  snapshot ->
  t
(** A monitor continuing exactly where [snapshot] left off.  Feeding it
    the remainder of the stream emits the same events the snapshotted
    monitor would have; incidents closed {e before} the snapshot are not
    carried (they are already journalled), so {!incidents} reports only
    post-restore closures.  [adaptive] must match how the snapshot was
    taken: the controller is rebuilt from [snap_adaptive] under the
    given config.
    @raise Invalid_argument if the snapshot's state is not a valid state
    of this scorer's automaton, if exactly one of [adaptive] /
    [snap_adaptive] is present, or if the token does not parse under
    [adaptive]. *)
