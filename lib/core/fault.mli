(** Fault taxonomy for supervised execution.

    The engine's task supervisor isolates every train/score task
    ({!Seqdiv_util.Pool.map_result}), classifies what each raised, and
    either retries or degrades:

    - {e transient} faults are worth retrying — re-running the task may
      succeed.  The only transient faults in this tree are the ones the
      seeded chaos harness injects ({!Injected} with {!Transient});
      a genuine exception from a {e pure} train/score closure would
      deterministically recur, so everything else classifies as fatal.
    - {e fatal} faults are not retried: the cell (or the cells depending
      on a failed training) degrade to
      {!Seqdiv_core.Outcome.Failed} carrying the fault, and the rest of
      the run proceeds.
    - {e timeout} faults ({!Seqdiv_util.Deadline.Exceeded} caught at a
      checkpoint) are not retried either — a task that spent its whole
      budget would spend another to learn nothing — but they render
      distinctly ([failed:timeout]) because the remedy is a bigger
      [--deadline-ms], not a detector fix.

    {!classify} is the single policy point: a new transient condition
    (e.g. a flaky external model backend) is added here, nowhere else. *)

type severity = Transient | Fatal | Timeout

exception Injected of severity * string
(** The chaos harness's exception ({!Fault_plan.trip}).  The payload
    describes the injection site deterministically, so faulted runs
    render identically across repeats. *)

type t = {
  severity : severity;
  origin : string;  (** [Printexc.to_string] of the causing exception *)
  attempts : int;  (** executions consumed before the supervisor gave up *)
  backtrace : string;  (** diagnostic only — excluded from {!equal} *)
}
(** The record of one task failure, as carried by
    {!Seqdiv_core.Outcome.Failed}. *)

val classify : exn -> severity
(** {!Injected} faults carry their own severity;
    {!Seqdiv_util.Deadline.Exceeded} is {!Timeout}; every other
    exception is {!Fatal} (pure tasks fail deterministically, so
    retrying cannot help). *)

val is_asynchronous : exn -> bool
(** [Out_of_memory] and [Stack_overflow]: process-level exhaustion that
    supervised paths must re-raise rather than classify — rendering one
    into a per-task failure would hide that the whole process is dying. *)

val of_exn : attempts:int -> exn -> Printexc.raw_backtrace -> t
(** Record a failure: classify the exception and capture its rendering
    and backtrace. *)

val severity_to_string : severity -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality on severity, origin and attempts.  Backtraces
    are ignored: they may legitimately differ between byte-identical
    runs. *)

exception Error of t
(** Raised by engine entry points whose signature has no failure slot
    (e.g. {!Engine.train_batch}) when a task failure survives the retry
    budget. *)
