(** Crash-safe per-shard journal for the serve layer.

    Each shard of a journalled [seqdiv serve] records, after every
    batch it applies, the feed-relevant state of the sessions the batch
    touched ({!Seqdiv_core.Online.snapshot} digests) plus the batch's
    id and emitted incident events.  A killed server restarted with
    [--resume] rebuilds every monitor exactly where its last
    acknowledged batch left it — so the subsequent incident output is
    byte-identical to an uninterrupted run — and re-acknowledges
    recently applied batches from the retained batch records instead of
    applying them twice.

    The format follows {!Seqdiv_core.Journal} (PR 5): versioned magic
    line, context line pinning the run configuration, FNV-1a-digested
    record lines, an append+fsync fast path, threshold compaction, and
    torn-tail recovery.  One addition: records are grouped into
    {e commit groups}.  A {!commit} appends the records buffered since
    the last commit followed by a commit marker carrying the group
    size; recovery applies only complete, committed groups and drops an
    interrupted tail group whole.  This is what makes a flush atomic —
    a crash mid-append can never leave session states advanced past a
    batch without the batch record that says so (the window in which a
    resent batch would be applied twice). *)

open Seqdiv_stream

exception Corrupt of string
(** An unusable journal: bad magic, or a context line that does not
    match this run (model digest, shards, threshold...).  Torn tails
    and trailing garbage do {e not} raise — they are recovered around
    and reported in {!dropped_lines}. *)

type session_state = {
  js_session : int;
  js_consumed : int;  (** symbols consumed ({!Online.snapshot}) *)
  js_state : int;  (** flat-automaton state *)
  js_open : Frame.incident option;  (** incident open at the snapshot *)
  js_adaptive : string option;
      (** opaque {!Adaptive_threshold.to_string} token (threshold,
          counters, quantile sketch) when the session's monitor is
          adaptive; must contain no spaces.  Static sessions write the
          historical 5-field line, adaptive sessions append this as a
          6th field — both parse. *)
}

type batch_record = {
  jb_id : int;
  jb_shard : int;
  jb_events : int;  (** events of the batch this shard applied *)
  jb_incidents : Frame.incident_event list;  (** in emission order *)
}

type t

val start :
  ?resume:bool ->
  ?compact_factor:float ->
  ?batch_history:int ->
  context:string ->
  string ->
  t
(** Open (and, with [resume], load) the journal at the given path.
    [context] is one line pinning everything the journal's validity
    depends on; resuming against a different context raises {!Corrupt}.
    [batch_history] (default 64) bounds the retained batch records —
    the re-acknowledgement window for resent batches.  [compact_factor]
    as in {!Seqdiv_core.Journal.start}.
    @raise Corrupt as described above.
    @raise Invalid_argument if [context] contains a newline. *)

(** {1 Recording}

    Records buffer in memory until {!commit}; the serve layer records
    every session a batch touched, then the batch itself, then commits
    once — one fsync per applied batch. *)

val record_session : t -> session_state -> unit
(** The session's new state (replaces any previous record). *)

val record_end : t -> session:int -> unit
(** The session ended and its monitor was dropped. *)

val record_batch : t -> batch_record -> unit
(** An applied batch with its emitted incidents. *)

val commit : t -> unit
(** Durably append the buffered records as one atomic commit group
    (fsynced).  A no-op when nothing is buffered. *)

(** {1 Recovered state} *)

val sessions : t -> session_state list
(** Live sessions (newest committed record per id, ended sessions
    removed), ascending session id. *)

val batches : t -> batch_record list
(** Retained batch records, oldest first (at most [batch_history]). *)

(** {1 Introspection} *)

val path : t -> string
val context : t -> string

val recovered_sessions : t -> int
(** Live sessions loaded by [resume]. *)

val recovered_batches : t -> int
(** Batch records loaded by [resume]. *)

val dropped_lines : t -> int
(** Lines discarded during recovery: a torn tail, trailing garbage, or
    an uncommitted final group. *)

val appends : t -> int
val compactions : t -> int
