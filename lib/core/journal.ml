(* Crash-safe run journal: a versioned, line-oriented, append-only
   record of completed performance-map cells.  Durability comes from
   fsynced writes — whole-file write-tmp-then-rename batches (rename
   within a directory is atomic on POSIX filesystems) plus an
   append-mode fast path for flushes that only add lines — integrity
   from a per-line FNV-1a digest, and recovery from a tolerant loader
   that drops the torn tail of an interrupted write instead of
   refusing the file.

   Flush modes.  A flush appends only the lines recorded since the
   last flush — O(new cells), which is what keeps a long multi-resume
   session cheap — except when the file must be (re)written whole:
   the first flush of a fresh journal (writes the header), a resumed
   file with a torn tail or no trailing newline (appending would
   splice into a partial line), a previous-version header (upgrades
   it), or accumulated shadowed lines past [compact_factor] x the live
   entry count (compaction).  Rewrites emit live entries only — one
   line per key, newest record wins — so the file size stays bounded
   by the live cell count. *)

let version = 2
let magic = Printf.sprintf "seqdiv-journal v%d" version

(* Version 1 files (whole-file-rewrite era) are identical per line;
   accept them on load and upgrade the header on the first rewrite. *)
let magic_v1 = "seqdiv-journal v1"

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type entry = {
  seed : int;
  detector : string;
  window : int;
  anomaly_size : int;
  outcome : Outcome.t;
}

type t = {
  path : string;
  context : string;
  compact_factor : float;
  index : (int * string * int * int, Outcome.t) Hashtbl.t;
  mutable entries : entry list; (* newest first; rewritten oldest-first *)
  mutable pending : entry list; (* newest first; not yet on disk *)
  mutable written_lines : int; (* cell lines physically in the file *)
  mutable appendable : bool;
      (* the on-disk file is exactly [magic]/context/[written_lines]
         whole valid lines with a trailing newline — safe to append to *)
  mutable recovered : int;
  mutable dropped : int;
  mutable dirty : bool;
  mutable appends : int;
  mutable compactions : int;
}

(* --- line codec --------------------------------------------------------- *)

let fnv_string s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let check_field name s =
  if s = "" || String.exists (fun c -> c = ' ' || c = '\n' || c = '\t') s then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Journal: %s contains whitespace: %S" name s)

let outcome_tag = function
  | Outcome.Blind -> "blind"
  | Outcome.Weak _ -> "weak"
  | Outcome.Capable _ -> "capable"
  | Outcome.Failed _ ->
      (* lint: allow partiality — documented precondition *)
      invalid_arg "Journal: Failed cells are never journalled"

let body_of_entry e =
  check_field "detector name" e.detector;
  Printf.sprintf "cell %d %s %d %d %s %016Lx" e.seed e.detector e.window
    e.anomaly_size (outcome_tag e.outcome)
    (Int64.bits_of_float (Outcome.max_response e.outcome))

let line_of_entry e =
  let body = body_of_entry e in
  Printf.sprintf "%s %016Lx" body (fnv_string body)

let int_field s = int_of_string_opt s

let entry_of_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some cut -> (
      let body = String.sub line 0 cut in
      let digest = String.sub line (cut + 1) (String.length line - cut - 1) in
      match Int64.of_string_opt ("0x" ^ digest) with
      | Some d when Int64.equal d (fnv_string body) -> (
          match String.split_on_char ' ' body with
          | [ "cell"; seed; detector; window; anomaly_size; tag; bits ] -> (
              match
                ( int_field seed,
                  int_field window,
                  int_field anomaly_size,
                  Int64.of_string_opt ("0x" ^ bits) )
              with
              | Some seed, Some window, Some anomaly_size, Some bits -> (
                  let m = Int64.float_of_bits bits in
                  let outcome =
                    match tag with
                    | "blind" when m = 0.0 -> Some Outcome.Blind
                    | "weak" -> Some (Outcome.Weak m)
                    | "capable" -> Some (Outcome.Capable m)
                    | _ -> None
                  in
                  match outcome with
                  | Some outcome ->
                      Some { seed; detector; window; anomaly_size; outcome }
                  | None -> None)
              | _ -> None)
          | _ -> None)
      | Some _ | None -> None)

(* --- load --------------------------------------------------------------- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some line -> go (line :: acc)
        | None -> List.rev acc
      in
      go [])

(* Whether the file ends in a newline: [input_line] swallows a missing
   final newline, so a file whose last line parses can still be
   append-unsafe — an appended line would splice onto it. *)
let ends_with_newline path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      if n = 0 then false
      else begin
        seek_in ic (n - 1);
        input_char ic = '\n'
      end)

let key_of e = (e.seed, e.detector, e.window, e.anomaly_size)

let absorb t e =
  Hashtbl.replace t.index (key_of e) e.outcome;
  t.entries <- e :: t.entries

let load_into t =
  match read_lines t.path with
  | [] -> corrupt "%s: empty journal (missing %S header)" t.path magic
  | header :: rest ->
      let current = String.equal header magic in
      if not (current || String.equal header magic_v1) then
        corrupt "%s: bad journal header %S (want %S)" t.path header magic;
      (match rest with
      | context_line :: _
        when String.length context_line > 8
             && String.equal (String.sub context_line 0 8) "context " ->
          let ctx =
            String.sub context_line 8 (String.length context_line - 8)
          in
          if not (String.equal ctx t.context) then
            corrupt
              "%s: journal was written for a different run (%s, this run is \
               %s) — refusing to resume from it"
              t.path ctx t.context
      | _ -> corrupt "%s: missing context line" t.path);
      let cells = match rest with [] -> [] | _ :: cells -> cells in
      (* Torn-tail recovery: an interrupted write can leave a partial
         final line (or trailing garbage).  Absorb the longest valid
         prefix and count what follows as dropped — never refuse the
         whole file for a damaged tail. *)
      let rec go = function
        | [] -> ()
        | line :: more -> (
            match entry_of_line line with
            | Some e ->
                absorb t e;
                t.written_lines <- t.written_lines + 1;
                go more
            | None -> t.dropped <- 1 + List.length more)
      in
      go cells;
      t.recovered <- Hashtbl.length t.index;
      (* Append only onto a file this version wrote completely: a torn
         tail, a missing final newline or a v1 header all force the
         next flush through the rewrite path (which also upgrades the
         header). *)
      t.appendable <- current && t.dropped = 0 && ends_with_newline t.path

(* --- public api --------------------------------------------------------- *)

let default_compact_factor = 4.0

let start ?(resume = false) ?(compact_factor = default_compact_factor)
    ~context path =
  if String.exists (fun c -> c = '\n') context then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Journal.start: context contains a newline";
  let t =
    {
      path;
      context;
      compact_factor;
      index = Hashtbl.create 256;
      entries = [];
      pending = [];
      written_lines = 0;
      appendable = false;
      recovered = 0;
      dropped = 0;
      dirty = false;
      appends = 0;
      compactions = 0;
    }
  in
  if resume && Sys.file_exists path then load_into t;
  t

let path t = t.path
let context t = t.context
let recovered t = t.recovered
let dropped_lines t = t.dropped
let appends t = t.appends
let compactions t = t.compactions

let lookup t ~seed ~detector ~window ~anomaly_size =
  Hashtbl.find_opt t.index (seed, detector, window, anomaly_size)

let record t e =
  ignore (body_of_entry e) (* validate before accepting *);
  absorb t e;
  t.pending <- e :: t.pending;
  t.dirty <- true

let entries t = List.rev t.entries

(* The live entries, oldest-first, one per key (the newest record of
   each key — what the index answers).  This is what a rewrite emits,
   which is what bounds the file by the live cell count. *)
let live_entries t =
  let seen = Hashtbl.create (Hashtbl.length t.index) in
  let keep =
    List.filter
      (fun e ->
        let k = key_of e in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      t.entries (* newest first: the first occurrence of a key wins *)
  in
  List.rev keep

let fsync_out oc =
  Stdlib.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let output_entry oc e =
  output_string oc (line_of_entry e);
  output_char oc '\n'

(* Whole-file rewrite via write-tmp-then-rename: a crash at any
   instant leaves either the previous complete journal or the new
   complete journal.  Also the compaction step: only live entries are
   written. *)
let rewrite t =
  let live = live_entries t in
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc magic;
         output_char oc '\n';
         output_string oc ("context " ^ t.context);
         output_char oc '\n';
         List.iter (output_entry oc) live;
         fsync_out oc)
   with
  | () -> ()
  (* lint: allow swallow — tmp cleanup only; the exception is re-raised *)
  | exception exn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
  Sys.rename tmp t.path;
  t.written_lines <- List.length live;
  t.pending <- [];
  t.appendable <- true;
  t.compactions <- t.compactions + 1

(* Append-mode fast path: write only the lines recorded since the last
   flush — O(new cells) bytes however large the journal has grown. *)
let append t =
  let pending = List.rev t.pending in
  (* If the append is interrupted the tail state is unknown; the next
     flush (or resume) must go through the rewrite path. *)
  t.appendable <- false;
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (output_entry oc) pending;
      fsync_out oc);
  t.written_lines <- t.written_lines + List.length pending;
  t.pending <- [];
  t.appendable <- true;
  t.appends <- t.appends + 1

let flush t =
  if t.dirty then begin
    let must_rewrite =
      (not t.appendable)
      || not (Sys.file_exists t.path)
      || t.compact_factor <= 0.0
      || float_of_int (t.written_lines + List.length t.pending)
         > t.compact_factor *. float_of_int (Hashtbl.length t.index)
    in
    if must_rewrite then rewrite t else append t;
    t.dirty <- false
  end
