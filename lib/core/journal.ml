(* Crash-safe run journal: a versioned, line-oriented, append-only
   record of completed performance-map cells.  Durability comes from
   whole-file write-tmp-then-rename batches (rename within a directory
   is atomic on POSIX filesystems), integrity from a per-line FNV-1a
   digest, and recovery from a tolerant loader that drops the torn
   tail of an interrupted write instead of refusing the file. *)

let version = 1
let magic = Printf.sprintf "seqdiv-journal v%d" version

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type entry = {
  seed : int;
  detector : string;
  window : int;
  anomaly_size : int;
  outcome : Outcome.t;
}

type t = {
  path : string;
  context : string;
  index : (int * string * int * int, Outcome.t) Hashtbl.t;
  mutable entries : entry list; (* newest first; rewritten oldest-first *)
  mutable recovered : int;
  mutable dropped : int;
  mutable dirty : bool;
}

(* --- line codec --------------------------------------------------------- *)

let fnv_string s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let check_field name s =
  if s = "" || String.exists (fun c -> c = ' ' || c = '\n' || c = '\t') s then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Journal: %s contains whitespace: %S" name s)

let outcome_tag = function
  | Outcome.Blind -> "blind"
  | Outcome.Weak _ -> "weak"
  | Outcome.Capable _ -> "capable"
  | Outcome.Failed _ ->
      (* lint: allow partiality — documented precondition *)
      invalid_arg "Journal: Failed cells are never journalled"

let body_of_entry e =
  check_field "detector name" e.detector;
  Printf.sprintf "cell %d %s %d %d %s %016Lx" e.seed e.detector e.window
    e.anomaly_size (outcome_tag e.outcome)
    (Int64.bits_of_float (Outcome.max_response e.outcome))

let line_of_entry e =
  let body = body_of_entry e in
  Printf.sprintf "%s %016Lx" body (fnv_string body)

let int_field s = int_of_string_opt s

let entry_of_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some cut -> (
      let body = String.sub line 0 cut in
      let digest = String.sub line (cut + 1) (String.length line - cut - 1) in
      match Int64.of_string_opt ("0x" ^ digest) with
      | Some d when Int64.equal d (fnv_string body) -> (
          match String.split_on_char ' ' body with
          | [ "cell"; seed; detector; window; anomaly_size; tag; bits ] -> (
              match
                ( int_field seed,
                  int_field window,
                  int_field anomaly_size,
                  Int64.of_string_opt ("0x" ^ bits) )
              with
              | Some seed, Some window, Some anomaly_size, Some bits -> (
                  let m = Int64.float_of_bits bits in
                  let outcome =
                    match tag with
                    | "blind" when m = 0.0 -> Some Outcome.Blind
                    | "weak" -> Some (Outcome.Weak m)
                    | "capable" -> Some (Outcome.Capable m)
                    | _ -> None
                  in
                  match outcome with
                  | Some outcome ->
                      Some { seed; detector; window; anomaly_size; outcome }
                  | None -> None)
              | _ -> None)
          | _ -> None)
      | Some _ | None -> None)

(* --- load --------------------------------------------------------------- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some line -> go (line :: acc)
        | None -> List.rev acc
      in
      go [])

let key_of e = (e.seed, e.detector, e.window, e.anomaly_size)

let absorb t e =
  Hashtbl.replace t.index (key_of e) e.outcome;
  t.entries <- e :: t.entries

let load_into t =
  match read_lines t.path with
  | [] -> corrupt "%s: empty journal (missing %S header)" t.path magic
  | header :: rest ->
      if not (String.equal header magic) then
        corrupt "%s: bad journal header %S (want %S)" t.path header magic;
      (match rest with
      | context_line :: _
        when String.length context_line > 8
             && String.equal (String.sub context_line 0 8) "context " ->
          let ctx =
            String.sub context_line 8 (String.length context_line - 8)
          in
          if not (String.equal ctx t.context) then
            corrupt
              "%s: journal was written for a different run (%s, this run is \
               %s) — refusing to resume from it"
              t.path ctx t.context
      | _ -> corrupt "%s: missing context line" t.path);
      let cells = match rest with [] -> [] | _ :: cells -> cells in
      (* Torn-tail recovery: an interrupted write can leave a partial
         final line (or trailing garbage).  Absorb the longest valid
         prefix and count what follows as dropped — never refuse the
         whole file for a damaged tail. *)
      let rec go = function
        | [] -> ()
        | line :: more -> (
            match entry_of_line line with
            | Some e ->
                absorb t e;
                go more
            | None -> t.dropped <- 1 + List.length more)
      in
      go cells;
      t.recovered <- Hashtbl.length t.index

(* --- public api --------------------------------------------------------- *)

let start ?(resume = false) ~context path =
  if String.exists (fun c -> c = '\n') context then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Journal.start: context contains a newline";
  let t =
    {
      path;
      context;
      index = Hashtbl.create 256;
      entries = [];
      recovered = 0;
      dropped = 0;
      dirty = false;
    }
  in
  if resume && Sys.file_exists path then load_into t;
  t

let path t = t.path
let context t = t.context
let recovered t = t.recovered
let dropped_lines t = t.dropped

let lookup t ~seed ~detector ~window ~anomaly_size =
  Hashtbl.find_opt t.index (seed, detector, window, anomaly_size)

let record t e =
  ignore (body_of_entry e) (* validate before accepting *);
  absorb t e;
  t.dirty <- true

let entries t = List.rev t.entries

let flush t =
  if t.dirty then begin
    let tmp = t.path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (match
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () ->
           output_string oc magic;
           output_char oc '\n';
           output_string oc ("context " ^ t.context);
           output_char oc '\n';
           List.iter
             (fun e ->
               output_string oc (line_of_entry e);
               output_char oc '\n')
             (entries t))
     with
    | () -> ()
    (* lint: allow swallow — tmp cleanup only; the exception is re-raised *)
    | exception exn ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise exn);
    Sys.rename tmp t.path;
    t.dirty <- false
  end
