(** Seeded fault-injection plans — the chaos harness the supervision
    tests and [bench --chaos] drive.

    A plan deterministically decides, per task, whether that task's
    execution raises {!Fault.Injected}.  Decisions are a {e stateless}
    hash of (plan seed, task key, attempt number): no PRNG state is
    read or advanced, so injection is identical at every jobs count,
    in every scheduling order, and across kill-and-resume runs.  Task
    keys are stable fingerprints of task content (detector, window,
    cell), assigned by the engine — never positional indices, which
    would shift under [--resume].

    Fate of a task under a plan, by its key's hash [u ∈ [0, 1)]:
    - [u < fatal_rate] — fails {!Fault.Fatal} on {e every} attempt;
    - [u < fatal_rate + hang_rate] — {e hangs}: the task spins on
      {!Seqdiv_util.Deadline.hang} until the supervisor's armed
      deadline fires ({!Fault.Timeout}), or raises
      [Deadline.Hang_refused] when no deadline is armed;
    - [u < fatal_rate + hang_rate + transient_rate] — fails
      {!Fault.Transient} on its first [sticky] attempts, then succeeds;
    - otherwise — never faulted. *)

type t

val of_seed :
  ?transient_rate:float ->
  ?fatal_rate:float ->
  ?hang_rate:float ->
  ?sticky:int ->
  seed:int ->
  unit ->
  t
(** [of_seed ~seed ()] is a plan injecting transient faults into
    [transient_rate] (default 0.05) of tasks, fatal faults into
    [fatal_rate] (default 0) of tasks, and cooperative hangs into
    [hang_rate] (default 0) of tasks.  A transient-fated task fails
    its first [sticky] attempts (default 1, clamped to at least 1) —
    keep [sticky] at most the engine's retry budget to prove full
    recovery, or raise it beyond to exercise budget exhaustion.  A
    hang-fated task requires a deadline armed around task execution
    ([Engine.create ~deadline]) to terminate at all.
    @raise Invalid_argument if a rate (or their sum) leaves [0, 1]. *)

val seed : t -> int
val transient_rate : t -> float
val fatal_rate : t -> float
val hang_rate : t -> float
val sticky : t -> int

val decide : t -> key:int64 -> attempt:int -> Fault.severity option
(** The injection decision for one execution of the task fingerprinted
    by [key]; [Some Timeout] marks a hang-fated task.  Pure; safe from
    any domain. *)

val trip : t -> key:int64 -> attempt:int -> unit
(** Act on {!decide}: raise {!Fault.Injected} for transient/fatal
    fates, spin on {!Seqdiv_util.Deadline.hang} for hang fates, return
    for the rest.  Injected payloads name seed, key and attempt, so
    rendered faults are deterministic. *)

val describe : t -> string
(** One-line human rendering, for [--chaos] banners. *)

val jitter : seed:int -> key:int64 -> float
(** The plan hash as a public uniform draw in [[0, 1)]: deterministic
    per-key randomness for consumers outside a fault decision (e.g. the
    bench client's backoff jitter).  Pure; safe from any domain. *)

(** Serve-layer chaos: the same stateless (seed, key, attempt) hash
    discipline, speaking the serve layer's failure modes — a shard
    domain dying outside the per-batch handler ([Crash], injected as
    {!Fault.Transient} so the supervisor restarts it), a shard hang
    ([Hang], terminated by the shard's armed deadline or refused as
    Fatal), and a response frame torn on the wire ([tear]).  Job fates
    and frame fates hash disjoint key spaces, so one seed drives both
    without correlation. *)
module Serve : sig
  type t

  type job_fate = Crash | Hang

  val of_seed :
    ?crash_rate:float ->
    ?hang_rate:float ->
    ?torn_rate:float ->
    ?sticky:int ->
    seed:int ->
    unit ->
    t
  (** [of_seed ~seed ()] is a serve plan crashing the shard domain on
      [crash_rate] of sub-batches (first [sticky] attempts only, so a
      supervisor with restart budget ≥ [sticky] fully recovers),
      hanging it on [hang_rate] of sub-batches (every attempt), and
      tearing [torn_rate] of response frames (first write only — the
      resend after reconnect passes).  All rates default to 0.
      @raise Invalid_argument if a rate (or [crash_rate + hang_rate])
      leaves [0, 1]. *)

  val seed : t -> int
  val crash_rate : t -> float
  val hang_rate : t -> float
  val torn_rate : t -> float
  val sticky : t -> int

  val job_key : batch_id:int -> shard:int -> int64
  (** Stable fingerprint of one sub-batch (the unit a shard domain
      executes). *)

  val frame_key : batch_id:int -> shard:int -> int64
  (** Fingerprint of that sub-batch's response frame, in a key space
      disjoint from {!job_key}. *)

  val job_fate : t -> key:int64 -> attempt:int -> job_fate option
  (** The injection decision for one execution of a sub-batch.  Pure;
      safe from any domain. *)

  val trip : t -> key:int64 -> attempt:int -> unit
  (** Act on {!job_fate}: raise {!Fault.Injected} [(Transient, _)] for
      crash fates, spin on {!Seqdiv_util.Deadline.hang} for hang fates
      (raising [Deadline.Hang_refused] when no deadline is armed),
      return for the rest. *)

  val tear : t -> key:int64 -> attempt:int -> bool
  (** Whether to tear this response frame on the wire.  Only
      [attempt = 0] ever tears: the resend after the client reconnects
      goes through clean, so torn-frame chaos always converges. *)

  val describe : t -> string
  (** One-line human rendering, for [--chaos-serve] banners. *)
end
