(** Seeded fault-injection plans — the chaos harness the supervision
    tests and [bench --chaos] drive.

    A plan deterministically decides, per task, whether that task's
    execution raises {!Fault.Injected}.  Decisions are a {e stateless}
    hash of (plan seed, task key, attempt number): no PRNG state is
    read or advanced, so injection is identical at every jobs count,
    in every scheduling order, and across kill-and-resume runs.  Task
    keys are stable fingerprints of task content (detector, window,
    cell), assigned by the engine — never positional indices, which
    would shift under [--resume].

    Fate of a task under a plan, by its key's hash [u ∈ [0, 1)]:
    - [u < fatal_rate] — fails {!Fault.Fatal} on {e every} attempt;
    - [u < fatal_rate + hang_rate] — {e hangs}: the task spins on
      {!Seqdiv_util.Deadline.hang} until the supervisor's armed
      deadline fires ({!Fault.Timeout}), or raises
      [Deadline.Hang_refused] when no deadline is armed;
    - [u < fatal_rate + hang_rate + transient_rate] — fails
      {!Fault.Transient} on its first [sticky] attempts, then succeeds;
    - otherwise — never faulted. *)

type t

val of_seed :
  ?transient_rate:float ->
  ?fatal_rate:float ->
  ?hang_rate:float ->
  ?sticky:int ->
  seed:int ->
  unit ->
  t
(** [of_seed ~seed ()] is a plan injecting transient faults into
    [transient_rate] (default 0.05) of tasks, fatal faults into
    [fatal_rate] (default 0) of tasks, and cooperative hangs into
    [hang_rate] (default 0) of tasks.  A transient-fated task fails
    its first [sticky] attempts (default 1, clamped to at least 1) —
    keep [sticky] at most the engine's retry budget to prove full
    recovery, or raise it beyond to exercise budget exhaustion.  A
    hang-fated task requires a deadline armed around task execution
    ([Engine.create ~deadline]) to terminate at all.
    @raise Invalid_argument if a rate (or their sum) leaves [0, 1]. *)

val seed : t -> int
val transient_rate : t -> float
val fatal_rate : t -> float
val hang_rate : t -> float
val sticky : t -> int

val decide : t -> key:int64 -> attempt:int -> Fault.severity option
(** The injection decision for one execution of the task fingerprinted
    by [key]; [Some Timeout] marks a hang-fated task.  Pure; safe from
    any domain. *)

val trip : t -> key:int64 -> attempt:int -> unit
(** Act on {!decide}: raise {!Fault.Injected} for transient/fatal
    fates, spin on {!Seqdiv_util.Deadline.hang} for hang fates, return
    for the rest.  Injected payloads name seed, key and attempt, so
    rendered faults are deterministic. *)

val describe : t -> string
(** One-line human rendering, for [--chaos] banners. *)
