open Seqdiv_synth

type t = {
  as_min : int;
  dw_min : int;
  n_dw : int;
  injections : Injector.injection array;
}

let build suite =
  let p = suite.Suite.params in
  let index = suite.Suite.index in
  let background =
    Generator.background suite.Suite.alphabet ~len:p.Suite.background_len
      ~phase:0
  in
  let n_as = p.Suite.as_max - p.Suite.as_min + 1 in
  let n_dw = p.Suite.dw_max - p.Suite.dw_min + 1 in
  let candidates_by_size =
    Array.init n_as (fun i ->
        Rare_seq.candidates index ~size:(p.Suite.as_min + i)
          ~rare_threshold:p.Suite.rare_threshold)
  in
  let injections =
    Array.init (n_as * n_dw) (fun cell ->
        let anomaly_size = p.Suite.as_min + (cell / n_dw) in
        let window = p.Suite.dw_min + (cell mod n_dw) in
        let candidates = candidates_by_size.(cell / n_dw) in
        match
          Injector.inject_first index ~background ~candidates ~width:window
        with
        | Some injection -> injection
        | None ->
            Injector.no_clean_injection
              "Rare_anomaly.build: no clean rare-sequence injection for size \
               %d at window %d (%d candidates)"
              anomaly_size window (List.length candidates))
  in
  { as_min = p.Suite.as_min; dw_min = p.Suite.dw_min; n_dw; injections }

let injection t ~anomaly_size ~window =
  let cell = ((anomaly_size - t.as_min) * t.n_dw) + (window - t.dw_min) in
  assert (cell >= 0 && cell < Array.length t.injections);
  t.injections.(cell)

let performance_map ?engine t suite detector =
  Experiment.performance_map_over ?engine suite
    ~injection:(fun ~anomaly_size ~window -> injection t ~anomaly_size ~window)
    detector
