(** Combining diverse detectors (Sections 7–8).

    Two levels of combination are studied:

    - {e coverage-level}: the union/intersection of performance-map
      coverages, which says where a combination {e could} detect (see
      {!Coverage});
    - {e response-level}: merging the alarm streams of detectors run on
      the same data with the same window, either disjunctively (alarm
      when any member alarms) or conjunctively (alarm only when all
      members alarm).

    The paper's false-alarm suppression scheme is the conjunctive case
    with the Markov detector as primary and Stide as suppressor: because
    Stide's coverage is a subset of the Markov detector's, dropping
    Markov alarms that Stide does not corroborate discards rare-sequence
    false alarms without losing foreign-sequence hits. *)

open Seqdiv_detectors

type rule = Any | All
(** Disjunctive ([Any]) or conjunctive ([All]) alarm merging. *)

val combine : rule -> (Response.t * float) list -> Response.t
(** [combine rule members] merges member responses, each taken with its
    own alarm threshold, into a binary response over the window starts
    common to all members (an inner join on [start]; members trained at
    the same window on the same trace align exactly).  Requires a
    non-empty member list; the result is labelled
    ["any(...)"] or ["all(...)"] and carries the first member's
    window. *)

type suppression = {
  primary_alarms : int;  (** alarms raised by the primary detector *)
  corroborated : int;  (** primary alarms the suppressor also raised *)
  suppressed : int;  (** primary alarms dismissed by the suppressor *)
}

val suppress :
  primary:Response.t * float -> suppressor:Response.t * float -> suppression
(** Partition the primary detector's alarms by whether the suppressor
    alarms at the same window start — the Markov+Stide scheme of
    Section 7. *)

(** {1 Adaptive ensemble combination}

    The budget-driven counterpart of {!combine}: instead of fixed
    per-member thresholds, a configured {e system} false-alarm rate is
    split across the ensemble by {!Adaptive_threshold.allocate} and each
    member tracks its allocated tail quantile with its own
    {!Adaptive_threshold} controller.  The system alarms at a window
    when any {e emitter} alarms and every suppressor targeting that
    emitter corroborates (alarms too) — the conjunction that discards
    rare-sequence false alarms without losing foreign-sequence hits,
    now with moving thresholds. *)

type adaptive_member_stats = {
  member_name : string;
  allocated_rate : float;  (** the member's slice of the system budget *)
  member_windows : int;  (** windows the member's controller judged *)
  member_alarms : int;  (** windows the member alarmed at *)
  final_threshold : float;  (** controller threshold after the stream *)
}

val adaptive_combine :
  system_rate:float ->
  initial:float ->
  (Adaptive_threshold.member * Response.t) list ->
  Response.t * adaptive_member_stats list
(** [adaptive_combine ~system_rate ~initial members] runs one adaptive
    controller per member over the window starts common to all member
    responses (inner join on [start], ascending — the deterministic
    stream order), with each controller's budget taken from
    {!Adaptive_threshold.allocate} on [system_rate] and its threshold
    starting at [initial].  Returns the binary system response
    (labelled ["adaptive(...)"], scores 1/0) and per-member stats in
    member order.
    @raise Invalid_argument on an empty member list or any allocation
    the validator rejects (see {!Adaptive_threshold.allocate}). *)
