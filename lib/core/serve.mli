(** The [seqdiv serve] server loop: sharded multi-session streaming
    detection over a Unix or TCP socket.

    Sessions are routed by {!Seqdiv_stream.Frame.shard_of_session} to
    [shards] single-domain {!Session_table}s, all stepping one shared
    read-only compiled scorer.  Each connection gets a reader domain
    (decode, route, admit) and a writer domain (encode, send); each
    shard owns a bounded ingress queue of sub-batches.

    {b Backpressure is honest}: admission is all-or-nothing across the
    shards a batch touches — if any queue is full the whole batch is
    rejected with a retry-after hint and {e nothing} is enqueued, so the
    client resends the identical batch later.  Nothing buffers
    unboundedly on the server.

    {b Durability}: with a journal directory, each shard commits the
    touched session snapshots and the batch's incident output to its
    own {!Shard_journal} before the batch is acknowledged, so a
    SIGKILLed server restarted with resume continues with byte-identical
    subsequent incident output, and re-acknowledges recently committed
    batches a reconnecting client resends.

    {b Determinism}: one shard per session and FIFO queues mean a
    session's events are applied in arrival order whatever the shard
    count; the per-session incident log therefore depends only on the
    per-session input order (proven against serial {!Online} replay by
    the qcheck suite).  Per-batch deadlines are the one escape hatch:
    a batch that blows its budget gets a [Failed] response and may
    leave its sessions partially advanced — the contract holds on runs
    without deadline failures.

    {b Supervision}: a shard domain that dies outside the per-batch
    handler is detected by the accept loop, its poison classified
    through {!Fault.classify}.  A Transient fate with a journal
    attached and restart budget left restarts the domain with state
    rebuilt from the journal (the committed batches the acks promised —
    extending the determinism contract to supervised restarts); any
    other fate degrades the shard: its job, its queue, and every future
    slice routed to it are answered [Failed] with the rendered fate,
    while the other shards keep serving.  The restart budget is
    {e consecutive}: it resets every time the shard answers a batch, so
    a sticky-bounded chaos crash rate always fully recovers.

    {b Overload control}: the [Rejected] retry hint is adaptive —
    queue depth times the shard's median recent service time, clamped
    to [[retry_after_ms, 1000]] ms — and slow clients are evicted
    rather than buffered: a connection that cannot drain its acks
    (out-channel overflow, or a write stalled past [write_timeout_ms])
    is shut down, counted in {!Frame.health}, and its fd reaped
    exactly once.

    This is the single module (with [lib/util/pool.ml]) allowed to
    touch Domain/Mutex/Condition/Atomic — lint rule R6 carries a
    standing exemption for it, justified in docs/LINTING.md. *)

open Seqdiv_stream
open Seqdiv_util

type address =
  | Unix_socket of string  (** bound after unlinking any stale socket *)
  | Tcp of string * int  (** host (numeric or name) and port *)

type config = {
  address : address;
  shards : int;  (** shard (and shard-domain) count, >= 1 *)
  queue_capacity : int;  (** sub-batches per shard queue, >= 1 *)
  retry_after_ms : int;
      (** {e floor} of the adaptive backpressure hint: rejections carry
          queue depth × median recent service time, clamped to
          [[retry_after_ms, 1000]] ms *)
  scorer : Flat_automaton.scorer;  (** shared read-only across shards *)
  threshold : float;
  adaptive : Adaptive_threshold.config option;
      (** when set ([--alarm-budget]), every session monitor owns an
          {!Adaptive_threshold} controller under this configuration:
          thresholds track the budget's tail quantile per session, the
          journal context pins the budget, and session snapshots carry
          sketch state so kill/resume stays byte-identical *)
  model_tag : string;  (** pins the model in journal contexts *)
  journal_dir : string option;
      (** per-shard journals land here as [shard-<i>.journal] *)
  resume : bool;  (** load the shard journals before serving *)
  deadline : Deadline.spec option;  (** per-batch budget, off by default *)
  clock : unit -> float;
      (** seconds, for service-time stats; injected like
          {!Seqdiv_util.Deadline}'s (executables pass
          [Unix.gettimeofday]) *)
  max_connections : int;
      (** concurrent-client cap; excess accepts are closed immediately.
          Connections whose peer hangs up are reaped, so the limit
          bounds concurrency, never the lifetime client count. *)
  max_restarts : int;
      (** consecutive supervised restarts of one shard domain before it
          degrades instead (>= 0; the budget resets whenever the shard
          answers a batch).  Restarting needs [journal_dir]: without a
          journal there is no honest state to restart from, so any
          shard-domain death degrades. *)
  write_timeout_ms : int;
      (** per-write stall budget (> 0); a client whose socket cannot
          absorb a response within it is evicted *)
  chaos : Fault_plan.Serve.t option;
      (** seeded serve-layer fault injection ([--chaos-serve]), off by
          default *)
}

val default_queue_capacity : int
val default_retry_after_ms : int
val default_max_connections : int
val default_max_restarts : int
val default_write_timeout_ms : int

val run : ?on_ready:(unit -> unit) -> config -> Frame.shard_stats list
(** Bind, serve until a client sends [Quit], drain every queue, and
    return the final per-shard stats.  [on_ready] fires once the
    listener is bound (before the first accept).  SIGPIPE is ignored
    for the duration (dead clients surface as [EPIPE] and only tear
    down their own connection).
    @raise Invalid_argument on a non-positive [shards],
    [queue_capacity] or [write_timeout_ms], or a negative
    [max_restarts].
    @raise Shard_journal.Corrupt when resuming against journals from a
    different configuration.
    @raise Unix.Unix_error when the listener cannot be bound. *)
