(** A detector paired with a trained model — the runtime unit the
    evaluation harness, ensembles and false-alarm analyses operate on.

    [Detector.S] exposes an abstract per-module [model] type; this
    existential wrapper lets heterogeneous trained detectors travel in
    one list. *)

open Seqdiv_stream
open Seqdiv_detectors

type t

val train : Detector.t -> window:int -> Trace.t -> t
(** Train one detector at one window size. *)

val trie_capable : Detector.t -> bool
(** Whether the detector can build its model as a view over a shared
    counting trie ({!Detector.S.train_of_trie}). *)

val train_of_trie : Detector.t -> Seq_trie.t -> window:int -> t option
(** Build a model from a shared trie that indexed the training trace at
    least [window] symbols deep.  [None] when the detector is not
    {!trie_capable}.  The result must be indistinguishable from {!train}
    on the trace the trie was built from. *)

val name : t -> string
(** The underlying detector's name. *)

val window : t -> int
(** The window size the model was trained with. *)

val maximal_epsilon : t -> float
(** The underlying detector's maximal-response slack. *)

val alarm_threshold : t -> float
(** [1 − maximal_epsilon]: the response level at which this detector
    raises an alarm under the paper's threshold-of-1 policy. *)

val score : t -> Trace.t -> Response.t
(** Score a whole trace.  Uses the attached compiled scorer when one is
    present (see {!with_scorer}); responses are bit-identical either
    way. *)

val score_range : t -> Trace.t -> lo:int -> hi:int -> Response.t
(** Score window starts within a range. *)

(** {1 Compiled fast path}

    A trained model can carry a {!Seqdiv_stream.Flat_automaton.scorer}
    compiled from it; {!score} / {!score_range} then run the
    flat-automaton loop instead of the detector's own descent.  The
    {!Detector.S.compile} contract makes the switch behaviourally
    invisible — identical response bytes, identical checkpoint
    cadence. *)

val compile : ?automaton:Flat_automaton.t -> t -> Flat_automaton.scorer option
(** Compile the model to a flat-automaton scorer, reusing [automaton]
    when compatible.  [None] when the detector has no compiled form (or
    this model declines, e.g. smoothed Markov). *)

val scorer : t -> Flat_automaton.scorer option
(** The attached compiled scorer, if any. *)

val with_scorer : t -> Flat_automaton.scorer -> t
(** Attach a compiled scorer (typically from {!compile}, or loaded via
    {!Seqdiv_detectors.Model_io}). *)

val compiled : t -> t
(** [with_scorer] of a fresh {!compile} — the identity when a scorer is
    already attached or the model has no compiled form. *)
