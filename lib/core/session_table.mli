(** One shard's session registry — the single-domain heart of the
    serve layer.

    A table owns the {!Online} monitors of every session routed to its
    shard and applies sub-batches of framed events to them in arrival
    order.  It is deliberately socket-free and domain-free: the
    concurrent server ({!Serve}) runs one table per shard domain, and
    the determinism qcheck drives tables directly — same inputs, any
    shard count, kill/resume included, same per-session incident log as
    a serial {!Online} replay.

    Monitors are created on first sight of a session id (every table
    shares one read-only compiled scorer) and dropped on
    [End_of_session].  When a journal is attached, {!apply} commits the
    touched sessions' snapshots and the batch's incident output before
    returning — the caller acknowledges only durable state — and resent
    batches inside the retained history window are answered from the
    journal instead of being applied twice (exactly-once across the
    ack/crash window). *)

open Seqdiv_stream

type t

val create :
  scorer:Flat_automaton.scorer ->
  threshold:float ->
  ?adaptive:Adaptive_threshold.config ->
  ?journal:Shard_journal.t ->
  shard:int ->
  unit ->
  t
(** A table stepping [scorer] at [threshold] (both shared, read-only).
    With [adaptive], every monitor the table creates owns its own
    {!Adaptive_threshold} controller under that configuration, and
    journal snapshots carry the controller's serialized state — so
    kill/resume stays byte-identical even while thresholds move.  With
    [journal], previously committed sessions and batch records are
    restored from it — pass a freshly resumed {!Shard_journal.t} to
    continue a killed run (the journal must have been written under the
    same [adaptive] configuration; {!Online.restore} rejects a
    mismatch). *)

val apply : t -> batch_id:int -> Frame.event list -> Frame.incident_event list
(** Apply one sub-batch (already routed to this shard) and return the
    incident events it emitted, in emission order.  Feeding polls
    {!Seqdiv_util.Deadline.checkpoint} every 1024 symbols, so an armed
    per-batch deadline can interrupt a runaway batch.  A [batch_id]
    already in the retained history is {e not} re-applied: its recorded
    incident events are returned again verbatim.
    @raise Invalid_argument on a symbol outside the scorer's validated
    range (the codec rejects those first on real connections). *)

(** {1 Stats — the meta-analysis axes} *)

val shard : t -> int
val sessions_resident : t -> int
val events_applied : t -> int
val symbols_applied : t -> int
val batches_applied : t -> int

val batches_replayed : t -> int
(** Resent batches answered from history without re-applying. *)

val windows_scored : t -> int
(** Completed windows judged by this shard: departed sessions plus a
    sum over resident monitors.  Exactly-once across kill/resume under
    adaptive thresholding (the counts ride in the journal); on the
    static path resident counts restart at the resumable position. *)

val alarm_windows : t -> int
(** Windows that alarmed, with the same exactness contract as
    {!windows_scored}. *)

val current_threshold : t -> float
(** The shard's published alarm threshold: the configured constant on
    the static path, or the maximum over resident monitors' adaptive
    thresholds (falling back to the configured starting point when no
    session is resident).  Max is iteration-order-independent, keeping
    serve health frames byte-stable. *)

val bytes_resident : t -> int
(** Estimated heap bytes held by the table: resident monitors plus the
    batch-history window (an estimate from per-entry word counts, not a
    GC measurement). *)
