open Seqdiv_detectors

type rule = Any | All

module Int_map = Map.Make (Int)

let alarm_map (r, threshold) =
  Array.fold_left
    (fun acc (item : Response.item) ->
      Int_map.add item.Response.start
        (item.Response.score >= threshold, item.Response.cover)
        acc)
    Int_map.empty r.Response.items

let combine rule members =
  match members with
  | [] ->
      (* lint: allow partiality — an empty ensemble has no window size *)
      invalid_arg "Ensemble.combine: no members"
  | ((first_response, _) as first_member) :: rest_members ->
      let merged =
        List.fold_left
          (fun acc m ->
            Int_map.merge
              (fun _start left right ->
                match (left, right) with
                | Some (a, cover), Some (b, _) ->
                    let combined =
                      match rule with Any -> a || b | All -> a && b
                    in
                    Some (combined, cover)
                | Some _, None | None, Some _ | None, None -> None)
              acc (alarm_map m))
          (alarm_map first_member)
          rest_members
      in
      let names =
        members
        |> List.map (fun (r, _) -> r.Response.detector)
        |> String.concat ","
      in
      let label =
        match rule with
        | Any -> "any(" ^ names ^ ")"
        | All -> "all(" ^ names ^ ")"
      in
      let items =
        Int_map.bindings merged
        |> List.map (fun (start, (alarm, cover)) ->
               { Response.start; cover; score = (if alarm then 1.0 else 0.0) })
        |> Array.of_list
      in
      Response.make ~detector:label ~window:first_response.Response.window
        items

type suppression = {
  primary_alarms : int;
  corroborated : int;
  suppressed : int;
}

type adaptive_member_stats = {
  member_name : string;
  allocated_rate : float;
  member_windows : int;
  member_alarms : int;
  final_threshold : float;
}

(* Score (not alarm) map of one response: the adaptive path decides
   alarms itself, per window, at the controller's moving threshold. *)
let score_map (r : Response.t) =
  Array.fold_left
    (fun acc (item : Response.item) ->
      Int_map.add item.Response.start
        (item.Response.score, item.Response.cover)
        acc)
    Int_map.empty r.Response.items

let adaptive_combine ~system_rate ~initial members =
  match members with
  | [] ->
      (* lint: allow partiality — an empty ensemble has no window size *)
      invalid_arg "Ensemble.adaptive_combine: no members"
  | (_, first_response) :: _ ->
      let allocations =
        Adaptive_threshold.allocate ~system_rate (List.map fst members)
      in
      let rate_of m =
        (* allocate returns one allocation per member, in member order *)
        let a =
          List.find
            (fun (a : Adaptive_threshold.allocation) ->
              a.Adaptive_threshold.a_member.Adaptive_threshold.m_name
              = m.Adaptive_threshold.m_name)
            allocations
        in
        a.Adaptive_threshold.a_rate
      in
      let controllers =
        List.map
          (fun (m, r) ->
            let cfg =
              Adaptive_threshold.config ~budget:(rate_of m) ~initial ()
            in
            (m, Adaptive_threshold.create cfg, score_map r))
          members
      in
      (* Inner join on start: keep only the window starts every member
         scored, with each member's score in member order. *)
      let joined =
        List.fold_left
          (fun acc (_, _, scores) ->
            Int_map.merge
              (fun _start left right ->
                match (left, right) with
                | Some (xs, cover), Some (s, _) -> Some (s :: xs, cover)
                | Some _, None | None, Some _ | None, None -> None)
              acc scores)
          (Int_map.map
             (fun (_, cover) -> (([] : float list), cover))
             (match controllers with
             | (_, _, first) :: _ -> first
             | [] -> Int_map.empty))
          controllers
        |> Int_map.map (fun (xs, cover) -> (List.rev xs, cover))
      in
      (* Ascending starts is the stream order every controller would see
         online — bindings of an Int_map are already sorted. *)
      let items =
        Int_map.bindings joined
        |> List.map (fun (start, (scores, cover)) ->
               let decisions =
                 List.map2
                   (fun (m, c, _) score ->
                     (m, Adaptive_threshold.step c score))
                   controllers scores
               in
               let corroborated target =
                 List.for_all
                   (fun ((m : Adaptive_threshold.member), alarm) ->
                     match m.Adaptive_threshold.m_role with
                     | Adaptive_threshold.Suppressor tgt when tgt = target ->
                         alarm
                     | Adaptive_threshold.Suppressor _
                     | Adaptive_threshold.Emitter ->
                         true)
                   decisions
               in
               let alarm =
                 List.exists
                   (fun ((m : Adaptive_threshold.member), a) ->
                     m.Adaptive_threshold.m_role = Adaptive_threshold.Emitter
                     && a
                     && corroborated m.Adaptive_threshold.m_name)
                   decisions
               in
               { Response.start; cover; score = (if alarm then 1.0 else 0.0) })
        |> Array.of_list
      in
      let names =
        members
        |> List.map (fun ((m : Adaptive_threshold.member), _) ->
               m.Adaptive_threshold.m_name)
        |> String.concat ","
      in
      let response =
        Response.make ~detector:("adaptive(" ^ names ^ ")")
          ~window:first_response.Response.window items
      in
      let stats =
        List.map
          (fun ((m : Adaptive_threshold.member), c, _) ->
            {
              member_name = m.Adaptive_threshold.m_name;
              allocated_rate = rate_of m;
              member_windows = Adaptive_threshold.windows c;
              member_alarms = Adaptive_threshold.alarms c;
              final_threshold = Adaptive_threshold.threshold c;
            })
          controllers
      in
      (response, stats)

let suppress ~primary ~suppressor =
  let primary_response, primary_threshold = primary in
  let suppressor_map = alarm_map suppressor in
  Array.fold_left
    (fun acc (item : Response.item) ->
      if item.Response.score >= primary_threshold then begin
        let corroborated =
          match Int_map.find_opt item.Response.start suppressor_map with
          | Some (true, _) -> true
          | Some (false, _) | None -> false
        in
        {
          primary_alarms = acc.primary_alarms + 1;
          corroborated = (acc.corroborated + if corroborated then 1 else 0);
          suppressed = (acc.suppressed + if corroborated then 0 else 1);
        }
      end
      else acc)
    { primary_alarms = 0; corroborated = 0; suppressed = 0 }
    primary_response.Response.items
