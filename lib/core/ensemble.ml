open Seqdiv_detectors

type rule = Any | All

module Int_map = Map.Make (Int)

let alarm_map (r, threshold) =
  Array.fold_left
    (fun acc (item : Response.item) ->
      Int_map.add item.Response.start
        (item.Response.score >= threshold, item.Response.cover)
        acc)
    Int_map.empty r.Response.items

let combine rule members =
  match members with
  | [] ->
      (* lint: allow partiality — an empty ensemble has no window size *)
      invalid_arg "Ensemble.combine: no members"
  | ((first_response, _) as first_member) :: rest_members ->
      let merged =
        List.fold_left
          (fun acc m ->
            Int_map.merge
              (fun _start left right ->
                match (left, right) with
                | Some (a, cover), Some (b, _) ->
                    let combined =
                      match rule with Any -> a || b | All -> a && b
                    in
                    Some (combined, cover)
                | Some _, None | None, Some _ | None, None -> None)
              acc (alarm_map m))
          (alarm_map first_member)
          rest_members
      in
      let names =
        members
        |> List.map (fun (r, _) -> r.Response.detector)
        |> String.concat ","
      in
      let label =
        match rule with
        | Any -> "any(" ^ names ^ ")"
        | All -> "all(" ^ names ^ ")"
      in
      let items =
        Int_map.bindings merged
        |> List.map (fun (start, (alarm, cover)) ->
               { Response.start; cover; score = (if alarm then 1.0 else 0.0) })
        |> Array.of_list
      in
      Response.make ~detector:label ~window:first_response.Response.window
        items

type suppression = {
  primary_alarms : int;
  corroborated : int;
  suppressed : int;
}

let suppress ~primary ~suppressor =
  let primary_response, primary_threshold = primary in
  let suppressor_map = alarm_map suppressor in
  Array.fold_left
    (fun acc (item : Response.item) ->
      if item.Response.score >= primary_threshold then begin
        let corroborated =
          match Int_map.find_opt item.Response.start suppressor_map with
          | Some (true, _) -> true
          | Some (false, _) | None -> false
        in
        {
          primary_alarms = acc.primary_alarms + 1;
          corroborated = (acc.corroborated + if corroborated then 1 else 0);
          suppressed = (acc.suppressed + if corroborated then 0 else 1);
        }
      end
      else acc)
    { primary_alarms = 0; corroborated = 0; suppressed = 0 }
    primary_response.Response.items
