(** Streaming quantile sketches for adaptive thresholds.

    Adaptive thresholding (Bridges et al., "Setting the threshold for
    high throughput detectors") needs an online estimate of a tail
    quantile of each detector's score distribution, in bounded memory,
    with a provable rank-error bound.  Two estimators are provided:

    - the main type [t] is a Greenwald–Khanna ε-summary: after [n]
      observations, {!quantile} answers any rank query within
      [⌊ε·n⌋] ranks of the exact order statistic, retaining
      O(1/ε · log(ε·n)) tuples.  Summaries are mergeable
      ({!merge}) and serializable ({!to_string}), so per-session
      sketch state rides in shard journals and shard-level sketches
      can be combined into a service-wide view.
    - {!P2} is the Jain–Chlamtac P² estimator: five markers tracking a
      single pre-chosen quantile in constant space.  Cheaper but
      heuristic — no deterministic error bound — kept as the
      low-memory alternative and as a cross-check in the statistical
      test battery.

    {b Determinism.}  Both estimators are pure functions of the
    observation {e sequence}: compression in the GK summary triggers on
    an observation counter, never on wall clock or buffer occupancy
    tuning, so feeding the same scores one at a time or in any batching
    yields bit-identical sketch state.  This is what lets the serve
    layer keep incident logs byte-identical across shard counts and
    kill/resume (see docs/ROBUSTNESS.md). *)

type t
(** A Greenwald–Khanna ε-summary over float observations. *)

val create : epsilon:float -> t
(** An empty summary with rank-error bound [epsilon].
    @raise Invalid_argument unless [0 < epsilon < 0.5]. *)

val epsilon : t -> float
(** The summary's rank-error bound. *)

val count : t -> int
(** Observations absorbed so far. *)

val tuples : t -> int
(** Tuples currently retained (the memory footprint; bounded). *)

val observe : t -> float -> unit
(** Absorb one observation.  Amortised O(log(tuples)); compression
    runs every [⌊1/(2ε)⌋] observations.
    @raise Invalid_argument on NaN. *)

val quantile : t -> float -> float
(** [quantile t phi] is a value whose rank among the [n] observations
    is within [⌊ε·n⌋] of [⌈phi·n⌉].  The minimum and maximum are
    retained exactly, so [quantile t 1.0] is the exact maximum.
    @raise Invalid_argument if the summary is empty or [phi] is outside
    [0..1]. *)

val rank : t -> float -> float
(** [rank t x] estimates the fraction of observations at or below [x]
    (the empirical CDF at [x]), within [epsilon] by the summary
    invariant.  The retained exact extremes pin the ends: [x] below the
    minimum is [0.], at or above the maximum [1.].  This is the query
    adaptive thresholds use to ask "what alarm rate does the current
    threshold imply?" — the inverse of {!quantile}.
    @raise Invalid_argument if the summary is empty or [x] is NaN. *)

val merge : t -> t -> t
(** [merge a b] summarises the concatenation of both observation
    streams.  The result's bound is [epsilon a +. epsilon b] (merging
    widens uncertainty); merge is commutative up to bit-identical
    state.  The arguments are not mutated. *)

val to_string : t -> string
(** Serialize, losslessly and without spaces (safe inside the
    space-delimited shard-journal line format).  Floats travel as
    IEEE-754 bit patterns, so [of_string] rebuilds bit-identical
    state. *)

val of_string : string -> t option
(** Parse {!to_string} output; [None] on any malformed input. *)

val equal : t -> t -> bool
(** Structural equality of the full sketch state (bit-level on
    values) — the test battery's merge-commutativity and
    roundtrip oracle. *)

(** The P² single-quantile estimator (Jain & Chlamtac 1985): five
    markers adjusted by parabolic interpolation track one pre-chosen
    quantile in O(1) space.  Exact below five observations. *)
module P2 : sig
  type t

  val create : phi:float -> t
  (** An estimator for the [phi]-quantile.
      @raise Invalid_argument unless [0 <= phi <= 1]. *)

  val phi : t -> float
  val count : t -> int

  val observe : t -> float -> unit
  (** Absorb one observation.  O(1).
      @raise Invalid_argument on NaN. *)

  val quantile : t -> float
  (** The current estimate.
      @raise Invalid_argument if no observation has been absorbed. *)

  val rank : t -> float -> float
  (** Estimated fraction of observations at or below [x], by linear
      interpolation between the five markers' positions.  Heuristic,
      like the estimator itself; exact below five observations.
      @raise Invalid_argument if no observation has been absorbed or
      [x] is NaN. *)

  val to_string : t -> string
  (** Lossless, space-free serialization (same contract as the
      summary's {!val:to_string}). *)

  val of_string : string -> t option

  val equal : t -> t -> bool
end
