(** The rare-anomaly counterpart of the main experiment (extension E2).

    Instead of a minimal {e foreign} sequence, each test stream carries
    an injected {e rare} sequence — one that does occur in the training
    data, below the 0.5 % threshold.  The paper predicts (Section 5.1)
    that only detectors sensitive to frequency can respond: Stide and
    L&B see nothing anomalous at all, while the Markov detector, the
    neural network, t-stide and the HMM flag the rare content at any
    window.  This experiment charts that prediction over the same
    AS × DW grid as Figures 3–6. *)

open Seqdiv_detectors
open Seqdiv_synth

type t
(** The rare-anomaly test streams for a suite (one injection per
    cell). *)

val build : Suite.t -> t
(** Construct a rare sequence of every anomaly size from the suite's
    training data and inject each one cleanly for every window.

    @raise Failure when some size has no rare sequence or no clean
    injection (enlarging the training stream resolves it). *)

val injection : t -> anomaly_size:int -> window:int -> Injector.injection
(** The injected stream of a cell. *)

val performance_map :
  ?engine:Engine.t -> t -> Suite.t -> Detector.t -> Performance_map.t
(** Chart one detector against the rare-anomaly streams (training on the
    suite's training stream, one model per window).  An [?engine] shares
    its model cache and worker pool with the main experiment. *)
