(** Crash-safe run journal — the persistence behind [--journal] /
    [--resume].

    A journal is a line-oriented record of {e completed} performance-map
    cells.  An interrupted grid run resumed against its journal
    re-executes only the missing cells; because every cell outcome is a
    pure function of its inputs and the float payload round-trips
    bit-exactly ([Int64.bits_of_float]), the resumed maps are
    byte-identical to a fresh run at any jobs count.

    {b On-disk format} (version {!version}; full spec in
    [docs/ROBUSTNESS.md]):
    {v
seqdiv-journal v2
context <free text identifying the run configuration>
cell <seed> <detector> <window> <anomaly-size> <tag> <response-bits> <digest>
...
    v}
    One cell per line; [tag] is [blind]/[weak]/[capable],
    [response-bits] the IEEE-754 bits of the max response in hex, and
    [digest] a 64-bit FNV-1a over the rest of the line.  Version 1
    files are line-identical and are accepted on load (the header
    upgrades on the first rewrite).  {!Outcome.Failed} cells are
    {e never} journalled — a resume retries them.

    {b Durability and flush modes.}  Every flush reaches disk through
    [fsync].  A flush normally takes the {e append} fast path: only the
    lines recorded since the last flush are appended — O(new cells)
    bytes per flush, however many cells the journal already holds,
    which is what keeps a long multi-resume session cheap.  A flush
    falls back to a whole-file {e rewrite} (to [path ^ ".tmp"], then an
    atomic rename) when appending would be wrong or wasteful: the first
    flush of a fresh journal (writes the header), a resumed file with a
    torn tail or missing final newline (appending would splice into a
    partial line), a previous-version header, or — {e compaction} —
    when the file's cell lines exceed [compact_factor] times the live
    entry count.  Rewrites emit live entries only (newest record per
    key), so the file stays bounded by the live cell count whatever the
    shadowing history.

    A file torn some other way (partial final line, trailing garbage)
    is still accepted on load: the loader absorbs the longest valid
    prefix and counts the rest as {!dropped_lines} instead of refusing
    the run.  A journal whose header or [context] line disagrees with
    the resuming run raises {!Corrupt} — resuming against the wrong
    configuration would silently splice incompatible cells. *)

val version : int

exception Corrupt of string
(** The file is not a journal this version can trust: bad magic/version
    header, missing context line, or a context that names a different
    run configuration.  (Torn tails do {e not} raise — see
    {!dropped_lines}.) *)

type entry = {
  seed : int;  (** suite seed the cell was computed under *)
  detector : string;  (** detector name (no whitespace) *)
  window : int;
  anomaly_size : int;
  outcome : Outcome.t;  (** never {!Outcome.Failed} *)
}

type t

val start :
  ?resume:bool -> ?compact_factor:float -> context:string -> string -> t
(** [start ~context path] opens a journal at [path].  [context] is a
    single-line description of the run configuration (seed, stream
    lengths, …); it is written into the file and checked on resume.
    With [resume] false (default) the journal starts empty and the
    first {!flush} replaces whatever was at [path].  With [resume]
    true, an existing file is loaded — recovered entries answer
    {!lookup} — and a missing file simply starts empty.

    [compact_factor] (default 4.0) tunes when {!flush} compacts: the
    file is rewritten whenever its cell lines would exceed
    [compact_factor] times the live entry count.  A factor [<= 0]
    disables the append path entirely — every flush rewrites the whole
    file (the pre-compaction behaviour, kept for comparison tests).
    @raise Corrupt if resuming from an unrecognisable or mismatched
    file.
    @raise Invalid_argument if [context] spans lines. *)

val lookup :
  t -> seed:int -> detector:string -> window:int -> anomaly_size:int ->
  Outcome.t option
(** The journalled outcome of a cell, if any (later records shadow
    earlier ones). *)

val record : t -> entry -> unit
(** Buffer one completed cell.  Nothing reaches disk until {!flush}.
    @raise Invalid_argument on a {!Outcome.Failed} outcome or a
    whitespace-bearing detector name. *)

val flush : t -> unit
(** Persist everything recorded since the last flush — appending when
    the file permits it, rewriting whole otherwise (see the flush-mode
    discussion above).  No-op when nothing was recorded. *)

val entries : t -> entry list
(** Every entry the journal holds (recovered and newly recorded), in
    absorption order — including records later shadowed by a re-record
    of the same key. *)

val path : t -> string
val context : t -> string

val recovered : t -> int
(** Distinct cells loaded from disk by [start ~resume:true]. *)

val dropped_lines : t -> int
(** Torn-tail lines discarded during recovery (0 for a clean file). *)

val appends : t -> int
(** Flushes that took the append fast path since {!start}. *)

val compactions : t -> int
(** Flushes that rewrote the whole file since {!start} (the initial
    header-writing flush, torn-tail repairs, version upgrades and
    threshold compactions all count). *)
