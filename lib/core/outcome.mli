(** Detection outcomes (Section 5.5).

    For a detector whose responses range over [\[0, 1\]], the paper
    classifies its behaviour on an injected anomaly by the responses
    inside the incident span:

    - {e blind}: every response is 0 — the anomaly is perceived as
      completely normal;
    - {e weak}: the maximum response is strictly between 0 and maximal —
      something abnormal was sensed but a threshold of 1 misses it;
    - {e capable}: at least one maximal response occurred — the anomaly
      registers as an alarm no matter where the detection threshold is
      set.

    A fourth, non-paper outcome exists for supervised execution:
    {!Failed} marks a cell whose train or score task faulted past the
    engine's retry budget.  It is never produced by {!classify} — only
    the engine's supervisor degrades a cell to it — and the reports
    render it distinctly so a partial run can never be mistaken for a
    blind-cell result. *)

type t =
  | Blind
  | Weak of float  (** maximum response observed, in (0, 1−ε) *)
  | Capable of float  (** maximum response observed, in [\[1−ε, 1\]] *)
  | Failed of Fault.t
      (** cell not computed: its task failed past the retry budget *)

val classify : epsilon:float -> max_response:float -> t
(** Classify from the maximum response in the incident span.  [epsilon]
    is the detector's slack for "maximal" (see
    {!Seqdiv_detectors.Detector.S.maximal_epsilon}).  Requires
    [max_response] in [\[0, 1\]] and [epsilon] in [\[0, 1)].  Never
    returns {!Failed}. *)

val is_capable : t -> bool
val is_blind : t -> bool
val is_weak : t -> bool
val is_failed : t -> bool

val max_response : t -> float
(** The maximum response the outcome was classified from (0 for
    {!Blind} and {!Failed}). *)

val to_char : t -> char
(** ['*'] capable, ['o'] weak, ['.'] blind, ['!'] failed — the glyphs
    of the rendered performance maps. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality; {!Failed} cells compare by {!Fault.equal}
    (backtraces ignored). *)
