open Seqdiv_util
open Seqdiv_detectors
open Seqdiv_synth

type detector_report = {
  name : string;
  false_alarms : False_alarm.stats;
  hit : bool;
}

type suppressor_report = {
  window : int;
  anomaly_size : int;
  detectors : detector_report list;
  suppression : Ensemble.suppression;
  ensemble_hit : bool;
}

let deployment_stream suite ~len ~seed =
  let rng = Prng.create ~seed in
  Markov_chain.generate suite.Suite.chain rng ~start:0 ~len

let suppressor_experiment ?engine suite ~window ~anomaly_size ~deploy_len ~seed
    =
  assert (window >= anomaly_size);
  let e = Engine.default engine in
  let deploy = deployment_stream suite ~len:deploy_len ~seed in
  let test = Suite.stream suite ~anomaly_size ~window in
  let injection = test.Suite.injection in
  let trained =
    Engine.train_batch e
      (List.map (fun d -> (d, window, suite.Suite.training)) Registry.all)
  in
  let detectors =
    (* Pure per-detector scoring: safe on the engine's pool. *)
    Pool.map (Engine.pool e)
      (fun t ->
        {
          name = Trained.name t;
          false_alarms = False_alarm.on_clean t deploy;
          hit = Outcome.is_capable (Scoring.outcome t injection);
        })
      trained
  in
  let find name =
    List.find (fun t -> Trained.name t = name) trained
  in
  let markov = find "markov" and stide = find "stide" in
  let markov_deploy = Trained.score markov deploy in
  let stide_deploy = Trained.score stide deploy in
  let suppression =
    Ensemble.suppress
      ~primary:(markov_deploy, Trained.alarm_threshold markov)
      ~suppressor:(stide_deploy, Trained.alarm_threshold stide)
  in
  let ensemble_hit =
    let span t = Scoring.incident_response t injection in
    let combined =
      Ensemble.combine Ensemble.All
        [
          (span markov, Trained.alarm_threshold markov);
          (span stide, Trained.alarm_threshold stide);
        ]
    in
    Response.max_score combined >= 1.0
  in
  { window; anomaly_size; detectors; suppression; ensemble_hit }

type lnb_threshold_point = {
  window : int;
  score_threshold : float;
  hit : bool;
  false_alarm_rate : float;
}

let lnb_threshold_experiment ?engine suite ~anomaly_size ~deploy_trace
    ~fa_training =
  let e = Engine.default engine in
  let lnb = Registry.find_exn "lnb" in
  let windows = Suite.windows suite in
  (* Train phase: the full-training and undertrained false-alarm models
     for every window, deduplicated against the engine cache. *)
  let trained =
    Engine.train_batch e
      (List.map (fun w -> (lnb, w, suite.Suite.training)) windows)
  in
  let fa_models =
    Engine.train_batch e (List.map (fun w -> (lnb, w, fa_training)) windows)
  in
  (* Score phase: per-window work is pure once the models exist. *)
  Pool.map (Engine.pool e)
    (fun (window, trained, fa_model) ->
      (* One terminal mismatch costs a run of length [window]:
         sim = max_sim - window, so the response threshold that just
         admits it is window / max_sim = 2 / (window + 1). *)
      let score_threshold =
        float_of_int window
        /. float_of_int (Lane_brodley.max_similarity window)
      in
      let test = Suite.stream suite ~anomaly_size ~window in
      let span = Scoring.incident_response trained test.Suite.injection in
      let hit = Response.max_score span >= score_threshold in
      let deploy_response = Trained.score fa_model deploy_trace in
      let fa =
        False_alarm.of_response deploy_response ~threshold:score_threshold
      in
      { window; score_threshold; hit; false_alarm_rate = fa.False_alarm.rate })
    (List.map2
       (fun (w, t) fa -> (w, t, fa))
       (List.combine windows trained) fa_models)
