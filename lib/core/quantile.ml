(* Streaming quantile sketches (see quantile.mli for the contract).

   Lint posture: [observe] is a registered hot/score root (Reach), so
   the per-symbol path keeps to preallocated parallel arrays and
   mutable scratch fields — no refs, closures or tuples — and every
   looping function calls Deadline.checkpoint directly (R9).  The
   amortised paths (compress, grow, query, merge, serialization) run
   once per stride or per snapshot and may use refs hoisted out of
   their loops. *)

(* --- Greenwald–Khanna ε-summary ---------------------------------------

   State is a sorted sequence of tuples (v, g, Δ): [g] is the gap in
   minimum rank to the previous tuple, [Δ] the extra rank slack.  The
   invariant g_i + Δ_i <= max(1, ⌊2εn⌋) bounds any rank query's error
   by ⌊εn⌋.  Tuples live in parallel arrays so the per-observation
   insert is a binary search plus an Array.blit — no boxing, no
   per-symbol allocation. *)

type t = {
  eps : float;
  stride : int;  (* compress every [stride] observations: ⌊1/(2ε)⌋ *)
  mutable n : int;  (* observations absorbed *)
  mutable len : int;  (* tuples retained *)
  mutable since : int;  (* observations since the last compress *)
  mutable vs : float array;
  mutable gs : int array;
  mutable ds : int array;
  (* Scratch for the insert binary search: fields, not refs, so the
     per-symbol path allocates nothing. *)
  mutable lo : int;
  mutable hi : int;
}

let initial_capacity = 16

let make ~epsilon =
  {
    eps = epsilon;
    stride = Stdlib.max 1 (int_of_float (1.0 /. (2.0 *. epsilon)));
    n = 0;
    len = 0;
    since = 0;
    vs = Array.make initial_capacity 0.0;
    gs = Array.make initial_capacity 0;
    ds = Array.make initial_capacity 0;
    lo = 0;
    hi = 0;
  }

let create ~epsilon =
  if not (epsilon > 0.0 && epsilon < 0.5) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Quantile.create: epsilon %g not in (0, 0.5)"
                   epsilon);
  make ~epsilon

let epsilon t = t.eps
let count t = t.n
let tuples t = t.len

(* ⌊2εn⌋ — the tuple-capacity bound at the current stream length. *)
let capacity_bound t = int_of_float (2.0 *. t.eps *. float_of_int t.n)

(* One right-to-left pass merging each tuple into its surviving
   successor while the bound allows.  The minimum (tuple 0) and maximum
   (last tuple) are never merged away, so rank-1 and rank-n queries
   stay exact.  Cascading merges into an already-grown successor are
   sound: the condition re-checks the accumulated g each time. *)
let compress t =
  Seqdiv_util.Deadline.checkpoint ();
  if t.len > 2 then begin
    let bound = capacity_bound t in
    let j = ref (t.len - 1) in
    let i = ref (t.len - 2) in
    while !i >= 1 do
      if t.gs.(!i) + t.gs.(!j) + t.ds.(!j) <= bound then
        t.gs.(!j) <- t.gs.(!j) + t.gs.(!i)
      else begin
        let k = !j - 1 in
        t.vs.(k) <- t.vs.(!i);
        t.gs.(k) <- t.gs.(!i);
        t.ds.(k) <- t.ds.(!i);
        j := k
      end;
      decr i
    done;
    let start = !j - 1 in
    t.vs.(start) <- t.vs.(0);
    t.gs.(start) <- t.gs.(0);
    t.ds.(start) <- t.ds.(0);
    let kept = t.len - start in
    if start > 0 then begin
      Array.blit t.vs start t.vs 0 kept;
      Array.blit t.gs start t.gs 0 kept;
      Array.blit t.ds start t.ds 0 kept
    end;
    t.len <- kept
  end;
  t.since <- 0

let grow t =
  let cap = 2 * Array.length t.vs in
  let vs = Array.make cap 0.0 in
  let gs = Array.make cap 0 in
  let ds = Array.make cap 0 in
  Array.blit t.vs 0 vs 0 t.len;
  Array.blit t.gs 0 gs 0 t.len;
  Array.blit t.ds 0 ds 0 t.len;
  t.vs <- vs;
  t.gs <- gs;
  t.ds <- ds

let observe t v =
  Seqdiv_util.Deadline.checkpoint ();
  if Float.is_nan v then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Quantile.observe: NaN";
  (* On a full array, grow — never compress.  Capacity is not part of
     the serialized state, so an occupancy-triggered compress would
     make a restored sketch (rebuilt at minimal capacity) evolve
     differently from the live one it snapshotted.  Compression stays
     purely count-triggered below. *)
  if t.len = Array.length t.vs then grow t;
  (* Upper-bound binary search: first index whose value exceeds [v]
     (ties insert after their equals — deterministic). *)
  t.lo <- 0;
  t.hi <- t.len;
  while t.lo < t.hi do
    let mid = (t.lo + t.hi) / 2 in
    if t.vs.(mid) <= v then t.lo <- mid + 1 else t.hi <- mid
  done;
  let pos = t.lo in
  let delta =
    if pos = 0 || pos = t.len then 0
    else Stdlib.max 0 (capacity_bound t - 1)
  in
  if pos < t.len then begin
    Array.blit t.vs pos t.vs (pos + 1) (t.len - pos);
    Array.blit t.gs pos t.gs (pos + 1) (t.len - pos);
    Array.blit t.ds pos t.ds (pos + 1) (t.len - pos)
  end;
  t.vs.(pos) <- v;
  t.gs.(pos) <- 1;
  t.ds.(pos) <- delta;
  t.len <- t.len + 1;
  t.n <- t.n + 1;
  t.since <- t.since + 1;
  (* Count-triggered, never occupancy-triggered: the same stream in any
     batching leaves bit-identical state (the determinism contract). *)
  if t.since >= t.stride then compress t

let quantile t phi =
  Seqdiv_util.Deadline.checkpoint ();
  if t.n = 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Quantile.quantile: empty summary";
  if not (phi >= 0.0 && phi <= 1.0) then
    (* lint: allow partiality — documented precondition *)
    invalid_arg (Printf.sprintf "Quantile.quantile: phi %g not in [0, 1]" phi);
  let r =
    Stdlib.min t.n
      (Stdlib.max 1 (int_of_float (Float.ceil (phi *. float_of_int t.n))))
  in
  let err = int_of_float (t.eps *. float_of_int t.n) in
  (* The last tuple whose maximum possible rank is still <= r + err;
     tuple 0 (rank_max = 1) always qualifies, so [best] is total. *)
  let rank_min = ref 0 in
  let best = ref t.vs.(0) in
  let i = ref 0 in
  while !i < t.len do
    rank_min := !rank_min + t.gs.(!i);
    if !rank_min + t.ds.(!i) <= r + err then best := t.vs.(!i);
    incr i
  done;
  !best

let rank t x =
  Seqdiv_util.Deadline.checkpoint ();
  if t.n = 0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Quantile.rank: empty summary";
  if Float.is_nan x then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Quantile.rank: NaN";
  if Float.compare x t.vs.(0) < 0 then 0.0
  else if Float.compare x t.vs.(t.len - 1) >= 0 then 1.0
  else begin
    let rank_min = ref 0 in
    let i = ref 0 in
    while !i < t.len && Float.compare t.vs.(!i) x <= 0 do
      rank_min := !rank_min + t.gs.(!i);
      incr i
    done;
    (* [!i] is the first tuple strictly above [x] (it exists: [x] is
       below the exactly-retained maximum).  The exact count of
       observations <= x lies in [rmin, rmin + g_i + Δ_i - 1], an
       interval of width at most ⌊2·ε·n⌋ by the summary invariant, so
       its midpoint is within ⌊ε·n⌋ ranks of the truth. *)
    let est = !rank_min + ((t.gs.(!i) + t.ds.(!i)) / 2) in
    float_of_int est /. float_of_int t.n
  end

(* --- merge ------------------------------------------------------------- *)

(* Total, deterministic tuple order: Float.compare, bit patterns for
   the -0.0/+0.0 tie, then (g, Δ).  Identical tuple multisets sort to
   identical sequences whichever summary comes first, which is what
   makes merge commutative at the bit level. *)
let tuple_before av ag ad bv bg bd =
  let c = Float.compare av bv in
  let c =
    if c <> 0 then c
    else Int64.compare (Int64.bits_of_float av) (Int64.bits_of_float bv)
  in
  let c = if c <> 0 then c else Stdlib.compare ag bg in
  let c = if c <> 0 then c else Stdlib.compare ad bd in
  c <= 0

let merge a b =
  Seqdiv_util.Deadline.checkpoint ();
  let eps = a.eps +. b.eps in
  let t = make ~epsilon:(Stdlib.min eps 0.499) in
  (* Keep the advertised (wider) bound even when clamping the stride's
     epsilon: queries use [t.eps]. *)
  let t = { t with eps } in
  t.n <- a.n + b.n;
  let total = a.len + b.len in
  if total > 0 then begin
    if Array.length t.vs < total then begin
      let cap = ref (Array.length t.vs) in
      while !cap < total do
        cap := !cap * 2
      done;
      t.vs <- Array.make !cap 0.0;
      t.gs <- Array.make !cap 0;
      t.ds <- Array.make !cap 0
    end;
    (* Each side's tuples inherit the other side's rank uncertainty:
       Δ' = Δ + ⌊2·ε_other·n_other⌋.  max (g+Δ') is then bounded by
       2·ε_a·n_a + 2·ε_b·n_b <= 2·(ε_a+ε_b)·(n_a+n_b). *)
    let pad_a = int_of_float (2.0 *. b.eps *. float_of_int b.n) in
    let pad_b = int_of_float (2.0 *. a.eps *. float_of_int a.n) in
    let ia = ref 0 and ib = ref 0 and k = ref 0 in
    while !ia < a.len || !ib < b.len do
      let take_a =
        if !ib >= b.len then true
        else if !ia >= a.len then false
        else
          tuple_before a.vs.(!ia)
            (a.gs.(!ia))
            (a.ds.(!ia) + pad_a)
            b.vs.(!ib)
            (b.gs.(!ib))
            (b.ds.(!ib) + pad_b)
      in
      if take_a then begin
        t.vs.(!k) <- a.vs.(!ia);
        t.gs.(!k) <- a.gs.(!ia);
        t.ds.(!k) <- a.ds.(!ia) + pad_a;
        incr ia
      end
      else begin
        t.vs.(!k) <- b.vs.(!ib);
        t.gs.(!k) <- b.gs.(!ib);
        t.ds.(!k) <- b.ds.(!ib) + pad_b;
        incr ib
      end;
      incr k
    done;
    t.len <- total;
    compress t
  end;
  t

(* --- serialization -----------------------------------------------------

   gk1:<eps-bits>:<n>:<since>:<len>:<v-bits>.<g>.<d>,...

   Every float is its IEEE-754 bit pattern in fixed-width hex, so the
   roundtrip is bit-exact and the token contains no spaces (it rides
   inside space-delimited shard-journal session lines). *)

let bits f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let float_of_hex s =
  if String.length s <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some b ->
        let f = Int64.float_of_bits b in
        if Float.is_nan f then None else Some f
    | None -> None

let int_of_dec s =
  match int_of_string_opt s with Some i when i >= 0 -> Some i | _ -> None

let to_string t =
  let buf = Buffer.create (32 + (t.len * 24)) in
  Buffer.add_string buf
    (Printf.sprintf "gk1:%s:%d:%d:%d:" (bits t.eps) t.n t.since t.len);
  for i = 0 to t.len - 1 do
    if i > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "%s.%d.%d" (bits t.vs.(i)) t.gs.(i) t.ds.(i))
  done;
  Buffer.contents buf

let equal a b =
  Int64.bits_of_float a.eps = Int64.bits_of_float b.eps
  && a.n = b.n && a.since = b.since && a.len = b.len
  &&
  let ok = ref true in
  for i = 0 to a.len - 1 do
    if
      Int64.bits_of_float a.vs.(i) <> Int64.bits_of_float b.vs.(i)
      || a.gs.(i) <> b.gs.(i)
      || a.ds.(i) <> b.ds.(i)
    then ok := false
  done;
  !ok

let of_string s =
  match String.split_on_char ':' s with
  | [ "gk1"; eps_s; n_s; since_s; len_s; tuples_s ] -> (
      match
        (float_of_hex eps_s, int_of_dec n_s, int_of_dec since_s,
         int_of_dec len_s)
      with
      | Some eps, Some n, Some since, Some len
        when eps > 0.0 && eps < 1.0 && len <= n ->
          let t = make ~epsilon:(Stdlib.min eps 0.499) in
          let t = { t with eps } in
          t.n <- n;
          t.since <- since;
          let parts =
            if tuples_s = "" then [] else String.split_on_char ',' tuples_s
          in
          if List.length parts <> len then None
          else begin
            while Array.length t.vs < len do
              grow t
            done;
            let ok = ref true in
            let total_g = ref 0 in
            List.iteri
              (fun i part ->
                match String.split_on_char '.' part with
                | [ v_s; g_s; d_s ] -> (
                    match (float_of_hex v_s, int_of_dec g_s, int_of_dec d_s)
                    with
                    | Some v, Some g, Some d when g >= 1 ->
                        (* Values must be non-decreasing (ties may
                           carry any (g, Δ)), or the state is
                           corrupt. *)
                        if i > 0 && Float.compare t.vs.(i - 1) v > 0 then
                          ok := false;
                        t.vs.(i) <- v;
                        t.gs.(i) <- g;
                        t.ds.(i) <- d;
                        total_g := !total_g + g
                    | _ -> ok := false)
                | _ -> ok := false)
              parts;
            t.len <- len;
            if !ok && !total_g = n then Some t else None
          end
      | _ -> None)
  | _ -> None

(* --- P² ---------------------------------------------------------------- *)

module P2 = struct
  (* Jain & Chlamtac 1985: five markers (min, three interior, max)
     whose heights approximate q(0), q(φ/2), q(φ), q((1+φ)/2), q(1);
     interior markers drift toward their desired positions by
     parabolic (fallback linear) interpolation.  Exact below five
     observations (the height array doubles as a sorted buffer). *)
  type t = {
    p_phi : float;
    p_dn : float array;  (* desired-position increments, fixed *)
    mutable p_count : int;
    p_q : float array;  (* marker heights *)
    p_n : int array;  (* marker positions, 1-based *)
    p_nd : float array;  (* desired marker positions *)
    mutable p_k : int;  (* scratch: insert/cell index *)
  }

  let create ~phi =
    if not (phi >= 0.0 && phi <= 1.0) then
      (* lint: allow partiality — documented precondition *)
      invalid_arg (Printf.sprintf "Quantile.P2.create: phi %g not in [0, 1]"
                     phi);
    {
      p_phi = phi;
      p_dn = [| 0.0; phi /. 2.0; phi; (1.0 +. phi) /. 2.0; 1.0 |];
      p_count = 0;
      p_q = Array.make 5 0.0;
      p_n = Array.make 5 0;
      p_nd = Array.make 5 0.0;
      p_k = 0;
    }

  let phi t = t.p_phi
  let count t = t.p_count

  let observe t x =
    Seqdiv_util.Deadline.checkpoint ();
    if Float.is_nan x then
      (* lint: allow partiality — documented precondition *)
      invalid_arg "Quantile.P2.observe: NaN";
    if t.p_count < 5 then begin
      (* Sorted insert into the first p_count slots. *)
      t.p_k <- t.p_count;
      while t.p_k > 0 && t.p_q.(t.p_k - 1) > x do
        t.p_q.(t.p_k) <- t.p_q.(t.p_k - 1);
        t.p_k <- t.p_k - 1
      done;
      t.p_q.(t.p_k) <- x;
      t.p_count <- t.p_count + 1;
      if t.p_count = 5 then
        for i = 0 to 4 do
          t.p_n.(i) <- i + 1;
          t.p_nd.(i) <- 1.0 +. (4.0 *. t.p_dn.(i))
        done
    end
    else begin
      (* Locate the cell, widening the extremes in place. *)
      if x < t.p_q.(0) then begin
        t.p_q.(0) <- x;
        t.p_k <- 0
      end
      else if x >= t.p_q.(4) then begin
        t.p_q.(4) <- x;
        t.p_k <- 3
      end
      else begin
        t.p_k <- 0;
        while x >= t.p_q.(t.p_k + 1) do
          t.p_k <- t.p_k + 1
        done
      end;
      for i = t.p_k + 1 to 4 do
        t.p_n.(i) <- t.p_n.(i) + 1
      done;
      for i = 0 to 4 do
        t.p_nd.(i) <- t.p_nd.(i) +. t.p_dn.(i)
      done;
      t.p_count <- t.p_count + 1;
      for i = 1 to 3 do
        let d = t.p_nd.(i) -. float_of_int t.p_n.(i) in
        if
          (d >= 1.0 && t.p_n.(i + 1) - t.p_n.(i) > 1)
          || (d <= -1.0 && t.p_n.(i - 1) - t.p_n.(i) < -1)
        then begin
          let s = if d >= 1.0 then 1 else -1 in
          let sf = float_of_int s in
          let qi = t.p_q.(i) and qm = t.p_q.(i - 1) and qp = t.p_q.(i + 1) in
          let ni = float_of_int t.p_n.(i)
          and nm = float_of_int t.p_n.(i - 1)
          and np = float_of_int t.p_n.(i + 1) in
          let parabolic =
            qi
            +. sf /. (np -. nm)
               *. (((ni -. nm +. sf) *. (qp -. qi) /. (np -. ni))
                  +. ((np -. ni -. sf) *. (qi -. qm) /. (ni -. nm)))
          in
          let adjusted =
            if qm < parabolic && parabolic < qp then parabolic
            else if s = 1 then qi +. ((qp -. qi) /. (np -. ni))
            else qi -. ((qm -. qi) /. (nm -. ni))
          in
          t.p_q.(i) <- adjusted;
          t.p_n.(i) <- t.p_n.(i) + s
        end
      done
    end

  let quantile t =
    if t.p_count = 0 then
      (* lint: allow partiality — documented precondition *)
      invalid_arg "Quantile.P2.quantile: no observations";
    if t.p_count >= 5 then t.p_q.(2)
    else
      (* Exact from the sorted prefix. *)
      let idx =
        int_of_float (Float.round (t.p_phi *. float_of_int (t.p_count - 1)))
      in
      t.p_q.(Stdlib.max 0 (Stdlib.min (t.p_count - 1) idx))

  let rank t x =
    if t.p_count = 0 then
      (* lint: allow partiality — documented precondition *)
      invalid_arg "Quantile.P2.rank: no observations";
    if Float.is_nan x then
      (* lint: allow partiality — documented precondition *)
      invalid_arg "Quantile.P2.rank: NaN";
    if t.p_count < 5 then begin
      (* Exact from the sorted prefix. *)
      let c = ref 0 in
      for i = 0 to t.p_count - 1 do
        if Float.compare t.p_q.(i) x <= 0 then incr c
      done;
      float_of_int !c /. float_of_int t.p_count
    end
    else if Float.compare x t.p_q.(0) < 0 then 0.0
    else if Float.compare x t.p_q.(4) >= 0 then 1.0
    else begin
      (* Linear interpolation between the bracketing markers'
         positions — heuristic, like everything P². *)
      let i = ref 0 in
      while Float.compare t.p_q.(!i + 1) x <= 0 do
        incr i
      done;
      let qa = t.p_q.(!i) and qb = t.p_q.(!i + 1) in
      let na = float_of_int t.p_n.(!i) and nb = float_of_int t.p_n.(!i + 1) in
      let pos =
        if qb <= qa then nb
        else na +. ((x -. qa) /. (qb -. qa) *. (nb -. na))
      in
      Float.min 1.0 (Float.max 0.0 (pos /. float_of_int t.p_count))
    end

  (* p21:<phi-bits>:<count>:<q-bits x5>:<n x5>:<nd-bits x5> *)
  let to_string t =
    let join f =
      String.concat "," (List.init 5 f)
    in
    Printf.sprintf "p21:%s:%d:%s:%s:%s" (bits t.p_phi) t.p_count
      (join (fun i -> bits t.p_q.(i)))
      (join (fun i -> string_of_int t.p_n.(i)))
      (join (fun i -> bits t.p_nd.(i)))

  let parse5 conv s =
    match String.split_on_char ',' s with
    | [ a; b; c; d; e ] -> (
        match (conv a, conv b, conv c, conv d, conv e) with
        | Some a, Some b, Some c, Some d, Some e -> Some [| a; b; c; d; e |]
        | _ -> None)
    | _ -> None

  let of_string s =
    match String.split_on_char ':' s with
    | [ "p21"; phi_s; count_s; q_s; n_s; nd_s ] -> (
        match
          ( float_of_hex phi_s,
            int_of_dec count_s,
            parse5 float_of_hex q_s,
            parse5 int_of_dec n_s,
            parse5 float_of_hex nd_s )
        with
        | Some p, Some cnt, Some q, Some n, Some nd
          when p >= 0.0 && p <= 1.0 ->
            let t = create ~phi:p in
            t.p_count <- cnt;
            Array.blit q 0 t.p_q 0 5;
            Array.blit n 0 t.p_n 0 5;
            Array.blit nd 0 t.p_nd 0 5;
            Some t
        | _ -> None)
    | _ -> None

  let equal a b =
    let fbits = Int64.bits_of_float in
    let arr_eq cmp x y =
      let ok = ref true in
      for i = 0 to 4 do
        if not (cmp x.(i) y.(i)) then ok := false
      done;
      !ok
    in
    fbits a.p_phi = fbits b.p_phi
    && a.p_count = b.p_count
    && arr_eq (fun u v -> fbits u = fbits v) a.p_q b.p_q
    && arr_eq ( = ) a.p_n b.p_n
    && arr_eq (fun u v -> fbits u = fbits v) a.p_nd b.p_nd
end
