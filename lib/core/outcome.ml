type t = Blind | Weak of float | Capable of float | Failed of Fault.t

let classify ~epsilon ~max_response =
  assert (epsilon >= 0.0 && epsilon < 1.0);
  assert (max_response >= 0.0 && max_response <= 1.0);
  if max_response = 0.0 then Blind
  else if max_response >= 1.0 -. epsilon then Capable max_response
  else Weak max_response

let is_capable = function
  | Capable _ -> true
  | Blind | Weak _ | Failed _ -> false

let is_blind = function Blind -> true | Capable _ | Weak _ | Failed _ -> false
let is_weak = function Weak _ -> true | Blind | Capable _ | Failed _ -> false
let is_failed = function Failed _ -> true | Blind | Weak _ | Capable _ -> false

let max_response = function
  | Blind | Failed _ -> 0.0
  | Weak m | Capable m -> m

let to_char = function
  | Blind -> '.'
  | Weak _ -> 'o'
  | Capable _ -> '*'
  | Failed _ -> '!'

let to_string = function
  | Blind -> "blind"
  | Weak m -> Printf.sprintf "weak(%.4f)" m
  | Capable m -> Printf.sprintf "capable(%.4f)" m
  | Failed fault -> Printf.sprintf "failed(%s)" (Fault.to_string fault)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match (a, b) with
  | Blind, Blind -> true
  | Weak x, Weak y | Capable x, Capable y -> Float.equal x y
  | Failed x, Failed y -> Fault.equal x y
  | (Blind | Weak _ | Capable _ | Failed _), _ -> false
