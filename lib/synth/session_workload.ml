open Seqdiv_stream

let normal suite rng ~sessions ~length =
  Sessions.generate
    (fun rng _i -> Markov_chain.generate suite.Suite.chain rng ~start:0 ~len:length)
    rng ~sessions ~length

let anomalous suite ~sessions ~length ~anomaly_size ~window =
  assert (sessions >= 1);
  let p = suite.Suite.params in
  assert (anomaly_size >= p.Suite.as_min && anomaly_size <= p.Suite.as_max);
  let index = suite.Suite.index in
  let background = Generator.background suite.Suite.alphabet ~len:length ~phase:0 in
  let candidates =
    Mfs.candidates index suite.Suite.alphabet ~size:anomaly_size
      ~rare_threshold:p.Suite.rare_threshold
    |> List.filter (fun anomaly ->
           Injector.inject index ~background ~anomaly ~width:window <> None)
  in
  if candidates = [] then
    Injector.no_clean_injection
      "Session_workload.anomalous: no cleanly injectable anomaly of size %d \
       at window %d"
      anomaly_size window;
  let pool = Array.of_list candidates in
  let traces =
    List.init sessions (fun i ->
        let anomaly = pool.(i mod Array.length pool) in
        match Injector.inject index ~background ~anomaly ~width:window with
        | Some inj -> inj.Injector.trace
        | None ->
            (* Unreachable: every pool member passed the injectability
               filter above on the same background and width. *)
            (* lint: allow partiality — unreachable, see above *)
            assert false)
  in
  Sessions.of_traces traces
