open Seqdiv_stream

let normal suite rng ~sessions ~length =
  Sessions.generate
    (fun rng _i -> Markov_chain.generate suite.Suite.chain rng ~start:0 ~len:length)
    rng ~sessions ~length

(* Drifting benign sessions: the generating process's deviation rate
   ramps across segments, so the score distribution a monitor sees
   moves under it — the stress case for adaptive thresholding (a static
   threshold's false-alarm rate drifts with the process; an adaptive
   one re-tracks its budgeted tail quantile).  Each segment is sampled
   from a fresh paper chain at the ramped rate, started at the symbol
   after the previous segment's last — a legal cycle transition, so
   segment seams never fabricate foreign content. *)
let drifting suite rng ~sessions ~length ~segments ~peak_deviation =
  if segments < 1 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg
      (Printf.sprintf "Session_workload.drifting: segments=%d" segments);
  if
    not
      (peak_deviation >= suite.Suite.params.Suite.deviation
      && peak_deviation < 1.0)
  then
    (* lint: allow partiality — documented precondition *)
    invalid_arg
      (Printf.sprintf "Session_workload.drifting: peak_deviation=%g"
         peak_deviation);
  let alphabet = suite.Suite.alphabet in
  let size = Alphabet.size alphabet in
  let base = suite.Suite.params.Suite.deviation in
  let deviation_of_segment j =
    if segments = 1 then peak_deviation
    else
      base
      +. (peak_deviation -. base)
         *. (float_of_int j /. float_of_int (segments - 1))
  in
  let chains =
    Array.init segments (fun j ->
        Markov_chain.paper_chain alphabet ~deviation:(deviation_of_segment j))
  in
  Sessions.generate
    (fun rng _i ->
      let seg_len = length / segments in
      let parts =
        List.init segments (fun j ->
            (* The final segment absorbs the remainder so the session is
               exactly [length] long. *)
            let len =
              if j = segments - 1 then length - (seg_len * (segments - 1))
              else seg_len
            in
            (j, len))
      in
      let start = ref 0 in
      List.fold_left
        (fun acc (j, len) ->
          if len = 0 then acc
          else begin
            let part =
              Markov_chain.generate chains.(j) rng ~start:!start ~len
            in
            start := (Trace.get part (Trace.length part - 1) + 1) mod size;
            match acc with
            | None -> Some part
            | Some prefix -> Some (Trace.concat prefix part)
          end)
        None parts
      |> function
      | Some trace -> trace
      | None ->
          (* Unreachable: segments >= 1 and the last segment's length is
             positive whenever [length] is. *)
          (* lint: allow partiality — unreachable, see above *)
          assert false)
    rng ~sessions ~length

let anomalous suite ~sessions ~length ~anomaly_size ~window =
  assert (sessions >= 1);
  let p = suite.Suite.params in
  assert (anomaly_size >= p.Suite.as_min && anomaly_size <= p.Suite.as_max);
  let index = suite.Suite.index in
  let background = Generator.background suite.Suite.alphabet ~len:length ~phase:0 in
  let candidates =
    Mfs.candidates index suite.Suite.alphabet ~size:anomaly_size
      ~rare_threshold:p.Suite.rare_threshold
    |> List.filter (fun anomaly ->
           Injector.inject index ~background ~anomaly ~width:window <> None)
  in
  if candidates = [] then
    Injector.no_clean_injection
      "Session_workload.anomalous: no cleanly injectable anomaly of size %d \
       at window %d"
      anomaly_size window;
  let pool = Array.of_list candidates in
  let traces =
    List.init sessions (fun i ->
        let anomaly = pool.(i mod Array.length pool) in
        match Injector.inject index ~background ~anomaly ~width:window with
        | Some inj -> inj.Injector.trace
        | None ->
            (* Unreachable: every pool member passed the injectability
               filter above on the same background and width. *)
            (* lint: allow partiality — unreachable, see above *)
            assert false)
  in
  Sessions.of_traces traces
