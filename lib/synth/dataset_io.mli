(** Persisting the evaluation corpus to disk.

    The paper's dataset (training stream plus the 112 injected test
    streams with ground truth) was itself a published artifact
    (Maxion & Tan 2000).  This module writes a {!Suite.t} to a
    directory — a [manifest.txt] with the parameters and per-stream
    ground truth, the training trace, and one trace file per test
    stream — and reads it back, so a corpus can be generated once and
    evaluated elsewhere (or by other tools).

    Loading re-derives the n-gram index from the stored training trace,
    so a loaded suite is observationally identical to the generated
    one. *)

val save : Suite.t -> dir:string -> unit
(** Write the corpus.  Creates [dir] if missing.
    @raise Sys_error on I/O failure. *)

val load : dir:string -> Suite.t
(** Read a corpus written by {!save}.
    @raise Seqdiv_stream.Parse_error.Error on a missing or malformed
    manifest, or when a stream file disagrees with its recorded ground
    truth. *)

val manifest_file : string
(** ["manifest.txt"], exposed for tooling. *)
