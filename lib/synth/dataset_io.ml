open Seqdiv_stream

let manifest_file = "manifest.txt"

let stream_file ~anomaly_size ~window =
  Printf.sprintf "stream_as%d_dw%d.trace" anomaly_size window

let params_lines (p : Suite.params) =
  [
    Printf.sprintf "alphabet_size=%d" p.Suite.alphabet_size;
    Printf.sprintf "train_len=%d" p.Suite.train_len;
    Printf.sprintf "background_len=%d" p.Suite.background_len;
    Printf.sprintf "as_min=%d" p.Suite.as_min;
    Printf.sprintf "as_max=%d" p.Suite.as_max;
    Printf.sprintf "dw_min=%d" p.Suite.dw_min;
    Printf.sprintf "dw_max=%d" p.Suite.dw_max;
    Printf.sprintf "deviation=%.17g" p.Suite.deviation;
    Printf.sprintf "rare_threshold=%.17g" p.Suite.rare_threshold;
    Printf.sprintf "seed=%d" p.Suite.seed;
  ]

let save suite ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Trace_io.to_file (Filename.concat dir "training.trace") suite.Suite.training;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "#seqdiv-suite 1\n";
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (params_lines suite.Suite.params);
  Array.iter
    (fun (s : Suite.test_stream) ->
      let inj = s.Suite.injection in
      let file =
        stream_file ~anomaly_size:s.Suite.anomaly_size ~window:s.Suite.window
      in
      Trace_io.to_file (Filename.concat dir file) inj.Injector.trace;
      Buffer.add_string buf
        (Printf.sprintf "stream as=%d dw=%d position=%d anomaly=%s file=%s\n"
           s.Suite.anomaly_size s.Suite.window inj.Injector.position
           (String.concat ","
              (List.map string_of_int (Array.to_list inj.Injector.anomaly)))
           file))
    suite.Suite.streams;
  let oc = open_out (Filename.concat dir manifest_file) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf))

let parse_kv line =
  match String.index_opt line '=' with
  | None -> Parse_error.fail "Dataset_io.load: malformed line: %s" line
  | Some i ->
      (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let parse_params lines =
  let table = Hashtbl.create 16 in
  List.iter
    (fun line ->
      let k, v = parse_kv line in
      Hashtbl.replace table k v)
    lines;
  let get k =
    match Hashtbl.find_opt table k with
    | Some v -> v
    | None -> Parse_error.fail "Dataset_io.load: missing parameter %s" k
  in
  let geti k = int_of_string (get k) in
  let getf k = float_of_string (get k) in
  {
    Suite.alphabet_size = geti "alphabet_size";
    train_len = geti "train_len";
    background_len = geti "background_len";
    as_min = geti "as_min";
    as_max = geti "as_max";
    dw_min = geti "dw_min";
    dw_max = geti "dw_max";
    deviation = getf "deviation";
    rare_threshold = getf "rare_threshold";
    seed = geti "seed";
  }

let parse_stream_line dir line =
  (* stream as=2 dw=3 position=992 anomaly=0,0 file=... *)
  let fields =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  match fields with
  | "stream" :: kvs ->
      let table = Hashtbl.create 8 in
      List.iter
        (fun kv ->
          let k, v = parse_kv kv in
          Hashtbl.replace table k v)
        kvs;
      let get k =
        match Hashtbl.find_opt table k with
        | Some v -> v
        | None -> Parse_error.fail "Dataset_io.load: stream line missing %s" k
      in
      let anomaly =
        String.split_on_char ',' (get "anomaly")
        |> List.map int_of_string |> Array.of_list
      in
      let trace = Trace_io.of_file (Filename.concat dir (get "file")) in
      let position = int_of_string (get "position") in
      let size = Array.length anomaly in
      if
        position < 0
        || position + size > Trace.length trace
        || Trace.to_array (Trace.sub trace ~pos:position ~len:size) <> anomaly
      then
        Parse_error.fail
          "Dataset_io.load: stream %s disagrees with its ground truth"
          (get "file");
      {
        Suite.anomaly_size = size;
        window = int_of_string (get "dw");
        injection = { Injector.trace; position; anomaly };
      }
  | _ -> Parse_error.fail "Dataset_io.load: malformed stream line: %s" line

let load ~dir =
  let manifest = Filename.concat dir manifest_file in
  if not (Sys.file_exists manifest) then
    Parse_error.fail "Dataset_io.load: no manifest at %s" manifest;
  let ic = open_in manifest in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines =
    String.split_on_char '\n' contents |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: rest when header = "#seqdiv-suite 1" ->
      let param_lines, stream_lines =
        List.partition
          (fun l -> not (String.length l >= 7 && String.sub l 0 7 = "stream "))
          rest
      in
      let params = parse_params param_lines in
      let alphabet = Alphabet.make params.Suite.alphabet_size in
      let chain =
        Markov_chain.paper_chain alphabet ~deviation:params.Suite.deviation
      in
      let training = Trace_io.of_file (Filename.concat dir "training.trace") in
      if Trace.length training <> params.Suite.train_len then
        Parse_error.fail
          "Dataset_io.load: training length disagrees with manifest";
      let max_len =
        Stdlib.max params.Suite.dw_max (params.Suite.as_max + 1)
      in
      let index = Ngram_index.build ~max_len training in
      let streams =
        List.map (parse_stream_line dir) stream_lines |> Array.of_list
      in
      let n_as = params.Suite.as_max - params.Suite.as_min + 1 in
      let n_dw = params.Suite.dw_max - params.Suite.dw_min + 1 in
      if Array.length streams <> n_as * n_dw then
        Parse_error.fail
          "Dataset_io.load: stream count disagrees with manifest";
      (* Restore row-major cell order regardless of manifest order. *)
      let ordered =
        Array.map
          (fun cell ->
            let anomaly_size = params.Suite.as_min + (cell / n_dw) in
            let window = params.Suite.dw_min + (cell mod n_dw) in
            match
              Array.find_opt
                (fun (s : Suite.test_stream) ->
                  s.Suite.anomaly_size = anomaly_size && s.Suite.window = window)
                streams
            with
            | Some s -> s
            | None ->
                Parse_error.fail "Dataset_io.load: missing stream AS=%d DW=%d"
                  anomaly_size window)
          (Array.init (n_as * n_dw) (fun i -> i))
      in
      { Suite.params; alphabet; chain; training; index; streams = ordered }
  | _ -> Parse_error.fail "Dataset_io.load: bad manifest header"
