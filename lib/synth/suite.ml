open Seqdiv_stream
open Seqdiv_util

let src = Logs.Src.create "seqdiv.suite" ~doc:"Evaluation-suite construction"

module Log = (val Logs.src_log src)

type params = {
  alphabet_size : int;
  train_len : int;
  background_len : int;
  as_min : int;
  as_max : int;
  dw_min : int;
  dw_max : int;
  deviation : float;
  rare_threshold : float;
  seed : int;
}

let paper_params =
  {
    alphabet_size = 8;
    train_len = 1_000_000;
    background_len = 20_000;
    as_min = 2;
    as_max = 9;
    dw_min = 2;
    dw_max = 15;
    deviation = Generator.default_deviation;
    rare_threshold = 0.005;
    seed = 2005;
  }

let scaled_params ~train_len ~background_len =
  { paper_params with train_len; background_len }

type test_stream = {
  anomaly_size : int;
  window : int;
  injection : Injector.injection;
}

type t = {
  params : params;
  alphabet : Alphabet.t;
  chain : Markov_chain.t;
  training : Trace.t;
  index : Ngram_index.t;
  streams : test_stream array;
}

let validate p =
  (* lint: allow partiality — documented precondition *)
  if p.alphabet_size < 5 then invalid_arg "Suite: alphabet_size < 5";
  (* lint: allow partiality — documented precondition *)
  if p.as_min < 2 then invalid_arg "Suite: as_min < 2";
  (* lint: allow partiality — documented precondition *)
  if p.as_max < p.as_min then invalid_arg "Suite: as_max < as_min";
  (* lint: allow partiality — documented precondition *)
  if p.dw_min < 2 then invalid_arg "Suite: dw_min < 2";
  (* lint: allow partiality — documented precondition *)
  if p.dw_max < p.dw_min then invalid_arg "Suite: dw_max < dw_min";
  if p.rare_threshold <= 0.0 || p.rare_threshold >= 1.0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Suite: rare_threshold out of range";
  (* lint: allow partiality — documented precondition *)
  if p.train_len < 1000 then invalid_arg "Suite: train_len too small"

let build p =
  validate p;
  let alphabet = Alphabet.make p.alphabet_size in
  let chain = Markov_chain.paper_chain alphabet ~deviation:p.deviation in
  let rng = Prng.create ~seed:p.seed in
  let training = Generator.training chain rng ~len:p.train_len in
  Log.info (fun m ->
      m "training stream: %d elements, cycle fraction %.4f" p.train_len
        (Generator.cycle_fraction training));
  let max_len = Stdlib.max p.dw_max (p.as_max + 1) in
  let index = Ngram_index.build ~max_len training in
  Log.debug (fun m ->
      m "n-gram index built to depth %d (%d distinct 2-grams)" max_len
        (Seq_db.cardinal (Ngram_index.db index 2)));
  let background = Generator.background alphabet ~len:p.background_len ~phase:0 in
  let n_as = p.as_max - p.as_min + 1 in
  let n_dw = p.dw_max - p.dw_min + 1 in
  let candidates_by_size =
    Array.init n_as (fun i ->
        let size = p.as_min + i in
        let candidates =
          Mfs.candidates index alphabet ~size ~rare_threshold:p.rare_threshold
        in
        Log.debug (fun m ->
            m "%d minimal-foreign-sequence candidates of size %d"
              (List.length candidates) size);
        candidates)
  in
  let streams =
    Array.init (n_as * n_dw) (fun cell ->
        let anomaly_size = p.as_min + (cell / n_dw) in
        let window = p.dw_min + (cell mod n_dw) in
        let candidates = candidates_by_size.(cell / n_dw) in
        match
          Injector.inject_first index ~background ~candidates ~width:window
        with
        | Some injection -> { anomaly_size; window; injection }
        | None ->
            Injector.no_clean_injection
              "Suite.build: no clean injection for anomaly size %d at window \
               %d (training stream of %d elements; %d candidate anomalies \
               tried)"
              anomaly_size window p.train_len (List.length candidates))
  in
  { params = p; alphabet; chain; training; index; streams }

let stream t ~anomaly_size ~window =
  let p = t.params in
  assert (anomaly_size >= p.as_min && anomaly_size <= p.as_max);
  assert (window >= p.dw_min && window <= p.dw_max);
  let n_dw = p.dw_max - p.dw_min + 1 in
  t.streams.(((anomaly_size - p.as_min) * n_dw) + (window - p.dw_min))

let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)
let anomaly_sizes t = range t.params.as_min t.params.as_max
let windows t = range t.params.dw_min t.params.dw_max
