open Seqdiv_stream
open Seqdiv_util

type t = {
  alphabet : Alphabet.t;
  rows : float array array; (* normalised *)
  samplers : Sampling.t array;
}

let of_matrix alphabet p =
  let k = Alphabet.size alphabet in
  (* lint: allow partiality — documented precondition *)
  if Array.length p <> k then invalid_arg "Markov_chain.of_matrix: row count";
  let rows =
    Array.map
      (fun row ->
        if Array.length row <> k then
          (* lint: allow partiality — documented precondition *)
          invalid_arg "Markov_chain.of_matrix: column count";
        Array.iter
          (fun x ->
            (* lint: allow partiality — documented precondition *)
            if x < 0.0 then invalid_arg "Markov_chain.of_matrix: negative")
          row;
        let total = Array.fold_left ( +. ) 0.0 row in
        (* lint: allow partiality — documented precondition *)
        if total <= 0.0 then invalid_arg "Markov_chain.of_matrix: zero row";
        Array.map (fun x -> x /. total) row)
      p
  in
  let samplers = Array.map Sampling.of_weights rows in
  { alphabet; rows; samplers }

let alphabet t = t.alphabet

let prob t i j =
  assert (Alphabet.mem t.alphabet i && Alphabet.mem t.alphabet j);
  t.rows.(i).(j)

let successors t i =
  assert (Alphabet.mem t.alphabet i);
  Sampling.support t.samplers.(i)

let has_structural_zeros t =
  Array.exists (fun row -> Array.exists (fun x -> x = 0.0) row) t.rows

let paper_chain alphabet ~deviation =
  let k = Alphabet.size alphabet in
  (* lint: allow partiality — documented precondition *)
  if k < 5 then invalid_arg "Markov_chain.paper_chain: alphabet too small";
  if deviation < 0.0 || deviation >= 1.0 then
    (* lint: allow partiality — documented precondition *)
    invalid_arg "Markov_chain.paper_chain: deviation out of range";
  let rows =
    Array.init k (fun i ->
        let row = Array.make k 0.0 in
        row.((i + 1) mod k) <- 1.0 -. deviation;
        row.((i + 2) mod k) <- deviation /. 2.0;
        row.((i + 3) mod k) <- deviation /. 2.0;
        row)
  in
  of_matrix alphabet rows

let generate t rng ~start ~len =
  assert (Alphabet.mem t.alphabet start);
  assert (len >= 1);
  let out = Array.make len start in
  let current = ref start in
  for i = 1 to len - 1 do
    current := Sampling.draw t.samplers.(!current) rng;
    out.(i) <- !current
  done;
  Trace.of_array t.alphabet out

let stationary_cycle t =
  let k = Alphabet.size t.alphabet in
  Trace.of_array t.alphabet (Array.init k (fun i -> i))
