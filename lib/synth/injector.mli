(** Boundary-clean injection of anomalies into background data
    (Section 5.4.2, Figure 2).

    Injecting an anomaly naively creates {e boundary sequences} —
    windows mixing anomaly and background elements — that may themselves
    be foreign or rare and would confound the evaluation.  The paper's
    requirement: every window that contains a {e proper} part of the
    anomaly together with background must be a sequence that exists in
    the training data.  (Windows containing the anomaly in its entirety
    are the detection signal itself and are exempt.)

    The injection is a splice: the background cycle is cut at a
    phase-aligned point, the anomaly inserted, and the remainder of the
    background re-started on the cycle successor of the anomaly's last
    symbol, so both junction transitions follow patterns present in
    training.  Verification is performed against the actual training
    index; when it fails for one candidate anomaly, the caller tries the
    next — the brute-force process the paper describes. *)

open Seqdiv_stream

type injection = {
  trace : Trace.t;  (** the final test stream *)
  position : int;  (** index of the anomaly's first element *)
  anomaly : int array;  (** the injected symbols *)
}

exception No_clean_injection of string
(** Raised by suite builders when no candidate anomaly admits a
    boundary-clean injection — the training stream is too short or the
    parameters too tight.  The message names the anomaly size, window
    and how many candidates were tried. *)

val no_clean_injection : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [no_clean_injection fmt ...] raises {!No_clean_injection} with the
    formatted message. *)

val clean_boundaries :
  Ngram_index.t -> Trace.t -> position:int -> size:int -> width:int -> bool
(** [clean_boundaries index trace ~position ~size ~width] checks that
    every [width]-window of [trace] that intersects the anomaly
    occupying [\[position, position+size-1\]] — except windows containing
    the whole anomaly — occurs in the training data behind [index]. *)

val inject :
  Ngram_index.t -> background:Trace.t -> anomaly:int array -> width:int ->
  injection option
(** Inject the anomaly near the middle of the background, phase-aligned,
    and verify boundary cleanliness at the given detector-window width.
    [None] when verification fails (the caller should try another
    candidate anomaly).  The background must be a pure cycle (as built by
    {!Generator.background}) of length at least [4 * width + 2 *
    Array.length anomaly + 2]. *)

val inject_first :
  Ngram_index.t -> background:Trace.t -> candidates:int array list ->
  width:int -> injection option
(** Try candidate anomalies in order and return the first clean
    injection. *)

val incident_span : position:int -> size:int -> width:int -> int * int
(** [incident_span ~position ~size ~width] is the inclusive range
    [(first, last)] of window start indices whose [width]-window contains
    at least one element of the anomaly — the incident span of Figure 2.
    [first] is clamped at 0. *)
