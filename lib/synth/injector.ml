open Seqdiv_stream

let src = Logs.Src.create "seqdiv.injector" ~doc:"Boundary-clean injection"

module Log = (val Logs.src_log src)

type injection = {
  trace : Trace.t;
  position : int;
  anomaly : int array;
}

exception No_clean_injection of string

let no_clean_injection fmt =
  Format.kasprintf (fun msg -> raise (No_clean_injection msg)) fmt

let clean_boundaries index trace ~position ~size ~width =
  let first = Stdlib.max 0 (position - width + 1) in
  let last =
    Stdlib.min (Trace.length trace - width) (position + size - 1)
  in
  let data = Trace.raw trace in
  let clean = ref true in
  for s = first to last do
    let contains_whole = s <= position && s + width >= position + size in
    if (not contains_whole) && !clean then
      if Ngram_index.is_foreign_at index data ~pos:s ~len:width then
        clean := false
  done;
  !clean

let inject index ~background ~anomaly ~width =
  let size = Array.length anomaly in
  assert (size >= 1);
  let alphabet = Trace.alphabet background in
  let k = Alphabet.size alphabet in
  let n = Trace.length background in
  if n < (4 * width) + (2 * size) + 2 then
    (* lint: allow partiality — documented length precondition *)
    invalid_arg "Injector.inject: background too short";
  (* Phase-align the cut so the left junction follows the cycle: the
     element before the anomaly must be the cycle predecessor of its
     first symbol. *)
  let mid = n / 2 in
  let want_prev = ((anomaly.(0) - 1) + k) mod k in
  let rec align at =
    (* lint: allow partiality — cyclic background guarantees alignment *)
    if at >= n then invalid_arg "Injector.inject: cannot phase-align"
    else if Trace.get background (at - 1) = want_prev then at
    else align (at + 1)
  in
  let at = align (Stdlib.max 1 (mid - k)) in
  (* Splice: left background, anomaly, then the cycle restarted on the
     successor of the anomaly's last symbol. *)
  let left = Trace.sub background ~pos:0 ~len:at in
  let right_len = n - at in
  let right_phase = (anomaly.(size - 1) + 1) mod k in
  let right = Generator.background alphabet ~len:right_len ~phase:right_phase in
  let piece = Trace.of_array alphabet anomaly in
  let trace = Trace.concat (Trace.concat left piece) right in
  if clean_boundaries index trace ~position:at ~size ~width then
    Some { trace; position = at; anomaly = Array.copy anomaly }
  else begin
    Log.debug (fun m ->
        m "candidate [%s] rejected at width %d: dirty boundary"
          (String.concat ";"
             (List.map string_of_int (Array.to_list anomaly)))
          width);
    None
  end

let inject_first index ~background ~candidates ~width =
  List.find_map
    (fun anomaly -> inject index ~background ~anomaly ~width)
    candidates

let incident_span ~position ~size ~width =
  (Stdlib.max 0 (position - width + 1), position + size - 1)
