(** Session-style workloads for per-trace evaluation (experiment E4).

    Deployed anomaly detectors rarely judge one endless stream; they
    classify bounded units — a process's system-call trace, a login
    session — as normal or anomalous.  This module builds such corpora
    from the suite's generating process: normal sessions sampled from
    the chain (rare content included), and attack sessions consisting of
    clean background with one boundary-clean minimal foreign sequence
    injected. *)

open Seqdiv_stream
open Seqdiv_util

val normal : Suite.t -> Prng.t -> sessions:int -> length:int -> Sessions.t
(** Benign sessions sampled from the suite's chain.  Each contains rare
    transitions at the chain's deviation rate but no foreign content
    (the chain's structural zeros guarantee it). *)

val drifting :
  Suite.t ->
  Prng.t ->
  sessions:int ->
  length:int ->
  segments:int ->
  peak_deviation:float ->
  Sessions.t
(** Benign sessions whose generating process {e drifts}: each session
    is [segments] consecutive segments sampled from paper chains whose
    deviation rate ramps linearly from the suite's configured rate up to
    [peak_deviation], with segment seams taken along the cycle (never
    foreign content).  Rare-transition frequency — and with it every
    detector's score distribution — therefore rises over the session:
    the workload adaptive thresholding is evaluated against.
    @raise Invalid_argument unless [segments >= 1] and
    [suite.params.deviation <= peak_deviation < 1]. *)

val anomalous :
  Suite.t -> sessions:int -> length:int -> anomaly_size:int -> window:int ->
  Sessions.t
(** Attack sessions: each is a clean cycle background of the given
    length with one minimal foreign sequence of [anomaly_size] injected
    cleanly for the given detector window.  Candidate anomalies are
    rotated across sessions so the corpus is not one repeated stream.

    Requires [length >= 4*window + 2*anomaly_size + 2].
    @raise Injector.No_clean_injection when no candidate anomaly admits
    a clean injection for this window. *)
