(** The checked-in diagnostic baseline: known findings that should not
    fail CI while they are being worked off.

    The format is one {!Diagnostic.to_string} line per entry; [#]
    comments and blank lines are ignored.  A diagnostic is suppressed
    when its rendered line appears verbatim in the baseline, so any
    change to a finding's position or message surfaces it again —
    deliberate, since a moved finding needs re-triage. *)

type t

val empty : t

val of_string : string -> t
(** Parse baseline file contents. *)

val filter : t -> Diagnostic.t list -> Diagnostic.t list
(** Drop the diagnostics whose rendered line is in the baseline. *)
