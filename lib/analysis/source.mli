(** A source file as seen by the linter: path, role, raw text, its
    Parsetree, and the allow whitelist — comments of the form
    [lint: allow <rule> — justification].

    Files are plain values so that the rule engine is a pure function
    from a file set to diagnostics — the test suite feeds it inline
    fixtures and the executable feeds it the real tree. *)

type role = Lib | Bin | Bench | Test | Other
(** Which part of the tree a file belongs to.  Determinism, hygiene and
    partiality rules apply only to [Lib] (result-producing library
    code); executables and benchmarks may print and may measure time. *)

type kind = Ml | Mli

type parsed =
  | Structure of Parsetree.structure  (** A parsed [.ml]. *)
  | Signature of Parsetree.signature  (** A parsed [.mli]. *)
  | Broken of { line : int; col : int; message : string }
      (** The file does not parse; [line]/[col] point at the error. *)

type allow = {
  marker_col : int;  (** 0-based column where [lint:] starts. *)
  tokens : (string * int) list;
      (** Lowercased rule tokens with their 0-based columns. *)
  justified : bool;
      (** True when a non-empty justification clause follows the
          tokens (after an em-dash or [--] separator). *)
}
(** One parsed [lint: allow] marker. *)

type t = private {
  path : string;
  role : role;
  kind : kind;
  content : string;
  allows : allow option array;  (** Per line (0-based). *)
}

val make : path:string -> content:string -> t
(** Build a file value.  The role is derived from the first path
    segment ([lib/…] → [Lib], …) and the kind from the extension;
    whitelist comments are collected eagerly. *)

val role_of_path : string -> role

val parse : t -> parsed
(** Parse with the installed compiler front end (compiler-libs).
    Never raises: lexer and parser errors come back as [Broken]. *)

val module_name : t -> string
(** OCaml module name: capitalized basename without extension. *)

val base : t -> string
(** Path without its extension — the key matching [foo.ml] to
    [foo.mli]. *)

val dir : t -> string

val markers : t -> (int * allow) list
(** All [lint: allow] markers in the file, as (1-based line, marker)
    pairs in line order — the input to the R12 suppression-hygiene
    checks. *)

val allowed : t -> rule:string -> rule_name:string -> line:int -> bool
(** True when line [line] (1-based) is covered by a whitelist comment
    for this rule: an allow comment suppresses findings on its own line
    and on the line directly below, so both trailing and preceding
    placement work.  Tokens match the rule id ([R3]), the rule name
    ([partiality]), or [all], exactly and case-insensitively. *)
