let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let level (d : Diagnostic.t) =
  match d.Diagnostic.severity with
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"

let rule_object (r : Rules.t) =
  Printf.sprintf
    "{\"id\":%s,\"name\":%s,\"shortDescription\":{\"text\":%s}}"
    (str r.Rules.id) (str r.Rules.name) (str r.Rules.doc)

let result_object (d : Diagnostic.t) =
  Printf.sprintf
    "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
    (str d.Diagnostic.rule) (str (level d))
    (str d.Diagnostic.message)
    (str d.Diagnostic.file) d.Diagnostic.line
    (d.Diagnostic.col + 1)

let render diags =
  let rules = String.concat "," (List.map rule_object Rules.all) in
  let results = String.concat "," (List.map result_object diags) in
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"seqdiv-lint\",\"rules\":[%s]}},\"results\":[%s]}]}\n"
    rules results

let diag_object (d : Diagnostic.t) =
  Printf.sprintf
    "{\"rule\":%s,\"name\":%s,\"severity\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
    (str d.Diagnostic.rule)
    (str d.Diagnostic.rule_name)
    (str (level d))
    (str d.Diagnostic.file) d.Diagnostic.line d.Diagnostic.col
    (str d.Diagnostic.message)

let render_json diags =
  "[" ^ String.concat "," (List.map diag_object diags) ^ "]\n"
