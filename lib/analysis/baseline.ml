type t = string list

let empty = []

let of_string content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

let filter t diags =
  List.filter (fun d -> not (List.mem (Diagnostic.to_string d) t)) diags
