type fn_id = { unit_name : string; fn_name : string }

type target = Internal of fn_id | External of string list

type site = {
  target : target;
  args : int;
  in_loop : bool;
  site_loc : Location.t;
}

type alloc_kind = Closure | Ref | Tuple | Array_literal | Append

type alloc = {
  kind : alloc_kind;
  alloc_in_loop : bool;
  alloc_loc : Location.t;
}

type raised = { exn_name : string; raise_loc : Location.t }

type fn = {
  id : fn_id;
  path : string;
  line : int;
  col : int;
  arity : int;
  has_optional : bool;
  has_loop : bool;
  checkpoints : bool;
  sites : site list;
  allocs : alloc list;
  raises : raised list;
}

type t = { fns : fn list; index : (string * string, fn) Hashtbl.t }

let fns t = t.fns

let find t id =
  Hashtbl.find_opt t.index (id.unit_name, id.fn_name)

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

(* External modules whose higher-order functions invoke their function
   argument per element: a lambda passed to one of these runs inside an
   implicit loop even though no [for]/[while] appears. *)
let combinator_modules =
  [ "Array"; "List"; "String"; "Bytes"; "Hashtbl"; "Seq"; "Option"; "Fun" ]

(* External calls that raise a well-known constructor — the ones the
   per-file partiality rule already singles out, plus the classic
   [Not_found] raisers.  Implicit [Array]/[String] bounds checks are
   deliberately not modelled (see docs/LINTING.md). *)
let external_raiser parts =
  match parts with
  | [ "failwith" ] -> Some "Failure"
  | [ "invalid_arg" ] -> Some "Invalid_argument"
  | [ "Option"; "get" ] -> Some "Invalid_argument"
  | [ "List"; ("hd" | "tl") ] -> Some "Failure"
  | [ "Hashtbl"; "find" ]
  | [ "List"; "find" ]
  | [ "List"; "assoc" ]
  | [ "Sys"; "getenv" ] ->
      Some "Not_found"
  | _ -> None

let rec ends_with_checkpoint = function
  | [ "Deadline"; "checkpoint" ] -> true
  | _ :: rest -> ends_with_checkpoint rest
  | [] -> false

(* Names bound by patterns anywhere inside one top-level binding:
   parameters, [let] locals, match cases, lambda arguments.  A bare
   identifier matching one of these is a local, never a reference to a
   same-named top-level binding.  The scan over-approximates scope — a
   name bound anywhere in the function shadows it everywhere in it —
   which can only drop call-graph edges, never invent them. *)
let bound_names (e : Parsetree.expression) =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let pat self (p : Parsetree.pattern) =
    (match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } | Parsetree.Ppat_alias (_, { txt; _ }) ->
        acc := txt :: !acc
    | _ -> ());
    default.Ast_iterator.pat self p
  in
  let it = { default with Ast_iterator.pat } in
  it.Ast_iterator.expr it e;
  !acc

(* Name resolution, outside-in: a qualified path binds to the
   right-most module-path element that names a linted unit; a bare
   identifier binds to the current unit when it names one of its
   top-level bindings and no local binding shadows it.  Bare
   identifiers that resolve to nothing are locals and are dropped. *)
let resolve ~units ~unit_name ~locals ~shadowed parts =
  match parts with
  | [] -> None
  | [ name ] ->
      if (not (List.mem name shadowed)) && List.mem name locals then
        Some (Internal { unit_name; fn_name = name })
      else None
  | _ -> (
      let rec split_last acc = function
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split_last (x :: acc) rest
        | [] -> (List.rev acc, "")
      in
      let mod_path, fn_name = split_last [] parts in
      let rec last_unit found = function
        | [] -> found
        | m :: rest ->
            last_unit (if List.mem m units then Some m else found) rest
      in
      match last_unit None mod_path with
      | Some u -> Some (Internal { unit_name = u; fn_name })
      | None -> Some (External parts))

(* Mutable per-binding accumulator for one top-level value. *)
type acc = {
  mutable a_sites : site list;
  mutable a_allocs : alloc list;
  mutable a_raises : raised list;
  mutable a_loop : bool;
  mutable a_ckpt : bool;
  mutable a_in_loop : bool;
}

let is_lambda (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | _ -> false

let walker ~units ~unit_name ~locals ~shadowed acc =
  let default = Ast_iterator.default_iterator in
  let add_site target args loc =
    acc.a_sites <-
      { target; args; in_loop = acc.a_in_loop; site_loc = loc } :: acc.a_sites
  in
  let add_alloc kind in_loop loc =
    acc.a_allocs <-
      { kind; alloc_in_loop = in_loop; alloc_loc = loc } :: acc.a_allocs
  in
  let add_raise exn_name loc =
    acc.a_raises <- { exn_name; raise_loc = loc } :: acc.a_raises
  in
  let with_loop_flag flag f =
    let saved = acc.a_in_loop in
    acc.a_in_loop <- flag;
    f ();
    acc.a_in_loop <- saved
  in
  (* Walk a lambda literal: one [Closure] allocation for the whole
     parameter chain (flagged with the *outer* loop state — the
     closure is built where it appears), then the body under
     [body_in_loop] (true when the lambda is an iteration
     combinator's or an internal callee's argument). *)
  let rec walk_lambda self ~body_in_loop (e : Parsetree.expression) =
    add_alloc Closure acc.a_in_loop e.Parsetree.pexp_loc;
    let rec strip (e : Parsetree.expression) =
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_fun (_, dflt, _, body) ->
          (match dflt with
          | Some d -> self.Ast_iterator.expr self d
          | None -> ());
          strip body
      | Parsetree.Pexp_newtype (_, body) -> strip body
      | _ -> e
    in
    let body = strip e in
    with_loop_flag body_in_loop (fun () ->
        match body.Parsetree.pexp_desc with
        | Parsetree.Pexp_function cases -> walk_cases self cases
        | _ -> self.Ast_iterator.expr self body)
  and walk_cases self cases =
    List.iter
      (fun (c : Parsetree.case) ->
        (match c.Parsetree.pc_guard with
        | Some g -> self.Ast_iterator.expr self g
        | None -> ());
        self.Ast_iterator.expr self c.Parsetree.pc_rhs)
      cases
  in
  let walk_arg self ~callee_loops (_, (a : Parsetree.expression)) =
    if is_lambda a then
      walk_lambda self ~body_in_loop:(callee_loops || acc.a_in_loop) a
    else self.Ast_iterator.expr self a
  in
  let named_apply self parts args loc =
    let nargs = List.length args in
    (match external_raiser parts with
    | Some exn when nargs >= 1 -> add_raise exn loc
    | Some _ | None -> ());
    if ends_with_checkpoint parts then acc.a_ckpt <- true;
    let target = resolve ~units ~unit_name ~locals ~shadowed parts in
    (match target with
    | Some tgt -> add_site tgt nargs loc
    | None -> ());
    let callee_loops =
      match (target, parts) with
      | Some (Internal _), _ -> true
      | _, m :: _ :: _ when List.mem m combinator_modules -> true
      | _ -> false
    in
    List.iter (walk_arg self ~callee_loops) args
  in
  let rec handle_apply self (f : Parsetree.expression) args loc =
    match f.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt = Longident.Lident "|>"; _ } -> (
        match args with
        | [ (_, x); (_, g) ] -> virtual_apply self g [ (Asttypes.Nolabel, x) ] loc
        | _ -> List.iter (walk_arg self ~callee_loops:false) args)
    | Parsetree.Pexp_ident { txt = Longident.Lident "@@"; _ } -> (
        match args with
        | [ (_, g); (_, x) ] -> virtual_apply self g [ (Asttypes.Nolabel, x) ] loc
        | _ -> List.iter (walk_arg self ~callee_loops:false) args)
    | Parsetree.Pexp_ident { txt = Longident.Lident ("^" | "@"); _ } ->
        add_alloc Append acc.a_in_loop loc;
        List.iter (walk_arg self ~callee_loops:false) args
    | Parsetree.Pexp_ident { txt = Longident.Lident "ref"; _ }
      when List.length args = 1 ->
        add_alloc Ref acc.a_in_loop loc;
        List.iter (walk_arg self ~callee_loops:false) args
    | Parsetree.Pexp_ident
        { txt = Longident.Lident ("raise" | "raise_notrace"); _ } ->
        (match args with
        | (_, { Parsetree.pexp_desc = Parsetree.Pexp_construct ({ txt; _ }, _); _ })
          :: _ -> (
            match List.rev (flatten txt) with
            | exn :: _ -> add_raise exn loc
            | [] -> ())
        | _ -> ());
        List.iter (walk_arg self ~callee_loops:false) args
    | Parsetree.Pexp_ident { txt; _ } ->
        named_apply self (strip_stdlib (flatten txt)) args loc
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
        (* Immediately-applied lambda: its body runs right here. *)
        walk_lambda self ~body_in_loop:acc.a_in_loop f;
        List.iter (walk_arg self ~callee_loops:false) args
    | _ ->
        self.Ast_iterator.expr self f;
        List.iter (walk_arg self ~callee_loops:false) args
  and virtual_apply self (g : Parsetree.expression) extra loc =
    (* [x |> f] and [f @@ x]: fold the piped value into [f]'s argument
       list so arity accounting matches a direct application. *)
    match g.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (inner, gargs) ->
        handle_apply self inner (gargs @ extra) loc
    | _ -> handle_apply self g extra loc
  in
  let expr self (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_for (_, start, stop, _, body) ->
        acc.a_loop <- true;
        self.Ast_iterator.expr self start;
        self.Ast_iterator.expr self stop;
        with_loop_flag true (fun () -> self.Ast_iterator.expr self body)
    | Parsetree.Pexp_while (cond, body) ->
        acc.a_loop <- true;
        with_loop_flag true (fun () ->
            self.Ast_iterator.expr self cond;
            self.Ast_iterator.expr self body)
    | Parsetree.Pexp_let (Asttypes.Recursive, vbs, body) ->
        (* A nested [let rec] can run unboundedly, like a loop; its
           closure is allocated once, where the binding occurs. *)
        acc.a_loop <- true;
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            if is_lambda vb.Parsetree.pvb_expr then
              walk_lambda self ~body_in_loop:true vb.Parsetree.pvb_expr
            else
              with_loop_flag true (fun () ->
                  self.Ast_iterator.expr self vb.Parsetree.pvb_expr))
          vbs;
        self.Ast_iterator.expr self body
    | Parsetree.Pexp_apply (f, args) ->
        handle_apply self f args e.Parsetree.pexp_loc
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
        walk_lambda self ~body_in_loop:acc.a_in_loop e
    | Parsetree.Pexp_ident { txt; loc } -> (
        (* A bare reference: counts for reachability (the function may
           be called through the variable) but is not itself a call. *)
        match strip_stdlib (flatten txt) with
        | [ _ ] as parts | (_ :: _ :: _ as parts) -> (
            match resolve ~units ~unit_name ~locals ~shadowed parts with
            | Some (Internal _ as tgt) -> add_site tgt 0 loc
            | Some (External _) | None -> ())
        | [] -> ())
    | Parsetree.Pexp_assert inner ->
        add_raise "Assert_failure" e.Parsetree.pexp_loc;
        self.Ast_iterator.expr self inner
    | Parsetree.Pexp_tuple _ ->
        add_alloc Tuple acc.a_in_loop e.Parsetree.pexp_loc;
        default.Ast_iterator.expr self e
    | Parsetree.Pexp_array _ ->
        add_alloc Array_literal acc.a_in_loop e.Parsetree.pexp_loc;
        default.Ast_iterator.expr self e
    | _ -> default.Ast_iterator.expr self e
  in
  { default with Ast_iterator.expr }

(* Count the parameter chain of a top-level binding without recording
   a closure allocation for it: the chain *is* the function. *)
let strip_binding_head (e : Parsetree.expression) =
  let rec go (e : Parsetree.expression) arity has_opt =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun (lbl, _, _, body) ->
        go body (arity + 1) (has_opt || lbl <> Asttypes.Nolabel)
    | Parsetree.Pexp_newtype (_, body) -> go body arity has_opt
    | Parsetree.Pexp_function cases -> (arity + 1, has_opt, `Cases cases)
    | _ -> (arity, has_opt, `Body e)
  in
  go e 0 false

let binding_of ~units ~unit_name ~locals ~path ~recursive
    (vb : Parsetree.value_binding) fn_name =
  let acc =
    {
      a_sites = [];
      a_allocs = [];
      a_raises = [];
      a_loop = recursive;
      a_ckpt = false;
      a_in_loop = recursive;
    }
  in
  let shadowed = bound_names vb.Parsetree.pvb_expr in
  let it = walker ~units ~unit_name ~locals ~shadowed acc in
  let arity, has_optional, rest = strip_binding_head vb.Parsetree.pvb_expr in
  (match rest with
  | `Cases cases ->
      List.iter
        (fun (c : Parsetree.case) ->
          (match c.Parsetree.pc_guard with
          | Some g -> it.Ast_iterator.expr it g
          | None -> ());
          it.Ast_iterator.expr it c.Parsetree.pc_rhs)
        cases
  | `Body body -> it.Ast_iterator.expr it body);
  let p = vb.Parsetree.pvb_loc.Location.loc_start in
  {
    id = { unit_name; fn_name };
    path;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    arity;
    has_optional;
    has_loop = acc.a_loop;
    checkpoints = acc.a_ckpt;
    sites = List.rev acc.a_sites;
    allocs = List.rev acc.a_allocs;
    raises = List.rev acc.a_raises;
  }

let rec binding_names (items : Parsetree.structure) =
  List.concat_map
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Parsetree.value_binding) ->
              match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
              | Parsetree.Ppat_var { txt; _ } -> Some txt
              | _ -> None)
            vbs
      | Parsetree.Pstr_module
          {
            Parsetree.pmb_expr =
              { Parsetree.pmod_desc = Parsetree.Pmod_structure inner; _ };
            _;
          } ->
          binding_names inner
      | _ -> [])
    items

let collect_file ~units ((src : Source.t), structure) =
  let unit_name = Source.module_name src in
  let locals = binding_names structure in
  let path = src.Source.path in
  let rec items_fns (items : Parsetree.structure) =
    List.concat_map
      (fun (item : Parsetree.structure_item) ->
        match item.Parsetree.pstr_desc with
        | Parsetree.Pstr_value (rf, vbs) ->
            List.filter_map
              (fun (vb : Parsetree.value_binding) ->
                match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
                | Parsetree.Ppat_var { txt; _ } ->
                    Some
                      (binding_of ~units ~unit_name ~locals ~path
                         ~recursive:(rf = Asttypes.Recursive)
                         vb txt)
                | _ -> None)
              vbs
        | Parsetree.Pstr_module
            {
              Parsetree.pmb_expr =
                { Parsetree.pmod_desc = Parsetree.Pmod_structure inner; _ };
              _;
            } ->
            items_fns inner
        | _ -> [])
      items
  in
  items_fns structure

let build parsed_mls =
  let units =
    List.map (fun ((src : Source.t), _) -> Source.module_name src) parsed_mls
  in
  let raw = List.concat_map (collect_file ~units) parsed_mls in
  (* Later bindings shadow earlier ones within a unit: walk the list
     backwards keeping the first (i.e. last-in-file) occurrence. *)
  let deduped =
    let rec keep seen acc = function
      | [] -> acc
      | f :: rest ->
          let key = (f.id.unit_name, f.id.fn_name) in
          if List.mem key seen then keep seen acc rest
          else keep (key :: seen) (f :: acc) rest
    in
    keep [] [] (List.rev raw)
  in
  let fns =
    List.sort
      (fun a b ->
        match String.compare a.id.unit_name b.id.unit_name with
        | 0 -> String.compare a.id.fn_name b.id.fn_name
        | d -> d)
      deduped
  in
  let index = Hashtbl.create 64 in
  List.iter
    (fun f -> Hashtbl.replace index (f.id.unit_name, f.id.fn_name) f)
    fns;
  { fns; index }
