type role = Lib | Bin | Bench | Test | Other
type kind = Ml | Mli

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature
  | Broken of { line : int; col : int; message : string }

type allow = {
  marker_col : int;
  tokens : (string * int) list;
  justified : bool;
}

type t = {
  path : string;
  role : role;
  kind : kind;
  content : string;
  allows : allow option array;
}

let role_of_path path =
  let first =
    match String.index_opt path '/' with
    | Some i -> String.sub path 0 i
    | None -> Filename.dirname path
  in
  match first with
  | "lib" -> Lib
  | "bin" -> Bin
  | "bench" -> Bench
  | "test" -> Test
  | _ -> Other

let kind_of_path path = if Filename.check_suffix path ".mli" then Mli else Ml

let split_lines content = String.split_on_char '\n' content

let is_token_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let is_all_dashes s = s <> "" && String.for_all (fun c -> c = '-') s

(* Extract a [lint: allow r1 r2 — justification] marker on one line.
   The scan is purely lexical — a marker inside a string literal would
   also count — but the marker is unusual enough that this cannot
   misfire in practice, and a lexical scan keeps comments (which the
   Parsetree drops) visible to the linter.

   Tokens run until the first non-token character or an all-dash token
   ([--], [---]); everything after that separator, minus the trailing
   comment closer, is the justification clause.  The em-dash used in
   most markers is multi-byte and therefore stops the token scan
   naturally. *)
let allow_of_line line =
  match
    (* Find a comment-opener-prefixed "lint:" — requiring the opener
       keeps mentions of the marker inside string literals (the rule
       messages themselves name their escape hatch) from parsing as
       markers — then require the next word to be "allow". *)
    let n = String.length line in
    let opened i =
      let rec back j =
        if j >= 1 && (line.[j - 1] = ' ' || line.[j - 1] = '\t') then
          back (j - 1)
        else j
      in
      let j = back i in
      j >= 2 && line.[j - 2] = '(' && line.[j - 1] = '*'
    in
    let rec find i =
      if i + 5 > n then None
      else if String.sub line i 5 = "lint:" && opened i then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some marker_col ->
      let n = String.length line in
      let rec skip_blank i =
        if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_blank (i + 1)
        else i
      in
      let token i =
        let rec stop j =
          if j < n && is_token_char line.[j] then stop (j + 1) else j
        in
        let j = stop i in
        (String.lowercase_ascii (String.sub line i (j - i)), j)
      in
      let i = skip_blank (marker_col + 5) in
      let verb, i = token i in
      if verb <> "allow" then None
      else
        let rec tokens i acc =
          let i = skip_blank i in
          if i >= n || not (is_token_char line.[i]) then (List.rev acc, i)
          else
            let tok, j = token i in
            if is_all_dashes tok then (List.rev acc, j)
            else tokens j ((tok, i) :: acc)
        in
        let tokens, rest_at = tokens i [] in
        let rest = String.sub line rest_at (n - rest_at) in
        let rest =
          let r = String.trim rest in
          if
            String.length r >= 2
            && String.sub r (String.length r - 2) 2 = "*)"
          then String.trim (String.sub r 0 (String.length r - 2))
          else r
        in
        Some { marker_col; tokens; justified = rest <> "" }

let make ~path ~content =
  let allows =
    split_lines content |> List.map allow_of_line |> Array.of_list
  in
  { path; role = role_of_path path; kind = kind_of_path path; content; allows }

let parse t =
  let lexbuf = Lexing.from_string t.content in
  Location.init lexbuf t.path;
  let broken (loc : Location.t) message =
    let p = loc.loc_start in
    Broken { line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; message }
  in
  try
    match t.kind with
    | Ml -> Structure (Parse.implementation lexbuf)
    | Mli -> Signature (Parse.interface lexbuf)
  with
  | Syntaxerr.Error err ->
      broken (Syntaxerr.location_of_error err) "syntax error"
  | Lexer.Error (_, loc) -> broken loc "lexing error"
  (* lint: allow swallow — any front-end crash degrades to a Broken finding *)
  | exn ->
      Broken { line = 1; col = 0; message = Printexc.to_string exn }

let module_name t =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename t.path))

let base t = Filename.remove_extension t.path
let dir t = Filename.dirname t.path

let markers t =
  let acc = ref [] in
  for i = Array.length t.allows - 1 downto 0 do
    match t.allows.(i) with
    | None -> ()
    | Some a -> acc := (i + 1, a) :: !acc
  done;
  !acc

let line_allow t line =
  if line < 1 || line > Array.length t.allows then None
  else t.allows.(line - 1)

let allowed t ~rule ~rule_name ~line =
  let rule = String.lowercase_ascii rule
  and rule_name = String.lowercase_ascii rule_name in
  let covers (tok, _) = tok = rule || tok = rule_name || tok = "all" in
  let line_covers l =
    match line_allow t l with
    | None -> false
    | Some a -> List.exists covers a.tokens
  in
  line_covers line || line_covers (line - 1)
