let read_file path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let load_file path = Source.make ~path ~content:(read_file path)

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec walk path acc =
  if Sys.is_directory path then
    (* Sorted traversal: Sys.readdir order is platform-dependent, and the
       linter's output must itself be deterministic. *)
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else walk (Filename.concat path entry) acc)
      acc entries
  else if is_source path then path :: acc
  else acc

let load_tree roots =
  List.concat_map (fun root -> List.rev (walk root [])) roots
  |> List.sort String.compare |> List.map load_file

let run roots = Rules.run (load_tree roots)

let report ppf ~files diags =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) diags;
  let errors = List.length (List.filter Diagnostic.is_error diags) in
  let warnings = List.length diags - errors in
  Format.fprintf ppf "seqdiv-lint: %d files checked, %d errors, %d warnings@."
    files errors warnings

let has_errors diags = List.exists Diagnostic.is_error diags
