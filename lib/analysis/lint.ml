let read_file path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let load_file path = Source.make ~path ~content:(read_file path)

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec walk path acc =
  if Sys.is_directory path then
    (* Sorted traversal: Sys.readdir order is platform-dependent, and the
       linter's output must itself be deterministic. *)
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else walk (Filename.concat path entry) acc)
      acc entries
  else if is_source path then path :: acc
  else acc

let load_tree roots =
  List.concat_map (fun root -> List.rev (walk root [])) roots
  |> List.sort String.compare |> List.map load_file

let run roots = Rules.run (load_tree roots)

type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | _ -> None

let render_text ~files diags =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Diagnostic.to_string d);
      Buffer.add_char buf '\n')
    diags;
  let errors = List.length (List.filter Diagnostic.is_error diags) in
  let warnings = List.length diags - errors in
  Buffer.add_string buf
    (Printf.sprintf "seqdiv-lint: %d files checked, %d errors, %d warnings\n"
       files errors warnings);
  Buffer.contents buf

let render format ~files diags =
  match format with
  | Text -> render_text ~files diags
  | Json -> Sarif.render_json diags
  | Sarif -> Sarif.render diags

let report ppf ~files diags =
  Format.fprintf ppf "%s@?" (render_text ~files diags)

let load_baseline path =
  if Sys.file_exists path then
    Some (Baseline.of_string (read_file path))
  else None

let has_errors diags = List.exists Diagnostic.is_error diags
