(** The rule set and the engine that applies it.

    Five rules guard the properties the paper's methodology depends on
    (see docs/LINTING.md for the full rationale):

    - [R1 determinism] — no ambient randomness or wall-clock reads, and
      no order-sensitive hash-table iteration, in library code.
    - [R2 output-hygiene] — no direct printing from library code.
    - [R3 partiality] — no [failwith] / [assert false] / [invalid_arg] /
      [Option.get] / [List.hd] / [List.tl] in library code outside
      explicitly whitelisted sites.
    - [R4 interfaces] — every library [.ml] has a matching [.mli].
    - [R5 detector-contract] — every detector packed into
      [lib/detectors/registry.ml] exposes the [Detector.S] contract
      ([name] / [train] / [score]).
    - [R6 concurrency] — [Domain] / [Atomic] / [Mutex] / [Condition] /
      [Semaphore] in library code are confined to [lib/util/pool.ml]
      (or a [lint: allow concurrency] site), so every place parallelism
      can enter a result is auditable.
    - [R7 hot-path] — detector [score] / [score_range] bodies (in
      [lib/detectors]) must not build window strings ([Trace.key]) or
      run string-keyed / hash-table lookups per window; scoring descends
      the shared trie over the raw trace via the [*_at] cursor API.
      Escape hatch: [lint: allow hot-path].
    - [R8 swallow] — no catch-all exception handlers
      ([try ... with _ ->], [with e -> ...], or
      [match ... with exception e ->]) in library code outside
      [lib/core/fault.ml]: arbitrary failures route through the
      supervisor via [Fault.classify].  Escape hatch:
      [lint: allow swallow].

    Three whole-program rules run over the cross-module call graph
    ({!Callgraph} / {!Reach} / {!Effects}):

    - [R9 checkpoint] — every loop or recursive binding reachable from
      a train/score hot path must reach [Deadline.checkpoint], either
      directly, through a callee, or through a checkpointing caller.
      Escape hatch: [lint: allow checkpoint].
    - [R10 fault-custody] — every exception constructor raisable on a
      supervised-task path must have an explicit [Fault.classify]
      case.  Escape hatch: [lint: allow fault-custody].
    - [R11 allocation] — no closure construction, partial application,
      or boxed allocation on the per-window scoring path.  Escape
      hatch: [lint: allow allocation].

    One meta-rule keeps the whitelist honest:

    - [R12 suppression] — allow markers must name known rules exactly
      (unknown tokens and empty markers are errors) and carry a
      [— justification] clause (bare markers warn).

    A further pseudo-rule, [R0 syntax], reports files that do not
    parse.

    The engine is pure: it maps a list of {!Source.t} values to a
    sorted list of {!Diagnostic.t}, which is what makes the rules
    testable on inline fixtures. *)

type t = {
  id : string;
  name : string;
  severity : Diagnostic.severity;
  doc : string;
}

val all : t list
(** Every rule the engine knows, [R0]–[R12], in order. *)

val syntax : t
val determinism : t
val output_hygiene : t
val partiality : t
val interfaces : t
val detector_contract : t
val concurrency : t
val hot_path : t
val swallow : t
val checkpoint : t
val fault_custody : t
val allocation : t
val suppression : t

val check_file : Source.t -> Diagnostic.t list
(** File-local rules only ([R0]–[R3] and [R12]), whitelist already
    applied.  Project-wide rules need the whole file set; use
    {!run}. *)

val run : Source.t list -> Diagnostic.t list
(** All rules over a file set, whitelist applied, sorted by
    {!Diagnostic.compare}. *)
