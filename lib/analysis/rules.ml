type t = {
  id : string;
  name : string;
  severity : Diagnostic.severity;
  doc : string;
}

let syntax =
  {
    id = "R0";
    name = "syntax";
    severity = Diagnostic.Error;
    doc = "every linted file must parse with the installed compiler front end";
  }

let determinism =
  {
    id = "R1";
    name = "determinism";
    severity = Diagnostic.Error;
    doc =
      "library code must not read ambient randomness or wall-clock time, nor \
       iterate hash tables in unspecified order: a run is a pure function of \
       its seed";
  }

let output_hygiene =
  {
    id = "R2";
    name = "output-hygiene";
    severity = Diagnostic.Error;
    doc =
      "library code must not print to std channels directly; formatting goes \
       through Fmt, logging through Logs";
  }

let partiality =
  {
    id = "R3";
    name = "partiality";
    severity = Diagnostic.Error;
    doc =
      "library code avoids anonymous partial escapes (failwith, assert \
       false, invalid_arg, Option.get, List.hd/tl) outside whitelisted, \
       documented preconditions";
  }

let interfaces =
  {
    id = "R4";
    name = "interfaces";
    severity = Diagnostic.Error;
    doc = "every library .ml has a matching .mli that pins its public surface";
  }

let detector_contract =
  {
    id = "R5";
    name = "detector-contract";
    severity = Diagnostic.Error;
    doc =
      "every detector packed into the registry exposes the Detector.S \
       contract (name/train/score)";
  }

let concurrency =
  {
    id = "R6";
    name = "concurrency";
    severity = Diagnostic.Error;
    doc =
      "library code must not touch Domain/Atomic/Mutex/Condition/Semaphore \
       outside lib/util/pool.ml: all parallelism flows through the pool so \
       the determinism contract stays auditable";
  }

let hot_path =
  {
    id = "R7";
    name = "hot-path";
    severity = Diagnostic.Error;
    doc =
      "detector score/score_range paths must not build window strings \
       (Trace.key) or run string-keyed lookups per window; score over the \
       raw trace through the allocation-free *_at trie cursor API";
  }

let swallow =
  {
    id = "R8";
    name = "swallow";
    severity = Diagnostic.Error;
    doc =
      "library code must not catch every exception with a bare wildcard or \
       variable handler: arbitrary failures belong to the supervisor via \
       Fault.classify, so a catch-all silently eats faults it was never \
       written for";
  }

let all =
  [
    syntax;
    determinism;
    output_hygiene;
    partiality;
    interfaces;
    detector_contract;
    concurrency;
    hot_path;
    swallow;
  ]

let diag rule (src : Source.t) ~line ~col message =
  Diagnostic.make ~rule:rule.id ~rule_name:rule.name ~severity:rule.severity
    ~file:src.Source.path ~line ~col message

let diag_at rule src (loc : Location.t) message =
  let p = loc.Location.loc_start in
  diag rule src ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let print_fns =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "prerr_char";
    "prerr_int";
    "prerr_float";
    "prerr_bytes";
  ]

let determinism_violation parts =
  match parts with
  | "Random" :: _ ->
      Some
        "Stdlib.Random is ambient state; thread randomness through \
         Seqdiv_util.Prng so every result is a function of its seed"
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
      Some
        "wall-clock reads make results depend on when they were computed; \
         take time as explicit input if it is data"
  | [ "Hashtbl"; "iter" ] | [ "Hashtbl"; "fold" ] ->
      Some
        "Hashtbl iteration order is unspecified; fold over sorted keys, or \
         whitelist the site if it is provably order-insensitive"
  | _ -> None

let output_violation parts =
  match parts with
  | [ "Printf"; "printf" ] | [ "Printf"; "eprintf" ] ->
      Some
        "library code must not print; render through Fmt or log through Logs"
  | [ f ] when List.mem f print_fns ->
      Some
        "library code must not print; return a string/formatter or log \
         through Logs"
  | _ -> None

(* R6: the concurrency primitives are legitimate only inside the worker
   pool; anywhere else in the library they would let order-dependent or
   racy computation reach results unaudited. *)
let concurrency_modules = [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Semaphore" ]

let concurrency_violation parts =
  match parts with
  | m :: _ when List.mem m concurrency_modules ->
      Some
        (Printf.sprintf
           "%s belongs in lib/util/pool.ml: library code stays single-domain \
            and hands the pool pure closures (or whitelist with `lint: allow \
            concurrency`)"
           m)
  | _ -> None

let pool_path = "lib/util/pool.ml"

let concurrency_exempt (src : Source.t) =
  let p = src.Source.path and n = String.length pool_path in
  p = pool_path
  || (String.length p > n
     && String.sub p (String.length p - n - 1) (n + 1) = "/" ^ pool_path)

let partiality_violation parts =
  match parts with
  | [ "failwith" ] ->
      Some
        "failwith raises an anonymous Failure; raise a dedicated exception \
         with context, or return a Result"
  | [ "invalid_arg" ] ->
      Some
        "invalid_arg is a partial escape; prefer a total API, or whitelist \
         the documented precondition"
  | [ "Option"; "get" ] ->
      Some "Option.get is partial; match on the option"
  | [ "List"; "hd" ] | [ "List"; "tl" ] ->
      Some "List.hd/List.tl are partial; match on the list"
  | _ -> None

(* R7: the scoring hot paths serve every window of every test stream;
   a string key built or hashed per window is exactly the allocation
   profile the trie-backed data layer removed.  Confined to detector
   implementations, and within those to the [score]/[score_range]
   bindings (train-time key building is legitimate). *)
let string_key_queries =
  [ "mem"; "count"; "freq"; "is_foreign"; "is_rare"; "is_common"; "find" ]

let hot_path_violation parts =
  match parts with
  | [ "Trace"; ("key" | "key_of_symbols") ] ->
      Some
        "builds a window string per call; score over Trace.raw with the \
         *_at cursor API (or whitelist with `lint: allow hot-path`)"
  | [ (("Seq_db" | "Seq_trie" | "Ngram_index") as m); f ]
    when List.mem f string_key_queries ->
      Some
        (Printf.sprintf
           "%s.%s is a string-keyed lookup; descend with the %s *_at cursor \
            API over the raw trace (or whitelist with `lint: allow hot-path`)"
           m f m)
  | [ "Hashtbl"; ("find" | "find_opt" | "mem") ] ->
      Some
        "per-window hash lookups belong to the replaced string-key backend; \
         read counts out of the shared trie (or whitelist with `lint: allow \
         hot-path`)"
  | _ -> None

(* R8: a handler that matches every exception takes custody of faults
   it cannot understand — chaos injections, Out_of_memory, Stack_overflow
   — and hides them from the supervisor.  The fault layer is the one
   module whose job is exactly that custody, so it is exempt; every
   other site must name the exceptions it expects or carry a
   `lint: allow swallow` marker. *)
let fault_path = "lib/core/fault.ml"

let swallow_exempt (src : Source.t) =
  let p = src.Source.path and n = String.length fault_path in
  p = fault_path
  || (String.length p > n
     && String.sub p (String.length p - n - 1) (n + 1) = "/" ^ fault_path)

let rec catch_all_pattern (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (inner, _) -> catch_all_pattern inner
  | Parsetree.Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let swallow_message =
  "catch-all exception handler; name the exceptions this site expects — \
   arbitrary failures belong to the supervisor through Fault (or whitelist \
   with `lint: allow swallow`)"

(* Flag the catch-all handler cases of [try]/[match ... with exception]. *)
let swallow_violations (cases : Parsetree.case list) ~exception_cases_only =
  List.filter_map
    (fun (c : Parsetree.case) ->
      if c.Parsetree.pc_guard <> None then None
      else
        let pat = c.Parsetree.pc_lhs in
        match pat.Parsetree.ppat_desc with
        | Parsetree.Ppat_exception inner when catch_all_pattern inner ->
            Some inner.Parsetree.ppat_loc
        | _ when (not exception_cases_only) && catch_all_pattern pat ->
            Some pat.Parsetree.ppat_loc
        | _ -> None)
    cases

let detectors_dir (src : Source.t) =
  let dir = Source.dir src in
  let suffix = "detectors" in
  let n = String.length suffix and dn = String.length dir in
  dir = suffix || (dn > n && String.sub dir (dn - n - 1) (n + 1) = "/" ^ suffix)

let score_binding_names = [ "score"; "score_range" ]

let check_hot_paths src structure =
  let found = ref [] in
  let default = Ast_iterator.default_iterator in
  let in_score = ref false in
  let expr self (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } when !in_score -> (
        match hot_path_violation (strip_stdlib (flatten txt)) with
        | Some m -> found := diag_at hot_path src loc m :: !found
        | None -> ())
    | _ -> ());
    default.Ast_iterator.expr self e
  in
  let value_binding self (vb : Parsetree.value_binding) =
    let is_score =
      match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
      | Parsetree.Ppat_var { txt; _ } -> List.mem txt score_binding_names
      | _ -> false
    in
    if is_score then begin
      let saved = !in_score in
      in_score := true;
      default.Ast_iterator.value_binding self vb;
      in_score := saved
    end
    else default.Ast_iterator.value_binding self vb
  in
  let it = { default with Ast_iterator.expr; Ast_iterator.value_binding } in
  it.Ast_iterator.structure it structure;
  List.rev !found

(* R1–R3 over one parsed library implementation. *)
let check_structure src structure =
  let found = ref [] in
  let add rule loc message = found := diag_at rule src loc message :: !found in
  let on_ident lid (loc : Location.t) =
    let parts = strip_stdlib (flatten lid) in
    (match determinism_violation parts with
    | Some m -> add determinism loc m
    | None -> ());
    (match output_violation parts with
    | Some m -> add output_hygiene loc m
    | None -> ());
    (match concurrency_violation parts with
    | Some m when not (concurrency_exempt src) -> add concurrency loc m
    | Some _ | None -> ());
    match partiality_violation parts with
    | Some m -> add partiality loc m
    | None -> ()
  in
  let default = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> on_ident txt loc
    | Parsetree.Pexp_assert
        {
          pexp_desc = Parsetree.Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
          _;
        } ->
        add partiality e.Parsetree.pexp_loc
          "assert false is not total; make the invariant explicit in the \
           types or raise a dedicated exception"
    | Parsetree.Pexp_try (_, cases) when not (swallow_exempt src) ->
        List.iter
          (fun loc -> add swallow loc swallow_message)
          (swallow_violations cases ~exception_cases_only:false)
    | Parsetree.Pexp_match (_, cases) when not (swallow_exempt src) ->
        List.iter
          (fun loc -> add swallow loc swallow_message)
          (swallow_violations cases ~exception_cases_only:true)
    | _ -> ());
    default.Ast_iterator.expr self e
  in
  let it = { default with Ast_iterator.expr } in
  it.Ast_iterator.structure it structure;
  List.rev !found

let check_parsed (src : Source.t) parsed =
  match parsed with
  | Source.Broken { line; col; message } -> [ diag syntax src ~line ~col message ]
  | Source.Structure structure when src.Source.role = Source.Lib ->
      check_structure src structure
      @ (if detectors_dir src then check_hot_paths src structure else [])
  | Source.Structure _ | Source.Signature _ -> []

let not_allowed (src : Source.t) (d : Diagnostic.t) =
  not
    (Source.allowed src ~rule:d.Diagnostic.rule ~rule_name:d.Diagnostic.rule_name
       ~line:d.Diagnostic.line)

let check_file src =
  check_parsed src (Source.parse src)
  |> List.filter (not_allowed src)
  |> List.sort Diagnostic.compare

(* R4: every lib .ml needs a sibling .mli. *)
let check_interfaces files =
  let mli_bases =
    List.filter_map
      (fun (f : Source.t) ->
        if f.Source.kind = Source.Mli then Some (Source.base f) else None)
      files
  in
  List.filter_map
    (fun (f : Source.t) ->
      if
        f.Source.role = Source.Lib
        && f.Source.kind = Source.Ml
        && not (List.mem (Source.base f) mli_bases)
      then
        Some
          (diag interfaces f ~line:1 ~col:0
             (Printf.sprintf "missing interface: expected %s.mli alongside %s"
                (Source.base f) f.Source.path))
      else None)
    files

(* R5 helpers. *)
let packed_modules structure =
  let found = ref [] in
  let default = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_pack
        { Parsetree.pmod_desc = Parsetree.Pmod_ident { txt; loc }; _ } -> (
        match List.rev (flatten txt) with
        | name :: _ -> found := (name, loc) :: !found
        | [] -> ())
    | _ -> ());
    default.Ast_iterator.expr self e
  in
  let it = { default with Ast_iterator.expr } in
  it.Ast_iterator.structure it structure;
  let seen = ref [] in
  List.rev !found
  |> List.filter (fun (name, _) ->
         if List.mem name !seen then false
         else begin
           seen := name :: !seen;
           true
         end)

let signature_vals items =
  List.filter_map
    (fun (item : Parsetree.signature_item) ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd -> Some vd.Parsetree.pval_name.Location.txt
      | _ -> None)
    items

let includes_detector_s items =
  List.exists
    (fun (item : Parsetree.signature_item) ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_include incl -> (
          match incl.Parsetree.pincl_mod.Parsetree.pmty_desc with
          | Parsetree.Pmty_ident { txt; _ } -> (
              match List.rev (flatten txt) with
              | [ "S" ] -> true
              | "S" :: "Detector" :: _ -> true
              | _ -> false)
          | _ -> false)
      | _ -> false)
    items

let required_contract = [ "name"; "train"; "score" ]

let check_detector_contract files parsed_of =
  let registry =
    List.find_opt
      (fun (f : Source.t) ->
        f.Source.role = Source.Lib
        && f.Source.kind = Source.Ml
        && Source.module_name f = "Registry")
      files
  in
  match registry with
  | None -> []
  | Some reg -> (
      match parsed_of reg with
      | Source.Structure structure ->
          let interface_of name =
            let candidates =
              List.filter
                (fun (f : Source.t) ->
                  f.Source.kind = Source.Mli
                  && f.Source.role = Source.Lib
                  && Source.module_name f = name)
                files
            in
            match
              List.find_opt (fun f -> Source.dir f = Source.dir reg) candidates
            with
            | Some f -> Some f
            | None -> ( match candidates with f :: _ -> Some f | [] -> None)
          in
          packed_modules structure
          |> List.concat_map (fun (name, loc) ->
                 match interface_of name with
                 | None ->
                     [
                       diag_at detector_contract reg loc
                         (Printf.sprintf
                            "detector %s is in the registry but has no .mli; \
                             the contract cannot be checked"
                            name);
                     ]
                 | Some mli -> (
                     match parsed_of mli with
                     | Source.Signature items ->
                         if includes_detector_s items then []
                         else
                           let vals = signature_vals items in
                           let missing =
                             List.filter
                               (fun v -> not (List.mem v vals))
                               required_contract
                           in
                           if missing = [] then []
                           else
                             [
                               diag_at detector_contract reg loc
                                 (Printf.sprintf
                                    "detector %s does not satisfy the \
                                     Detector contract: %s missing %s \
                                     (declare the vals or include Detector.S)"
                                    name mli.Source.path
                                    (String.concat ", " missing));
                             ]
                     | Source.Structure _ | Source.Broken _ ->
                         (* An unparseable .mli is already an R0 finding. *)
                         []))
      | Source.Signature _ | Source.Broken _ -> [])

let run files =
  let parsed =
    List.map (fun (f : Source.t) -> (f.Source.path, Source.parse f)) files
  in
  let parsed_of (f : Source.t) = List.assoc f.Source.path parsed in
  let per_file =
    List.concat_map (fun f -> check_parsed f (parsed_of f)) files
  in
  let project =
    check_interfaces files @ check_detector_contract files parsed_of
  in
  let source_of path =
    List.find_opt (fun (f : Source.t) -> f.Source.path = path) files
  in
  per_file @ project
  |> List.filter (fun (d : Diagnostic.t) ->
         match source_of d.Diagnostic.file with
         | Some src -> not_allowed src d
         | None -> true)
  |> List.sort_uniq Diagnostic.compare
